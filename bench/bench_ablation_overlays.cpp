// Ablation: overlay choice — Chord vs Pastry vs CAN (§2.1 names all
// three as substrates the distributed pagerank targets).
//
// The pagerank protocol is overlay-agnostic; what the overlay changes
// is the *routing* bill for un-cached messages: Chord and Pastry
// resolve in O(log N) hops, CAN (d = 2) in O(sqrt N). This bench routes
// the same lookup workload over all three at several network sizes.

#include "bench_util.hpp"

#include "common/rng.hpp"
#include "dht/can.hpp"
#include "dht/pastry.hpp"
#include "dht/ring.hpp"

namespace dprank {
namespace {

struct Row {
  double chord_avg = 0.0;
  double pastry_avg = 0.0;
  double can_avg = 0.0;
  std::size_t chord_max = 0;
  std::size_t pastry_max = 0;
  std::size_t can_max = 0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

constexpr int kLookups = 2000;

void BM_Overlays(benchmark::State& state) {
  const auto peers = static_cast<PeerId>(state.range(0));
  const ChordRing chord(peers);
  const PastryRing pastry(peers);
  const CanSpace can(peers);

  for (auto _ : state) {
    Rng rng(experiment_seed());
    Row row;
    for (int i = 0; i < kLookups; ++i) {
      const auto from = static_cast<PeerId>(rng.bounded(peers));
      const Guid key{rng(), rng()};
      const auto c = chord.route(from, key).hop_count();
      const auto p = pastry.route(from, key).hop_count();
      const auto n = can.route(from, key).hop_count();
      row.chord_avg += static_cast<double>(c);
      row.pastry_avg += static_cast<double>(p);
      row.can_avg += static_cast<double>(n);
      row.chord_max = std::max(row.chord_max, c);
      row.pastry_max = std::max(row.pastry_max, p);
      row.can_max = std::max(row.can_max, n);
    }
    row.chord_avg /= kLookups;
    row.pastry_avg /= kLookups;
    row.can_avg /= kLookups;
    store().put(std::to_string(peers), row);
    state.counters["chord_avg_hops"] = row.chord_avg;
    state.counters["pastry_avg_hops"] = row.pastry_avg;
    state.counters["can_avg_hops"] = row.can_avg;
  }
}

void register_benchmarks() {
  for (const long peers : {50L, 100L, 200L, 500L}) {
    benchmark::RegisterBenchmark("ablation/overlays", BM_Overlays)
        ->Args({peers})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: routing cost per un-cached message, by overlay");
  TextTable table({"Peers", "Chord avg", "Pastry avg", "CAN avg",
                   "Chord max", "Pastry max", "CAN max"});
  for (const int peers : {50, 100, 200, 500}) {
    const auto* r = store().find(std::to_string(peers));
    if (r == nullptr) continue;
    table.add_row({std::to_string(peers), format_fixed(r->chord_avg, 2),
                   format_fixed(r->pastry_avg, 2),
                   format_fixed(r->can_avg, 2),
                   std::to_string(r->chord_max),
                   std::to_string(r->pastry_max),
                   std::to_string(r->can_max)});
  }
  benchutil::emit(table, "ablation_overlays_1");
  std::cout << "\nChord ~0.5*log2(N), Pastry ~log16(N) (fewer, fatter "
               "routing-table hops), CAN ~0.5*sqrt(N) at d = 2. With §3.2 "
               "IP caching all three amortize to ~1 hop per message, "
               "which is why the paper's traffic tables are "
               "overlay-independent.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
