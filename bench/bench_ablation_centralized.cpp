// Ablation: centralized crawler alternatives (§5) vs the distributed
// computation's own traffic.
//
// Scheme 1 (naive crawl): fetch every document to a central server.
// Scheme 2 (link shipping): upload only the link structure, compute
// centrally, redistribute ranks.
// Distributed: the pagerank update messages measured by the engine.
//
// The paper argues scheme 1 is unworkable and scheme 2 still clashes
// with P2P philosophy; the numbers show where each sits.

#include "bench_util.hpp"

#include "pagerank/crawler.hpp"

namespace dprank {
namespace {

struct Row {
  CrawlerTraffic crawler;
  std::uint64_t distributed_bytes = 0;
  std::uint64_t distributed_messages = 0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

void BM_Centralized(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-3;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  for (auto _ : state) {
    Row row;
    row.crawler = centralized_crawler_traffic(exp.graph());
    const auto outcome = exp.run_distributed();
    row.distributed_messages = outcome.messages;
    row.distributed_bytes = outcome.messages * 24;
    store().put(size_label(size), row);
    state.counters["crawler_naive_MB"] =
        static_cast<double>(row.crawler.naive_fetch_bytes) / 1e6;
    state.counters["distributed_MB"] =
        static_cast<double>(row.distributed_bytes) / 1e6;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    benchmark::RegisterBenchmark("ablation/centralized", BM_Centralized)
        ->Args({static_cast<long>(size)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: centralized crawler vs distributed computation traffic");
  TextTable table({"Graph size", "naive crawl (MB)", "link upload (MB)",
                   "rank redistribution (MB)", "distributed updates (MB)",
                   "distributed msgs (M)"});
  for (const auto size : experiment_graph_sizes()) {
    const auto* r = store().find(size_label(size));
    if (r == nullptr) continue;
    table.add_row(
        {size_label(size),
         format_fixed(static_cast<double>(r->crawler.naive_fetch_bytes) / 1e6,
                      1),
         format_fixed(static_cast<double>(r->crawler.link_upload_bytes) / 1e6,
                      2),
         format_fixed(
             static_cast<double>(r->crawler.rank_redistribution_bytes) / 1e6,
             2),
         format_fixed(static_cast<double>(r->distributed_bytes) / 1e6, 2),
         format_fixed(static_cast<double>(r->distributed_messages) / 1e6,
                      2)});
  }
  benchutil::emit(table, "ablation_centralized_1");
  std::cout << "\nOne-shot comparison only: the distributed scheme "
               "additionally absorbs inserts/deletes incrementally, while "
               "a crawler pays the full bill on every recomputation "
               "(weekly on the 2003-era web, per the paper).\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
