// Table 4: path length and node coverage of document-insert update
// cascades, averaged over 1000 random documents per (size, threshold).
//
// Paper's protocol (§4.7): pick a random node, set its pagerank to the
// initial value (1.0), propagate increments to its out-links; each
// receiver adds the increment and forwards d*delta/outdeg while the
// change is significant. Path length is the longest forwarding chain;
// node coverage is the number of distinct documents an update reaches
// (an upper bound on insert-generated messages).
//
// Paper's result shape: path length ~2-24 growing with log(1/epsilon),
// nearly size-independent; coverage grows ~linearly in 1/epsilon and
// saturates at graph size for small graphs / tiny thresholds.

#include "bench_util.hpp"

#include "common/rng.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/incremental.hpp"

#include <map>
#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  double avg_path = 0.0;
  double avg_coverage = 0.0;
  double avg_messages = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

std::string key_of(std::uint64_t size, double eps) {
  return size_label(size) + "/" + benchutil::threshold_label(eps);
}

constexpr std::uint32_t kProbes = 1000;  // the paper's sample size

void BM_InsertProbes(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double eps = benchutil::kTable4Thresholds[
      static_cast<std::size_t>(state.range(1))];
  const auto graph = cached_paper_graph(size, experiment_seed());
  // Converged base ranks; the centralized solver is the cheap route to
  // the same fixed point the distributed run reaches. Deliberate
  // cross-iteration cache. dprank-lint: allow(mutable-global)
  static std::map<std::uint64_t, std::vector<double>> rank_cache;
  auto& base_ranks = rank_cache[size];
  if (base_ranks.empty()) {
    base_ranks = centralized_pagerank(*graph, 0.85, 1e-12).ranks;
  }

  PagerankOptions opts;
  opts.epsilon = eps;
  for (auto _ : state) {
    std::vector<double> ranks = base_ranks;
    IncrementalPagerank engine(*graph, ranks, opts);
    Rng rng(experiment_seed() ^ 0x7AB1E4ULL);
    Row row;
    for (std::uint32_t i = 0; i < kProbes; ++i) {
      const auto node =
          static_cast<NodeId>(rng.bounded(graph->num_nodes()));
      const auto stats = engine.probe_insert(node);
      row.avg_path += stats.path_length;
      row.avg_coverage += static_cast<double>(stats.nodes_covered);
      row.avg_messages += static_cast<double>(stats.updates_delivered);
    }
    row.avg_path /= kProbes;
    row.avg_coverage /= kProbes;
    row.avg_messages /= kProbes;
    store().put(key_of(size, eps), row);
    state.counters["avg_path_length"] = row.avg_path;
    state.counters["avg_node_coverage"] = row.avg_coverage;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (std::size_t t = 0; t < benchutil::kTable4Thresholds.size(); ++t) {
      benchmark::RegisterBenchmark("table4/insert_probes", BM_InsertProbes)
          ->Args({static_cast<long>(size), static_cast<long>(t)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Table 4: insert propagation, 1000 random documents per cell");
  const auto sizes = experiment_graph_sizes();

  std::cout << "Path length:\n";
  std::vector<std::string> header{"Threshold"};
  for (const auto size : sizes) header.push_back(size_label(size));
  {
    TextTable table(header);
    for (const double eps : benchutil::kTable4Thresholds) {
      std::vector<std::string> cells{benchutil::threshold_label(eps)};
      for (const auto size : sizes) {
        const auto* r = store().find(key_of(size, eps));
        cells.push_back(r == nullptr ? "-" : format_fixed(r->avg_path, 1));
      }
      table.add_row(std::move(cells));
    }
    benchutil::emit(table, "table4_1");
  }

  std::cout << "\nNode coverage:\n";
  {
    TextTable table(header);
    for (const double eps : benchutil::kTable4Thresholds) {
      std::vector<std::string> cells{benchutil::threshold_label(eps)};
      for (const auto size : sizes) {
        const auto* r = store().find(key_of(size, eps));
        cells.push_back(r == nullptr ? "-"
                                     : format_fixed(r->avg_coverage, 0));
      }
      table.add_row(std::move(cells));
    }
    benchutil::emit(table, "table4_2");
  }

  std::cout << "\nUpdate messages per insert (upper-bounded by coverage "
               "in the paper's accounting):\n";
  {
    TextTable table(header);
    for (const double eps : benchutil::kTable4Thresholds) {
      std::vector<std::string> cells{benchutil::threshold_label(eps)};
      for (const auto size : sizes) {
        const auto* r = store().find(key_of(size, eps));
        cells.push_back(r == nullptr ? "-"
                                     : format_fixed(r->avg_messages, 0));
      }
      table.add_row(std::move(cells));
    }
    benchutil::emit(table, "table4_3");
  }
  std::cout << "\nPaper: path length 2.0-24.3 (growing ~3 hops per decade "
               "of epsilon); coverage 14 -> ~10k-327k as epsilon drops to "
               "1e-5, saturating at graph size on small graphs.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
