// Cross-engine bench matrix (extension; ROADMAP item 2).
//
// Runs every registered engine through the shared
// PagerankEngineInterface over graph size × seed × availability and
// reports the trade-off triangle head to head:
//
//   * traffic — cross-peer messages and bytes (the §4.6.1 cost);
//   * rounds  — passes to convergence;
//   * quality — L1 error, top-100 overlap and sampled Kendall tau
//     against the centralized oracle.
//
// The matrix doubles as an acceptance gate (CI runs it in the
// engine-matrix job): every case must converge, same-seed double runs
// must be bit-identical, and every clean run must sit within the
// engine's declared quality bound (traits().quality_bound). A violation
// exits non-zero so the job goes red. Results land in
// BENCH_engine_matrix.json (committed baseline under bench/baselines/,
// compared by scripts/bench_compare.py).

#include "bench_util.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engines/registry.hpp"
#include "graph/generator.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

struct MatrixCase {
  std::string engine;
  std::uint64_t docs = 2'000;
  PeerId peers = 40;
  std::uint64_t seed = 42;
  double availability = 1.0;
  bool determinism_check = false;  // run twice, compare digests
};

struct Row {
  bool converged = false;
  std::uint64_t passes = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t local_updates = 0;
  double l1 = 0.0;
  double top100 = 0.0;
  double tau = 0.0;
  double mass_ratio = 1.0;
  double quality_bound = 0.0;
  bool digest_stable = true;
  double wall_seconds = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

const std::vector<MatrixCase>& cases() {
  static const std::vector<MatrixCase> cs = [] {
    std::vector<MatrixCase> v;
    std::vector<std::pair<std::uint64_t, PeerId>> sizes{{2'000, 40}};
    if (full_scale_requested()) sizes.push_back({10'000, 500});
    for (const std::string& engine : registered_engines()) {
      for (const auto& [docs, peers] : sizes) {
        for (const std::uint64_t seed : {42ULL, 7ULL}) {
          // Clean run; the seed-42 one doubles as the determinism gate.
          v.push_back(MatrixCase{engine, docs, peers, seed, 1.0,
                                 seed == 42});
        }
        if (engine_traits(engine).supports_churn) {
          v.push_back(MatrixCase{engine, docs, peers, 42, 0.85, false});
        }
      }
    }
    return v;
  }();
  return cs;
}

std::string case_key(const MatrixCase& c) {
  return c.engine + "/n" + std::to_string(c.docs) + "/s" +
         std::to_string(c.seed) + "/a" +
         std::to_string(static_cast<int>(c.availability * 100));
}

struct GraphBundle {
  Digraph g;
  Placement placement;
  std::vector<double> oracle;
};

/// One graph + placement + centralized solve per (docs, seed), shared by
/// every engine so the comparison is apples to apples.
const GraphBundle& bundle_for(std::uint64_t docs, PeerId peers,
                              std::uint64_t seed) {
  // Graph + oracle cache shared across benchmark bodies; lives for the
  // whole process like the result store. dprank-lint: allow(mutable-global)
  static std::map<std::string, std::unique_ptr<GraphBundle>> cache;
  const std::string key =
      std::to_string(docs) + "/" + std::to_string(seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto b = std::make_unique<GraphBundle>(GraphBundle{
        paper_graph(static_cast<NodeId>(docs), seed),
        Placement::random(docs, peers, seed),
        {}});
    b->oracle = centralized_pagerank(b->g).ranks;
    it = cache.emplace(key, std::move(b)).first;
  }
  return *it->second;
}

struct RunOutput {
  DistributedRunResult result;
  std::uint64_t rank_digest = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t local_updates = 0;
  std::vector<double> ranks;
};

RunOutput run_engine(const MatrixCase& c, const GraphBundle& b,
                     bool with_metrics) {
  EngineOptions opt;
  opt.pagerank.epsilon = 1e-3;
  opt.pagerank.threads = 1;  // the determinism gate is asserted at 1
  opt.seed = c.seed;
  const auto engine = make_engine(c.engine, b.g, b.placement, opt);
  engine->enable_mass_audit(1e-9);
  if (with_metrics) engine->attach_metrics(obs::default_registry());
  RunOutput out;
  if (c.availability < 1.0) {
    ChurnSchedule churn(c.peers, c.availability, c.seed);
    out.result = engine->run(&churn);
  } else {
    out.result = engine->run();
  }
  out.rank_digest = fnv1a_rank_digest(engine->ranks());
  out.messages = engine->traffic().messages();
  out.bytes = engine->traffic().bytes();
  out.local_updates = engine->traffic().local_updates();
  out.ranks = engine->ranks();
  return out;
}

void BM_EngineMatrix(benchmark::State& state) {
  const MatrixCase& c = cases()[static_cast<std::size_t>(state.range(0))];
  const GraphBundle& b = bundle_for(c.docs, c.peers, c.seed);

  for (auto _ : state) {
    benchutil::WallTimer timer;
    const RunOutput first = run_engine(c, b, /*with_metrics=*/true);
    Row row;
    row.wall_seconds = timer.seconds();
    row.converged = first.result.converged;
    row.passes = first.result.passes;
    row.messages = first.messages;
    row.bytes = first.bytes;
    row.local_updates = first.local_updates;
    row.mass_ratio = first.result.mass_ratio;
    row.l1 = l1_rank_error(first.ranks, b.oracle);
    row.top100 = top_k_overlap(first.ranks, b.oracle, 100);
    row.tau = kendall_tau_sampled(first.ranks, b.oracle);
    row.quality_bound = engine_traits(c.engine).quality_bound;
    if (c.determinism_check) {
      const RunOutput again = run_engine(c, b, /*with_metrics=*/false);
      row.digest_stable = again.rank_digest == first.rank_digest &&
                          again.result.passes == first.result.passes &&
                          again.messages == first.messages;
    }
    store().put(case_key(c), row);
    state.counters["passes"] = static_cast<double>(row.passes);
    state.counters["messages"] = static_cast<double>(row.messages);
    state.counters["l1_error"] = row.l1;
  }
}

void register_benchmarks() {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    benchmark::RegisterBenchmark(
        ("engine_matrix/" + case_key(cases()[i])).c_str(), BM_EngineMatrix)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  benchutil::print_banner(
      "Engine matrix: messages / passes / quality per engine");
  TextTable table({"Case", "conv", "passes", "messages", "local", "L1 err",
                   "top-100", "tau", "mass", "stable"});
  for (const MatrixCase& c : cases()) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    table.add_row({case_key(c), r->converged ? "yes" : "NO",
                   std::to_string(r->passes), format_count(r->messages),
                   format_count(r->local_updates), format_fixed(r->l1, 5),
                   format_fixed(r->top100, 2), format_fixed(r->tau, 3),
                   format_fixed(r->mass_ratio, 6),
                   r->digest_stable ? "yes" : "NO"});
  }
  benchutil::emit(table, "engine_matrix");
  std::cout << "\nThree algorithms, one substrate: fifo chaotic iteration "
               "(reference), randomized gossip (fewer messages, more "
               "rounds, same ε fixed point) and random-walk estimation "
               "(message-heavy at this scale, statistical error bounded "
               "by 1/sqrt(walks per node) — but each message is an "
               "independent token, so precision is tunable per query "
               "without global synchronization).\n";
}

void write_json() {
  double wall = 0.0;
  std::map<std::string, double> extra;
  std::size_t converged = 0;
  std::size_t rows = 0;
  bool all_stable = true;
  for (const MatrixCase& c : cases()) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    ++rows;
    wall += r->wall_seconds;
    if (r->converged) ++converged;
    all_stable = all_stable && r->digest_stable;
    const std::string k = case_key(c);
    extra[k + "/messages"] = static_cast<double>(r->messages);
    extra[k + "/passes"] = static_cast<double>(r->passes);
    extra[k + "/l1_error"] = r->l1;
    extra[k + "/top100_overlap"] = r->top100;
    extra[k + "/kendall_tau"] = r->tau;
  }
  extra["cases"] = static_cast<double>(rows);
  extra["converged_cases"] = static_cast<double>(converged);
  extra["digest_stable"] = all_stable ? 1.0 : 0.0;
  auto config = benchutil::standard_config();
  config["engines"] =
      std::to_string(registered_engines().size());
  benchutil::write_bench_json("engine_matrix", wall, config, extra);
}

// Acceptance gate for the CI engine-matrix job: convergence,
// determinism and declared quality on every case that ran.
int check_acceptance() {
  int failures = 0;
  for (const MatrixCase& c : cases()) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;  // filtered out on the command line
    if (!r->converged) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: did not converge\n";
      ++failures;
    }
    if (!r->digest_stable) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: same-seed rerun diverged\n";
      ++failures;
    }
    if (std::abs(r->mass_ratio - 1.0) > 1e-9) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: mass_ratio = " << r->mass_ratio << "\n";
      ++failures;
    }
    // The declared bound covers mean relative error on clean runs; L1
    // error is mass-weighted and strictly tighter for these engines.
    if (c.availability == 1.0 && r->l1 > r->quality_bound) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: L1 error " << r->l1 << " exceeds declared bound "
                << r->quality_bound << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dprank::print_table();
  dprank::write_json();
  return dprank::check_acceptance();
}
