// Ablation: chaotic (asynchronous, per-document gated) iteration vs a
// plain synchronous Jacobi scheme where every document recomputes and
// re-sends on every pass until global convergence.
//
// The paper (§7) cites Chen & Zhang's finding that asynchronous
// iteration is more efficient than synchronous on parallel hardware;
// here the win shows up as message traffic: the epsilon-gating stops
// converged documents from chattering, while the synchronous scheme pays
// the full cross-peer edge count every pass.

#include "bench_util.hpp"

#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  std::uint64_t async_messages = 0;
  std::uint64_t async_passes = 0;
  double async_max_err = 0.0;
  std::uint64_t sync_messages = 0;
  std::uint64_t sync_passes = 0;
  double sync_max_err = 0.0;
  std::uint64_t accel_sweeps = 0;  // Kamvar-style extrapolated solver
  std::uint64_t plain_sweeps = 0;  // plain power iteration, same tol
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

std::string key_of(std::uint64_t size, double eps) {
  return size_label(size) + "/" + benchutil::threshold_label(eps);
}

void BM_AsyncVsSync(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double eps = state.range(1) == 0 ? 1e-3 : 1e-5;
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = eps;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& graph = exp.graph();
  const auto& placement = exp.placement();
  const auto& ref = exp.reference_ranks();

  // Cross-peer edge count: the synchronous scheme's per-pass bill.
  std::uint64_t cross_edges = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const PeerId pu = placement.peer_of(u);
    for (const NodeId v : graph.out_neighbors(u)) {
      if (placement.peer_of(v) != pu) ++cross_edges;
    }
  }

  for (auto _ : state) {
    Row row;
    {
      const auto outcome = exp.run_distributed();
      row.async_messages = outcome.messages;
      row.async_passes = outcome.run.passes;
      row.async_max_err = summarize_quality(outcome.ranks, ref).max;
    }
    {
      // Synchronous scheme: full Jacobi sweeps until the global max
      // relative change drops below epsilon; every pass re-sends every
      // cross-peer contribution.
      std::vector<double> ranks(graph.num_nodes(), 1.0);
      std::vector<double> next(graph.num_nodes());
      std::uint64_t passes = 0;
      double worst = 1.0;
      while (worst >= eps && passes < 100'000) {
        pagerank_sweep(graph, 0.85, ranks, next);
        worst = 0.0;
        for (NodeId v = 0; v < graph.num_nodes(); ++v) {
          worst = std::max(worst, relative_change(ranks[v], next[v]));
        }
        ranks.swap(next);
        ++passes;
      }
      row.sync_messages = cross_edges * passes;
      row.sync_passes = passes;
      row.sync_max_err = summarize_quality(ranks, ref).max;
    }
    {
      // §7's other comparison point: extrapolation-accelerated
      // centralized iteration at the same tolerance.
      row.plain_sweeps =
          centralized_pagerank(graph, 0.85, eps).iterations;
      row.accel_sweeps =
          centralized_pagerank_extrapolated(graph, 0.85, eps).iterations;
    }
    store().put(key_of(size, eps), row);
    state.counters["async_messages"] =
        static_cast<double>(row.async_messages);
    state.counters["sync_messages"] = static_cast<double>(row.sync_messages);
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (const long t : {0L, 1L}) {
      benchmark::RegisterBenchmark("ablation/async_vs_sync", BM_AsyncVsSync)
          ->Args({static_cast<long>(size), t})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: chaotic (gated) vs synchronous iteration message bill");
  TextTable table({"Config", "async msgs(M)", "async passes", "async max err",
                   "sync msgs(M)", "sync passes", "sync max err", "savings"});
  for (const auto size : experiment_graph_sizes()) {
    for (const double eps : {1e-3, 1e-5}) {
      const auto* r = store().find(key_of(size, eps));
      if (r == nullptr) continue;
      table.add_row(
          {size_label(size) + " eps=" + benchutil::threshold_label(eps),
           format_fixed(static_cast<double>(r->async_messages) / 1e6, 2),
           std::to_string(r->async_passes), format_sig(r->async_max_err, 2),
           format_fixed(static_cast<double>(r->sync_messages) / 1e6, 2),
           std::to_string(r->sync_passes), format_sig(r->sync_max_err, 2),
           format_fixed(static_cast<double>(r->sync_messages) /
                            static_cast<double>(std::max<std::uint64_t>(
                                1, r->async_messages)),
                        2) +
               "x"});
    }
  }
  benchutil::emit(table, "ablation_async_vs_sync_1");

  std::cout << "\nCentralized sweep counts (the §7 acceleration "
               "comparison):\n";
  TextTable sweeps({"Config", "plain power-iter", "Kamvar-extrapolated"});
  for (const auto size : experiment_graph_sizes()) {
    for (const double eps : {1e-3, 1e-5}) {
      const auto* r = store().find(key_of(size, eps));
      if (r == nullptr) continue;
      sweeps.add_row(
          {size_label(size) + " eps=" + benchutil::threshold_label(eps),
           std::to_string(r->plain_sweeps),
           std::to_string(r->accel_sweeps)});
    }
  }
  benchutil::emit(sweeps, "ablation_async_vs_sync_2");

  std::cout << "\nThe per-document epsilon gate is what makes the "
               "distributed scheme affordable: converged documents go "
               "quiet instead of re-broadcasting every pass. "
               "Extrapolation barely helps on web-like spectra — the "
               "paper's §7 conjecture that chaotic iteration beats "
               "acceleration methods, reproduced.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
