// Ablation: document-to-peer mapping (the paper's §6 future work #1 —
// "whether the link structure in documents can be used for mapping
// documents to peers, and whether this will alleviate network
// overheads in the computation of the pagerank").
//
// Compares the paper's random placement against consistent-hash (DHT)
// placement and link-aware BFS clustering, on cross-peer edge fraction,
// update messages to convergence, and free local updates.

#include "bench_util.hpp"

#include "common/env.hpp"
#include "dht/ring.hpp"
#include "pagerank/distributed_engine.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  double cross_fraction = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t local_updates = 0;
  std::uint64_t passes = 0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

const std::vector<std::string> kModes{"random", "dht-hash", "link-cluster"};

void BM_Placement(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const std::string mode = kModes[static_cast<std::size_t>(state.range(1))];
  constexpr PeerId kPeers = 500;
  const auto graph = cached_paper_graph(size, experiment_seed());

  const Placement placement = [&] {
    if (mode == "random") {
      return Placement::random(size, kPeers, experiment_seed());
    }
    if (mode == "dht-hash") {
      const ChordRing ring(kPeers);
      return Placement::by_dht(size, ring);
    }
    return Placement::by_link_clustering(*graph, kPeers, experiment_seed());
  }();

  PagerankOptions opts;
  opts.epsilon = 1e-3;
  for (auto _ : state) {
    DistributedPagerank engine(*graph, placement, opts);
    const auto run = engine.run();
    Row row;
    row.cross_fraction = placement.cross_peer_edge_fraction(*graph);
    row.messages = engine.traffic().messages();
    row.local_updates = engine.traffic().local_updates();
    row.passes = run.passes;
    store().put(size_label(size) + "/" + mode, row);
    state.counters["messages"] = static_cast<double>(row.messages);
    state.counters["cross_edge_frac"] = row.cross_fraction;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (std::size_t m = 0; m < kModes.size(); ++m) {
      benchmark::RegisterBenchmark("ablation/placement", BM_Placement)
          ->Args({static_cast<long>(size), static_cast<long>(m)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: placement policy (500 peers, epsilon = 1e-3)");
  TextTable table({"Config", "cross-peer edges", "network msgs",
                   "free local updates", "passes", "msgs vs random"});
  for (const auto size : experiment_graph_sizes()) {
    const auto* random_row = store().find(size_label(size) + "/random");
    for (const auto& mode : kModes) {
      const auto* r = store().find(size_label(size) + "/" + mode);
      if (r == nullptr) continue;
      const double ratio =
          random_row == nullptr || random_row->messages == 0
              ? 0.0
              : static_cast<double>(r->messages) /
                    static_cast<double>(random_row->messages);
      table.add_row({size_label(size) + " " + mode,
                     format_fixed(r->cross_fraction * 100, 1) + "%",
                     format_count(r->messages),
                     format_count(r->local_updates),
                     std::to_string(r->passes),
                     format_fixed(ratio, 2) + "x"});
    }
  }
  benchutil::emit(table, "ablation_placement_1");
  std::cout << "\nLink-aware clustering converts cross-peer updates into "
               "free same-peer ones, answering the paper's future-work "
               "question in the affirmative. Random and DHT-hash "
               "placement are statistically identical (both ignore "
               "structure).\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
