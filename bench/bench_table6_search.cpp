// Table 6: network traffic reduction from incremental search with
// pagerank, on the paper's corpus scale (~11k documents, 1880 terms,
// 50 peers, twenty 2-word and twenty 3-word queries over the top-100
// most frequent terms).
//
// Paper's result shape: forwarding the top 10% of hits cuts traffic
// ~12x; top 20% cuts ~6.5x; returned hit counts drop from ~1600/840
// (baseline 2/3-term) to tens.
//
// Extension rows: the Bloom-filter coupling §2.4.3 suggests, standalone
// and composed with top-10% forwarding.

#include "bench_util.hpp"

#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "search/incremental_search.hpp"
#include "search/query_gen.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  double traffic_reduction = 0.0;  // baseline ids / policy ids
  double avg_hits = 0.0;
  double avg_ids_transferred = 0.0;
  double byte_reduction = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

struct Workbench {
  Corpus corpus;
  ChordRing ring;
  DistributedIndex index;
  std::vector<std::vector<TermId>> queries2;
  std::vector<std::vector<TermId>> queries3;
};

Workbench& workbench() {
  // One corpus + index shared by every search benchmark in the binary;
  // rebuilding per run would dominate the timings. Read-only after
  // construction. dprank-lint: allow(mutable-global)
  static Workbench wb = [] {
    CorpusParams cp;  // paper scale: 11k docs, 1880 terms
    cp.seed = experiment_seed();
    Corpus corpus = Corpus::synthesize(cp);

    // Pageranks from the distributed engine over an 11k-node link graph
    // on 50 peers (the paper's search testbed).
    ExperimentConfig cfg;
    cfg.num_docs = cp.num_docs;
    cfg.num_peers = 50;
    cfg.epsilon = 1e-3;
    cfg.seed = experiment_seed();
    const StandardExperiment exp(cfg);
    const auto outcome = exp.run_distributed();

    ChordRing ring(50);
    DistributedIndex index(corpus, ring);
    std::vector<PeerId> owner(cp.num_docs);
    for (NodeId d = 0; d < cp.num_docs; ++d) {
      owner[d] = exp.placement().peer_of(d);
    }
    index.publish_ranks(outcome.ranks, owner);

    auto q2 = generate_queries(corpus, {.term_pool = 100,
                                        .num_queries = 20,
                                        .terms_per_query = 2,
                                        .seed = experiment_seed()});
    auto q3 = generate_queries(corpus, {.term_pool = 100,
                                        .num_queries = 20,
                                        .terms_per_query = 3,
                                        .seed = experiment_seed()});
    return Workbench{std::move(corpus), std::move(ring), std::move(index),
                     std::move(q2), std::move(q3)};
  }();
  return wb;
}

SearchPolicy policy_by_name(const std::string& name) {
  SearchPolicy p;
  if (name == "baseline") {
    p = kForwardEverything;
  } else if (name == "top10") {
    p.forward_fraction = 0.10;
  } else if (name == "top20") {
    p.forward_fraction = 0.20;
  } else if (name == "bloom") {
    p = kForwardEverything;
    p.bloom_prefilter = true;
  } else {  // "top10+bloom"
    p.forward_fraction = 0.10;
    p.bloom_prefilter = true;
  }
  return p;
}

const std::vector<std::string> kPolicies{"baseline", "top10", "top20",
                                         "bloom", "top10+bloom"};

void BM_Search(benchmark::State& state) {
  auto& wb = workbench();
  const std::string policy_name = kPolicies[
      static_cast<std::size_t>(state.range(0))];
  const int terms = static_cast<int>(state.range(1));
  const auto& queries = terms == 2 ? wb.queries2 : wb.queries3;
  const SearchPolicy policy = policy_by_name(policy_name);
  const SearchPolicy baseline = kForwardEverything;
  SearchEngine engine(wb.index);

  for (auto _ : state) {
    double base_ids = 0;
    double base_bytes = 0;
    double ids = 0;
    double bytes = 0;
    double hits = 0;
    for (const auto& q : queries) {
      const auto base = engine.run_query(q, baseline);
      const auto out = engine.run_query(q, policy);
      base_ids += static_cast<double>(base.ids_transferred);
      base_bytes += static_cast<double>(base.wire_bytes);
      ids += static_cast<double>(out.ids_transferred);
      bytes += static_cast<double>(out.wire_bytes);
      hits += static_cast<double>(out.hits.size());
    }
    Row row;
    row.traffic_reduction = ids > 0 ? base_ids / ids : 0.0;
    row.avg_hits = hits / static_cast<double>(queries.size());
    row.avg_ids_transferred = ids / static_cast<double>(queries.size());
    row.byte_reduction = bytes > 0 ? base_bytes / bytes : 0.0;
    store().put(policy_name + "/" + std::to_string(terms), row);
    state.counters["traffic_reduction"] = row.traffic_reduction;
    state.counters["avg_hits"] = row.avg_hits;
  }
}

void register_benchmarks() {
  for (std::size_t p = 0; p < kPolicies.size(); ++p) {
    for (const long terms : {2L, 3L}) {
      benchmark::RegisterBenchmark("table6/search", BM_Search)
          ->Args({static_cast<long>(p), terms})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Table 6: incremental search traffic (20 queries each)");
  TextTable table({"Policy", "2-term reduction", "3-term reduction",
                   "2-term avg hits", "3-term avg hits",
                   "2-term avg IDs moved", "3-term avg IDs moved"});
  for (const auto& policy : kPolicies) {
    const auto* r2 = store().find(policy + "/2");
    const auto* r3 = store().find(policy + "/3");
    if (r2 == nullptr || r3 == nullptr) continue;
    table.add_row({policy,
                   policy == "baseline" ? "1.0 (ref)"
                                        : format_fixed(r2->traffic_reduction, 1),
                   policy == "baseline" ? "1.0 (ref)"
                                        : format_fixed(r3->traffic_reduction, 1),
                   format_fixed(r2->avg_hits, 1), format_fixed(r3->avg_hits, 1),
                   format_fixed(r2->avg_ids_transferred, 1),
                   format_fixed(r3->avg_ids_transferred, 1)});
  }
  benchutil::emit(table, "table6_1");

  std::cout << "\nByte-level reduction (Bloom filters move bits, not IDs):\n";
  TextTable bytes({"Policy", "2-term byte reduction", "3-term byte reduction"});
  for (const auto& policy : kPolicies) {
    const auto* r2 = store().find(policy + "/2");
    const auto* r3 = store().find(policy + "/3");
    if (r2 == nullptr || r3 == nullptr || policy == "baseline") continue;
    bytes.add_row({policy, format_fixed(r2->byte_reduction, 1),
                   format_fixed(r3->byte_reduction, 1)});
  }
  benchutil::emit(bytes, "table6_2");

  std::cout << "\nPaper (Table 6): top-10% forwarded -> 12.2x / 11.9x "
               "reduction, 55.3 / 41.7 avg hits; top-20% -> 6.5x / 6.9x, "
               "66.8 / 27.7 hits; baseline returned 1603.9 / 835.6 hits.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  const dprank::benchutil::WallTimer wall;
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  dprank::benchutil::write_bench_json("table6", wall.seconds(),
                                      dprank::benchutil::standard_config());
  benchmark::Shutdown();
  return 0;
}
