#pragma once

// Shared plumbing for the table-reproduction bench binaries.
//
// Each bench is a google-benchmark executable whose benchmark bodies run
// one full experiment (Iterations(1)); the measured metrics are stashed
// in a process-global results store and, after RunSpecifiedBenchmarks,
// main() prints the corresponding paper table on stdout.
//
// Scale control: default graph sizes are {10k, 100k}; DPRANK_FULL=1 adds
// the paper's 500k and 5000k (see common/env.hpp). DPRANK_CACHE_DIR, if
// set, persists generated graphs across binaries.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace dprank::benchutil {

/// The paper's threshold sweeps.
inline const std::vector<double> kTable23Thresholds{
    0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6};
inline const std::vector<double> kTable4Thresholds{
    0.2, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

inline std::string threshold_label(double eps) {
  if (eps == 0.2) return "0.2";
  if (eps >= 1e-1) return "1e-1";
  if (eps >= 1e-2) return "1e-2";
  if (eps >= 1e-3) return "1e-3";
  if (eps >= 1e-4) return "1e-4";
  if (eps >= 1e-5) return "1e-5";
  return "1e-6";
}

/// Keyed results store: benches fill it during benchmark runs and print
/// from it afterwards.
template <typename Value>
class ResultStore {
 public:
  void put(const std::string& key, Value v) { results_[key] = std::move(v); }
  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = results_.find(key);
    return it == results_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<std::string, Value>& all() const {
    return results_;
  }

 private:
  std::map<std::string, Value> results_;
};

inline void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  if (!full_scale_requested()) {
    std::cout << "(quick mode: sizes 10k/100k; set DPRANK_FULL=1 for the "
                 "paper's full 10k/100k/500k/5000k sweep)\n";
  }
  std::cout << "\n";
}

/// Print the table; when DPRANK_CSV_DIR is set, also persist it as
/// <dir>/<name>.csv for plotting pipelines.
inline void emit(const TextTable& table, const std::string& name) {
  table.print(std::cout);
  const char* dir = std::getenv("DPRANK_CSV_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::filesystem::create_directories(dir);
    const auto path = std::filesystem::path(dir) / (name + ".csv");
    table.write_csv(path);
    std::cout << "[csv written to " << path.string() << "]\n";
  }
}

/// Monotonic wall-clock stopwatch for the BENCH_*.json record.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The scale/seed knobs every bench shares, for the json config block.
inline std::map<std::string, std::string> standard_config() {
  std::string sizes;
  for (const auto s : experiment_graph_sizes()) {
    if (!sizes.empty()) sizes += ",";
    sizes += size_label(s);
  }
  return {{"sizes", sizes},
          {"full_scale", full_scale_requested() ? "1" : "0"},
          {"seed", std::to_string(experiment_seed())},
          {"threads", std::to_string(experiment_threads())}};
}

/// Machine-readable bench record: BENCH_<name>.json holding the bench
/// config, total wall time, a snapshot of the process-wide metrics
/// registry (everything the run's engines flushed), and optional extra
/// measurements (e.g. bench_table1's instrumentation-overhead probe).
/// Written into DPRANK_BENCH_DIR (unset = current directory). The notice
/// goes to stderr so table stdout stays byte-stable for golden diffs.
inline void write_bench_json(const std::string& name, double wall_seconds,
                             const std::map<std::string, std::string>& config,
                             const std::map<std::string, double>& extra = {}) {
  namespace fs = std::filesystem;
  const char* dir = std::getenv("DPRANK_BENCH_DIR");
  const bool have_dir = dir != nullptr && dir[0] != '\0';
  if (have_dir) fs::create_directories(dir);
  const fs::path path =
      fs::path(have_dir ? dir : ".") / ("BENCH_" + name + ".json");
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench json: cannot open " << path.string() << "\n";
    return;
  }
  os << "{\n  \"bench\": \"" << obs::json_escape(name) << "\",\n"
     << "  \"wall_seconds\": " << obs::format_double(wall_seconds) << ",\n"
     << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config) {
    os << (first ? "" : ",") << "\n    \"" << obs::json_escape(k) << "\": \""
       << obs::json_escape(v) << "\"";
    first = false;
  }
  os << "\n  },\n  \"extra\": {";
  first = true;
  for (const auto& [k, v] : extra) {
    os << (first ? "" : ",") << "\n    \"" << obs::json_escape(k)
       << "\": " << obs::format_double(v);
    first = false;
  }
  os << "\n  },\n  \"metrics\": ";
  obs::write_metrics_json(obs::default_registry().snapshot(), os);
  os << "}\n";
  std::cerr << "[bench json written to " << path.string() << "]\n";
}

}  // namespace dprank::benchutil
