// Chaos soak: dynamic membership under convergence pressure (extension).
//
// The paper's availability experiments (§4.3) model graceful churn over a
// fixed population. This soak drives the open-world case: a seeded
// schedule of ~40 join / leave / crash events strikes while the chaotic
// iteration converges, with lossy acked delivery underneath and the
// invariant contracts swept every few passes. The report answers the
// robustness questions directly:
//
//   * does the run still converge, and how much longer does it take?
//   * is every emitted contribution accounted for (mass_ratio == 1.0)?
//   * how long does the failure detector take to declare each crash?
//   * how much state moves (handoffs), and how many sends chased a
//     crashed-but-undeclared owner (stale-owner queries)?
//   * is the whole history bit-reproducible from the seed?
//
// The same-seed double run asserts the determinism contract the CI
// chaos-soak job relies on: identical config + seed => identical rank
// digest, event for event.

#include "bench_util.hpp"

#include "fault/campaign.hpp"
#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  ChaosCampaignReport rep;
  double wall_seconds = 0.0;
  bool digest_stable = true;  // same-seed double run matched
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

struct SoakCase {
  std::uint64_t seed = 42;
  std::uint32_t replicas = 1;
  bool determinism_check = false;  // run twice, compare digests
};

const std::vector<SoakCase> kCases{
    {.seed = 42, .replicas = 1, .determinism_check = true},
    {.seed = 7, .replicas = 1, .determinism_check = false},
    {.seed = 42, .replicas = 0, .determinism_check = false},
};

std::string case_key(const SoakCase& c) {
  return "seed=" + std::to_string(c.seed) +
         "/replicas=" + std::to_string(c.replicas);
}

ChaosCampaignConfig soak_config(const SoakCase& c, std::uint64_t num_docs) {
  ChaosCampaignConfig cfg;
  cfg.initial_peers = 64;
  cfg.events = 40;
  cfg.seed = c.seed;
  cfg.replicas = c.replicas;
  cfg.options.epsilon = 1e-3;
  cfg.options.threads = 1;  // the determinism contract is asserted at 1
  cfg.options.validate_every_n_passes = 4;
  (void)num_docs;  // graph size is decided by the caller
  return cfg;
}

std::uint64_t soak_docs() {
  return full_scale_requested() ? 10'000 : 2'000;
}

void BM_ChaosSoak(benchmark::State& state) {
  const SoakCase& c = kCases[static_cast<std::size_t>(state.range(0))];
  const std::uint64_t num_docs = soak_docs();
  const Digraph g = paper_graph(num_docs, experiment_seed());
  const ChaosCampaignConfig cfg = soak_config(c, num_docs);

  for (auto _ : state) {
    benchutil::WallTimer timer;
    Row row;
    row.rep = run_chaos_campaign(g, cfg, &obs::default_registry());
    row.wall_seconds = timer.seconds();
    if (c.determinism_check) {
      const ChaosCampaignReport again = run_chaos_campaign(g, cfg);
      row.digest_stable = again.rank_digest == row.rep.rank_digest &&
                          again.result.passes == row.rep.result.passes;
    }
    store().put(case_key(c), row);
    state.counters["passes"] = static_cast<double>(row.rep.result.passes);
    state.counters["mass_ratio"] = row.rep.result.mass_ratio;
    state.counters["handoff_docs"] =
        static_cast<double>(row.rep.handoff_docs);
  }
}

void register_benchmarks() {
  for (std::size_t i = 0; i < kCases.size(); ++i) {
    benchmark::RegisterBenchmark("chaos/soak", BM_ChaosSoak)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

std::uint64_t latency_percentile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

void print_table() {
  benchutil::print_banner("Chaos soak: join/leave/crash churn mid-convergence");
  TextTable table({"Config", "passes", "mass ratio", "events (j/l/c)",
                   "handoffs", "stale queries", "dropped dead", "gave up",
                   "detect p50/max", "live at end", "stable digest"});
  for (const SoakCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    const auto& rep = r->rep;
    table.add_row(
        {case_key(c), std::to_string(rep.result.passes),
         format_fixed(rep.result.mass_ratio, 6),
         std::to_string(rep.joins) + "/" + std::to_string(rep.leaves) + "/" +
             std::to_string(rep.crashes),
         format_count(rep.handoff_docs), format_count(rep.stale_owner_queries),
         format_count(rep.outbox_dropped_dead), format_count(rep.gave_up),
         std::to_string(latency_percentile(rep.detection_latencies, 0.5)) +
             "/" +
             std::to_string(latency_percentile(rep.detection_latencies, 1.0)),
         std::to_string(rep.final_live_peers),
         r->digest_stable ? "yes" : "NO"});
  }
  benchutil::emit(table, "chaos_soak");
  std::cout << "\nEvery configuration converges with the audited rank mass "
               "at exactly 1.0: replicas restore crashed ranks, the "
               "detector's declared-dead verdict evicts doomed outbox and "
               "channel state into the audit ledger, and the quiescence "
               "repair re-injects whatever leaked. The same seed replays "
               "the identical history bit for bit.\n";
}

void write_json() {
  double wall = 0.0;
  double mass_min = 1.0;
  double passes_total = 0.0;
  double handoffs = 0.0;
  double stale = 0.0;
  double detect_max = 0.0;
  bool stable = true;
  for (const SoakCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    wall += r->wall_seconds;
    mass_min = std::min(mass_min, r->rep.result.mass_ratio);
    passes_total += static_cast<double>(r->rep.result.passes);
    handoffs += static_cast<double>(r->rep.handoff_docs);
    stale += static_cast<double>(r->rep.stale_owner_queries);
    detect_max = std::max(
        detect_max, static_cast<double>(
                        latency_percentile(r->rep.detection_latencies, 1.0)));
    stable = stable && r->digest_stable;
  }
  auto config = benchutil::standard_config();
  config["soak_docs"] = std::to_string(soak_docs());
  config["initial_peers"] = "64";
  config["events"] = "40";
  benchutil::write_bench_json("chaos_soak", wall, config,
                              {{"mass_ratio_min", mass_min},
                               {"passes_total", passes_total},
                               {"handoff_docs", handoffs},
                               {"stale_owner_queries", stale},
                               {"detection_latency_max", detect_max},
                               {"digest_stable", stable ? 1.0 : 0.0}});
}

// The soak doubles as an acceptance gate (CI runs it with contracts
// on): every case must converge with the audited mass exactly
// accounted, and the same-seed double run must replay bit for bit.
// A violation exits non-zero so the chaos-soak job goes red.
int check_acceptance() {
  int failures = 0;
  for (const SoakCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;  // filtered out on the command line
    const auto& rep = r->rep;
    if (!rep.result.converged) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: did not converge\n";
      ++failures;
    }
    if (std::abs(rep.result.mass_ratio - 1.0) > 1e-9) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: mass_ratio = " << rep.result.mass_ratio << "\n";
      ++failures;
    }
    if (!r->digest_stable) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: same-seed rerun diverged\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  dprank::write_json();
  benchmark::Shutdown();
  return dprank::check_acceptance();
}
