// Figure 2: propagation of pagerank increments on document insert.
//
// Reproduces the paper's worked example exactly — G (rank 1.0, three
// out-links) sends 1/3 to each; H (two out-links) forwards 1/6 to K and
// L — and times the cascade machinery on the tiny graph and on a
// web-scale graph as a microbenchmark.

#include "bench_util.hpp"

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/incremental.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

void BM_Figure2Cascade(benchmark::State& state) {
  const Digraph g = figure2_graph();
  PagerankOptions opts;
  opts.damping = 1.0;  // the figure's illustration has no damping
  opts.epsilon = 1e-9;
  std::vector<double> ranks(6, 0.0);
  IncrementalPagerank engine(g, ranks, opts);
  for (auto _ : state) {
    std::fill(ranks.begin(), ranks.end(), 0.0);
    const auto stats = engine.seed_and_propagate(0);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["updates"] = 5;
}

void BM_WebGraphProbe(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double eps = 1e-3;
  const auto graph = cached_paper_graph(size, experiment_seed());
  std::vector<double> ranks = centralized_pagerank(*graph, 0.85, 1e-10).ranks;
  PagerankOptions opts;
  opts.epsilon = eps;
  IncrementalPagerank engine(*graph, ranks, opts);
  Rng rng(7);
  std::uint64_t updates = 0;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    const auto node = static_cast<NodeId>(rng.bounded(graph->num_nodes()));
    const auto stats = engine.probe_insert(node);
    updates += stats.updates_delivered;
    ++probes;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["avg_updates_per_insert"] =
      probes == 0 ? 0.0
                  : static_cast<double>(updates) / static_cast<double>(probes);
}

void print_figure() {
  benchutil::print_banner("Figure 2: increment propagation example");
  const Digraph g = figure2_graph();
  const char* names = "GHIJKL";

  for (const double d : {1.0, 0.85}) {
    PagerankOptions opts;
    opts.damping = d;
    opts.epsilon = 1e-9;
    std::vector<double> ranks(6, 0.0);
    IncrementalPagerank engine(g, ranks, opts);
    const auto stats = engine.seed_and_propagate(0);
    std::cout << "damping d = " << d << " (paper's figure is d = 1):\n";
    TextTable table({"Document", "Increment received"});
    for (NodeId v = 0; v < 6; ++v) {
      table.add_row({std::string(1, names[v]),
                     v == 0 ? "1 (seed)" : format_sig(ranks[v], 4)});
    }
    table.print(std::cout);
    std::cout << "path length " << stats.path_length << ", coverage "
              << stats.nodes_covered << ", updates "
              << stats.updates_delivered << "\n\n";
  }
  std::cout << "Paper: G seeds 1, H/I/J receive 1/3, K/L receive 1/6; the "
               "increment falls below the threshold and propagation "
               "stops.\n";
}

void register_benchmarks() {
  benchmark::RegisterBenchmark("figure2/cascade", BM_Figure2Cascade);
  for (const auto size : experiment_graph_sizes()) {
    benchmark::RegisterBenchmark("figure2/web_graph_probe", BM_WebGraphProbe)
        ->Args({static_cast<long>(size)})
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_figure();
  benchmark::Shutdown();
  return 0;
}
