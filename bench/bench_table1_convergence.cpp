// Table 1: convergence rate of the distributed pagerank algorithm for
// 500 peers, error threshold 1e-3, with 100/75/50% of peers present.
//
// Paper's result shape: ~74-120 passes at full availability, growing
// slowly with graph size (500x nodes -> +60% passes); 50% availability
// costs about a factor of two.
//
// Also reproduces the §4.3 trajectory claims: the fraction of documents
// within 1% of the centralized reference after 10 and 30 passes.

#include "bench_util.hpp"

#include "pagerank/quality.hpp"

#include <map>
#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  std::uint64_t passes = 0;
  bool converged = false;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

struct Trajectory {
  double frac_pass10 = 0.0;
  double frac_pass30 = 0.0;
  std::uint64_t passes = 0;
};

benchutil::ResultStore<Trajectory>& trajectory_store() {
  static benchutil::ResultStore<Trajectory> s;
  return s;
}

std::string key_of(std::uint64_t size, double availability) {
  return size_label(size) + "/" + format_fixed(availability, 2);
}

void BM_Convergence(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double availability = static_cast<double>(state.range(1)) / 100.0;
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-3;
  cfg.availability = availability;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  for (auto _ : state) {
    const auto outcome = exp.run_distributed();
    store().put(key_of(size, availability),
                {outcome.run.passes, outcome.run.converged});
    state.counters["passes"] = static_cast<double>(outcome.run.passes);
    state.counters["messages"] = static_cast<double>(outcome.messages);
  }
}

void BM_Trajectory(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-3;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();
  for (auto _ : state) {
    Trajectory t;
    const auto outcome = exp.run_distributed(
        [&](std::uint64_t pass, const std::vector<double>& ranks) {
          if (pass == 9) {
            t.frac_pass10 =
                summarize_quality(ranks, ref).fraction_within_1pct;
          }
          if (pass == 29) {
            t.frac_pass30 =
                summarize_quality(ranks, ref).fraction_within_1pct;
          }
        });
    t.passes = outcome.run.passes;
    trajectory_store().put(size_label(size), t);
    state.counters["frac_1pct_at_pass10"] = t.frac_pass10;
    state.counters["frac_1pct_at_pass30"] = t.frac_pass30;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (const long avail : {100L, 75L, 50L}) {
      benchmark::RegisterBenchmark("table1/convergence", BM_Convergence)
          ->Args({static_cast<long>(size), avail})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark("table1/trajectory", BM_Trajectory)
        ->Args({static_cast<long>(size)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  benchutil::print_banner(
      "Table 1: passes to convergence (500 peers, epsilon = 1e-3)");
  TextTable table({"Graph size", "100% peers", "75% peers", "50% peers"});
  for (const auto size : experiment_graph_sizes()) {
    std::vector<std::string> row{size_label(size)};
    for (const double avail : {1.0, 0.75, 0.5}) {
      const auto* r = store().find(key_of(size, avail));
      row.push_back(r == nullptr
                        ? "-"
                        : std::to_string(r->passes) +
                              (r->converged ? "" : "*"));
    }
    table.add_row(std::move(row));
  }
  benchutil::emit(table, "table1_1");

  std::cout << "\nSection 4.3 trajectory (fraction of documents within 1% "
               "of R_c):\n";
  TextTable traj({"Graph size", "after 10 passes", "after 30 passes",
                  "total passes"});
  for (const auto size : experiment_graph_sizes()) {
    const auto* t = trajectory_store().find(size_label(size));
    if (t == nullptr) continue;
    traj.add_row({size_label(size), format_fixed(t->frac_pass10 * 100, 1) + "%",
                  format_fixed(t->frac_pass30 * 100, 1) + "%",
                  std::to_string(t->passes)});
  }
  benchutil::emit(traj, "table1_2");
  std::cout << "\nPaper (Table 1): 10k:74/134/166  100k:88/137/196  "
               "500k:118/139/196  5000k:120/141/241 passes.\n";
}

/// Instrumentation-overhead probe for the BENCH json: the same 10k-doc
/// run with the metrics registry attached (the default posture) vs
/// detached, best of 3 each. Tracing stays off — this measures the cost
/// the telemetry subsystem imposes on every ordinary bench run.
std::map<std::string, double> measure_overhead() {
  ExperimentConfig cfg;
  cfg.num_docs = 10'000;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-3;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  (void)exp.run_distributed();  // warm graph/reference caches
  double best_on = 1e300;
  double best_off = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    {
      const benchutil::WallTimer t;
      (void)exp.run_distributed(
          nullptr, StandardExperiment::Telemetry{});
      best_on = std::min(best_on, t.seconds());
    }
    {
      const benchutil::WallTimer t;
      (void)exp.run_distributed(
          nullptr, StandardExperiment::Telemetry{.registry = nullptr});
      best_off = std::min(best_off, t.seconds());
    }
  }
  const double ratio = best_off > 0.0 ? best_on / best_off : 1.0;
  std::cout << "\nInstrumentation overhead (registry on vs off, 10k docs): "
            << format_fixed((ratio - 1.0) * 100.0, 2) << "%\n";
  return {{"registry_on_seconds", best_on},
          {"registry_off_seconds", best_off},
          {"registry_overhead_ratio", ratio}};
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  const dprank::benchutil::WallTimer wall;
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  const auto overhead = dprank::measure_overhead();
  dprank::benchutil::write_bench_json("table1", wall.seconds(),
                                      dprank::benchutil::standard_config(),
                                      overhead);
  benchmark::Shutdown();
  return 0;
}
