// Ablation: document replication / caching of copies (§2.3).
//
// P2P storage systems replicate popular documents to cut retrieval
// latency; the paper notes that pagerank correctness then requires
// update messages to reach *every* copy. This bench quantifies that
// overhead for uniform replication factors and for popularity-biased
// replication (hot documents only), including behaviour under churn
// (replicas on absent peers go stale).

#include "bench_util.hpp"

#include "p2p/replication.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"

#include <optional>
#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  std::uint64_t messages = 0;
  std::uint64_t replica_messages = 0;
  std::uint64_t stale_skips = 0;
  double overhead = 0.0;  // vs no replication
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

const std::vector<std::string> kModes{"none", "uniform-1", "uniform-2",
                                      "hot-10pct-x3"};

void BM_Replication(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const std::string mode = kModes[static_cast<std::size_t>(state.range(1))];
  const bool churned = state.range(2) != 0;
  constexpr PeerId kPeers = 500;
  const auto graph = cached_paper_graph(size, experiment_seed());
  const auto placement = Placement::random(size, kPeers, experiment_seed());

  std::optional<ReplicaRegistry> registry;
  if (mode == "uniform-1") {
    registry = ReplicaRegistry::uniform(placement, 1, experiment_seed());
  } else if (mode == "uniform-2") {
    registry = ReplicaRegistry::uniform(placement, 2, experiment_seed());
  } else if (mode == "hot-10pct-x3") {
    const auto scores =
        centralized_pagerank(*graph, 0.85, 1e-8).ranks;
    registry = ReplicaRegistry::popularity(placement, scores, 0.10, 3,
                                           experiment_seed());
  }

  PagerankOptions opts;
  opts.epsilon = 1e-3;
  for (auto _ : state) {
    DistributedPagerank engine(*graph, placement, opts);
    if (registry) engine.attach_replicas(*registry);
    DistributedRunResult run;
    if (churned) {
      ChurnSchedule churn(kPeers, 0.75, experiment_seed());
      run = engine.run(&churn);
    } else {
      run = engine.run();
    }
    Row row;
    row.messages = engine.traffic().messages();
    row.replica_messages = engine.replica_messages();
    row.stale_skips = engine.replica_stale_skips();
    store().put(size_label(size) + "/" + mode + (churned ? "/churn" : ""),
                row);
    state.counters["messages"] = static_cast<double>(row.messages);
    state.counters["stale"] = static_cast<double>(row.stale_skips);
    (void)run;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;  // replica fan-out at 5M is RAM-heavy
    for (std::size_t m = 0; m < kModes.size(); ++m) {
      for (const long churned : {0L, 1L}) {
        benchmark::RegisterBenchmark("ablation/replication", BM_Replication)
            ->Args({static_cast<long>(size), static_cast<long>(m), churned})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: keeping cached copies rank-correct (500 peers, eps 1e-3)");
  TextTable table({"Config", "messages", "to replicas", "stale skips",
                   "overhead"});
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (const std::string suffix : {"", "/churn"}) {
      const auto* baseline = store().find(size_label(size) + "/none" + suffix);
      for (const auto& mode : kModes) {
        const auto* r =
            store().find(size_label(size) + "/" + mode + suffix);
        if (r == nullptr) continue;
        const double overhead =
            baseline == nullptr || baseline->messages == 0
                ? 0.0
                : static_cast<double>(r->messages) /
                      static_cast<double>(baseline->messages);
        table.add_row({size_label(size) + " " + mode +
                           (suffix.empty() ? "" : " (75% avail)"),
                       format_count(r->messages),
                       format_count(r->replica_messages),
                       format_count(r->stale_skips),
                       format_fixed(overhead, 2) + "x"});
      }
    }
  }
  benchutil::emit(table, "ablation_replication_1");
  std::cout << "\nUniform replication multiplies the update bill by "
               "~(1 + copies). Notably, replicating only the hot 10% of "
               "documents (x3) costs almost as much as uniform x2: "
               "high-pagerank documents have high in-degree, so they "
               "receive the bulk of the update stream — replica placement "
               "by popularity multiplies exactly the busiest updates. "
               "Under churn, stale skips count deliveries to absent "
               "replicas (copies temporarily holding outdated ranks — "
               "§2.3's correctness caveat).\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
