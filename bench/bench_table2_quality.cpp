// Table 2: relative-error distribution of the distributed pagerank
// against the centralized reference, for thresholds 0.2 and 1e-1..1e-6.
//
// Paper's result shape: even epsilon = 0.2 leaves 99.9% of pages within
// a few percent; epsilon = 1e-3 bounds the maximum error near 1%; error
// shrinks roughly linearly with epsilon and the trends are graph-size
// independent.

#include "bench_util.hpp"

#include "pagerank/quality.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

struct Cell {
  QualityReport q;
  double top100_overlap = 0.0;
  double kendall_tau = 0.0;
};

benchutil::ResultStore<Cell>& store() {
  static benchutil::ResultStore<Cell> s;
  return s;
}

std::string key_of(std::uint64_t size, double eps) {
  return size_label(size) + "/" + benchutil::threshold_label(eps);
}

void BM_Quality(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double eps = benchutil::kTable23Thresholds[
      static_cast<std::size_t>(state.range(1))];
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = eps;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();
  for (auto _ : state) {
    const auto outcome = exp.run_distributed();
    Cell cell;
    cell.q = summarize_quality(outcome.ranks, ref);
    cell.top100_overlap = top_k_overlap(outcome.ranks, ref, 100);
    cell.kendall_tau = kendall_tau_sampled(outcome.ranks, ref, 100'000);
    store().put(key_of(size, eps), cell);
    state.counters["max_rel_err"] = cell.q.max;
    state.counters["avg_rel_err"] = cell.q.avg;
    state.counters["top100_overlap"] = cell.top100_overlap;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (std::size_t t = 0; t < benchutil::kTable23Thresholds.size(); ++t) {
      benchmark::RegisterBenchmark("table2/quality", BM_Quality)
          ->Args({static_cast<long>(size), static_cast<long>(t)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Table 2: relative error |R_d - R_c| / R_c vs threshold epsilon");
  for (const auto size : experiment_graph_sizes()) {
    std::cout << "Relative error for " << size_label(size) << " nodes:\n";
    std::vector<std::string> header{"% pages"};
    for (const double eps : benchutil::kTable23Thresholds) {
      header.push_back(benchutil::threshold_label(eps));
    }
    TextTable table(header);
    const std::vector<std::pair<std::string, double QualityReport::*>> rows{
        {"50", &QualityReport::p50},    {"75", &QualityReport::p75},
        {"90", &QualityReport::p90},    {"99", &QualityReport::p99},
        {"99.9", &QualityReport::p99_9}, {"Max.", &QualityReport::max},
        {"Avg.", &QualityReport::avg}};
    for (const auto& [label, member] : rows) {
      std::vector<std::string> cells{label};
      for (const double eps : benchutil::kTable23Thresholds) {
        const auto* c = store().find(key_of(size, eps));
        cells.push_back(c == nullptr ? "-" : format_sig(c->q.*member, 3));
      }
      table.add_row(std::move(cells));
    }
    // Ordering quality (beyond the paper): what the search layer
    // actually consumes is the rank *ordering*.
    {
      std::vector<std::string> cells{"top-100 ovl"};
      for (const double eps : benchutil::kTable23Thresholds) {
        const auto* c = store().find(key_of(size, eps));
        cells.push_back(c == nullptr ? "-"
                                     : format_fixed(c->top100_overlap, 2));
      }
      table.add_row(std::move(cells));
    }
    {
      std::vector<std::string> cells{"Kendall tau"};
      for (const double eps : benchutil::kTable23Thresholds) {
        const auto* c = store().find(key_of(size, eps));
        cells.push_back(c == nullptr ? "-"
                                     : format_fixed(c->kendall_tau, 3));
      }
      table.add_row(std::move(cells));
    }
    benchutil::emit(table, "table2_" + size_label(size));
    std::cout << "\n";
  }
  std::cout << "Paper's summary: with epsilon 0.2 only ~0.1% of pages "
               "exceed a few percent error; epsilon 1e-3 keeps the max "
               "error below ~1% at every size.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
