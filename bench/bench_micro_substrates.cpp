// Microbenchmarks of the substrate layers: graph construction, overlay
// routing, samplers, index operations and the engines' per-document
// costs. These are throughput numbers for the data structures the
// table-level benches are built on, useful when tuning or porting.

#include <benchmark/benchmark.h>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "dht/can.hpp"
#include "dht/pastry.hpp"
#include "dht/ring.hpp"
#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "search/bloom.hpp"
#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "sim/experiment.hpp"

#include <vector>

namespace dprank {
namespace {

void BM_GraphGeneration(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Digraph g = paper_graph(nodes, seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_GraphGeneration)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_CsrFromEdges(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const Digraph g = paper_graph(nodes, 7);
  const auto edges = g.edge_list();
  for (auto _ : state) {
    const Digraph rebuilt =
        Digraph::from_edges(g.num_nodes(), edges);
    benchmark::DoNotOptimize(rebuilt.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrFromEdges)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ChordRoute(benchmark::State& state) {
  const auto peers = static_cast<PeerId>(state.range(0));
  const ChordRing ring(peers);
  Rng rng(3);
  for (auto _ : state) {
    const auto route = ring.route(
        static_cast<PeerId>(rng.bounded(peers)), Guid{rng(), rng()});
    benchmark::DoNotOptimize(route.hop_count());
  }
}
BENCHMARK(BM_ChordRoute)->Arg(50)->Arg(500);

void BM_PastryRoute(benchmark::State& state) {
  const auto peers = static_cast<PeerId>(state.range(0));
  const PastryRing ring(peers);
  Rng rng(4);
  for (auto _ : state) {
    const auto route = ring.route(
        static_cast<PeerId>(rng.bounded(peers)), Guid{rng(), rng()});
    benchmark::DoNotOptimize(route.hop_count());
  }
}
BENCHMARK(BM_PastryRoute)->Arg(50)->Arg(500);

void BM_CanRoute(benchmark::State& state) {
  const auto peers = static_cast<PeerId>(state.range(0));
  const CanSpace can(peers);
  Rng rng(5);
  for (auto _ : state) {
    const auto route = can.route(
        static_cast<PeerId>(rng.bounded(peers)), Guid{rng(), rng()});
    benchmark::DoNotOptimize(route.hop_count());
  }
}
BENCHMARK(BM_CanRoute)->Arg(50)->Arg(500);

void BM_PowerLawSample(benchmark::State& state) {
  const PowerLawSampler sampler(2.1, 1, 1000);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_PowerLawSample);

void BM_BloomInsertQuery(benchmark::State& state) {
  BloomFilter filter(100'000, 8.0);
  Rng rng(7);
  for (auto _ : state) {
    const auto x = rng();
    filter.insert(x);
    benchmark::DoNotOptimize(filter.possibly_contains(x ^ 1));
  }
}
BENCHMARK(BM_BloomInsertQuery);

void BM_CentralizedSweep(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const auto graph = cached_paper_graph(nodes, experiment_seed());
  std::vector<double> in(graph->num_nodes(), 1.0);
  std::vector<double> out(graph->num_nodes());
  for (auto _ : state) {
    pagerank_sweep(*graph, 0.85, in, out);
    in.swap(out);
    benchmark::DoNotOptimize(in.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph->num_edges()));
}
BENCHMARK(BM_CentralizedSweep)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedFullRun(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const auto graph = cached_paper_graph(nodes, experiment_seed());
  const auto placement =
      Placement::random(nodes, 500, experiment_seed());
  PagerankOptions opts;
  opts.epsilon = 1e-3;
  for (auto _ : state) {
    DistributedPagerank engine(*graph, placement, opts);
    const auto run = engine.run();
    benchmark::DoNotOptimize(run.passes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_DistributedFullRun)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  CorpusParams cp;
  cp.num_docs = 11'000;
  const Corpus corpus = Corpus::synthesize(cp);
  const ChordRing ring(50);
  for (auto _ : state) {
    const DistributedIndex index(corpus, ring);
    benchmark::DoNotOptimize(index.total_postings());
  }
  state.SetLabel("11k docs / 1880 terms");
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dprank

BENCHMARK_MAIN();
