// Streaming-graph live-rank service: staleness vs ingest throughput vs
// batch size (extension; ROADMAP item 1).
//
// The paper's incremental results (§3.1, §4.7, Table 4) are one-shot
// probes. This bench runs the production shape: a seeded event stream
// (inserts / deletes / edge mutations, Zipf attachment) is ingested
// through the batching IngestCoordinator while a LiveRankService answers
// top-k and point-rank queries between batches, with full distributed
// reconvergence — churn/crash faults and the mass audit active — firing
// at fixed offered-event marks. Ingest, reconvergence, and queries
// interleave on the simulated timeline; every query is answered from
// whatever the coordinator has applied so far, which is exactly what
// makes the answers stale.
//
// The sweep holds the stream fixed (same seed, same rate) and varies
// only the batch size, mapping the freshness/throughput trade-off:
// bigger batches amortize cascade work but widen the pending window a
// query cannot see. Acceptance gates (non-zero exit on violation):
//   (a) same-seed double run => identical rank digests (determinism);
//   (b) mass_ratio == 1.0 at every audited reconvergence quiescence;
//   (c) mean measured staleness decreases monotonically as the batch
//       size shrinks at fixed ingest rate.

#include "bench_util.hpp"

#include "graph/generator.hpp"
#include "graph/mutable_digraph.hpp"
#include "pagerank/centralized.hpp"
#include "stream/ingest_coordinator.hpp"
#include "stream/live_rank_service.hpp"
#include "stream/stream_source.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dprank {
namespace {

// Stream shape shared by every case; only the batch size varies.
constexpr std::uint64_t kStreamSeed = 42;
constexpr std::uint64_t kQueryEvery = 7;       // top-k + point query cadence
constexpr std::uint64_t kStalenessEvery = 30;  // oracle-solve cadence
constexpr std::uint64_t kReconvergeEvery = 120;

std::uint64_t stream_docs() {
  return full_scale_requested() ? 10'000 : 2'000;
}
std::uint64_t stream_events() {
  return full_scale_requested() ? 960 : 240;
}

struct Row {
  std::uint32_t batch = 0;
  std::uint64_t digest = 0;
  bool digest_stable = true;
  std::vector<double> mass_ratios;
  double staleness_mean = 0.0;  // mean over the measurement marks
  double staleness_max = 0.0;
  double lag_mean = 0.0;  // pending events per staleness mark
  std::uint64_t events = 0;
  std::uint64_t batches = 0;
  std::uint64_t topk_cache_hits = 0;
  std::uint64_t topk_recomputes = 0;
  double wall_seconds = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

struct StreamCase {
  std::uint32_t batch = 1;
  bool determinism_check = true;
};

const std::vector<StreamCase> kCases{
    {.batch = 1, .determinism_check = true},
    {.batch = 8, .determinism_check = true},
    {.batch = 32, .determinism_check = true},
};

std::string case_key(const StreamCase& c) {
  return "batch=" + std::to_string(c.batch);
}

struct ScenarioResult {
  std::uint64_t digest = 0;
  std::vector<double> mass_ratios;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  double lag_sum = 0.0;
  std::uint64_t staleness_marks = 0;
  std::uint64_t batches = 0;
  std::uint64_t topk_cache_hits = 0;
  std::uint64_t topk_recomputes = 0;
};

ScenarioResult run_scenario(std::uint32_t batch,
                            obs::MetricsRegistry* metrics) {
  const std::uint64_t docs = stream_docs();
  const Digraph base =
      paper_graph(static_cast<NodeId>(docs), experiment_seed());

  IngestConfig ic;
  ic.batch_size = batch;
  ic.reconverge_every_events = kReconvergeEvery;
  ic.seed = kStreamSeed;
  ic.options.epsilon = 1e-6;
  ic.options.threads = 1;  // the determinism contract is asserted at 1
  ic.reconverge.initial_peers = 16;
  ic.reconverge.events = 8;
  ic.reconverge.min_live = 8;
  ic.reconverge.replicas = 1;

  std::vector<double> ranks =
      centralized_pagerank(base, ic.options.damping, 1e-13).ranks;
  IngestCoordinator coord(MutableDigraph(base), std::move(ranks), ic,
                          metrics);
  LiveRankService service(coord, metrics);

  StreamSourceConfig sc;
  sc.initial_docs = static_cast<NodeId>(docs);
  sc.max_events = stream_events();
  sc.seed = kStreamSeed;
  sc.events_per_sec = 1000.0;  // fixed offered rate across the sweep
  sc.min_live_docs = 16;
  StreamSource source(sc);

  ScenarioResult r;
  for (std::uint64_t i = 1; i <= stream_events(); ++i) {
    coord.offer(source.next());
    if (i % kQueryEvery == 0) {
      // Queries land mid-ingest and are served from the live state.
      (void)service.top_k(10);
      (void)service.rank_of(static_cast<NodeId>(i % docs));
    }
    if (i % kStalenessEvery == 0) {
      const StalenessReport rep = service.measure_staleness();
      r.staleness_sum += rep.mean_abs;
      r.staleness_max = std::max(r.staleness_max, rep.max_abs);
      r.lag_sum += static_cast<double>(rep.pending_events);
      ++r.staleness_marks;
    }
  }
  const IngestBatchStats tail = coord.flush();  // drain the last batch
  (void)tail;
  r.digest = coord.digest();
  r.mass_ratios = coord.mass_ratios();
  r.topk_cache_hits = service.topk_cache_hits();
  r.topk_recomputes = service.topk_recomputes();
  // version() bumps once per applied batch and once per reconvergence.
  r.batches = coord.version() - coord.reconverge_cycles();
  return r;
}

void BM_StreamLiveRank(benchmark::State& state) {
  const StreamCase& c = kCases[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchutil::WallTimer timer;
    const ScenarioResult first = run_scenario(c.batch,
                                              &obs::default_registry());
    Row row;
    row.wall_seconds = timer.seconds();
    row.batch = c.batch;
    row.digest = first.digest;
    row.mass_ratios = first.mass_ratios;
    row.events = stream_events();
    row.batches = first.batches;
    row.topk_cache_hits = first.topk_cache_hits;
    row.topk_recomputes = first.topk_recomputes;
    row.staleness_mean =
        first.staleness_marks == 0
            ? 0.0
            : first.staleness_sum /
                  static_cast<double>(first.staleness_marks);
    row.staleness_max = first.staleness_max;
    row.lag_mean = first.staleness_marks == 0
                       ? 0.0
                       : first.lag_sum /
                             static_cast<double>(first.staleness_marks);
    if (c.determinism_check) {
      const ScenarioResult again = run_scenario(c.batch, nullptr);
      row.digest_stable = again.digest == first.digest;
    }
    store().put(case_key(c), row);
    state.counters["staleness_mean"] = row.staleness_mean;
    state.counters["lag_mean"] = row.lag_mean;
    state.counters["batches"] = static_cast<double>(row.batches);
  }
}

void register_benchmarks() {
  for (std::size_t i = 0; i < kCases.size(); ++i) {
    benchmark::RegisterBenchmark("stream/liverank", BM_StreamLiveRank)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

double mass_worst(const std::vector<double>& ratios) {
  double worst = 1.0;
  for (const double m : ratios) {
    if (std::abs(m - 1.0) > std::abs(worst - 1.0)) worst = m;
  }
  return worst;
}

void print_table() {
  benchutil::print_banner(
      "Streaming live-rank: staleness vs batch size at fixed ingest rate");
  TextTable table({"Config", "events", "batches", "staleness mean",
                   "staleness max", "lag mean", "mass worst", "topk hit/rec",
                   "stable digest"});
  for (const StreamCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    table.add_row({case_key(c), format_count(r->events),
                   format_count(r->batches),
                   format_sig(r->staleness_mean, 3),
                   format_sig(r->staleness_max, 3),
                   format_fixed(r->lag_mean, 1),
                   format_fixed(mass_worst(r->mass_ratios), 6),
                   format_count(r->topk_cache_hits) + "/" +
                       format_count(r->topk_recomputes),
                   r->digest_stable ? "yes" : "NO"});
  }
  benchutil::emit(table, "stream_liverank");
  std::cout << "\nShrinking the batch narrows the pending window a query "
               "cannot see, so staleness falls monotonically toward the "
               "per-event mode, while larger batches amortize cascade work "
               "into fewer, cheaper coalesced injections. Reconvergence "
               "fires at fixed offered-event marks: every audited "
               "quiescence accounts its rank mass exactly, and the whole "
               "ingest+query history replays bit for bit from the seed.\n";
}

void write_json() {
  double wall = 0.0;
  double mass_min = 1.0;
  bool stable = true;
  bool monotone = true;
  std::vector<double> means;
  for (const StreamCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;
    wall += r->wall_seconds;
    for (const double m : r->mass_ratios) mass_min = std::min(mass_min, m);
    stable = stable && r->digest_stable;
    means.push_back(r->staleness_mean);
  }
  for (std::size_t i = 1; i < means.size(); ++i) {
    monotone = monotone && means[i - 1] <= means[i] * (1.0 + 1e-9);
  }
  auto config = benchutil::standard_config();
  config["stream_docs"] = std::to_string(stream_docs());
  config["stream_events"] = std::to_string(stream_events());
  config["reconverge_every"] = std::to_string(kReconvergeEvery);
  std::map<std::string, double> metrics{
      {"digest_stable", stable ? 1.0 : 0.0},
      {"staleness_monotone", monotone ? 1.0 : 0.0},
      {"mass_ratio_min", mass_min},
  };
  for (std::size_t i = 0; i < kCases.size() && i < means.size(); ++i) {
    metrics["staleness_mean_batch" + std::to_string(kCases[i].batch)] =
        means[i];
  }
  benchutil::write_bench_json("stream_liverank", wall, config, metrics);
}

// Acceptance gates; any violation exits non-zero so the CI stream-soak
// job goes red.
int check_acceptance() {
  int failures = 0;
  std::vector<std::pair<std::uint32_t, double>> means;  // (batch, mean)
  for (const StreamCase& c : kCases) {
    const auto* r = store().find(case_key(c));
    if (r == nullptr) continue;  // filtered out on the command line
    if (!r->digest_stable) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: same-seed rerun diverged\n";
      ++failures;
    }
    if (r->mass_ratios.empty()) {
      std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                << "]: no audited reconvergence points\n";
      ++failures;
    }
    for (const double m : r->mass_ratios) {
      if (std::abs(m - 1.0) > 1e-9) {
        std::cout << "ACCEPTANCE FAIL [" << case_key(c)
                  << "]: mass_ratio = " << m << "\n";
        ++failures;
      }
    }
    means.emplace_back(r->batch, r->staleness_mean);
  }
  // (c) staleness decreases monotonically as the batch size shrinks.
  for (std::size_t i = 1; i < means.size(); ++i) {
    if (means[i - 1].second > means[i].second * (1.0 + 1e-9)) {
      std::cout << "ACCEPTANCE FAIL: staleness not monotone in batch size ("
                << "batch=" << means[i - 1].first << " -> "
                << means[i - 1].second << " vs batch=" << means[i].first
                << " -> " << means[i].second << ")\n";
      ++failures;
    }
  }
  if (means.size() >= 2 && means.front().second >= means.back().second) {
    std::cout << "ACCEPTANCE FAIL: smallest batch is not strictly fresher "
              << "than the largest\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  dprank::write_json();
  benchmark::Shutdown();
  return dprank::check_acceptance();
}
