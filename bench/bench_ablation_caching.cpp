// Ablation: IP-address caching (§3.2).
//
// On a DHT the first update message for a document is routed through the
// overlay (O(log N) hops); caching the resolved address makes subsequent
// updates direct. The Freenet configuration (anonymity guarantees) must
// route every message. This bench measures total hop-transmissions for
// one full pagerank computation's message stream under the three
// regimes, plus the cache storage the paper bounds by the sum of
// out-links per peer.

#include "bench_util.hpp"

#include "common/guid.hpp"
#include "net/ip_cache.hpp"

namespace dprank {
namespace {

struct Row {
  std::uint64_t messages = 0;
  std::uint64_t hops_cached = 0;
  std::uint64_t hops_uncached = 0;
  std::uint64_t cache_entries = 0;
  double avg_route_len = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

void BM_Caching(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  constexpr PeerId kPeers = 500;
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = kPeers;
  cfg.epsilon = 1e-3;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& graph = exp.graph();
  const auto& placement = exp.placement();
  const ChordRing ring(kPeers);

  // Hop costs depend only on (source peer, destination document), so the
  // run's message stream is a repeated traversal of the cross-peer edges.
  // Measure the actual per-edge multiplicity from an engine run, then
  // replay that many sweeps: the first sweep is cold, the rest hit the
  // cache — the amortization the paper's scheme is designed for.
  std::uint64_t cross_edges = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const PeerId pu = placement.peer_of(u);
    for (const NodeId v : graph.out_neighbors(u)) {
      if (placement.peer_of(v) != pu) ++cross_edges;
    }
  }
  const auto outcome = exp.run_distributed();
  const auto sweeps = std::max<std::uint64_t>(
      1, (outcome.messages + cross_edges / 2) / std::max<std::uint64_t>(
                                                    1, cross_edges));

  for (auto _ : state) {
    IpCache cached(true);
    IpCache uncached(false);
    Row row;
    std::uint64_t route_total = 0;
    for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        const PeerId pu = placement.peer_of(u);
        for (const NodeId v : graph.out_neighbors(u)) {
          if (placement.peer_of(v) == pu) continue;
          const Guid key = document_guid(v);
          ++row.messages;
          row.hops_cached += cached.send_hops(pu, key, ring);
          const auto hops = uncached.send_hops(pu, key, ring);
          row.hops_uncached += hops;
          route_total += hops;
        }
      }
    }
    row.cache_entries = cached.entries();
    row.avg_route_len = row.messages == 0
                            ? 0.0
                            : static_cast<double>(route_total) /
                                  static_cast<double>(row.messages);
    store().put(size_label(size), row);
    state.counters["hops_cached"] = static_cast<double>(row.hops_cached);
    state.counters["hops_uncached"] = static_cast<double>(row.hops_uncached);
    state.counters["replayed_sweeps"] = static_cast<double>(sweeps);
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;  // per-message route() replay is O(edges * sweeps)
    benchmark::RegisterBenchmark("ablation/ip_caching", BM_Caching)
        ->Args({static_cast<long>(size)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: IP caching vs per-message DHT routing (500 peers)");
  TextTable table({"Graph size", "cross-peer edges", "hops (cached)",
                   "hops (routed)", "routing overhead", "avg route len",
                   "cache entries"});
  for (const auto size : experiment_graph_sizes()) {
    const auto* r = store().find(size_label(size));
    if (r == nullptr) continue;
    table.add_row(
        {size_label(size), format_count(r->messages),
         format_count(r->hops_cached), format_count(r->hops_uncached),
         format_fixed(static_cast<double>(r->hops_uncached) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, r->hops_cached)),
                      2) +
             "x",
         format_fixed(r->avg_route_len, 2), format_count(r->cache_entries)});
  }
  benchutil::emit(table, "ablation_caching_1");
  std::cout << "\nWith caching, steady-state cost approaches 1 hop per "
               "message; Freenet-style routing pays ~0.5*log2(500) = ~4.5 "
               "hops on every message (§3.2). Cache storage is bounded by "
               "distinct (source peer, destination peer) pairs, itself "
               "bounded by the sum of out-links per peer.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
