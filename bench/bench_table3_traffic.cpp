// Table 3: pagerank update message traffic vs error threshold, plus the
// Eq. 4 execution-time estimate at 32 KB/s and 200 KB/s for the largest
// graph in the sweep.
//
// Paper's result shape: total messages grow ~logarithmically as epsilon
// drops (1e-1 -> 1e-6 costs <3x the messages); messages per node are
// nearly graph-size independent (~35-120); execution time is dominated
// by communication and measured in hours.

#include "bench_util.hpp"

#include "sim/time_model.hpp"

#include <string>
#include <vector>

namespace dprank {
namespace {

struct Row {
  std::uint64_t messages = 0;
  double per_node = 0.0;
  double hours_32k = 0.0;
  double hours_200k = 0.0;
  std::uint64_t passes = 0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

std::string key_of(std::uint64_t size, double eps) {
  return size_label(size) + "/" + benchutil::threshold_label(eps);
}

void BM_Traffic(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double eps = benchutil::kTable23Thresholds[
      static_cast<std::size_t>(state.range(1))];
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = eps;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  for (auto _ : state) {
    const auto outcome = exp.run_distributed();
    Row row;
    row.messages = outcome.messages;
    row.per_node = static_cast<double>(outcome.messages) /
                   static_cast<double>(size);
    row.hours_32k =
        estimate_serialized(outcome.history, modem_network()).total_hours();
    row.hours_200k = estimate_serialized(outcome.history, broadband_network())
                         .total_hours();
    row.passes = outcome.run.passes;
    store().put(key_of(size, eps), row);
    state.counters["messages"] = static_cast<double>(row.messages);
    state.counters["msgs_per_node"] = row.per_node;
    state.counters["est_hours_32KBps"] = row.hours_32k;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    for (std::size_t t = 0; t < benchutil::kTable23Thresholds.size(); ++t) {
      benchmark::RegisterBenchmark("table3/traffic", BM_Traffic)
          ->Args({static_cast<long>(size), static_cast<long>(t)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Table 3: message traffic vs threshold (24-byte updates)");
  const auto sizes = experiment_graph_sizes();
  const auto largest = sizes.back();

  std::vector<std::string> header{"Threshold"};
  for (const auto size : sizes) {
    header.push_back(size_label(size) + " total(M)");
    header.push_back(size_label(size) + " avg/node");
  }
  header.push_back("hrs@32KB/s(" + size_label(largest) + ")");
  header.push_back("hrs@200KB/s(" + size_label(largest) + ")");

  TextTable table(header);
  for (const double eps : benchutil::kTable23Thresholds) {
    std::vector<std::string> cells{benchutil::threshold_label(eps)};
    for (const auto size : sizes) {
      const auto* r = store().find(key_of(size, eps));
      if (r == nullptr) {
        cells.insert(cells.end(), {"-", "-"});
        continue;
      }
      cells.push_back(format_fixed(
          static_cast<double>(r->messages) / 1e6, 3));
      cells.push_back(format_fixed(r->per_node, 1));
    }
    const auto* big = store().find(key_of(largest, eps));
    cells.push_back(big == nullptr ? "-" : format_fixed(big->hours_32k, 2));
    cells.push_back(big == nullptr ? "-" : format_fixed(big->hours_200k, 2));
    table.add_row(std::move(cells));
  }
  benchutil::emit(table, "table3_1");
  std::cout << "\nPaper (5000k column): 35-117 avg msgs/node from epsilon "
               "0.2 down to 1e-6; 33.7-117 hours at 32 KB/s.\n"
               "Growth check: messages increase ~logarithmically with "
               "1/epsilon and msgs/node is nearly size-independent.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  const dprank::benchutil::WallTimer wall;
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  dprank::benchutil::write_bench_json("table3", wall.seconds(),
                                      dprank::benchutil::standard_config());
  benchmark::Shutdown();
  return 0;
}
