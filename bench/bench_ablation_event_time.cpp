// Ablation: measured (event-driven) execution time vs the paper's
// analytic Eq. 4 estimates.
//
// The paper's simulator assumed instantaneous delivery and estimated
// wall-clock time analytically; the event engine simulates per-peer
// CPUs, serialized finite-bandwidth uplinks and propagation latency.
// This bench puts the three numbers side by side across bandwidths and
// latencies, quantifying how much the analytic shortcut matters.

#include "bench_util.hpp"

#include "pagerank/distributed_engine.hpp"
#include "pagerank/event_engine.hpp"
#include "sim/time_model.hpp"

#include <vector>

namespace dprank {
namespace {

struct Row {
  double event_seconds = 0.0;
  double serialized_seconds = 0.0;
  double parallel_seconds = 0.0;
  std::uint64_t event_messages = 0;
  std::uint64_t pass_messages = 0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

struct NetCase {
  const char* name;
  double bandwidth;
  double latency;
};

const std::vector<NetCase> kNets{
    {"32KB/s,50ms", 32.0 * 1024, 0.050},
    {"200KB/s,50ms", 200.0 * 1024, 0.050},
    {"200KB/s,200ms", 200.0 * 1024, 0.200},
    {"T3,20ms", 5.6e6, 0.020},
};

void BM_EventTime(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const NetCase net_case = kNets[static_cast<std::size_t>(state.range(1))];
  constexpr PeerId kPeers = 100;
  const auto graph = cached_paper_graph(size, experiment_seed());
  const auto placement = Placement::random(size, kPeers, experiment_seed());
  PagerankOptions opts;
  opts.epsilon = 1e-3;

  for (auto _ : state) {
    EventNetParams enet;
    enet.bandwidth_bytes_per_sec = net_case.bandwidth;
    enet.latency_sec = net_case.latency;
    EventDrivenPagerank event_engine(*graph, placement, opts, enet);
    const auto event_result = event_engine.run();

    DistributedPagerank pass_engine(*graph, placement, opts);
    (void)pass_engine.run();
    NetworkParams analytic;
    analytic.bandwidth_bytes_per_sec = net_case.bandwidth;

    Row row;
    row.event_seconds = event_result.completion_seconds;
    row.serialized_seconds =
        estimate_serialized(pass_engine.pass_history(), analytic)
            .total_seconds();
    row.parallel_seconds =
        estimate_parallel(pass_engine.pass_history(), placement, analytic)
            .total_seconds();
    row.event_messages = event_result.messages;
    row.pass_messages = pass_engine.traffic().messages();
    store().put(size_label(size) + "/" + net_case.name, row);
    state.counters["event_seconds"] = row.event_seconds;
    state.counters["eq4_serialized_seconds"] = row.serialized_seconds;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;  // event queue scale guard
    for (std::size_t c = 0; c < kNets.size(); ++c) {
      benchmark::RegisterBenchmark("ablation/event_time", BM_EventTime)
          ->Args({static_cast<long>(size), static_cast<long>(c)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: measured event-driven time vs Eq. 4 analytic estimates "
      "(100 peers, epsilon = 1e-3)");
  TextTable table({"Config", "event sim (s)", "Eq.4 serialized (s)",
                   "Eq.4 parallel (s)", "event msgs", "pass msgs"});
  for (const auto size : experiment_graph_sizes()) {
    for (const auto& net_case : kNets) {
      const auto* r = store().find(size_label(size) + "/" + net_case.name);
      if (r == nullptr) continue;
      table.add_row({size_label(size) + " " + net_case.name,
                     format_fixed(r->event_seconds, 1),
                     format_fixed(r->serialized_seconds, 1),
                     format_fixed(r->parallel_seconds, 1),
                     format_count(r->event_messages),
                     format_count(r->pass_messages)});
    }
  }
  benchutil::emit(table, "ablation_event_time_1");
  std::cout << "\nThe serialized Eq. 4 model (the paper's Table 3 "
               "columns) is pessimistic on bandwidth but blind to "
               "latency; the event simulation shows latency chains "
               "dominating completion on fast links, and chaotic "
               "delivery sending more messages than the pass-coalesced "
               "accounting (each peer drains its inbox per "
               "min_batch_interval — shrink it toward 0 to watch the "
               "unbatched message bill explode, the §4.6.1 batching "
               "assumption made quantitative).\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
