// Ablation: protocol robustness under lossy delivery (extension).
//
// The paper's transport is reliable (plus the §3.1 outbox). Real P2P
// deployments see UDP loss and duplication; the newest-value-wins
// contribution semantics mean duplicates are free and drops leave
// bounded stale error. This bench sweeps the drop rate and reports the
// quality cost — the robustness argument for deploying the protocol on
// cheap transport.

#include "bench_util.hpp"

#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

struct Row {
  std::uint64_t passes = 0;
  std::uint64_t dropped = 0;
  double avg_err = 0.0;
  double p50_err = 0.0;
  double p99_err = 0.0;
  double max_err = 0.0;
  double top100_overlap = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

const std::vector<double> kDropRates{0.0, 0.01, 0.05, 0.10, 0.25, 0.50};

void BM_Faults(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double drop = kDropRates[static_cast<std::size_t>(state.range(1))];
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-4;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();

  for (auto _ : state) {
    DistributedPagerank engine(exp.graph(), exp.placement(),
                               exp.pagerank_options());
    if (drop > 0) {
      engine.inject_faults(
          {.drop_probability = drop, .seed = experiment_seed()});
    }
    const auto run = engine.run();
    const auto q = summarize_quality(engine.ranks(), ref);
    Row row;
    row.passes = run.passes;
    row.dropped = engine.dropped_messages();
    row.avg_err = q.avg;
    row.p50_err = q.p50;
    row.p99_err = q.p99;
    row.max_err = q.max;
    row.top100_overlap = top_k_overlap(engine.ranks(), ref, 100);
    store().put(size_label(size) + "/" + format_fixed(drop, 2), row);
    state.counters["avg_rel_err"] = row.avg_err;
    state.counters["dropped"] = static_cast<double>(row.dropped);
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (std::size_t d = 0; d < kDropRates.size(); ++d) {
      benchmark::RegisterBenchmark("ablation/faults", BM_Faults)
          ->Args({static_cast<long>(size), static_cast<long>(d)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: quality vs message drop rate (epsilon = 1e-4)");
  TextTable table({"Config", "passes", "dropped", "p50 err", "avg err",
                   "p99 err", "max err", "top-100 overlap"});
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (const double drop : kDropRates) {
      const auto* r =
          store().find(size_label(size) + "/" + format_fixed(drop, 2));
      if (r == nullptr) continue;
      table.add_row({size_label(size) + " drop=" + format_fixed(drop, 2),
                     std::to_string(r->passes), format_count(r->dropped),
                     format_sig(r->p50_err, 2), format_sig(r->avg_err, 2),
                     format_sig(r->p99_err, 2), format_sig(r->max_err, 2),
                     format_fixed(r->top100_overlap, 2)});
    }
  }
  benchutil::emit(table, "ablation_faults_1");
  std::cout << "\nError grows smoothly with the drop rate and the top "
               "documents stay correctly identified well past realistic "
               "loss levels — the protocol needs no reliable transport "
               "for usable rankings (duplicates are exactly free by the "
               "newest-value-wins cell semantics).\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
