// Ablation: protocol robustness under lossy delivery and crashes
// (extension).
//
// The paper's transport is reliable (plus the §3.1 outbox). Real P2P
// deployments see UDP loss and duplication; the newest-value-wins
// contribution semantics mean duplicates are free and drops leave
// bounded stale error. This bench sweeps the drop rate and reports the
// quality cost — the robustness argument for deploying the protocol on
// cheap transport.
//
// A second sweep injects fail-stop crashes (state-destroying, unlike
// graceful churn) under the full recovery stack — acked delivery,
// replica restore, mass-audit re-injection — and reports the *recovery
// time*: passes from the last crash until the run re-converges.

#include "bench_util.hpp"

#include "fault/fault_plan.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

#include <vector>

namespace dprank {
namespace {

struct Row {
  std::uint64_t passes = 0;
  std::uint64_t dropped = 0;
  double avg_err = 0.0;
  double p50_err = 0.0;
  double p99_err = 0.0;
  double max_err = 0.0;
  double top100_overlap = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

const std::vector<double> kDropRates{0.0, 0.01, 0.05, 0.10, 0.25, 0.50};

void BM_Faults(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const double drop = kDropRates[static_cast<std::size_t>(state.range(1))];
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-4;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();

  for (auto _ : state) {
    DistributedPagerank engine(exp.graph(), exp.placement(),
                               exp.pagerank_options());
    if (drop > 0) {
      engine.inject_faults(
          {.drop_probability = drop, .seed = experiment_seed()});
    }
    const auto run = engine.run();
    const auto q = summarize_quality(engine.ranks(), ref);
    Row row;
    row.passes = run.passes;
    row.dropped = engine.dropped_messages();
    row.avg_err = q.avg;
    row.p50_err = q.p50;
    row.p99_err = q.p99;
    row.max_err = q.max;
    row.top100_overlap = top_k_overlap(engine.ranks(), ref, 100);
    store().put(size_label(size) + "/" + format_fixed(drop, 2), row);
    state.counters["avg_rel_err"] = row.avg_err;
    state.counters["dropped"] = static_cast<double>(row.dropped);
  }
}

// ---- crash sweep ----

struct CrashRow {
  std::uint64_t passes = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recovered_docs = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t repair_messages = 0;
  std::uint64_t recovery_passes = 0;  // last crash -> convergence
  double mass_ratio = 1.0;
  double avg_err = 0.0;
};

benchutil::ResultStore<CrashRow>& crash_store() {
  static benchutil::ResultStore<CrashRow> s;
  return s;
}

const std::vector<int> kCrashCounts{0, 1, 2, 4, 8};

void BM_Crashes(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  const int crashes = kCrashCounts[static_cast<std::size_t>(state.range(1))];
  ExperimentConfig cfg;
  cfg.num_docs = size;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-4;
  cfg.seed = experiment_seed();
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();

  for (auto _ : state) {
    StandardExperiment::FaultRunOptions fo;
    fo.plan.drop_probability = 0.05;
    fo.plan.acked_delivery = true;
    fo.plan.seed = experiment_seed();
    fo.replicas_per_doc = 1;
    // Crashes spread over the early passes, striking distinct peers.
    for (int c = 0; c < crashes; ++c) {
      fo.plan.crashes.push_back(
          {.pass = static_cast<std::uint64_t>(2 + 2 * c),
           .peer = static_cast<PeerId>((c * 97 + 7) % cfg.num_peers)});
    }
    const auto out = exp.run_distributed_faulty(fo);
    CrashRow row;
    row.passes = out.run.passes;
    row.crashes = out.crashes;
    row.recovered_docs = out.recovered_docs;
    row.retransmissions = out.retransmissions;
    row.repair_messages = out.repair_messages;
    row.mass_ratio = out.run.mass_ratio;
    row.avg_err = summarize_quality(out.ranks, ref).avg;
    // Recovery time: passes between the last crash striking and the run
    // re-converging (0 when no crash was injected).
    std::uint64_t last_crash_pass = 0;
    bool any = false;
    for (const auto& ps : out.history) {
      if (ps.crashes > 0) {
        last_crash_pass = ps.pass;
        any = true;
      }
    }
    row.recovery_passes = any ? out.run.passes - last_crash_pass : 0;
    crash_store().put(size_label(size) + "/" + std::to_string(crashes), row);
    state.counters["recovery_passes"] =
        static_cast<double>(row.recovery_passes);
    state.counters["mass_ratio"] = row.mass_ratio;
  }
}

void register_benchmarks() {
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (std::size_t d = 0; d < kDropRates.size(); ++d) {
      benchmark::RegisterBenchmark("ablation/faults", BM_Faults)
          ->Args({static_cast<long>(size), static_cast<long>(d)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (std::size_t c = 0; c < kCrashCounts.size(); ++c) {
      benchmark::RegisterBenchmark("ablation/crashes", BM_Crashes)
          ->Args({static_cast<long>(size), static_cast<long>(c)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Ablation: quality vs message drop rate (epsilon = 1e-4)");
  TextTable table({"Config", "passes", "dropped", "p50 err", "avg err",
                   "p99 err", "max err", "top-100 overlap"});
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (const double drop : kDropRates) {
      const auto* r =
          store().find(size_label(size) + "/" + format_fixed(drop, 2));
      if (r == nullptr) continue;
      table.add_row({size_label(size) + " drop=" + format_fixed(drop, 2),
                     std::to_string(r->passes), format_count(r->dropped),
                     format_sig(r->p50_err, 2), format_sig(r->avg_err, 2),
                     format_sig(r->p99_err, 2), format_sig(r->max_err, 2),
                     format_fixed(r->top100_overlap, 2)});
    }
  }
  benchutil::emit(table, "ablation_faults_1");
  std::cout << "\nError grows smoothly with the drop rate and the top "
               "documents stay correctly identified well past realistic "
               "loss levels — the protocol needs no reliable transport "
               "for usable rankings (duplicates are exactly free by the "
               "newest-value-wins cell semantics).\n";

  benchutil::print_banner(
      "Ablation: crash recovery (5% drop, acked delivery, 1 replica, "
      "mass audit)");
  TextTable crash_table({"Config", "passes", "recovery passes",
                         "recovered docs", "retransmits", "repairs",
                         "mass ratio", "avg err"});
  for (const auto size : experiment_graph_sizes()) {
    if (size > 100'000) continue;
    for (const int crashes : kCrashCounts) {
      const auto* r = crash_store().find(size_label(size) + "/" +
                                         std::to_string(crashes));
      if (r == nullptr) continue;
      crash_table.add_row(
          {size_label(size) + " crashes=" + std::to_string(crashes),
           std::to_string(r->passes), std::to_string(r->recovery_passes),
           format_count(r->recovered_docs),
           format_count(r->retransmissions), format_count(r->repair_messages),
           format_fixed(r->mass_ratio, 6), format_sig(r->avg_err, 2)});
    }
  }
  benchutil::emit(crash_table, "ablation_faults_2");
  std::cout << "\nCrash pressure barely stretches the run: the crash-free "
               "and 8-crash configurations finish within a few passes of "
               "each other, because replicas restore the lost ranks, "
               "acked delivery replays the lost messages, and the mass "
               "audit re-injects anything that slipped through — the "
               "audited rank mass ends at 1.0 in every configuration.\n";
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  benchmark::Shutdown();
  return 0;
}
