// Million-doc hot-path scaling sweep (ROADMAP item 4).
//
// Unlike the table benches, this sweep is not a paper reproduction: it
// measures how the engine's per-pass cost, memory footprint and fold
// throughput scale with graph size and peer count. Runs are pass-capped
// (kPassCap) — the steady-state hot path is the object of study, not
// convergence, so a 1M-doc configuration finishes in seconds instead of
// hundreds of passes.
//
// Per configuration the bench reports:
//   * engine pass wall (total and per pass, threads from DPRANK_THREADS),
//   * gather GB/s — the in-CSR fold kernel (common/simd.hpp) timed
//     directly over every document, at the active SIMD level and with
//     the scalar fallback pinned, so the vector speedup is visible on
//     its own and not buried in pass bookkeeping,
//   * bytes/edge and bytes/node of the CSR (compact-layout yardstick),
//     engine scratch bytes and process peak RSS.
//
// Scale control: {100k} x {500 peers} by default — a CI-sized config
// with a committed baseline (bench/baselines/BENCH_scale.json);
// DPRANK_FULL=1 runs {100k, 500k, 1000k} x {500, 2000}.

#include "bench_util.hpp"

#include "common/arena.hpp"
#include "common/simd.hpp"
#include "graph/graph_stats.hpp"
#include "obs/mem_probe.hpp"

#include <map>
#include <numeric>
#include <string>
#include <vector>

namespace dprank {
namespace {

/// Passes each engine run executes (max_passes cap; no configuration
/// converges this early, so every run measures exactly this many).
constexpr std::uint64_t kPassCap = 12;

std::vector<std::uint64_t> scale_sizes() {
  if (full_scale_requested()) return {100'000, 500'000, 1'000'000};
  return {100'000};
}

std::vector<PeerId> scale_peers() {
  if (full_scale_requested()) return {500, 2000};
  return {500};
}

struct Row {
  std::uint64_t passes = 0;
  double run_seconds = 0.0;
  double us_per_pass = 0.0;
  std::uint64_t docs_recomputed = 0;
  double bytes_per_edge = 0.0;
  double bytes_per_node = 0.0;
  double engine_mb = 0.0;
  double peak_rss_mb = 0.0;
  double gather_gbps_active = 0.0;
  double gather_gbps_scalar = 0.0;
};

benchutil::ResultStore<Row>& store() {
  static benchutil::ResultStore<Row> s;
  return s;
}

std::string key_of(std::uint64_t docs, PeerId peers) {
  return size_label(docs) + "/" + std::to_string(peers);
}

/// Time the fold kernel over every document of `g` at `level`: one
/// in-CSR cell gather per edge, best of `reps`. Throughput counts the
/// gathered cell bytes (8 per edge) — the random-access traffic the
/// kernel exists to speed up — not the sequential offset/doc streams.
double fold_gbps(simd::Level level, const Digraph& g, int reps) {
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  if (n == 0 || m == 0) return 0.0;
  AlignedVec<double> cells(m, 0.5);
  AlignedVec<double> acc(n, 0.0);
  std::vector<NodeId> docs(n);
  std::iota(docs.begin(), docs.end(), NodeId{0});
  double best = 1e300;
  for (int rep = 0; rep < reps + 1; ++rep) {  // rep 0 warms the cache
    const benchutil::WallTimer t;
    simd::fold_cells(level, cells.data(), g.in_offsets_data(), docs.data(),
                     n, acc.data());
    benchmark::DoNotOptimize(acc.data());
    benchmark::ClobberMemory();
    const double secs = t.seconds();
    if (rep > 0 && secs < best) best = secs;
  }
  return best > 0.0 ? static_cast<double>(m) * 8.0 / best / 1e9 : 0.0;
}

void BM_Scale(benchmark::State& state) {
  const auto docs = static_cast<std::uint64_t>(state.range(0));
  const auto peers = static_cast<PeerId>(state.range(1));
  const auto graph = cached_paper_graph(docs, experiment_seed());
  const Placement placement =
      Placement::random(docs, peers, experiment_seed());
  PagerankOptions opts;
  opts.epsilon = 1e-3;
  opts.max_passes = kPassCap;
  opts.threads = experiment_threads();
  for (auto _ : state) {
    DistributedPagerank engine(*graph, placement, opts);
    engine.attach_metrics(obs::default_registry());
    const benchutil::WallTimer t;
    const auto run = engine.run();
    const double secs = t.seconds();

    Row row;
    row.passes = run.passes;
    row.run_seconds = secs;
    row.us_per_pass =
        run.passes > 0 ? secs * 1e6 / static_cast<double>(run.passes) : 0.0;
    for (const auto& ps : engine.pass_history()) {
      row.docs_recomputed += ps.docs_recomputed;
    }
    const auto layout = compute_layout_stats(*graph);
    row.bytes_per_edge = layout.bytes_per_edge;
    row.bytes_per_node = layout.bytes_per_node;
    row.engine_mb = static_cast<double>(engine.memory_bytes()) / 1e6;
    row.peak_rss_mb = static_cast<double>(obs::peak_rss_bytes()) / 1e6;
    row.gather_gbps_active = fold_gbps(simd::active_level(), *graph, 3);
    row.gather_gbps_scalar = fold_gbps(simd::Level::kScalar, *graph, 3);
    store().put(key_of(docs, peers), row);
    state.counters["us_per_pass"] = row.us_per_pass;
    state.counters["gather_gbps"] = row.gather_gbps_active;
  }
}

void register_benchmarks() {
  for (const auto docs : scale_sizes()) {
    for (const PeerId peers : scale_peers()) {
      benchmark::RegisterBenchmark("scale/hotpath", BM_Scale)
          ->Args({static_cast<long>(docs), static_cast<long>(peers)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  benchutil::print_banner(
      "Scale sweep: pass-capped hot path (" + std::to_string(kPassCap) +
      " passes, epsilon = 1e-3)");
  TextTable table({"Docs/peers", "us/pass", "gather GB/s",
                   "scalar GB/s", "B/edge", "B/node", "engine MB",
                   "peak RSS MB"});
  for (const auto docs : scale_sizes()) {
    for (const PeerId peers : scale_peers()) {
      const auto* r = store().find(key_of(docs, peers));
      if (r == nullptr) continue;
      table.add_row({key_of(docs, peers), format_fixed(r->us_per_pass, 0),
                     format_fixed(r->gather_gbps_active, 2),
                     format_fixed(r->gather_gbps_scalar, 2),
                     format_fixed(r->bytes_per_edge, 1),
                     format_fixed(r->bytes_per_node, 1),
                     format_fixed(r->engine_mb, 1),
                     format_fixed(r->peak_rss_mb, 1)});
    }
  }
  benchutil::emit(table, "scale_1");
  std::cout << "\nSIMD level: " << simd::level_name(simd::active_level())
            << "\n";
}

std::map<std::string, std::string> scale_config() {
  std::string sizes;
  for (const auto s : scale_sizes()) {
    if (!sizes.empty()) sizes += ",";
    sizes += size_label(s);
  }
  std::string peers;
  for (const PeerId p : scale_peers()) {
    if (!peers.empty()) peers += ",";
    peers += std::to_string(p);
  }
  return {{"sizes", sizes},
          {"peers", peers},
          {"full_scale", full_scale_requested() ? "1" : "0"},
          {"seed", std::to_string(experiment_seed())},
          {"threads", std::to_string(experiment_threads())}};
}

std::map<std::string, double> extra_measurements() {
  std::map<std::string, double> extra;
  for (const auto& [key, r] : store().all()) {
    extra[key + "/us_per_pass"] = r.us_per_pass;
    extra[key + "/gather_gbps"] = r.gather_gbps_active;
    extra[key + "/gather_gbps_scalar"] = r.gather_gbps_scalar;
    extra[key + "/bytes_per_edge"] = r.bytes_per_edge;
    extra[key + "/engine_mb"] = r.engine_mb;
    extra[key + "/peak_rss_mb"] = r.peak_rss_mb;
  }
  return extra;
}

}  // namespace
}  // namespace dprank

int main(int argc, char** argv) {
  const dprank::benchutil::WallTimer wall;
  benchmark::Initialize(&argc, argv);
  dprank::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  dprank::print_table();
  dprank::benchutil::write_bench_json("scale", wall.seconds(),
                                      dprank::scale_config(),
                                      dprank::extra_measurements());
  benchmark::Shutdown();
  return 0;
}
