#!/usr/bin/env bash
# Build the tree with ASan+UBSan (-DDPRANK_SANITIZE=ON) and run the tier-1
# ctest suite under the sanitizers. Any report aborts the run
# (-fno-sanitize-recover=all), so a green exit means a clean pass.
#
# Usage: scripts/run_sanitized.sh [ctest args...]
#   e.g. scripts/run_sanitized.sh -R 'faults|recovery'
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${DPRANK_SANITIZE_BUILD_DIR:-${repo_root}/build-sanitize}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDPRANK_SANITIZE=ON
cmake --build "${build_dir}" -j "${jobs}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}" "$@"
