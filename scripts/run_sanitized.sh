#!/usr/bin/env bash
# Build the tree under a sanitizer and run the tier-1 ctest suite with it.
# Any report aborts the run (-fno-sanitize-recover=all), so a green exit
# means a clean pass.
#
# Default mode is ASan+UBSan (-DDPRANK_SANITIZE=ON). Pass --tsan as the
# first argument to build with ThreadSanitizer instead
# (-DDPRANK_SANITIZE_THREAD=ON, separate build directory) — the mode that
# exercises the parallel pass engine, the thread pool and the async
# runtime for data races.
#
# Usage: scripts/run_sanitized.sh [--tsan] [ctest args...]
#   e.g. scripts/run_sanitized.sh -R 'faults|recovery'
#        scripts/run_sanitized.sh --tsan -R 'async|parallel|thread_pool'
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

mode=asan
if [[ "${1:-}" == "--tsan" ]]; then
  mode=tsan
  shift
fi

if [[ "${mode}" == "tsan" ]]; then
  build_dir="${DPRANK_SANITIZE_BUILD_DIR:-${repo_root}/build-tsan}"
  sanitize_flag=-DDPRANK_SANITIZE_THREAD=ON
else
  build_dir="${DPRANK_SANITIZE_BUILD_DIR:-${repo_root}/build-sanitize}"
  sanitize_flag=-DDPRANK_SANITIZE=ON
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "${sanitize_flag}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${mode}" == "tsan" ]]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
fi

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}" "$@"

# Sweep the dynamic-membership handoff path (join pulls, leave pushes,
# reconstruct-from-replica, outbox eviction, channel give-up) at bench
# scale under the same sanitizer: the chaos-soak campaign binary exits
# non-zero if any seeded case fails its acceptance bar. Skip with
# DPRANK_SKIP_SOAK=1 when iterating on an unrelated subsystem.
if [[ "${DPRANK_SKIP_SOAK:-0}" != "1" ]]; then
  ./bench/bench_chaos_soak --benchmark_filter='chaos/soak'
fi
