"""Shared waiver parsing for dprank_lint and dprank_analyze.

Both tools use the same shape:

    // <tag>: allow(<rule>[, <rule>...])[ -- reason]

on the offending line or the line directly above it. The table records
every waiver it sees and which (line, rule) pairs actually suppressed a
finding, so the tools can report *unused* waivers as errors — a waiver
that outlives its finding is a determinism hole waiting to reopen.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path


def waiver_re(tag: str) -> re.Pattern[str]:
    return re.compile(
        r"//.*?" + re.escape(tag)
        + r":\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)"
        + r"(?:\s*--\s*(\S.*))?"
    )


@dataclass
class Waiver:
    path: Path
    line: int  # 0-based index of the comment line
    rules: tuple[str, ...]
    reason: str | None
    used: set[str] = field(default_factory=set)


class WaiverTable:
    """Waivers for one tag across a set of files."""

    def __init__(self, tag: str, require_reason: bool = False,
                 lookback: int = 1):
        """`lookback`: how many lines above the finding a waiver may sit
        (1 = the classic same-line-or-line-above; dprank_analyze uses 2
        so its waiver can stack above a dprank-lint waiver for the same
        site)."""
        self.tag = tag
        self.require_reason = require_reason
        self.lookback = lookback
        self._re = waiver_re(tag)
        # (path, line) -> Waiver
        self._by_site: dict[tuple[Path, int], Waiver] = {}

    def scan_file(self, path: Path, raw_lines: list[str]) -> None:
        for idx, line in enumerate(raw_lines):
            m = self._re.search(line)
            if m is None:
                continue
            rules = tuple(r.strip() for r in m.group(1).split(","))
            reason = m.group(2).strip() if m.group(2) else None
            self._by_site[(path, idx)] = Waiver(path, idx, rules, reason)

    def allows(self, path: Path, idx: int, rule: str) -> bool:
        """True when a waiver on line idx or idx-1 covers `rule`; marks
        the waiver used either way it matches."""
        hit = False
        for j in range(idx, idx - self.lookback - 1, -1):
            w = self._by_site.get((path, j))
            if w is not None and rule in w.rules:
                w.used.add(rule)
                hit = True
        return hit

    def waivers(self) -> list[Waiver]:
        return sorted(self._by_site.values(),
                      key=lambda w: (str(w.path), w.line))

    def unused(self) -> list[tuple[Waiver, str]]:
        """Every (waiver, rule) pair that never suppressed a finding."""
        out = []
        for w in self.waivers():
            for rule in w.rules:
                if rule not in w.used:
                    out.append((w, rule))
        return out

    def missing_reason(self) -> list[Waiver]:
        if not self.require_reason:
            return []
        return [w for w in self.waivers() if not w.reason]
