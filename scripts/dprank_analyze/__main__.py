"""Entry point: works both as `python3 -m dprank_analyze` (from
scripts/) and as `python3 scripts/dprank_analyze` (directory execution,
where the package itself is not importable until its parent is on
sys.path)."""

import sys

if __package__ in (None, ""):
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from dprank_analyze.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
