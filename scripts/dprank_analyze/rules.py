"""Rule implementations over the extracted file models."""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from . import FLOAT_ORDER_DIRS, RNG_IMPL_FILES, SIM_DIRS
from .astlite import SourceFile
from .waivers import WaiverTable


@dataclass
class Finding:
    rel: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {
            "file": self.rel,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


# --- R1 / R3 helpers ------------------------------------------------------

# Order-sensitive effects inside a loop body.
_MSG_RE = re.compile(
    r"\b\w*(?:send|deliver|emit|enqueue)\w*\s*\(|\brecord_message\s*\("
)
_APPEND_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(?:push_back|emplace_back|append)\s*\("
)
# A draw from (or hand-off of) the seeded generator: consuming the RNG
# stream in hash-table order reorders every later draw.
_RNG_USE_RE = re.compile(r"\brng\w*\s*(?:\.|->)|\(\s*rng\w*\s*[),]")
_FLOAT_ACCUM_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\+=")
_FMA_RE = re.compile(r"\bstd::fma\s*\(")
_SORT_NEARBY = 2000  # chars after the loop to look for a canonicalizing sort


def _sorted_after(sf: SourceFile, target: str, from_off: int) -> bool:
    tail = sf.flat[from_off : from_off + _SORT_NEARBY]
    return re.search(
        r"\bsort\s*\([^;]*\b" + re.escape(target) + r"\b", tail
    ) is not None


def _in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return rel.startswith(tuple(d + "/" for d in dirs))


def check_iteration_rules(sf: SourceFile, waivers: WaiverTable,
                          findings: list[Finding]) -> None:
    """R1 unordered-iteration and R3 float-order."""
    in_sim = _in_dirs(sf.rel, SIM_DIRS)
    in_float = _in_dirs(sf.rel, FLOAT_ORDER_DIRS)
    for loop in sf.loops:
        if loop.kind not in ("unordered", "ptr-ordered"):
            continue
        if in_sim:
            effects: list[str] = []
            if _MSG_RE.search(loop.body):
                effects.append("emits messages")
            if _RNG_USE_RE.search(loop.body):
                effects.append("feeds RNG draws")
            for am in _APPEND_RE.finditer(loop.body):
                if not _sorted_after(sf, am.group(1), loop.body_end_off):
                    effects.append(f"appends to '{am.group(1)}' "
                                   "without a sorted materialization")
                    break
            if effects:
                if not waivers.allows(sf.path, loop.line,
                                      "unordered-iteration"):
                    findings.append(Finding(
                        sf.rel, loop.line + 1, "unordered-iteration",
                        f"iteration over {loop.kind} container "
                        f"'{loop.container}' {'; '.join(effects)} — "
                        "hash-table order is not part of the seeded "
                        "replay contract; materialize and sort first",
                    ))
        if in_float:
            accum = None
            for fm in _FLOAT_ACCUM_RE.finditer(loop.body):
                if re.search(r"\bdouble\s+" + re.escape(fm.group(1)) + r"\b",
                             sf.flat):
                    accum = fm.group(1)
                    break
            if accum is None and _FMA_RE.search(loop.body):
                accum = "<fma>"
            if accum is not None:
                if not waivers.allows(sf.path, loop.line, "float-order"):
                    findings.append(Finding(
                        sf.rel, loop.line + 1, "float-order",
                        f"double accumulation into '{accum}' folded in "
                        f"{loop.kind} iteration order over "
                        f"'{loop.container}' — FP addition does not "
                        "commute across reorderings; fold in a sorted "
                        "canonical order",
                    ))


# --- R2 -------------------------------------------------------------------

_RAND_RE = re.compile(
    r"\bstd::random_device\b"
    r"|\bstd::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b"
    r"|default_random_engine)\b"
    r"|\b(?:std::)?s?rand\s*\("
)
_CLOCK_RE = re.compile(
    r"std::chrono::\w*clock::now"
    r"|std::this_thread::sleep_(?:for|until)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bstd::time\s*\("
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)
_PTR_ORDER_RE = re.compile(
    r"std::less\s*<[^<>]*\*\s*>"
    r"|std::hash\s*<[^<>]*\*\s*>"
    r"|std::(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[\w:]+\s*\*"
)


def check_nondet_sources(sf: SourceFile, waivers: WaiverTable,
                         findings: list[Finding]) -> None:
    """R2 nondet-source."""
    in_sim = _in_dirs(sf.rel, SIM_DIRS)
    is_rng_impl = sf.rel in RNG_IMPL_FILES

    def report(idx: int, what: str) -> None:
        if not waivers.allows(sf.path, idx, "nondet-source"):
            findings.append(Finding(sf.rel, idx + 1, "nondet-source", what))

    for idx, code in enumerate(sf.code_lines):
        if not code.strip():
            continue
        if not is_rng_impl and _RAND_RE.search(code):
            report(idx, "platform RNG breaks bit-identical replay; draw "
                        "from the seeded generator in common/rng.hpp")
        if in_sim and _CLOCK_RE.search(code):
            report(idx, "wall-clock read in simulation code; simulated "
                        "time comes from the pass clock / time model")
        if _PTR_ORDER_RE.search(code):
            report(idx, "pointer-value ordering (address compare/hash) "
                        "varies run to run under ASLR; key on a stable "
                        "id instead")


# --- R4 -------------------------------------------------------------------


def check_thread_captures(sf: SourceFile, waivers: WaiverTable,
                          findings: list[Finding]) -> None:
    """R4 thread-capture: a by-reference lambda in a ThreadPool region is
    fine only when each shard derives its slice from the shard index —
    `X[i]` / `X[slot]` indexing, or forwarding the index to a callable."""
    for lam in sf.region_lambdas:
        if not lam.by_ref:
            continue
        sharded = False
        for p in lam.params:
            if not p:
                continue
            if re.search(r"\w\s*\[\s*" + re.escape(p) + r"\s*\]", lam.body):
                sharded = True
                break
            if re.search(r"\b\w+\s*\(\s*" + re.escape(p) + r"\s*[,)]",
                         lam.body):
                sharded = True
                break
        if sharded:
            continue
        if not waivers.allows(sf.path, lam.line, "thread-capture"):
            findings.append(Finding(
                sf.rel, lam.line + 1, "thread-capture",
                "by-reference capture into a ThreadPool region without "
                "the peer-sharded index pattern: concurrent shards may "
                "write shared captured state — index per-shard storage "
                "by the shard/slot parameter",
            ))


# --- R5 -------------------------------------------------------------------


def _pair_key(rel: str) -> str:
    return rel.rsplit(".", 1)[0]


def check_contract_coverage(files: list[SourceFile], waivers: WaiverTable,
                            findings: list[Finding]) -> None:
    """R5 contract-coverage, cross-file: every class declaring validate()
    must be the receiver of a validate() call outside its own .cpp/.hpp
    pair (a contract sweep), somewhere in the analyzed set."""
    decls: dict[str, tuple[SourceFile, int]] = {}
    for sf in files:
        for cls, idx in sf.validate_decls:
            decls.setdefault(cls, (sf, idx))
    if not decls:
        return
    reached: set[str] = set()
    for sf in files:
        for ident, idx in sf.validate_calls:
            cls = sf.type_of.get(ident)
            if cls is None or cls not in decls:
                continue
            if _pair_key(decls[cls][0].rel) == _pair_key(sf.rel):
                continue  # a class's own TU validating itself proves nothing
            reached.add(cls)
    for cls, (sf, idx) in sorted(decls.items()):
        if cls in reached:
            continue
        if waivers.allows(sf.path, idx, "contract-coverage"):
            continue
        findings.append(Finding(
            sf.rel, idx + 1, "contract-coverage",
            f"{cls}::validate() is never called from a contract sweep "
            "outside its own translation unit — wire it into a "
            "validate_state()/validate() walk or waiver with the reason "
            "it is test-only",
        ))
