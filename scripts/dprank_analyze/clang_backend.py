"""libclang loop extraction: real AST types for R1/R3.

When the `clang` Python bindings can load a libclang shared object and
build/compile_commands.json exists, range-for loops are extracted from
the translation unit with their *resolved* iterated type — catching
`auto&` over a member whose unordered-ness the tokenizer cannot see
through typedefs. Everything else (R2/R4/R5, waivers, reporting) runs on
the shared token layer in both modes, so the two backends differ only in
how loop container types are resolved.

Every entry point degrades gracefully: any import/parse failure returns
None and the caller falls back to the astlite loop scan for that file,
so the analyzer never silently skips a file.
"""

from __future__ import annotations

import json
import shlex
from pathlib import Path

from .astlite import Loop, SourceFile

_UNORDERED_MARKERS = ("unordered_map", "unordered_set", "unordered_multimap",
                      "unordered_multiset")


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:  # library present but no loadable libclang.so
        return False
    return True


def load_compile_args(cc_path: Path) -> dict[str, list[str]]:
    """file (resolved posix path) -> compiler args (without the compiler
    itself and the source file)."""
    out: dict[str, list[str]] = {}
    with cc_path.open() as fh:
        entries = json.load(fh)
    for entry in entries:
        src = str((Path(entry["directory"]) / entry["file"]).resolve())
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        args = [a for a in argv[1:]
                if a != entry["file"] and not a.endswith(src)]
        # Strip -o <obj> / -c which confuse in-memory parses.
        cleaned: list[str] = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            if a == "-c":
                continue
            cleaned.append(a)
        out[src] = cleaned
    return out


def _loop_kind(type_spelling: str) -> str:
    if any(m in type_spelling for m in _UNORDERED_MARKERS):
        return "unordered"
    if ("std::map<" in type_spelling or "std::set<" in type_spelling) and \
            "*" in type_spelling.split(",")[0]:
        return "ptr-ordered"
    return "ordered" if ("std::map<" in type_spelling
                         or "std::set<" in type_spelling) else "unknown"


def extract_loops(sf: SourceFile, args: list[str]) -> list[Loop] | None:
    """Range-for loops of `sf` with AST-resolved container kinds, or None
    when the translation unit cannot be parsed."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(str(sf.path), args=args)
    except Exception:
        return None
    if tu is None:
        return None
    loops: list[Loop] = []

    def visit(cur) -> None:
        if cur.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cur.get_children())
            if children:
                # Last child is the body; the range expression is the
                # child right before it.
                body = children[-1]
                rng = children[-2] if len(children) >= 2 else None
                kind = "unknown"
                name = "<expr>"
                if rng is not None:
                    spelling = rng.type.get_canonical().spelling
                    kind = _loop_kind(spelling)
                    toks = [t.spelling for t in rng.get_tokens()]
                    if toks:
                        name = toks[-1] if len(toks) == 1 else "".join(toks)
                b0 = body.extent.start.line - 1
                b1 = body.extent.end.line
                body_text = "\n".join(sf.code_lines[b0:b1])
                body_end_off = (sf.line_starts[min(b1, len(sf.line_starts)
                                                   - 1)])
                loops.append(Loop(cur.extent.start.line - 1, name, kind,
                                  body_text, body_end_off))
        for ch in cur.get_children():
            if ch.location.file and \
                    str(ch.location.file) == str(sf.path):
                visit(ch)

    for ch in tu.cursor.get_children():
        if ch.location.file and str(ch.location.file) == str(sf.path):
            visit(ch)
    return loops
