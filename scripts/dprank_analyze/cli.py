"""Command line driver.

Usage:
    python3 scripts/dprank_analyze [--root DIR] [--backend auto|clang|astlite]
                                   [--json [FILE]] [--compile-commands PATH]
                                   [paths...]

Default file set: every .hpp/.cpp under <root>/src and <root>/tools.
Exit: 0 clean, 1 findings (including unused/malformed waivers), 2 error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import RULES
from .astlite import SourceFile, load_file, merge_pair
from .rules import (Finding, check_contract_coverage, check_iteration_rules,
                    check_nondet_sources, check_thread_captures)
from .waivers import WaiverTable

WAIVER_TAG = "dprank-analyze"


def collect_files(root: Path, paths: list[Path]) -> list[Path]:
    if paths:
        return [p.resolve() for p in paths]
    files: list[Path] = []
    for sub in ("src", "tools"):
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.hpp")))
            files.extend(sorted(base.rglob("*.cpp")))
    return files


def analyze(root: Path, files: list[Path], backend: str,
            compile_commands: Path | None) -> tuple[list[Finding], str, int]:
    """Returns (findings, backend_used, files_analyzed)."""
    from . import clang_backend

    use_clang = False
    cc_args: dict[str, list[str]] = {}
    if backend in ("auto", "clang"):
        cc = compile_commands or root / "build" / "compile_commands.json"
        if clang_backend.available() and cc.is_file():
            try:
                cc_args = clang_backend.load_compile_args(cc)
                use_clang = True
            except (OSError, json.JSONDecodeError, KeyError) as e:
                if backend == "clang":
                    raise SystemExit(
                        f"error: cannot load {cc}: {e}") from e
        elif backend == "clang":
            raise SystemExit(
                "error: --backend clang requires the clang Python "
                "bindings, a loadable libclang, and "
                f"{cc} (configure with "
                "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")

    waivers = WaiverTable(WAIVER_TAG, require_reason=True, lookback=2)
    models: list[SourceFile] = []
    by_rel: dict[str, SourceFile] = {}
    for path in files:
        try:
            sf = load_file(path, root)
        except ValueError:
            raise SystemExit(f"error: {path} is outside --root {root}")
        waivers.scan_file(path, sf.raw_lines)
        models.append(sf)
        by_rel[sf.rel] = sf

    # Pair .cpp with its header so member declarations resolve.
    for sf in models:
        if sf.rel.endswith(".cpp"):
            hdr = by_rel.get(sf.rel[:-4] + ".hpp")
            if hdr is not None:
                merge_pair(sf, hdr)
                merge_pair(hdr, sf)

    if use_clang:
        for sf in models:
            args = cc_args.get(str(sf.path))
            if args is None:
                continue
            loops = clang_backend.extract_loops(sf, args)
            if loops is not None:
                sf.loops = loops

    findings: list[Finding] = []
    for sf in models:
        check_iteration_rules(sf, waivers, findings)
        check_nondet_sources(sf, waivers, findings)
        check_thread_captures(sf, waivers, findings)
    check_contract_coverage(models, waivers, findings)

    for w in waivers.missing_reason():
        rel = w.path.relative_to(root).as_posix()
        findings.append(Finding(
            rel, w.line + 1, "malformed-waiver",
            f"waiver for ({', '.join(w.rules)}) has no `-- reason`; "
            "every analyzer waiver must say why the rule does not apply",
        ))
    for w, rule in waivers.unused():
        rel = w.path.relative_to(root).as_posix()
        findings.append(Finding(
            rel, w.line + 1, "unused-waiver",
            f"waiver for '{rule}' suppresses nothing — remove it (stale "
            "waivers reopen determinism holes silently)",
        ))

    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return findings, ("clang" if use_clang else "astlite"), len(models)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dprank_analyze",
        description="AST-level determinism & concurrency analyzer "
                    "(rules: " + ", ".join(sorted(RULES)) + ")")
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root (default: the checkout containing this "
             "package)")
    parser.add_argument(
        "--backend", choices=("auto", "clang", "astlite"), default="auto",
        help="auto: libclang when available, else the self-contained "
             "tokenizer; golden tests pin astlite")
    parser.add_argument(
        "--compile-commands", type=Path, default=None,
        help="compilation database (default: <root>/build/"
             "compile_commands.json)")
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="FILE",
        help="emit findings as JSON to FILE (or stdout with no value)")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="specific files to analyze (default: src/ and tools/ under "
             "--root)")
    args = parser.parse_args(argv)
    root = args.root.resolve()

    files = collect_files(root, args.paths)
    if not files:
        print("error: no input files", file=sys.stderr)
        return 2
    try:
        findings, backend, nfiles = analyze(
            root, files, args.backend, args.compile_commands)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    if args.json is not None:
        doc = {
            "version": 1,
            "backend": backend,
            "files": nfiles,
            "findings": [f.as_json() for f in findings],
        }
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)

    if args.json != "-":
        for f in findings:
            print(f)
    if findings:
        print(f"\ndprank_analyze[{backend}]: {len(findings)} finding(s) "
              f"in {nfiles} file(s)", file=sys.stderr)
        return 1
    if args.json != "-":
        print(f"dprank_analyze[{backend}]: clean ({nfiles} files)")
    return 0
