"""Self-contained structural extraction ("AST-lite").

Builds a per-file model from the scrubbed source — container
declarations, range-for loops with body extents, lambdas handed to
ThreadPool region APIs, validate() declarations and call sites — using
brace matching over position-preserved text. No compiler needed, so the
analyzer runs identically everywhere; the libclang backend (when
available) replaces only the loop/container-type resolution with real
AST types.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from pathlib import Path

from .tokens import find_matching, scrub

_CONTAINER_RE = re.compile(
    r"\bstd::(unordered_(?:multi)?map|unordered_(?:multi)?set"
    r"|(?:multi)?map|(?:multi)?set)\s*<"
)
_IDENT_AFTER_RE = re.compile(r"\s*[&*]?\s*([A-Za-z_]\w*)")
_FOR_RE = re.compile(r"\bfor\s*\(")
_RANGE_EXPR_ID_RE = re.compile(r"^\s*\*?\s*([A-Za-z_]\w*)\s*$")
_ITER_BEGIN_RE = re.compile(r"=\s*([A-Za-z_]\w*)\s*(?:\.|->)\s*begin\s*\(")
_CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")
_VALIDATE_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+)?"
    r"(?:void|bool|std::vector<std::string>)\s+validate\s*\("
)
_VALIDATE_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*validate\s*\(")
_TYPE_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Z]\w*)\s*[&*]?\s+([a-z_]\w*)\s*[;={(,]"
)
_SMART_PTR_RE = re.compile(
    r"\bstd::(?:unique|shared)_ptr\s*<\s*(?:const\s+)?([A-Z]\w*)\s*>"
    r"\s*([a-z_]\w*)"
)
_REGION_CALL_RE = re.compile(
    r"\b(?:parallel_region|\w*pool\w*\s*(?:\.|->)\s*run)\s*\("
)


@dataclass
class Loop:
    line: int  # 0-based line of the `for`
    container: str  # iterated identifier (or "<inline>")
    kind: str  # unordered | ptr-ordered | ordered | unknown
    body: str  # scrubbed body text
    body_end_off: int  # flat offset one past the body


@dataclass
class RegionLambda:
    line: int  # 0-based line of the lambda's `[`
    by_ref: bool
    params: list[str]
    body: str


@dataclass
class SourceFile:
    path: Path
    rel: str
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    flat: str = ""
    line_starts: list[int] = field(default_factory=list)
    containers: dict[str, str] = field(default_factory=dict)  # name -> kind
    type_of: dict[str, str] = field(default_factory=dict)  # ident -> class
    loops: list[Loop] = field(default_factory=list)
    region_lambdas: list[RegionLambda] = field(default_factory=list)
    validate_decls: list[tuple[str, int]] = field(default_factory=list)
    validate_calls: list[tuple[str, int]] = field(default_factory=list)

    def line_of(self, off: int) -> int:
        return bisect.bisect_right(self.line_starts, off) - 1


def container_kind(name: str, args: str) -> str:
    key = args.split(",")[0].strip()
    if name.startswith("unordered_"):
        return "unordered"
    # std::map / std::set keyed on a pointer orders by address.
    if key.endswith("*"):
        return "ptr-ordered"
    return "ordered"


def _scan_containers(sf: SourceFile) -> None:
    for m in _CONTAINER_RE.finditer(sf.flat):
        lt = m.end() - 1
        try:
            gt = find_matching(sf.flat, lt)
        except ValueError:
            continue
        args = sf.flat[lt + 1 : gt]
        kind = container_kind(m.group(1), args)
        if kind == "unordered" and args.split(",")[0].strip().endswith("*"):
            kind = "unordered"  # address-hashed; nondet either way
        im = _IDENT_AFTER_RE.match(sf.flat, gt + 1)
        if im is None:
            continue
        name = im.group(1)
        if name in ("const",):
            im2 = _IDENT_AFTER_RE.match(sf.flat, im.end())
            if im2 is None:
                continue
            name = im2.group(1)
        sf.containers.setdefault(name, kind)


def _scan_types(sf: SourceFile) -> None:
    for line in sf.code_lines:
        for m in _SMART_PTR_RE.finditer(line):
            sf.type_of.setdefault(m.group(2), m.group(1))
        for m in _TYPE_DECL_RE.finditer(line):
            sf.type_of.setdefault(m.group(2), m.group(1))


def _body_extent(sf: SourceFile, after: int) -> tuple[str, int]:
    """Body text starting at the first non-space char at/after `after`:
    a braced block, or a single statement up to ';'."""
    n = len(sf.flat)
    i = after
    while i < n and sf.flat[i] in " \n\t":
        i += 1
    if i >= n:
        return "", i
    if sf.flat[i] == "{":
        end = find_matching(sf.flat, i)
        return sf.flat[i + 1 : end], end + 1
    end = sf.flat.find(";", i)
    if end == -1:
        end = n - 1
    return sf.flat[i : end + 1], end + 1


def _iterated_kind(sf: SourceFile, expr: str) -> tuple[str, str]:
    expr = expr.strip()
    if "std::unordered_" in expr:
        return "<inline>", "unordered"
    m = _RANGE_EXPR_ID_RE.match(expr)
    if m is None:
        return expr, "unknown"
    name = m.group(1)
    return name, sf.containers.get(name, "unknown")


def _scan_loops(sf: SourceFile) -> None:
    for m in _FOR_RE.finditer(sf.flat):
        op = m.end() - 1
        try:
            cp = find_matching(sf.flat, op)
        except ValueError:
            continue
        header = sf.flat[op + 1 : cp]
        body, body_end = _body_extent(sf, cp + 1)
        # Range-for: the ':' at top paren depth splits decl from range.
        depth = 0
        colon = -1
        for i, ch in enumerate(header):
            if ch in "<([{":
                depth += 1
            elif ch in ">)]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if i + 1 < len(header) and header[i + 1] == ":":
                    continue
                if i > 0 and header[i - 1] == ":":
                    continue
                colon = i
                break
        if colon >= 0:
            name, kind = _iterated_kind(sf, header[colon + 1 :])
        else:
            it = _ITER_BEGIN_RE.search(header)
            if it is None:
                continue
            name = it.group(1)
            kind = sf.containers.get(name, "unknown")
        sf.loops.append(
            Loop(sf.line_of(m.start()), name, kind, body, body_end)
        )


def _lambda_params(text: str) -> list[str]:
    params = []
    for piece in text.split(","):
        words = re.findall(r"[A-Za-z_]\w*", piece)
        params.append(words[-1] if words else "")
    return params


def _find_lambda_start(args: str) -> int:
    """Offset of a lambda literal's '[' at the top level of an argument
    list (-1 if none): a '[' whose preceding non-space char starts an
    argument, so array subscripts never match."""
    depth = 0
    prev = ""
    for i, ch in enumerate(args):
        if ch == "[" and depth == 0 and prev in ("", ","):
            return i
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if not ch.isspace():
            prev = ch
    return -1


def _scan_region_lambdas(sf: SourceFile) -> None:
    for m in _REGION_CALL_RE.finditer(sf.flat):
        op = m.end() - 1
        try:
            cp = find_matching(sf.flat, op)
        except ValueError:
            continue
        args = sf.flat[op + 1 : cp]
        i = _find_lambda_start(args)
        if i == -1:
            continue
        start = op + 1 + i
        try:
            cap_end = find_matching(sf.flat, start)
        except ValueError:
            continue
        capture = sf.flat[start + 1 : cap_end]
        j = cap_end + 1
        while j < len(sf.flat) and sf.flat[j] in " \n\t":
            j += 1
        params: list[str] = []
        if j < len(sf.flat) and sf.flat[j] == "(":
            pend = find_matching(sf.flat, j)
            params = _lambda_params(sf.flat[j + 1 : pend])
            j = pend + 1
        while j < cp and sf.flat[j] != "{":
            j += 1
        if j >= cp:
            continue
        bend = find_matching(sf.flat, j)
        body = sf.flat[j + 1 : bend]
        sf.region_lambdas.append(
            RegionLambda(sf.line_of(start), "&" in capture, params, body)
        )


def _scan_validate(sf: SourceFile) -> None:
    # Class spans: (name, open_off, close_off), innermost wins.
    spans: list[tuple[str, int, int]] = []
    for m in _CLASS_RE.finditer(sf.flat):
        tail = sf.flat[m.end() : m.end() + 200]
        brace = tail.find("{")
        semi = tail.find(";")
        if brace == -1 or (semi != -1 and semi < brace):
            continue  # forward declaration
        op = m.end() + brace
        try:
            cl = find_matching(sf.flat, op)
        except ValueError:
            continue
        spans.append((m.group(1), op, cl))

    for idx, line in enumerate(sf.code_lines):
        if _VALIDATE_DECL_RE.match(line):
            off = sf.line_starts[idx]
            inner: tuple[str, int, int] | None = None
            for name, op, cl in spans:
                if op < off < cl and (inner is None or op > inner[1]):
                    inner = (name, op, cl)
            if inner is not None:
                sf.validate_decls.append((inner[0], idx))
        for m in _VALIDATE_CALL_RE.finditer(line):
            sf.validate_calls.append((m.group(1), idx))


def load_file(path: Path, root: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    sf = SourceFile(path=path, rel=path.relative_to(root).as_posix())
    sf.raw_lines = text.splitlines()
    sf.code_lines = scrub(text)
    sf.flat = "\n".join(sf.code_lines)
    starts = [0]
    for line in sf.code_lines[:-1]:
        starts.append(starts[-1] + len(line) + 1)
    sf.line_starts = starts
    _scan_containers(sf)
    _scan_types(sf)
    _scan_loops(sf)
    _scan_region_lambdas(sf)
    _scan_validate(sf)
    return sf


def merge_pair(a: SourceFile, b: SourceFile) -> None:
    """Share declarations between a .cpp and its paired .hpp, so member
    containers declared in the header resolve in the implementation."""
    for name, kind in b.containers.items():
        a.containers.setdefault(name, kind)
    for name, cls in b.type_of.items():
        a.type_of.setdefault(name, cls)
