"""dprank_analyze: AST-level determinism & concurrency analyzer.

Companion to scripts/dprank_lint.py (line-regex rules). This package
implements the rule classes that need structure — loop bodies, lambda
captures, cross-file call graphs — rather than single lines:

  unordered-iteration (R1)  iteration over std::unordered_map/set (or a
                            pointer-keyed container) in a simulation
                            subsystem whose body emits messages, appends
                            to history, or draws from the seeded RNG.
  nondet-source       (R2)  rand()/std::random_device, wall-clock reads
                            in simulation code, pointer-value ordering
                            (std::less<T*>, pointer-keyed containers,
                            std::hash<T*>).
  float-order         (R3)  double accumulation (+=, std::fma) folded in
                            unordered-container iteration order in
                            engine/quality code.
  thread-capture      (R4)  lambdas handed to ThreadPool region APIs that
                            capture by reference without the peer-sharded
                            index pattern (first statement derives the
                            shard's slice from the shard index).
  contract-coverage   (R5)  a class declares validate() but no contract
                            sweep outside its own translation unit ever
                            calls it.

Waivers: `// dprank-analyze: allow(<rule>) -- reason`, on the offending
line or the line directly above. The reason is mandatory, and a waiver
that suppresses nothing is itself an error (unused-waiver) so stale
waivers cannot linger after a refactor.

Backends: with the `clang` Python bindings and build/compile_commands.json
present, loop/container types are resolved from the real AST; otherwise a
self-contained tokenizer ("astlite") resolves them from declarations, so
the analyzer never silently skips. `--backend astlite` pins the
tokenizer path (what the golden tests use).
"""

from __future__ import annotations

RULES = {
    "unordered-iteration": (
        "iteration over an unordered/pointer-keyed container with an "
        "order-sensitive body (message emission, history append, RNG draw)"
    ),
    "nondet-source": (
        "nondeterminism source: platform RNG, wall-clock in simulation "
        "code, or pointer-value ordering"
    ),
    "float-order": (
        "floating-point accumulation folded in unordered iteration order"
    ),
    "thread-capture": (
        "by-reference lambda capture into a ThreadPool region without "
        "the peer-sharded index pattern"
    ),
    "contract-coverage": (
        "class declares validate() but no contract sweep reaches it"
    ),
    "unused-waiver": "waiver suppresses nothing",
    "malformed-waiver": "waiver is missing its `-- reason`",
}

# Subsystems that run inside the simulation and must replay bit-for-bit.
SIM_DIRS = (
    "src/sim",
    "src/pagerank",
    "src/net",
    "src/dht",
    "src/p2p",
    "src/stream",
    "src/engines",
)

# Engine/quality code where FP fold order is pinned by design (the PR 3
# shard merges and the PR 5 sorted source-peer delta folds).
FLOAT_ORDER_DIRS = ("src/pagerank", "src/engines")

# Where seeded randomness is implemented (exempt from the RNG patterns).
RNG_IMPL_FILES = ("src/common/rng.hpp", "src/common/rng.cpp")
