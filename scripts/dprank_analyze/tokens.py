"""Position-preserving C++ comment/string scrubbing and brace helpers.

`scrub` blanks comments, string literals (including raw strings), and
char literals with spaces, keeping every remaining character at its
original (line, column). Downstream passes can therefore brace-match and
regex over the scrubbed text while reporting positions in the real file.
"""

from __future__ import annotations

import re

_RAW_OPEN = re.compile(r'R"([^()\\ ]{0,16})\(')


def scrub(text: str) -> list[str]:
    out: list[str] = []
    i, n = 0, len(text)
    buf: list[str] = []
    state = "code"  # code | line_comment | block_comment | str | char | raw
    raw_close = ""
    while i < n:
        c = text[i]
        if c == "\n":
            buf.append("\n")
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            m = _RAW_OPEN.match(text, i)
            if m is not None:
                state = "raw"
                raw_close = ")" + m.group(1) + '"'
                buf.append(" " * (m.end() - i))
                i = m.end()
                continue
            if c == '"':
                state = "str"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                # C++14 digit separator (10'000, 0xFF'FF): a ' inside a
                # numeric literal is not a char literal. The token run
                # ending here starts with a digit exactly when we are in
                # a number.
                j = i - 1
                while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                    j -= 1
                if j + 1 < i and text[j + 1].isdigit():
                    buf.append(" ")
                    i += 1
                    continue
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
            i += 1
            continue
        if state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and i + 1 < n and \
                    text[i + 1] == "/":
                state = "code"
                buf.append("  ")
                i += 2
                continue
            buf.append(" ")
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_close, i):
                buf.append(" " * (len(raw_close) - 1) + '"')
                i += len(raw_close)
                state = "code"
                continue
            buf.append(" ")
            i += 1
            continue
        # str / char
        if c == "\\":
            buf.append("  ")
            i += 2
            continue
        if (state == "str" and c == '"') or (state == "char" and c == "'"):
            buf.append(c)
            state = "code"
            i += 1
            continue
        buf.append(" ")
        i += 1
    return "".join(buf).split("\n")


def match_brace(lines: list[str], line: int, col: int) -> tuple[int, int]:
    """Given scrubbed lines and the position of an opening '{', '(' or
    '<', return (line, col) of the matching closer. Raises ValueError on
    unbalanced input."""
    opener = lines[line][col]
    closer = {"{": "}", "(": ")", "<": ">", "[": "]"}[opener]
    depth = 0
    li, ci = line, col
    while li < len(lines):
        row = lines[li]
        while ci < len(row):
            ch = row[ci]
            if ch == opener:
                depth += 1
            elif ch == closer:
                depth -= 1
                if depth == 0:
                    return li, ci
            ci += 1
        li += 1
        ci = 0
    raise ValueError(f"unbalanced {opener!r} at line {line + 1}")


def find_matching(flat: str, pos: int) -> int:
    """Match an opening bracket in a flat string; returns closer index."""
    opener = flat[pos]
    closer = {"{": "}", "(": ")", "<": ">", "[": "]"}[opener]
    depth = 0
    for i in range(pos, len(flat)):
        if flat[i] == opener:
            depth += 1
        elif flat[i] == closer:
            depth -= 1
            if depth == 0:
                return i
    raise ValueError(f"unbalanced {opener!r} at offset {pos}")
