#!/usr/bin/env python3
"""dprank custom lint: project rules clang-tidy cannot express.

Every rule here guards a determinism or concurrency invariant of the
simulator that generic tooling does not know about:

  wall-clock      Simulation code (src/sim, src/pagerank, src/net,
                  src/dht, src/p2p) must not read real time or sleep —
                  simulated time comes from the pass clock / time model
                  (sim/time_model.hpp), and a wall-clock read makes runs
                  irreproducible. Telemetry that *measures* the simulator
                  (not the simulation) carries an explicit waiver.

  seeded-rng      All randomness flows through common/rng.hpp's seeded
                  Xoshiro generator. std::random_device, the std <random>
                  engines, and C rand()/srand() create unseeded or
                  platform-dependent streams that break bit-identical
                  replay.

  vector-bool     In threaded subsystems (any file using <thread>,
                  <atomic> or the thread pool), mutable flag arrays must
                  not be std::vector<bool>: its packed bits share words,
                  so concurrent writers to "distinct" elements race. Use
                  std::vector<std::uint8_t>. Read-only sharing is safe
                  and may be waived.

  mutable-global  No mutable global or function-local static state
                  outside the sanctioned registries — hidden globals leak
                  state between runs in one process and between tests.
                  (const/constexpr statics are fine.)

  hot-path-map    The messaging hot path (src/net, src/pagerank) is
                  flat-map/array-backed: node-based std::map and
                  std::unordered_map pay an allocation plus pointer
                  chases per message, which is exactly the cost the
                  FlatMap64/arena work removed. New code there should
                  use FlatMap64 (common/flat_map.hpp), a plain vector,
                  or an EpochArray; cold-path uses (config tables,
                  metrics export, a rarely-touched delay buffer) carry
                  an explicit waiver naming why the path is cold.

  unaligned-hot-buffer
                  Files on the gather hot path (hot-path subsystems that
                  include the fold kernel, common/simd.hpp) hold the
                  arrays its per-lane gathers stream through. A raw
                  std::vector<double>/<float> buffer there gets the
                  allocator's default 16-byte alignment, splitting cache
                  lines under the 4-lane gather; use AlignedVec
                  (common/arena.hpp). Buffers the kernel never touches
                  (outbox parking, audit scratch) or whose type is fixed
                  by a public interface carry an explicit waiver naming
                  why.

  include-what-you-use (iwyu-lite)
                  A file that names a std:: container/utility must
                  include its header directly (or in its paired .hpp) —
                  transitive includes break silently when the unrelated
                  header that provided them changes.

Waivers: append `// dprank-lint: allow(<rule>)` to the offending line,
or put it on the line directly above. Each waiver should sit next to a
comment explaining why the rule does not apply. A waiver that suppresses
nothing is itself an error (unused-waiver): stale waivers reopen the
hole they once covered, silently. (Waiver parsing is shared with
scripts/dprank_analyze, which enforces the same policy.)

Usage:  python3 scripts/dprank_lint.py [--root DIR]
Exit:   0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from dprank_analyze.waivers import WaiverTable  # noqa: E402

# Subsystems that run *inside* the simulation and must be deterministic.
SIM_DIRS = ("src/sim", "src/pagerank", "src/net", "src/dht", "src/p2p",
            "src/stream", "src/engines")

# Where seeded randomness is implemented (exempt from seeded-rng).
RNG_FILES = ("src/common/rng.hpp", "src/common/rng.cpp")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)::now"
    r"|std::this_thread::sleep_(for|until)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bstd::time\s*\("
)

SEEDED_RNG_RE = re.compile(
    r"std::random_device"
    r"|std::(mt19937|mt19937_64|minstd_rand0?|ranlux\w+|knuth_b|default_random_engine)\b"
    r"|\b(?:std::)?s?rand\s*\("
)

# A mutable std::vector<bool> variable or member declaration: not a
# const/constexpr object, not a reference/pointer to one.
VECTOR_BOOL_DECL_RE = re.compile(r"std::vector<bool>\s*[>&*]?\s*\w+\s*[;({=\[]")
VECTOR_BOOL_CONST_RE = re.compile(r"\bconst\s+std::vector<bool>|std::vector<bool>\s*&")
THREADED_MARKERS = ("<thread>", "<atomic>", "thread_pool.hpp", "std::jthread")

# `static` at namespace/function scope introducing mutable state. Lines
# that declare functions (contain an opening paren) or immutable data
# (const/constexpr) are not findings.
MUTABLE_STATIC_RE = re.compile(r"^\s*static\s+(?!const\b|constexpr\b|assert\b)")
# The sanctioned registries: process-wide sinks that exist precisely to
# be the one blessed piece of global state (obs metrics registry, bench
# result stores). A Meyers singleton of one of these types is the
# pattern, not a violation of it.
REGISTRY_TYPES_RE = re.compile(r"\b(MetricsRegistry|ResultStore)\b")

# Subsystems forming the per-message hot path (see hot-path-map above).
HOT_PATH_DIRS = ("src/net", "src/pagerank", "src/stream", "src/engines")
HOT_PATH_MAP_RE = re.compile(r"\bstd::(unordered_map|map)\s*<")

# Gather hot path (see unaligned-hot-buffer above): a hot-path file that
# includes the fold kernel holds the buffers its gathers stream through.
GATHER_MARKER = "common/simd.hpp"
HOT_BUFFER_DECL_RE = re.compile(r"\bstd::vector<\s*(double|float)\s*>\s*\w+\s*[;{=\[]")

# iwyu-lite: std symbols whose header must be included directly. Kept to
# high-signal, low-noise symbols (containers and threading primitives
# whose transitive availability varies across standard libraries).
IWYU_SYMBOLS = {
    "std::string": "<string>",
    "std::vector": "<vector>",
    "std::map": "<map>",
    "std::unordered_map": "<unordered_map>",
    "std::unordered_set": "<unordered_set>",
    "std::set": "<set>",
    "std::deque": "<deque>",
    "std::optional": "<optional>",
    "std::function": "<functional>",
    "std::unique_ptr": "<memory>",
    "std::shared_ptr": "<memory>",
    "std::mutex": "<mutex>",
    "std::atomic": "<atomic>",
    "std::thread": "<thread>",
    "std::jthread": "<thread>",
    "std::condition_variable": "<condition_variable>",
}
IWYU_WORD_RE = re.compile(
    "|".join(re.escape(s) + r"\b" for s in sorted(IWYU_SYMBOLS, key=len, reverse=True))
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Remove string/char literals and // comments so patterns in prose
    or log messages do not trip rules. (Block comments are handled by the
    per-file scanner.)"""
    out = []
    i, n = 0, len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def relative(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def lint_file(path: Path, root: Path, waivers: WaiverTable) -> list[Finding]:
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    rel = relative(path, root)
    waivers.scan_file(path, raw_lines)

    # Pre-compute code-only lines (no strings, no // comments, block
    # comments blanked) for the pattern rules.
    code_lines: list[str] = []
    in_block = False
    for line in raw_lines:
        stripped = strip_comments_and_strings(line)
        if in_block:
            end = stripped.find("*/")
            if end == -1:
                code_lines.append("")
                continue
            stripped = stripped[end + 2 :]
            in_block = False
        # Blank any /* ... */ sections (possibly several per line).
        while True:
            start = stripped.find("/*")
            if start == -1:
                break
            end = stripped.find("*/", start + 2)
            if end == -1:
                stripped = stripped[:start]
                in_block = True
                break
            stripped = stripped[:start] + " " + stripped[end + 2 :]
        code_lines.append(stripped)

    findings: list[Finding] = []

    def report(idx: int, rule: str, message: str) -> None:
        if waivers.allows(path, idx, rule):
            return
        findings.append(Finding(path, idx + 1, rule, message))

    in_sim = rel.startswith(SIM_DIRS)
    in_hot_path = rel.startswith(HOT_PATH_DIRS)
    in_gather_path = in_hot_path and GATHER_MARKER in text
    is_rng_impl = rel in RNG_FILES
    threaded = any(marker in text for marker in THREADED_MARKERS)

    for idx, code in enumerate(code_lines):
        if not code:
            continue
        if in_sim and WALL_CLOCK_RE.search(code):
            report(
                idx,
                "wall-clock",
                "simulation code must not read real time or sleep; use the "
                "pass clock / time model (sim/time_model.hpp)",
            )
        if not is_rng_impl and SEEDED_RNG_RE.search(code):
            report(
                idx,
                "seeded-rng",
                "use the seeded generator in common/rng.hpp; platform RNG "
                "breaks bit-identical replay",
            )
        if (
            threaded
            and VECTOR_BOOL_DECL_RE.search(code)
            and not VECTOR_BOOL_CONST_RE.search(code)
        ):
            report(
                idx,
                "vector-bool",
                "mutable std::vector<bool> in a threaded subsystem: packed "
                "bits share words, so concurrent writers race — use "
                "std::vector<std::uint8_t>",
            )
        if in_hot_path and HOT_PATH_MAP_RE.search(code):
            report(
                idx,
                "hot-path-map",
                "node-based map on the messaging hot path: use FlatMap64 "
                "(common/flat_map.hpp), a vector, or an EpochArray; waive "
                "only with a comment naming why this path is cold",
            )
        if in_gather_path and HOT_BUFFER_DECL_RE.search(code):
            report(
                idx,
                "unaligned-hot-buffer",
                "raw std::vector<double/float> buffer in a gather-hot-path "
                "file: the fold kernel's lane gathers want 64-byte-aligned "
                "arrays — use AlignedVec (common/arena.hpp), or waive with "
                "a comment naming why this buffer is never gathered",
            )
        if (
            MUTABLE_STATIC_RE.search(code)
            and "(" not in code
            and not REGISTRY_TYPES_RE.search(code)
        ):
            report(
                idx,
                "mutable-global",
                "mutable static state outside a sanctioned registry leaks "
                "between runs and tests",
            )

    # iwyu-lite: direct includes of this file, plus (for a .cpp) its
    # paired header, which owns the includes for declarations it exposes.
    includes: set[str] = set()
    for line in raw_lines:
        m = INCLUDE_RE.match(line)
        if m:
            includes.add(m.group(1).replace('"', "").replace("<", "").replace(">", ""))
            includes.add(m.group(1))
    if path.suffix == ".cpp":
        paired = path.with_suffix(".hpp")
        if paired.exists():
            for line in paired.read_text(encoding="utf-8").splitlines():
                m = INCLUDE_RE.match(line)
                if m:
                    includes.add(
                        m.group(1).replace('"', "").replace("<", "").replace(">", "")
                    )
                    includes.add(m.group(1))

    missing: dict[str, int] = {}
    for idx, code in enumerate(code_lines):
        for m in IWYU_WORD_RE.finditer(code):
            symbol = m.group(0)
            header = IWYU_SYMBOLS[symbol]
            if header in includes or header.strip("<>") in includes:
                continue
            key = f"{symbol} -> {header}"
            if key not in missing:
                missing[key] = idx
    for key, idx in sorted(missing.items(), key=lambda kv: kv[1]):
        symbol, header = key.split(" -> ")
        report(
            idx,
            "include-what-you-use",
            f"{symbol} used but {header} is not included directly "
            "(transitive includes break silently)",
        )

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="specific files to lint (default: all C++ sources under "
        "src/, tools/, tests/, bench/)",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    if args.paths:
        files = [p.resolve() for p in args.paths]
    else:
        files = []
        for sub in ("src", "tools", "tests", "bench"):
            base = root / sub
            if base.is_dir():
                files.extend(sorted(base.rglob("*.hpp")))
                files.extend(sorted(base.rglob("*.cpp")))

    waivers = WaiverTable("dprank-lint")
    all_findings: list[Finding] = []
    for f in files:
        try:
            all_findings.extend(lint_file(f, root, waivers))
        except ValueError:
            print(f"error: {f} is outside --root {root}", file=sys.stderr)
            return 2

    # Same policy as dprank_analyze: a waiver that suppressed nothing is
    # stale and must go, or the rule it silences can regress unnoticed.
    for waiver, rule in waivers.unused():
        all_findings.append(Finding(
            waiver.path, waiver.line + 1, "unused-waiver",
            f"waiver for '{rule}' suppresses nothing — remove it",
        ))
    all_findings.sort(key=lambda f: (str(f.path), f.line, f.rule))

    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"\ndprank_lint: {len(all_findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"dprank_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
