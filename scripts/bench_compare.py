#!/usr/bin/env python3
"""Compare BENCH_*.json exports against the committed baselines.

Usage:
    python3 scripts/bench_compare.py CANDIDATE_DIR [--baseline-dir DIR]
                                     [--max-wall-regress PCT]

For every baseline bench/baselines/BENCH_<name>.json with a matching
BENCH_<name>.json in CANDIDATE_DIR, prints a small table of the metrics
that matter for the messaging hot path:

    pass_wall_us  pagerank.pass_wall_us histogram sum — per-pass engine
                  time, the number the perf acceptance criteria are
                  written against (immune to process startup noise)
    messages      net.messages counter — wire-update count; changes mean
                  the convergence behavior changed, not just the speed
    passes        pagerank.passes counter

plus advisory memory telemetry when both sides recorded it: the mem.*
gauges (graph/engine heap bytes, process peak RSS) and bench_scale's
per-config bytes-per-edge / peak-RSS extras. Memory drift never gates —
RSS is allocator- and runner-dependent — but a bytes/edge jump is the
first sign the compact layout regressed.

The comparison refuses to judge apples against oranges, and that refusal
is now an ERROR, not a skip: a config-block mismatch (sizes / seed /
threads / full_scale) means the candidate measured something other than
what the baseline recorded, and treating it as "pass" silently disabled
the gate (exactly what happened when the perf job ran table1/table3 with
no committed baseline). Likewise a candidate BENCH_*.json with no
committed baseline is an error: record one at threads=1 on a quiet
machine and commit it under bench/baselines/.

Exit status is non-zero when pass_wall_us regressed by more than
--max-wall-regress percent (default 25), on a config mismatch, or on a
candidate without a baseline. Message-count and pass-count drift stay
advisory text, as does a baseline whose bench was not run, because
machine noise on shared CI runners makes hard gates on small absolute
times flaky; the 25% bar is wide enough to only catch real regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

CONFIG_KEYS = ("sizes", "seed", "threads", "full_scale")


def load(path: pathlib.Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def pass_wall_sum(doc: dict) -> float | None:
    hist = doc.get("metrics", {}).get("histograms", {}).get(
        "pagerank.pass_wall_us")
    return None if hist is None else float(hist["sum"])


def counter(doc: dict, name: str) -> int | None:
    value = doc.get("metrics", {}).get("counters", {}).get(name)
    return None if value is None else int(value)


def gauge(doc: dict, name: str) -> float | None:
    value = doc.get("metrics", {}).get("gauges", {}).get(name)
    return None if value is None else float(value)


# Memory telemetry shown per comparison when both sides recorded it —
# always advisory: footprint drift flags a layout change worth a look
# (did bytes/edge grow back past the compact-layout numbers?), but RSS
# depends on allocator and runner, so it never gates.
MEMORY_GAUGES = (
    ("graph_bytes", "mem.graph_bytes"),
    ("engine_bytes", "mem.engine_bytes"),
    ("peak_rss", "mem.peak_rss_bytes"),
)
MEMORY_EXTRA_SUFFIXES = ("bytes_per_edge", "peak_rss_mb")


def memory_rows(base: dict, cand: dict) -> list[tuple[str, float, float]]:
    rows: list[tuple[str, float, float]] = []
    for label, name in MEMORY_GAUGES:
        old, new = gauge(base, name), gauge(cand, name)
        if old is not None and new is not None:
            rows.append((label, old, new))
    # Per-config extras (bench_scale): "<size>/<peers>/bytes_per_edge" etc.
    base_extra = base.get("extra", {})
    cand_extra = cand.get("extra", {})
    for key in sorted(base_extra):
        if key.endswith(MEMORY_EXTRA_SUFFIXES) and key in cand_extra:
            rows.append((key, float(base_extra[key]), float(cand_extra[key])))
    return rows


def pct(new: float, old: float) -> str:
    if old == 0:
        return "n/a"
    return f"{100.0 * (new - old) / old:+.1f}%"


def compare_one(name: str, base: dict, cand: dict,
                max_wall_regress: float) -> bool:
    """Print the comparison; True when the wall gate passes."""
    base_cfg = {k: base.get("config", {}).get(k) for k in CONFIG_KEYS}
    cand_cfg = {k: cand.get("config", {}).get(k) for k in CONFIG_KEYS}
    if base_cfg != cand_cfg:
        print(f"{name}: FAIL — config mismatch: the candidate measured a "
              f"different experiment than the baseline records\n"
              f"  baseline  {base_cfg}\n"
              f"  candidate {cand_cfg}\n"
              f"  (re-run the bench with the baseline's config, or re-record "
              f"the baseline and commit it)")
        return False

    rows = [
        ("pass_wall_us", pass_wall_sum(base), pass_wall_sum(cand)),
        ("messages", counter(base, "net.messages"),
         counter(cand, "net.messages")),
        ("passes", counter(base, "pagerank.passes"),
         counter(cand, "pagerank.passes")),
    ]
    print(f"{name}:")
    for label, old, new in rows:
        if old is None or new is None:
            print(f"  {label:<14} (missing)")
            continue
        print(f"  {label:<14} {old:>14.1f} -> {new:>14.1f}  {pct(new, old)}")

    for label, old_mem, new_mem in memory_rows(base, cand):
        print(f"  {label:<28} {old_mem:>14.1f} -> {new_mem:>14.1f}  "
              f"{pct(new_mem, old_mem)} (advisory)")

    old_wall, new_wall = rows[0][1], rows[0][2]
    if old_wall is None or new_wall is None or old_wall == 0:
        print("  wall gate: skipped (pass_wall_us unavailable)")
        return True
    regress = 100.0 * (new_wall - old_wall) / old_wall
    if regress > max_wall_regress:
        print(f"  wall gate: FAIL — pass_wall_us regressed {regress:.1f}% "
              f"(> {max_wall_regress:.0f}% allowed)")
        return False
    print(f"  wall gate: ok ({regress:+.1f}% vs {max_wall_regress:.0f}% bar)")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json exports against baselines")
    parser.add_argument("candidate_dir", type=pathlib.Path,
                        help="directory holding freshly produced "
                             "BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent
                        / "bench" / "baselines")
    parser.add_argument("--max-wall-regress", type=float, default=25.0,
                        help="percent pass_wall_us regression that fails "
                             "the run (default 25)")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 2

    ok = True
    compared = 0
    baseline_names = {p.name for p in baselines}
    for base_path in baselines:
        cand_path = args.candidate_dir / base_path.name
        if not cand_path.exists():
            print(f"{base_path.stem}: no candidate in {args.candidate_dir} "
                  "(advisory — bench not run)")
            continue
        compared += 1
        ok &= compare_one(base_path.stem, load(base_path), load(cand_path),
                          args.max_wall_regress)

    # A candidate nobody can judge is a hole in the gate, not a pass:
    # every produced BENCH_*.json needs a committed baseline.
    for cand_path in sorted(args.candidate_dir.glob("BENCH_*.json")):
        if cand_path.name not in baseline_names:
            print(f"{cand_path.stem}: FAIL — no committed baseline under "
                  f"{args.baseline_dir}; record one at threads=1 on a quiet "
                  f"machine and commit it")
            ok = False

    if compared == 0:
        print("error: no candidate files matched any baseline",
              file=sys.stderr)
        return 2
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
