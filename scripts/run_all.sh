#!/usr/bin/env bash
# Reproduce everything: build, tests, all table/figure/ablation benches.
#
# Usage:
#   scripts/run_all.sh            # quick mode (10k/100k graphs)
#   DPRANK_FULL=1 scripts/run_all.sh   # the paper's full sweep
#
# Outputs land in test_output.txt and bench_output.txt at the repo root;
# set DPRANK_CSV_DIR to also collect machine-readable tables.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

# Static gates first: the custom lint and the determinism analyzer are
# cheap and catch exactly the bugs the seeded reruns below would only
# surface as flaky digests. The analyzer prefers the libclang backend
# when the configure above produced compile_commands.json, and falls
# back to its self-contained scanner otherwise.
python3 scripts/dprank_lint.py
python3 scripts/dprank_analyze --backend auto \
  --compile-commands build/compile_commands.json

ctest --test-dir build 2>&1 | tee test_output.txt

: "${DPRANK_CACHE_DIR:=.graph_cache}"
export DPRANK_CACHE_DIR
mkdir -p "$DPRANK_CACHE_DIR"

{
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo
    echo "##### $(basename "$b") #####"
    "$b"
  done
} 2>&1 | tee bench_output.txt
