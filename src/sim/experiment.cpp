#include "sim/experiment.hpp"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <tuple>

#include "graph/generator.hpp"
#include "graph/graph_io.hpp"
#include "pagerank/centralized.hpp"

namespace dprank {

std::shared_ptr<const Digraph> cached_paper_graph(std::uint64_t num_docs,
                                                  std::uint64_t seed) {
  // Deliberate process-lifetime memoization: tests and sweeps share one
  // graph per (size, seed) instead of regenerating it. Mutex-guarded.
  static std::mutex mu;  // dprank-lint: allow(mutable-global)
  // dprank-lint: allow(mutable-global)
  static std::map<std::pair<std::uint64_t, std::uint64_t>,
                  std::weak_ptr<const Digraph>>
      cache;
  const std::lock_guard lock(mu);
  const auto key = std::make_pair(num_docs, seed);
  if (auto existing = cache[key].lock()) return existing;

  std::shared_ptr<const Digraph> graph;
  // Read once per process in practice; the cache mutex is already held.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* dir = std::getenv("DPRANK_CACHE_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::filesystem::create_directories(dir);
    const auto path = std::filesystem::path(dir) /
                      ("web_" + std::to_string(num_docs) + "_s" +
                       std::to_string(seed) + ".dpg");
    graph = std::make_shared<const Digraph>(
        load_or_build(path, [&] { return paper_graph(num_docs, seed); }));
  } else {
    graph = std::make_shared<const Digraph>(paper_graph(num_docs, seed));
  }
  cache[key] = graph;
  return graph;
}

StandardExperiment::StandardExperiment(const ExperimentConfig& config)
    : config_(config),
      graph_(cached_paper_graph(config.num_docs, config.seed)),
      placement_(std::make_shared<const Placement>(Placement::random(
          config.num_docs, config.num_peers, config.seed))) {}

PagerankOptions StandardExperiment::pagerank_options() const {
  PagerankOptions opts;
  opts.damping = config_.damping;
  opts.epsilon = config_.epsilon;
  opts.threads = config_.threads;
  return opts;
}

namespace {

void wire_telemetry(DistributedPagerank& engine,
                    const StandardExperiment::Telemetry& telemetry) {
  if (telemetry.registry != nullptr) {
    engine.attach_metrics(*telemetry.registry);
  }
  if (telemetry.tracer != nullptr) {
    engine.attach_tracer(*telemetry.tracer, make_pass_clock(telemetry.net));
  }
}

}  // namespace

StandardExperiment::DistributedOutcome StandardExperiment::run_distributed(
    const DistributedPagerank::PassObserver& observer,
    const Telemetry& telemetry) const {
  DistributedPagerank engine(*graph_, *placement_, pagerank_options());
  wire_telemetry(engine, telemetry);
  DistributedOutcome out;
  if (config_.availability < 1.0) {
    ChurnSchedule churn(config_.num_peers, config_.availability,
                        config_.seed);
    out.run = engine.run(&churn, observer);
  } else {
    out.run = engine.run(nullptr, observer);
  }
  out.ranks = engine.ranks();
  out.messages = engine.traffic().messages();
  out.local_updates = engine.traffic().local_updates();
  out.history = engine.pass_history();
  return out;
}

StandardExperiment::DistributedOutcome
StandardExperiment::run_distributed_faulty(
    const FaultRunOptions& fault_options,
    const DistributedPagerank::PassObserver& observer,
    const Telemetry& telemetry) const {
  DistributedPagerank engine(*graph_, *placement_, pagerank_options());
  wire_telemetry(engine, telemetry);
  FaultPlan plan(fault_options.plan);
  engine.attach_fault_plan(plan);
  if (fault_options.mass_audit) {
    engine.enable_mass_audit(fault_options.audit_tolerance);
  }
  ReplicaRegistry replicas(0);
  if (fault_options.replicas_per_doc > 0) {
    replicas = ReplicaRegistry::uniform(
        *placement_, fault_options.replicas_per_doc, config_.seed);
    engine.attach_replicas(replicas);
  }
  DistributedOutcome out;
  if (config_.availability < 1.0) {
    ChurnSchedule churn(config_.num_peers, config_.availability,
                        config_.seed);
    out.run = engine.run(&churn, observer);
  } else {
    out.run = engine.run(nullptr, observer);
  }
  out.ranks = engine.ranks();
  out.messages = engine.traffic().messages();
  out.local_updates = engine.traffic().local_updates();
  out.history = engine.pass_history();
  out.crashes = engine.crashes();
  out.recovered_docs = engine.recovered_docs();
  out.retransmissions = engine.retransmissions();
  out.repair_messages = engine.repair_messages();
  out.dropped = engine.dropped_messages();
  out.duplicated = engine.duplicated_messages();
  return out;
}

const std::vector<double>& StandardExperiment::reference_ranks() const {
  if (reference_.empty()) {
    // Shared across experiment instances: Table 2/4 sweeps construct one
    // StandardExperiment per threshold over the same graph, and the
    // reference solve is the expensive part at 500k+ nodes.
    static std::mutex mu;  // dprank-lint: allow(mutable-global)
    // dprank-lint: allow(mutable-global)
    static std::map<std::tuple<std::uint64_t, std::uint64_t, double>,
                    std::shared_ptr<const std::vector<double>>>
        cache;
    const std::lock_guard lock(mu);
    const auto key =
        std::make_tuple(config_.num_docs, config_.seed, config_.damping);
    auto& entry = cache[key];
    if (entry == nullptr) {
      entry = std::make_shared<const std::vector<double>>(
          centralized_pagerank(*graph_, config_.damping, 1e-12).ranks);
    }
    reference_ = *entry;
  }
  return reference_;
}

}  // namespace dprank
