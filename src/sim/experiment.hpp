#pragma once

// Shared experiment assembly for benches, examples and integration tests.
//
// The paper's standard setup (§4.2): a power-law graph of N documents
// randomly placed on 500 peers, damping 0.85, convergence threshold
// epsilon. StandardExperiment bundles the pieces; run_distributed() and
// reference_ranks() wrap the two solvers with consistent parameters.
// Generated graphs are cached on disk (they are the expensive part of
// a bench run at 500k+ nodes).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "dht/ring.hpp"
#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/options.hpp"
#include "sim/time_model.hpp"

namespace dprank {

struct ExperimentConfig {
  std::uint64_t num_docs = 10'000;
  PeerId num_peers = 500;  // the paper's §4.3-4.7 peer count
  double damping = 0.85;
  double epsilon = 1e-3;
  double availability = 1.0;  // Table 1's 100/75/50% columns
  std::uint64_t seed = 42;
  /// Engine worker count (PagerankOptions::threads); defaults to the
  /// DPRANK_THREADS environment knob. Never changes results, only wall
  /// time, so benches sweep it without invalidating goldens.
  std::uint32_t threads = experiment_threads();
};

/// Observability wiring for an experiment run. The default publishes
/// metrics into the process-wide obs::default_registry() (flush-at-end:
/// measured overhead is recorded by bench_table1 in its BENCH json);
/// tracing is opt-in. Set `registry = nullptr` to detach metrics
/// entirely.
struct Telemetry {
  obs::MetricsRegistry* registry = &obs::default_registry();
  obs::Tracer* tracer = nullptr;
  /// Network model feeding the trace's simulated pass clock (Eq. 4).
  NetworkParams net;
};

class StandardExperiment {
 public:
  explicit StandardExperiment(const ExperimentConfig& config);

  [[nodiscard]] const Digraph& graph() const { return *graph_; }
  [[nodiscard]] const Placement& placement() const { return *placement_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] PagerankOptions pagerank_options() const;

  struct DistributedOutcome {
    DistributedRunResult run;
    std::vector<double> ranks;
    std::uint64_t messages = 0;
    std::uint64_t local_updates = 0;
    std::vector<PassStats> history;
    // Fault-run observability (zero for run_distributed()).
    std::uint64_t crashes = 0;
    std::uint64_t recovered_docs = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t repair_messages = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
  };

  using Telemetry = ::dprank::Telemetry;

  /// Run the distributed engine (fresh instance) honoring the configured
  /// availability; optional per-pass observer and telemetry sinks.
  [[nodiscard]] DistributedOutcome run_distributed(
      const DistributedPagerank::PassObserver& observer = nullptr,
      const Telemetry& telemetry = {}) const;

  /// Fault-injected variant of the §4.2 run: drives the engine under a
  /// FaultPlan built from `plan_config`, with the rank-mass audit on by
  /// default and optional uniform replication (the crash-recovery rank
  /// store).
  struct FaultRunOptions {
    FaultPlanConfig plan;
    bool mass_audit = true;
    double audit_tolerance = 1e-9;
    std::uint32_t replicas_per_doc = 0;  // 0 = no replica store
  };
  [[nodiscard]] DistributedOutcome run_distributed_faulty(
      const FaultRunOptions& fault_options,
      const DistributedPagerank::PassObserver& observer = nullptr,
      const Telemetry& telemetry = {}) const;

  /// Centralized reference R_c at tight tolerance (cached per instance).
  [[nodiscard]] const std::vector<double>& reference_ranks() const;

 private:
  ExperimentConfig config_;
  std::shared_ptr<const Digraph> graph_;
  std::shared_ptr<const Placement> placement_;
  mutable std::vector<double> reference_;  // lazily computed
};

/// Process-wide cache of generated graphs keyed by (nodes, seed): bench
/// binaries sweep 7 thresholds over the same graph and should not pay
/// generation 7 times. Also persists to the directory named by
/// DPRANK_CACHE_DIR (unset = no disk cache).
[[nodiscard]] std::shared_ptr<const Digraph> cached_paper_graph(
    std::uint64_t num_docs, std::uint64_t seed);

}  // namespace dprank
