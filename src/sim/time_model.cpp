#include "sim/time_model.hpp"

#include <algorithm>

namespace dprank {

NetworkParams modem_network() {
  return NetworkParams{.bandwidth_bytes_per_sec = 32.0 * 1024};
}

NetworkParams broadband_network() {
  return NetworkParams{.bandwidth_bytes_per_sec = 200.0 * 1024};
}

NetworkParams t3_network() {
  return NetworkParams{.bandwidth_bytes_per_sec = 5.6e6};
}

TimeEstimate estimate_serialized(const std::vector<PassStats>& history,
                                 const NetworkParams& net) {
  TimeEstimate t;
  for (const auto& p : history) {
    const double msgs = static_cast<double>(p.messages_sent) +
                        static_cast<double>(p.messages_delivered_late);
    t.comm_seconds += msgs * net.message_bytes / net.bandwidth_bytes_per_sec;
    t.compute_seconds += static_cast<double>(p.docs_recomputed) *
                         net.compute_seconds_per_doc;
  }
  return t;
}

TimeEstimate estimate_parallel(const std::vector<PassStats>& history,
                               const Placement& placement,
                               const NetworkParams& net) {
  // Heaviest peer's compute share: documents are placed near-uniformly,
  // so the busiest peer hosts ~max over peers of hosted docs.
  const auto per_peer = placement.docs_per_peer();
  const double max_docs = static_cast<double>(
      *std::max_element(per_peer.begin(), per_peer.end()));
  TimeEstimate t;
  for (const auto& p : history) {
    if (p.docs_recomputed == 0 && p.messages_sent == 0) continue;
    t.comm_seconds += static_cast<double>(p.max_peer_messages) *
                      net.message_bytes / net.bandwidth_bytes_per_sec;
    t.compute_seconds += max_docs * net.compute_seconds_per_doc;
  }
  return t;
}

DistributedPagerank::PassClock make_pass_clock(const NetworkParams& net) {
  return [net](const PassStats& p) {
    const double msgs = static_cast<double>(p.messages_sent) +
                        static_cast<double>(p.messages_delivered_late);
    const double seconds =
        msgs * net.message_bytes / net.bandwidth_bytes_per_sec +
        static_cast<double>(p.docs_recomputed) * net.compute_seconds_per_doc;
    return seconds * 1e6;
  };
}

TimeEstimate extrapolate_internet_scale(double avg_messages_per_node,
                                        double avg_passes,
                                        double num_documents,
                                        const NetworkParams& net,
                                        double num_servers) {
  TimeEstimate t;
  t.comm_seconds = avg_messages_per_node * num_documents * net.message_bytes /
                   net.bandwidth_bytes_per_sec;
  t.compute_seconds = avg_passes * (num_documents / num_servers) *
                      net.compute_seconds_per_doc;
  return t;
}

}  // namespace dprank
