#pragma once

// Execution-time estimation (§4.6, Eq. 4).
//
// Per §4.6.1 the paper assumes homogeneous peers, coalesced per-peer
// transfers, *serialized* sends, IP caching (messages go direct), and
// constant computational work per pass. Table 3's hour figures are
// reproduced by the fully-serialized reading of Eq. 4 — total message
// bytes over one bandwidth — e.g. 533.2M messages x 24 B / 32 KB/s
// = 108.5 h against the paper's 106.6 h (epsilon = 1e-5, 5000k nodes).
// estimate_serialized() implements that model; estimate_parallel() is the
// concurrent-peers variant (pass time = busiest peer) provided as the
// more realistic ablation.
//
// Compute time is calibrated from the paper's "computation required per
// pass for the 5000k node graph [is] of the order of a minute or less" on
// P3/P4-class machines: 60 s / 5M documents = 12 us per document-recompute.

#include <cstdint>
#include <vector>

#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {

struct NetworkParams {
  /// Average sustained transfer rate between peers, bytes/second.
  double bandwidth_bytes_per_sec = 32.0 * 1024;
  /// Pagerank update wire size (§4.6.1: 128-bit GUID + 64-bit value).
  double message_bytes = 24.0;
  /// Per-document recompute cost (calibrated above).
  double compute_seconds_per_doc = 12e-6;
};

/// The paper's conservative peer-to-peer rate (§4.6.1).
[[nodiscard]] NetworkParams modem_network();    // 32 KB/s
[[nodiscard]] NetworkParams broadband_network();  // 200 KB/s
/// Web-server backbone rate (§4.6.2): "at least a T3 line (about 5.6
/// megabytes per second)".
[[nodiscard]] NetworkParams t3_network();

struct TimeEstimate {
  double comm_seconds = 0.0;
  double compute_seconds = 0.0;
  [[nodiscard]] double total_seconds() const {
    return comm_seconds + compute_seconds;
  }
  [[nodiscard]] double total_hours() const { return total_seconds() / 3600.0; }
  [[nodiscard]] double total_days() const {
    return total_seconds() / 86400.0;
  }
};

/// Paper model: all delivered cross-peer messages share one serialized
/// pipe; compute adds docs-recomputed x per-doc cost.
[[nodiscard]] TimeEstimate estimate_serialized(
    const std::vector<PassStats>& history, const NetworkParams& net);

/// Concurrent-peers model: each pass costs the busiest sender's
/// serialized transfer plus the heaviest peer's compute share.
[[nodiscard]] TimeEstimate estimate_parallel(
    const std::vector<PassStats>& history, const Placement& placement,
    const NetworkParams& net);

/// §4.6.2 extrapolation: scale measured per-node message counts to a
/// corpus of `num_documents` hosted by `num_servers` web servers
/// exchanging updates at `net` rates. Communication uses the paper's
/// serialized model; compute is parallel across servers.
[[nodiscard]] TimeEstimate extrapolate_internet_scale(
    double avg_messages_per_node, double avg_passes, double num_documents,
    const NetworkParams& net, double num_servers = 100'000.0);

/// Simulated-time clock for the tracer (obs/trace.hpp): per-pass duration
/// in microseconds under the Eq. 4 serialized model, the same arithmetic
/// as estimate_serialized() applied to one pass. The engine advances the
/// trace cursor by this amount after every pass, so exported trace
/// timestamps line up with the Table 3 hour figures.
[[nodiscard]] DistributedPagerank::PassClock make_pass_clock(
    const NetworkParams& net);

}  // namespace dprank
