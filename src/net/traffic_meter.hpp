#pragma once

// Network traffic accounting.
//
// Table 3 reports total and per-node pagerank update messages; §3.2's
// caching ablation needs overlay hop counts; Table 6 counts document ids
// transferred. TrafficMeter is the single ledger all layers report into
// so every bench reads consistent numbers.
//
// Since the obs subsystem landed, TrafficMeter is a thin shim over
// obs::Counter — the registry's own primitive — so the meter and a
// metrics snapshot literally read the same atomics. The arithmetic is
// unchanged from the original plain-uint64 implementation (same adds in
// the same order), so bench output is byte-identical; test_obs.cpp
// replays mixed op sequences against a legacy reference to pin that
// down. flush_to() publishes the ledger into a MetricsRegistry under
// the net.* names.

#include <cstdint>

#include "obs/metrics.hpp"

namespace dprank {

class TrafficMeter {
 public:
  /// One application-level message from src to dst costing `hops` overlay
  /// transmissions (1 when the IP address is known/cached, O(log N) when
  /// DHT-routed) and `bytes` on the wire per transmission.
  void record_message(std::uint64_t bytes, std::uint64_t hops = 1) noexcept {
    messages_.add(1);
    hop_transmissions_.add(hops);
    bytes_.add(bytes * hops);
  }

  /// `count` direct (1-hop) messages of `bytes_each` in one call.
  void record_messages(std::uint64_t count, std::uint64_t bytes_each) noexcept {
    messages_.add(count);
    hop_transmissions_.add(count);
    bytes_.add(count * bytes_each);
  }

  /// One §4.6.1 coalesced transfer: `count` updates of `payload_bytes`
  /// each riding a single wire message behind one `header_bytes` header,
  /// travelling `hops` overlay transmissions. Counts one message, `count`
  /// batched updates, and (header + count * payload) bytes per hop.
  void record_batch(std::uint64_t count, std::uint64_t payload_bytes,
                    std::uint64_t header_bytes,
                    std::uint64_t hops = 1) noexcept {
    messages_.add(1);
    batched_updates_.add(count);
    hop_transmissions_.add(hops);
    bytes_.add((header_bytes + count * payload_bytes) * hops);
  }

  /// A message delivered without the network (both documents on the same
  /// peer — Fig. 1 step b updates those "without need for network update
  /// messages").
  void record_local_update() noexcept { local_updates_.add(1); }

  /// `count` local deliveries in one call (the batched exchange applies a
  /// whole same-peer batch at once).
  void record_local_updates(std::uint64_t count) noexcept {
    local_updates_.add(count);
  }

  /// A delivery retry after the destination peer was unavailable (§3.1:
  /// updates "are stored at the sender and periodically resent until
  /// delivered successfully"). Counts wire traffic but not a new message.
  void record_resend(std::uint64_t bytes) noexcept {
    resends_.add(1);
    bytes_.add(bytes);
  }

  void merge(const TrafficMeter& other) noexcept {
    messages_.add(other.messages());
    batched_updates_.add(other.batched_updates());
    local_updates_.add(other.local_updates());
    resends_.add(other.resends());
    hop_transmissions_.add(other.hop_transmissions());
    bytes_.add(other.bytes());
  }

  void reset() noexcept {
    messages_.set(0);
    batched_updates_.set(0);
    local_updates_.set(0);
    resends_.set(0);
    hop_transmissions_.set(0);
    bytes_.set(0);
  }

  /// Publish the ledger's current totals into `registry` under
  /// `net.messages`, `net.local_updates`, `net.resends`,
  /// `net.hop_transmissions`, `net.bytes` — additive, so sequential
  /// engine runs flushing into one registry accumulate process totals.
  void flush_to(obs::MetricsRegistry& registry) const {
    registry.counter("net.messages").add(messages());
    registry.counter("net.local_updates").add(local_updates());
    registry.counter("net.resends").add(resends());
    registry.counter("net.hop_transmissions").add(hop_transmissions());
    registry.counter("net.bytes").add(bytes());
    if (batched_updates() != 0) {
      registry.counter("net.batched_updates").add(batched_updates());
    }
  }

  [[nodiscard]] std::uint64_t messages() const noexcept {
    return messages_.value();
  }
  /// Updates carried inside coalesced batch messages (record_batch);
  /// zero under the classic one-message-per-update billing.
  [[nodiscard]] std::uint64_t batched_updates() const noexcept {
    return batched_updates_.value();
  }
  [[nodiscard]] std::uint64_t local_updates() const noexcept {
    return local_updates_.value();
  }
  [[nodiscard]] std::uint64_t resends() const noexcept {
    return resends_.value();
  }
  [[nodiscard]] std::uint64_t hop_transmissions() const noexcept {
    return hop_transmissions_.value();
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_.value(); }

 private:
  obs::Counter messages_;
  obs::Counter batched_updates_;
  obs::Counter local_updates_;
  obs::Counter resends_;
  obs::Counter hop_transmissions_;
  obs::Counter bytes_;
};

}  // namespace dprank
