#pragma once

// Network traffic accounting.
//
// Table 3 reports total and per-node pagerank update messages; §3.2's
// caching ablation needs overlay hop counts; Table 6 counts document ids
// transferred. TrafficMeter is the single ledger all layers report into
// so every bench reads consistent numbers.

#include <cstdint>

namespace dprank {

class TrafficMeter {
 public:
  /// One application-level message from src to dst costing `hops` overlay
  /// transmissions (1 when the IP address is known/cached, O(log N) when
  /// DHT-routed) and `bytes` on the wire per transmission.
  void record_message(std::uint64_t bytes, std::uint64_t hops = 1) noexcept {
    messages_ += 1;
    hop_transmissions_ += hops;
    bytes_ += bytes * hops;
  }

  /// `count` direct (1-hop) messages of `bytes_each` in one call.
  void record_messages(std::uint64_t count, std::uint64_t bytes_each) noexcept {
    messages_ += count;
    hop_transmissions_ += count;
    bytes_ += count * bytes_each;
  }

  /// A message delivered without the network (both documents on the same
  /// peer — Fig. 1 step b updates those "without need for network update
  /// messages").
  void record_local_update() noexcept { local_updates_ += 1; }

  /// A delivery retry after the destination peer was unavailable (§3.1:
  /// updates "are stored at the sender and periodically resent until
  /// delivered successfully"). Counts wire traffic but not a new message.
  void record_resend(std::uint64_t bytes) noexcept {
    resends_ += 1;
    bytes_ += bytes;
  }

  void merge(const TrafficMeter& other) noexcept {
    messages_ += other.messages_;
    local_updates_ += other.local_updates_;
    resends_ += other.resends_;
    hop_transmissions_ += other.hop_transmissions_;
    bytes_ += other.bytes_;
  }

  void reset() noexcept { *this = TrafficMeter{}; }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t local_updates() const noexcept {
    return local_updates_;
  }
  [[nodiscard]] std::uint64_t resends() const noexcept { return resends_; }
  [[nodiscard]] std::uint64_t hop_transmissions() const noexcept {
    return hop_transmissions_;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t local_updates_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t hop_transmissions_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dprank
