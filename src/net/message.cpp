#include "net/message.hpp"

namespace dprank {

std::uint64_t wire_bytes(const Message& m) {
  return std::visit(
      [](const auto& msg) -> std::uint64_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HitsForward>) {
          return msg.wire_bytes();
        } else {
          return T::kWireBytes;
        }
      },
      m);
}

}  // namespace dprank
