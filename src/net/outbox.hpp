#pragma once

// Store-and-resend outbox (§3.1, peer leaves and joins).
//
// "When a peer is detected as unavailable, update messages are stored at
// the sender and periodically resent until delivered successfully. In the
// worst case, the amount of state saved scales linearly with the sum of
// outlinks in all documents in a peer."
//
// Pagerank updates are idempotent-by-latest: a newer update for the same
// (destination document, sender document) pair supersedes an older one, so
// the outbox keys pending messages by a 64-bit slot (the engines use the
// sender's out-edge id) and keeps only the freshest value — exactly the
// linear-in-outlinks bound the paper states.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"

namespace dprank {

class Outbox {
 public:
  /// Queue (or overwrite) the pending message for `slot` addressed to
  /// `dest_peer`.
  void store(std::uint32_t dest_peer, std::uint64_t slot, Message msg);

  /// Remove and return all pending messages for `dest_peer` (it came back
  /// online). Returned in slot order for determinism.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Message>> drain(
      std::uint32_t dest_peer);

  [[nodiscard]] bool has_pending(std::uint32_t dest_peer) const;
  [[nodiscard]] std::uint64_t pending_count() const { return total_pending_; }
  [[nodiscard]] std::uint64_t peak_pending() const { return peak_pending_; }

 private:
  // dest peer -> (slot -> freshest message)
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint64_t, Message>>
      pending_;
  std::uint64_t total_pending_ = 0;
  std::uint64_t peak_pending_ = 0;
};

}  // namespace dprank
