#pragma once

// Store-and-resend outbox (§3.1, peer leaves and joins).
//
// "When a peer is detected as unavailable, update messages are stored at
// the sender and periodically resent until delivered successfully. In the
// worst case, the amount of state saved scales linearly with the sum of
// outlinks in all documents in a peer."
//
// Pagerank updates are idempotent-by-latest: a newer update for the same
// (destination document, sender document) pair supersedes an older one, so
// the outbox keys pending messages by a 64-bit slot (the engines use the
// sender's out-edge id) and keeps only the freshest value — exactly the
// linear-in-outlinks bound the paper states.
//
// Robustness extensions beyond the paper:
//   * an optional per-destination pending cap. Under session churn
//     (ChurnModel::kSessions) a peer can stay offline for many passes
//     while its neighbors keep re-ranking, so a capacity-bounded sender
//     must shed state: when a destination's queue is full the
//     least-recently-stored slot is evicted (its rank mass is the
//     caller's to re-audit — see pagerank/mass_audit.hpp) and counted in
//     evicted_count().
//   * a per-destination retransmission schedule with exponential backoff
//     ("periodically resent until delivered"): schedule_retry() arms the
//     next resend pass, due_destinations() lists the queues whose timer
//     expired, and a successful drain resets the backoff.

#include <cstdint>
#include <deque>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "net/message.hpp"

namespace dprank {

class Outbox {
 public:
  /// `per_dest_cap` == 0 means unbounded (the paper's model).
  explicit Outbox(std::uint64_t per_dest_cap = 0,
                  std::uint64_t retry_interval_passes = 1,
                  std::uint64_t retry_backoff_cap_passes = 16)
      : per_dest_cap_(per_dest_cap),
        retry_interval_(retry_interval_passes < 1 ? 1
                                                  : retry_interval_passes),
        retry_backoff_cap_(retry_backoff_cap_passes < 1
                               ? 1
                               : retry_backoff_cap_passes) {}

  /// Queue (or overwrite) the pending message for `slot` addressed to
  /// `dest_peer`. May evict the destination's least-recently-stored slot
  /// when the per-destination cap is reached.
  void store(std::uint32_t dest_peer, std::uint64_t slot, Message msg);

  /// Remove and return all pending messages for `dest_peer` (it came back
  /// online). Returned in slot order for determinism. Resets the
  /// destination's retransmission backoff.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Message>> drain(
      std::uint32_t dest_peer);

  /// Evict everything pending for `dest_peer` — the failure detector
  /// declared it permanently dead, so "periodically resent until
  /// delivered" can never succeed and the queue would otherwise be
  /// retried/parked forever (a slow memory leak under sustained
  /// departure). Returned in slot order so the caller can feed the lost
  /// rank mass to the auditor; accounted under the dropped_dead exit of
  /// the conservation ledger.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Message>> drop_dead(
      std::uint32_t dest_peer);

  /// Arm (or re-arm, with doubled backoff) the resend timer for
  /// `dest_peer` as of `now_pass`. No-op for destinations with nothing
  /// pending.
  void schedule_retry(std::uint32_t dest_peer, std::uint64_t now_pass);

  /// Destinations with pending messages whose resend timer has expired at
  /// `pass`, in destination order. Does not reschedule — callers either
  /// drain() (delivered) or schedule_retry() again (still unreachable).
  [[nodiscard]] std::vector<std::uint32_t> due_destinations(
      std::uint64_t pass) const;

  [[nodiscard]] bool has_pending(std::uint32_t dest_peer) const;
  [[nodiscard]] std::uint64_t pending_count() const { return total_pending_; }
  [[nodiscard]] std::uint64_t pending_for(std::uint32_t dest_peer) const;
  [[nodiscard]] std::uint64_t peak_pending() const { return peak_pending_; }
  [[nodiscard]] std::uint64_t evicted_count() const { return evicted_; }
  [[nodiscard]] std::uint64_t per_dest_cap() const { return per_dest_cap_; }

  // Credit-conservation ledger: every store() is accounted for until it
  // leaves through exactly one exit. stored == drained + superseded +
  // evicted + dropped_dead + pending at all times (validate() enforces
  // it).
  [[nodiscard]] std::uint64_t stored_count() const { return stored_; }
  [[nodiscard]] std::uint64_t drained_count() const { return drained_; }
  [[nodiscard]] std::uint64_t superseded_count() const { return superseded_; }
  [[nodiscard]] std::uint64_t dropped_dead_count() const {
    return dropped_dead_;
  }

  /// Structural invariant walk (contracts.hpp; subsystem "net"):
  ///  * credit conservation — every stored message is pending, drained,
  ///    superseded by a fresher value, evicted by the cap, or dropped for
  ///    a declared-dead destination (§3.1's linear-in-outlinks state
  ///    bound depends on this accounting);
  ///  * total_pending_ equals the sum of live per-destination slots;
  ///  * each live slot has exactly one live generation entry in its
  ///    queue's store-order deque (the eviction order);
  ///  * the per-destination cap, when set, is respected;
  ///  * peak_pending() never understates pending_count().
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  // The PR 5 hot-path rework left Outbox with no src-side owner
  // (ReliableChannel absorbed retransmission); test_outbox drives
  // validate() directly, and the class stays for the multi-process
  // transport on the roadmap.
  // dprank-analyze: allow(contract-coverage) -- test-only until then
  void validate() const;

  /// Queues recycled through the pool keep their warmed-up slot-map
  /// capacity, so a destination churning offline/online stops costing
  /// allocations after the first cycle.
  [[nodiscard]] std::uint64_t queue_reuses() const {
    return queue_pool_.reuses();
  }

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  struct Queue {
    // slot -> (freshest message, generation of its newest store)
    FlatMap64<std::pair<Message, std::uint64_t>> slots;
    // store order with lazy invalidation: an entry is live only when its
    // generation matches the slot's current one.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> order;
    std::uint64_t next_retry = 0;
    std::uint32_t attempts = 0;
  };

  void evict_oldest(Queue& q);

  FlatMap64<Queue> pending_;
  ObjectPool<Queue> queue_pool_;
  std::uint64_t per_dest_cap_;
  std::uint64_t retry_interval_;
  std::uint64_t retry_backoff_cap_;
  std::uint64_t generation_ = 0;
  std::uint64_t total_pending_ = 0;
  std::uint64_t peak_pending_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t stored_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t superseded_ = 0;
  std::uint64_t dropped_dead_ = 0;
};

}  // namespace dprank
