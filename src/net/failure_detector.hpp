#pragma once

// Heartbeat-based failure detection (extension; ROADMAP items 1 and 5).
//
// The paper detects unavailability implicitly ("when a peer is detected
// as unavailable", §3.1) and assumes every departed peer eventually
// returns. Permanent departure breaks that: the Outbox parks state and
// the ReliableChannel backs off forever for a peer that will never ack.
// FailureDetector closes the loop with the classic heartbeat recipe on
// the pass simulator's time base (all timeouts are Eq. 4 passes, so
// detection is deterministic for a fixed schedule):
//
//   * every live peer heartbeats once per pass (the engine calls
//     heartbeat() for each peer present in the pass);
//   * a peer silent for >= suspect_after_passes is *suspected*; each
//     further silent pass raises the suspicion count;
//   * confirm_after_suspicions suspicions confirm the peer *dead* — a
//     permanent, irrevocable verdict that tick() reports exactly once so
//     callers can evict Outbox queues (drop_dead), abandon in-flight
//     retransmissions (give_up_on_dest) and trigger ring repair;
//   * a heartbeat from a suspected peer clears the suspicion (counted in
//     false_suspicions() — the observability hook for tuning timeouts);
//   * gracefully leaving peers are marked kLeft out-of-band and never
//     raise a suspicion.
//
// The verdict lands suspect_after_passes + confirm_after_suspicions - 1
// passes after the last heartbeat: with the defaults (suspect after 2
// silent passes, confirm on the 2nd suspicion) the detection latency is
// 3 passes.
//
// This is a *perfect* failure detector in the simulator (no network
// asymmetry), but the suspicion machinery models the eventually-perfect
// detector a real transport needs, and the false-suspicion counter is
// the knob-tuning signal a deployment would watch.

#include <cstdint>
#include <vector>

#include "dht/ring.hpp"  // PeerId

namespace dprank {

class FailureDetector {
 public:
  struct Config {
    /// Silent passes before a peer becomes suspected (>= 1).
    std::uint64_t suspect_after_passes = 2;
    /// Consecutive suspicions that confirm death (>= 1).
    std::uint32_t confirm_after_suspicions = 2;
  };

  enum class State : std::uint8_t {
    kUnmonitored = 0,  // never heartbeat, not tracked
    kAlive = 1,
    kSuspected = 2,
    kDead = 3,  // permanent (fail-stop): never leaves this state
    kLeft = 4,  // graceful departure; permanent, never suspected
  };

  FailureDetector() = default;
  explicit FailureDetector(Config config) : config_(config) {}

  /// Start monitoring `peer` as alive with a heartbeat at `pass`.
  /// Heartbeats auto-monitor, so this is only needed to begin the
  /// silence clock before the first heartbeat. No-op on dead/left peers.
  void monitor(PeerId peer, std::uint64_t pass) { heartbeat(peer, pass); }

  /// `peer` was heard from during `pass`. A suspected peer is exonerated
  /// (false_suspicions() counts the near-miss); a dead or left verdict
  /// is permanent and the heartbeat is ignored.
  void heartbeat(PeerId peer, std::uint64_t pass);

  /// `peer` departed gracefully: permanently out, but never a suspicion
  /// and never reported by tick().
  void mark_left(PeerId peer);

  /// End-of-pass sweep: advance suspicion state for every monitored peer
  /// and return the peers newly confirmed dead this pass, in ascending
  /// id order (deterministic). Each dead peer is reported exactly once.
  [[nodiscard]] std::vector<PeerId> tick(std::uint64_t pass);

  [[nodiscard]] State state(PeerId peer) const {
    return peer < records_.size() ? records_[peer].state
                                  : State::kUnmonitored;
  }
  [[nodiscard]] bool is_dead(PeerId peer) const {
    return state(peer) == State::kDead;
  }
  /// Alive or merely suspected — a suspected peer may still come back.
  [[nodiscard]] bool considers_live(PeerId peer) const {
    const State s = state(peer);
    return s == State::kAlive || s == State::kSuspected;
  }

  [[nodiscard]] std::uint64_t suspicions_raised() const {
    return suspicions_raised_;
  }
  [[nodiscard]] std::uint64_t false_suspicions() const {
    return false_suspicions_;
  }
  [[nodiscard]] std::uint64_t declared_dead() const { return declared_dead_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Structural invariant walk (contracts.hpp; subsystem "net"):
  ///  * suspicion counts only on suspected peers, and always below the
  ///    confirmation threshold (a peer at the threshold is dead);
  ///  * declared_dead() equals the number of peers in State::kDead;
  ///  * suspicions raised >= false suspicions + deaths (every suspicion
  ///    either resolved false or contributed to a verdict).
  void validate() const;

 private:
  struct Record {
    State state = State::kUnmonitored;
    std::uint64_t last_heard = 0;
    std::uint32_t suspicion = 0;
  };

  Record& record_for(PeerId peer) {
    if (peer >= records_.size()) records_.resize(peer + 1);
    return records_[peer];
  }

  Config config_;
  std::vector<Record> records_;  // indexed by peer id (dense, ascending)
  std::uint64_t suspicions_raised_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::uint64_t declared_dead_ = 0;
};

}  // namespace dprank
