#pragma once

// Sequence-numbered, acknowledged delivery (extension).
//
// The paper assumes reliable transport for direct sends and falls back to
// the §3.1 store-and-resend Outbox only for peers known to be offline. On
// lossy transport a dropped update silently leaves a stale contribution at
// the receiver. ReliableChannel closes that gap with the classic ARQ
// recipe, adapted to the pass simulator's time base:
//
//   * every logical flow is a 64-bit slot (the engines use the sender's
//     out-edge id, the same key the Outbox uses);
//   * each emission on a slot gets a monotonically increasing sequence
//     number; receivers accept a value only if its sequence number is
//     newer than the last one applied (stale reordered values are
//     rejected, duplicates suppressed);
//   * an unacked send is retransmitted after an exponentially backed-off
//     number of passes until the ack arrives. Retransmissions always carry
//     the *newest* emission for the slot — pagerank updates are
//     idempotent-by-latest, so at most one in-flight record per slot is
//     needed (the same linear-in-outlinks bound as the Outbox).
//
// Storage: one EdgeRecord per slot holds both sides of the sequence state
// (newest issued, newest applied) — they were two `std::map`s keyed by the
// same packed edge id, which doubled the lookups and the node allocations
// on every send. Records and in-flight entries live in open-addressing
// flat maps (common/flat_map.hpp); everything whose order the simulation
// can observe (take_due, forget_sender) is sorted by slot on extraction,
// exactly as the ordered maps guaranteed.
//
// The class is transport-agnostic bookkeeping: the engine decides what a
// "send" is, asks the fault plan whether it survived, and reports the
// outcome here.

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"

namespace dprank {

class ReliableChannel {
 public:
  struct Config {
    std::uint32_t ack_timeout_passes = 1;  // passes before the first retry
    std::uint32_t retry_backoff_cap = 16;  // max passes between retries
  };

  struct Pending {
    std::uint64_t slot = 0;
    std::uint32_t dest = 0;
    std::uint32_t src = 0;
    double value = 0.0;
    std::uint32_t seq = 0;
    std::uint32_t attempt = 0;  // retries already performed
    /// Causal trace id (obs/trace.hpp) riding along so retransmissions
    /// stay on the original message's journey; 0 = untraced.
    std::uint64_t trace = 0;
  };

  ReliableChannel() = default;
  explicit ReliableChannel(Config config) : config_(config) {}

  /// Next sequence number for `slot` (first emission gets 1).
  [[nodiscard]] std::uint32_t next_seq(std::uint64_t slot) {
    return ++edges_[slot].issued;
  }

  /// Record an unacked send awaiting retransmission. A newer emission for
  /// the same slot supersedes the old record (newest-value-wins).
  void track(const Pending& send, std::uint64_t pass);

  /// The ack for `slot` covering sequence numbers <= `seq` arrived: clear
  /// the in-flight record unless a newer emission is already pending.
  void ack(std::uint64_t slot, std::uint32_t seq);

  /// Remove and return every in-flight record due for retransmission at
  /// `pass`, in slot order (deterministic). The caller re-sends each and
  /// either re-track()s it (dropped again, attempt + 1) or ack()s it.
  [[nodiscard]] std::vector<Pending> take_due(std::uint64_t pass);

  /// Drop all in-flight records whose *sender* is `src` — a crashed peer
  /// loses its retransmission state. Returns the records lost, in slot
  /// order, so the caller can account the leaked rank mass.
  std::vector<Pending> forget_sender(std::uint32_t src);

  /// Receiver-side filter: true when `seq` is fresher than everything
  /// already applied on `slot` (and records it as applied). Stale values
  /// and duplicates return false and bump the respective counter.
  [[nodiscard]] bool accept(std::uint64_t slot, std::uint32_t seq);

  [[nodiscard]] std::uint64_t in_flight() const { return inflight_.size(); }
  [[nodiscard]] bool idle() const { return inflight_.empty(); }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t stale_rejected() const {
    return stale_rejected_;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::uint64_t peak_in_flight() const {
    return peak_in_flight_;
  }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Structural invariant walk (contracts.hpp; subsystem "net"):
  ///  * per-slot sequence monotonicity — nothing applied on a slot is
  ///    fresher than the newest sequence number ever issued for it
  ///    (record.applied <= record.issued);
  ///  * every in-flight record is keyed by its own slot, carries a
  ///    sequence number that was actually issued (1 <= send.seq <=
  ///    record.issued), and at most one record exists per slot (the
  ///    linear-in-outlinks bound);
  ///  * peak_in_flight() never understates the live in-flight count.
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  void validate() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  /// Both halves of a slot's sequence state. An `applied` without a local
  /// `issued` only happens when two channel instances split sender and
  /// receiver roles; the simulator shares one instance.
  struct EdgeRecord {
    std::uint32_t issued = 0;   // newest sequence number handed out
    std::uint32_t applied = 0;  // newest sequence number accepted
  };
  struct Inflight {
    Pending send;
    std::uint64_t retry_at = 0;
  };

  [[nodiscard]] std::uint64_t retry_interval(std::uint32_t attempt) const;

  Config config_;
  FlatMap64<EdgeRecord> edges_;
  FlatMap64<Inflight> inflight_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t stale_rejected_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t peak_in_flight_ = 0;
};

}  // namespace dprank
