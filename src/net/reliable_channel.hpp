#pragma once

// Sequence-numbered, acknowledged delivery (extension).
//
// The paper assumes reliable transport for direct sends and falls back to
// the §3.1 store-and-resend Outbox only for peers known to be offline. On
// lossy transport a dropped update silently leaves a stale contribution at
// the receiver. ReliableChannel closes that gap with the classic ARQ
// recipe, adapted to the pass simulator's time base:
//
//   * every logical flow is a 64-bit slot (the engines use the sender's
//     out-edge id, the same key the Outbox uses);
//   * each emission on a slot gets a monotonically increasing sequence
//     number; receivers accept a value only if its sequence number is
//     newer than the last one applied (stale reordered values are
//     rejected, duplicates suppressed);
//   * an unacked send is retransmitted after an exponentially backed-off
//     number of passes until the ack arrives. Retransmissions always carry
//     the *newest* emission for the slot — pagerank updates are
//     idempotent-by-latest, so at most one in-flight record per slot is
//     needed (the same linear-in-outlinks bound as the Outbox);
//   * retransmission is bounded when the caller asks for it: with
//     Config::max_attempts set, a record whose retry budget is exhausted
//     (or whose destination the failure detector declared permanently
//     dead — give_up_on_dest()) reaches the `gave_up` terminal outcome
//     instead of backing off forever. Given-up records queue for the
//     caller (take_gave_up()) so the lost rank mass can be fed to the
//     MassAuditor rather than silently leaking.
//
// Conservation ledger: every record that enters the in-flight table exits
// through exactly one of ack, forget_sender, take_due or give_up_on_dest;
// validate() enforces tracked == acked + forgotten + taken + gave_up +
// in_flight, mirroring the Outbox credit ledger.
//
// Storage: one EdgeRecord per slot holds both sides of the sequence state
// (newest issued, newest applied) — they were two `std::map`s keyed by the
// same packed edge id, which doubled the lookups and the node allocations
// on every send. Records and in-flight entries live in open-addressing
// flat maps (common/flat_map.hpp); everything whose order the simulation
// can observe (take_due, forget_sender) is sorted by slot on extraction,
// exactly as the ordered maps guaranteed.
//
// The class is transport-agnostic bookkeeping: the engine decides what a
// "send" is, asks the fault plan whether it survived, and reports the
// outcome here.

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"

namespace dprank {

class ReliableChannel {
 public:
  struct Config {
    std::uint32_t ack_timeout_passes = 1;  // passes before the first retry
    std::uint32_t retry_backoff_cap = 16;  // max passes between retries
    /// Retransmission budget per record: a track() whose `attempt` has
    /// reached this many retries gives up instead of re-arming the timer.
    /// 0 = retry forever (the legacy behaviour; dangerous under permanent
    /// departure — pair a bound with a failure detector).
    std::uint32_t max_attempts = 0;
  };

  struct Pending {
    std::uint64_t slot = 0;
    std::uint32_t dest = 0;
    std::uint32_t src = 0;
    double value = 0.0;
    std::uint32_t seq = 0;
    std::uint32_t attempt = 0;  // retries already performed
    /// Causal trace id (obs/trace.hpp) riding along so retransmissions
    /// stay on the original message's journey; 0 = untraced.
    std::uint64_t trace = 0;
  };

  ReliableChannel() = default;
  explicit ReliableChannel(Config config) : config_(config) {}

  /// Next sequence number for `slot` (first emission gets 1).
  [[nodiscard]] std::uint32_t next_seq(std::uint64_t slot) {
    return ++edges_[slot].issued;
  }

  /// Record an unacked send awaiting retransmission. A newer emission for
  /// the same slot supersedes the old record (newest-value-wins). With
  /// Config::max_attempts set, a send whose retry budget is exhausted is
  /// not re-armed: it reaches the `gave_up` terminal outcome and queues
  /// for take_gave_up() instead.
  void track(const Pending& send, std::uint64_t pass);

  /// The ack for `slot` covering sequence numbers <= `seq` arrived: clear
  /// the in-flight record unless a newer emission is already pending.
  void ack(std::uint64_t slot, std::uint32_t seq);

  /// Remove and return every in-flight record due for retransmission at
  /// `pass`, in slot order (deterministic). The caller re-sends each and
  /// either re-track()s it (dropped again, attempt + 1) or ack()s it.
  [[nodiscard]] std::vector<Pending> take_due(std::uint64_t pass);

  /// Drop all in-flight records whose *sender* is `src` — a crashed peer
  /// loses its retransmission state. Returns the records lost, in slot
  /// order, so the caller can account the leaked rank mass.
  std::vector<Pending> forget_sender(std::uint32_t src);

  /// Stop retransmitting to `dest` — the failure detector declared the
  /// peer permanently dead, so no ack can ever arrive. Every in-flight
  /// record addressed to it reaches the `gave_up` terminal outcome and is
  /// returned in slot order (and also queued for take_gave_up()) so the
  /// caller can account the lost rank mass.
  std::vector<Pending> give_up_on_dest(std::uint32_t dest);

  /// Drain the records that reached the `gave_up` terminal outcome since
  /// the last call (budget exhaustion via track(), or give_up_on_dest()),
  /// in the order they gave up. Each appears exactly once.
  [[nodiscard]] std::vector<Pending> take_gave_up();

  /// Transfer retransmission responsibility for every in-flight record
  /// whose sender is `src` to `heir` — a gracefully leaving peer hands
  /// its unacked sends to its ring successor instead of losing them.
  /// Returns how many records moved.
  std::uint64_t reassign_sender(std::uint32_t src, std::uint32_t heir);

  /// Receiver-side filter: true when `seq` is fresher than everything
  /// already applied on `slot` (and records it as applied). Stale values
  /// and duplicates return false and bump the respective counter.
  [[nodiscard]] bool accept(std::uint64_t slot, std::uint32_t seq);

  [[nodiscard]] std::uint64_t in_flight() const { return inflight_.size(); }
  [[nodiscard]] bool idle() const { return inflight_.empty(); }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t stale_rejected() const {
    return stale_rejected_;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::uint64_t peak_in_flight() const {
    return peak_in_flight_;
  }
  /// Records that reached the `gave_up` terminal outcome (budget
  /// exhaustion + declared-dead destinations), drained or not.
  [[nodiscard]] std::uint64_t gave_up() const { return gave_up_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Structural invariant walk (contracts.hpp; subsystem "net"):
  ///  * per-slot sequence monotonicity — nothing applied on a slot is
  ///    fresher than the newest sequence number ever issued for it
  ///    (record.applied <= record.issued);
  ///  * every in-flight record is keyed by its own slot, carries a
  ///    sequence number that was actually issued (1 <= send.seq <=
  ///    record.issued), and at most one record exists per slot (the
  ///    linear-in-outlinks bound);
  ///  * conservation ledger — every record that entered the in-flight
  ///    table left through exactly one exit: tracked == acked +
  ///    forgotten + taken + gave_up_removed + in_flight (the new
  ///    `gave_up` exit balances like every other);
  ///  * the undrained give-up queue never exceeds the total give-up
  ///    count;
  ///  * peak_in_flight() never understates the live in-flight count.
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  void validate() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  /// Both halves of a slot's sequence state. An `applied` without a local
  /// `issued` only happens when two channel instances split sender and
  /// receiver roles; the simulator shares one instance.
  struct EdgeRecord {
    std::uint32_t issued = 0;   // newest sequence number handed out
    std::uint32_t applied = 0;  // newest sequence number accepted
  };
  struct Inflight {
    Pending send;
    std::uint64_t retry_at = 0;
  };

  [[nodiscard]] std::uint64_t retry_interval(std::uint32_t attempt) const;

  Config config_;
  FlatMap64<EdgeRecord> edges_;
  FlatMap64<Inflight> inflight_;
  std::vector<Pending> gave_up_queue_;  // awaiting take_gave_up()
  std::uint64_t retransmissions_ = 0;
  std::uint64_t stale_rejected_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t peak_in_flight_ = 0;
  std::uint64_t gave_up_ = 0;
  // Conservation ledger (validate()): in-flight entries created vs the
  // exits they left through.
  std::uint64_t tracked_ = 0;           // insertions into inflight_
  std::uint64_t acked_clears_ = 0;      // removed by ack()
  std::uint64_t forgotten_ = 0;         // removed by forget_sender()
  std::uint64_t taken_ = 0;             // removed by take_due()
  std::uint64_t gave_up_removed_ = 0;   // removed by give_up_on_dest()
};

}  // namespace dprank
