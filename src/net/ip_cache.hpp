#pragma once

// IP-address caching (§3.2).
//
// On DHT systems without anonymity guarantees, the first pagerank update
// for a document is routed through the overlay (O(log N) hops) to discover
// the holder's address; the address is then cached at the source and
// subsequent updates go direct (1 hop). "Storage requirement ... scales
// linearly with the sum of the outlinks in all documents in a peer."
//
// IpCache models the per-peer cache and reports the hop cost of each send;
// the Freenet mode (anonymity honored, no caching, every message routed)
// is the `disabled` configuration used by the caching ablation bench.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "dht/ring.hpp"
#include "obs/metrics.hpp"

namespace dprank {

class IpCache {
 public:
  /// `enabled=false` models Freenet-style anonymity: no caching, every
  /// message individually routed through intermediate nodes.
  explicit IpCache(bool enabled = true) : enabled_(enabled) {}

  /// Hop cost for `src` sending to the owner of `key` over `ring`,
  /// updating the cache. A cache hit is 1 hop (direct); a miss costs the
  /// overlay route (plus nothing extra — the lookup message *is* the
  /// update message, per §3.2) and installs the destination's address.
  /// Use when the key's successor *is* the destination (e.g. index
  /// partitions).
  [[nodiscard]] std::uint64_t send_hops(PeerId src, Guid key,
                                        const ChordRing& ring);

  /// Hop cost for `src` sending to document-holder `holder`, where the
  /// document's GUID `key` names a *directory* entry on the ring (the
  /// paper's storage model: documents sit on arbitrary peers, the DHT
  /// resolves GUID -> location). A miss routes to the directory owner
  /// and takes one more hop to the holder; the holder's address is then
  /// cached, so later sends are direct.
  [[nodiscard]] std::uint64_t send_hops_to_peer(PeerId src, PeerId holder,
                                                Guid key,
                                                const ChordRing& ring);

  /// Invalidate all cached addresses of `peer` (it left the network and
  /// may return at a different address).
  void invalidate_peer(PeerId peer);

  /// Publish per-send hop counts and cache hit/miss totals into
  /// `registry` under `dht.<overlay_name>.send_hops` (histogram),
  /// `.cache_hits` and `.cache_misses` (counters) — one name set per
  /// overlay, so ablations comparing cached vs Freenet-style routing read
  /// distinct hop distributions. The registry must outlive the cache.
  void bind_metrics(obs::MetricsRegistry& registry,
                    std::string_view overlay_name);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint64_t entries() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  void note_hops(std::uint64_t hops) noexcept {
    if (hops_hist_ != nullptr) {
      hops_hist_->record(static_cast<double>(hops));
    }
  }
  void note_hit() noexcept {
    ++hits_;
    if (hits_ctr_ != nullptr) hits_ctr_->add(1);
  }
  void note_miss() noexcept {
    ++misses_;
    if (misses_ctr_ != nullptr) misses_ctr_->add(1);
  }

  /// rows_[src] is a direct-indexed bitset over destination peer ids:
  /// bit p set = src knows p's address. The consult-on-every-send path
  /// was a two-level hash lookup; peer ids are small and dense, so a
  /// bitset makes each probe one shift+mask and the whole cache a few
  /// words per active sender. Rows grow on demand (a row is only
  /// materialized once its peer sends something).
  [[nodiscard]] bool knows(PeerId src, PeerId dest) const {
    if (src >= rows_.size()) return false;
    const auto& row = rows_[src];
    const std::size_t word = dest / 64;
    return word < row.size() && (row[word] >> (dest % 64)) & 1;
  }
  void learn(PeerId src, PeerId dest) {
    if (src >= rows_.size()) rows_.resize(static_cast<std::size_t>(src) + 1);
    auto& row = rows_[src];
    const std::size_t word = dest / 64;
    if (word >= row.size()) row.resize(word + 1, 0);
    row[word] |= std::uint64_t{1} << (dest % 64);
  }

  bool enabled_;
  std::vector<std::vector<std::uint64_t>> rows_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Histogram* hops_hist_ = nullptr;
  obs::Counter* hits_ctr_ = nullptr;
  obs::Counter* misses_ctr_ = nullptr;
};

}  // namespace dprank
