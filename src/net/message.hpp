#pragma once

// Message vocabulary of the distributed pagerank system.
//
// §4.6.1 fixes the wire size of a pagerank update at 24 bytes: a 128-bit
// GUID naming the destination document plus a 64-bit rank value. The other
// message kinds support the index integration (§2.4.2) and the incremental
// search protocol (§2.4.3).

#include <cstdint>
#include <variant>
#include <vector>

#include "common/guid.hpp"

namespace dprank {

/// Pagerank update for one document (Fig. 1 step 2/4). In static mode
/// `value` is the sender's new contribution R(j)/N(j); in incremental mode
/// it is a signed increment (negative for deletions, §3.1).
struct PagerankUpdate {
  Guid doc;
  double value = 0.0;
  /// Wire size per §4.6.1: 128-bit GUID + 64-bit rank.
  static constexpr std::uint32_t kWireBytes = 24;
};

/// Index update: a document's converged rank is recorded next to its
/// posting entries (§2.4.2).
struct IndexRankUpdate {
  Guid doc;
  double rank = 0.0;
  static constexpr std::uint32_t kWireBytes = 24;
};

/// A chunk of document hits forwarded between index peers during a
/// multi-word query (§2.4.3). Traffic cost is one document id per hit —
/// the unit Table 6 counts.
struct HitsForward {
  std::uint32_t query = 0;
  std::vector<Guid> hits;
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return hits.size() * 16 + 8;
  }
};

using Message = std::variant<PagerankUpdate, IndexRankUpdate, HitsForward>;

[[nodiscard]] std::uint64_t wire_bytes(const Message& m);

}  // namespace dprank
