#include "net/ip_cache.hpp"

#include <algorithm>

namespace dprank {

std::uint64_t IpCache::send_hops(PeerId src, Guid key, const ChordRing& ring) {
  const auto route = ring.route(src, key);
  if (route.hop_count() == 0) return 0;  // key is local to src
  if (!enabled_) return route.hop_count();

  auto& known = cache_[src];
  if (known.contains(route.destination)) {
    ++hits_;
    return 1;
  }
  ++misses_;
  known.insert(route.destination);
  return route.hop_count();
}

std::uint64_t IpCache::send_hops_to_peer(PeerId src, PeerId holder, Guid key,
                                         const ChordRing& ring) {
  if (src == holder) return 0;
  if (enabled_) {
    auto& known = cache_[src];
    if (known.contains(holder)) {
      ++hits_;
      return 1;
    }
    ++misses_;
    known.insert(holder);
  }
  const auto route = ring.route(src, key);
  // Route to the directory entry, then one hop to the holder (free when
  // the directory owner already is the holder).
  const auto to_directory = route.hop_count();
  return to_directory + (route.destination == holder ? 0 : 1);
}

void IpCache::invalidate_peer(PeerId peer) {
  cache_.erase(peer);  // addresses the departed peer had learned
  for (auto& [src, known] : cache_) known.erase(peer);
}

std::uint64_t IpCache::entries() const {
  std::uint64_t total = 0;
  for (const auto& [src, known] : cache_) total += known.size();
  return total;
}

}  // namespace dprank
