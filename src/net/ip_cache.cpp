#include "net/ip_cache.hpp"

#include <algorithm>
#include <string>

namespace dprank {

std::uint64_t IpCache::send_hops(PeerId src, Guid key, const ChordRing& ring) {
  const auto route = ring.route(src, key);
  if (route.hop_count() == 0) return 0;  // key is local to src
  if (!enabled_) {
    note_hops(route.hop_count());
    return route.hop_count();
  }

  auto& known = cache_[src];
  if (known.contains(route.destination)) {
    note_hit();
    note_hops(1);
    return 1;
  }
  note_miss();
  note_hops(route.hop_count());
  known.insert(route.destination);
  return route.hop_count();
}

std::uint64_t IpCache::send_hops_to_peer(PeerId src, PeerId holder, Guid key,
                                         const ChordRing& ring) {
  if (src == holder) return 0;
  if (enabled_) {
    auto& known = cache_[src];
    if (known.contains(holder)) {
      note_hit();
      note_hops(1);
      return 1;
    }
    note_miss();
    known.insert(holder);
  }
  const auto route = ring.route(src, key);
  // Route to the directory entry, then one hop to the holder (free when
  // the directory owner already is the holder).
  const auto to_directory = route.hop_count();
  const std::uint64_t hops =
      to_directory + (route.destination == holder ? 0 : 1);
  note_hops(hops);
  return hops;
}

void IpCache::invalidate_peer(PeerId peer) {
  cache_.erase(peer);  // addresses the departed peer had learned
  for (auto& [src, known] : cache_) known.erase(peer);
}

void IpCache::bind_metrics(obs::MetricsRegistry& registry,
                           std::string_view overlay_name) {
  const std::string prefix = "dht." + std::string(overlay_name);
  hops_hist_ = &registry.histogram(prefix + ".send_hops");
  hits_ctr_ = &registry.counter(prefix + ".cache_hits");
  misses_ctr_ = &registry.counter(prefix + ".cache_misses");
}

std::uint64_t IpCache::entries() const {
  std::uint64_t total = 0;
  for (const auto& [src, known] : cache_) total += known.size();
  return total;
}

}  // namespace dprank
