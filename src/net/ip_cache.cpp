#include "net/ip_cache.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace dprank {

std::uint64_t IpCache::send_hops(PeerId src, Guid key, const ChordRing& ring) {
  const auto route = ring.route(src, key);
  if (route.hop_count() == 0) return 0;  // key is local to src
  if (!enabled_) {
    note_hops(route.hop_count());
    return route.hop_count();
  }

  if (knows(src, route.destination)) {
    note_hit();
    note_hops(1);
    return 1;
  }
  note_miss();
  note_hops(route.hop_count());
  learn(src, route.destination);
  return route.hop_count();
}

std::uint64_t IpCache::send_hops_to_peer(PeerId src, PeerId holder, Guid key,
                                         const ChordRing& ring) {
  if (src == holder) return 0;
  if (enabled_) {
    if (knows(src, holder)) {
      note_hit();
      note_hops(1);
      return 1;
    }
    note_miss();
    learn(src, holder);
  }
  const auto route = ring.route(src, key);
  // Route to the directory entry, then one hop to the holder (free when
  // the directory owner already is the holder).
  const auto to_directory = route.hop_count();
  const std::uint64_t hops =
      to_directory + (route.destination == holder ? 0 : 1);
  note_hops(hops);
  return hops;
}

void IpCache::invalidate_peer(PeerId peer) {
  // Addresses the departed peer had learned...
  if (peer < rows_.size()) rows_[peer].clear();
  // ...and everyone else's cached address for it.
  const std::size_t word = peer / 64;
  const std::uint64_t mask = ~(std::uint64_t{1} << (peer % 64));
  for (auto& row : rows_) {
    if (word < row.size()) row[word] &= mask;
  }
}

void IpCache::bind_metrics(obs::MetricsRegistry& registry,
                           std::string_view overlay_name) {
  const std::string prefix = "dht." + std::string(overlay_name);
  hops_hist_ = &registry.histogram(prefix + ".send_hops");
  hits_ctr_ = &registry.counter(prefix + ".cache_hits");
  misses_ctr_ = &registry.counter(prefix + ".cache_misses");
}

std::uint64_t IpCache::entries() const {
  std::uint64_t total = 0;
  for (const auto& row : rows_) {
    for (const std::uint64_t word : row) {
      total += static_cast<std::uint64_t>(std::popcount(word));
    }
  }
  return total;
}

}  // namespace dprank
