#include "net/failure_detector.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

void FailureDetector::heartbeat(PeerId peer, std::uint64_t pass) {
  Record& rec = record_for(peer);
  if (rec.state == State::kDead || rec.state == State::kLeft) return;
  if (rec.state == State::kSuspected) {
    // Exonerated: the timeout fired on a slow-but-live peer.
    ++false_suspicions_;
    rec.suspicion = 0;
  }
  rec.state = State::kAlive;
  rec.last_heard = pass;
}

void FailureDetector::mark_left(PeerId peer) {
  Record& rec = record_for(peer);
  if (rec.state == State::kDead) return;  // the verdict already landed
  rec.state = State::kLeft;
  rec.suspicion = 0;
}

std::vector<PeerId> FailureDetector::tick(std::uint64_t pass) {
  const std::uint64_t suspect_after =
      std::max<std::uint64_t>(1, config_.suspect_after_passes);
  const std::uint32_t confirm_after =
      std::max<std::uint32_t>(1, config_.confirm_after_suspicions);
  std::vector<PeerId> newly_dead;
  for (PeerId p = 0; p < records_.size(); ++p) {
    Record& rec = records_[p];
    if (rec.state != State::kAlive && rec.state != State::kSuspected) {
      continue;
    }
    const std::uint64_t silence =
        pass >= rec.last_heard ? pass - rec.last_heard : 0;
    if (silence < suspect_after) continue;
    if (rec.state == State::kAlive) {
      rec.state = State::kSuspected;
      rec.suspicion = 1;
      ++suspicions_raised_;
    } else {
      ++rec.suspicion;
    }
    if (rec.suspicion >= confirm_after) {
      rec.state = State::kDead;
      rec.suspicion = 0;
      ++declared_dead_;
      newly_dead.push_back(p);  // ascending: the loop walks ids in order
    }
  }
  return newly_dead;
}

void FailureDetector::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  const std::uint32_t confirm_after =
      std::max<std::uint32_t>(1, config_.confirm_after_suspicions);
  std::uint64_t dead = 0;
  for (PeerId p = 0; p < records_.size(); ++p) {
    const Record& rec = records_[p];
    if (rec.state == State::kDead) ++dead;
    if (rec.state == State::kSuspected) {
      DPRANK_INVARIANT(rec.suspicion >= 1 && rec.suspicion < confirm_after,
                       kSub,
                       "peer " + std::to_string(p) +
                           " suspected with suspicion count " +
                           std::to_string(rec.suspicion) +
                           " outside [1, confirmation threshold)");
    } else {
      DPRANK_INVARIANT(rec.suspicion == 0, kSub,
                       "peer " + std::to_string(p) +
                           " carries a suspicion count outside kSuspected");
    }
  }
  DPRANK_INVARIANT(declared_dead_ == dead, kSub,
                   "declared_dead() (" + std::to_string(declared_dead_) +
                       ") disagrees with the kDead population (" +
                       std::to_string(dead) + ")");
  DPRANK_INVARIANT(
      suspicions_raised_ >= false_suspicions_ + declared_dead_, kSub,
      "suspicion ledger out of balance: raised " +
          std::to_string(suspicions_raised_) + " < false " +
          std::to_string(false_suspicions_) + " + dead " +
          std::to_string(declared_dead_));
}

}  // namespace dprank
