#include "net/outbox.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/contracts.hpp"

namespace dprank {

void Outbox::evict_oldest(Queue& q) {
  while (!q.order.empty()) {
    const auto [slot, gen] = q.order.front();
    q.order.pop_front();
    const auto* it = q.slots.find(slot);
    if (it == nullptr || it->second != gen) continue;  // stale
    q.slots.erase(slot);
    --total_pending_;
    ++evicted_;
    return;
  }
}

void Outbox::store(std::uint32_t dest_peer, std::uint64_t slot, Message msg) {
  auto [dest_entry, new_dest] = pending_.try_emplace(dest_peer);
  if (new_dest) {
    // Recycled queues arrive with their slot map's capacity warm — a
    // churning destination stops allocating after its first cycle.
    dest_entry->second = queue_pool_.acquire();
  }
  Queue& q = dest_entry->second;
  const std::uint64_t gen = ++generation_;
  auto [slot_entry, inserted] = q.slots.try_emplace(slot);
  if (!inserted) ++superseded_;  // newest-wins: the older value is gone
  slot_entry->second = std::make_pair(std::move(msg), gen);
  q.order.emplace_back(slot, gen);
  ++stored_;
  if (inserted) {
    ++total_pending_;
    if (per_dest_cap_ != 0 && q.slots.size() > per_dest_cap_) {
      evict_oldest(q);
    }
    peak_pending_ = std::max(peak_pending_, total_pending_);
  }
  // Bound the lazy-invalidated order deque: compact once it is dominated
  // by stale overwrite entries.
  if (q.order.size() > 4 * (q.slots.size() + 4)) {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [s, g] : q.order) {
      const auto* sit = q.slots.find(s);
      if (sit != nullptr && sit->second == g) {
        live.emplace_back(s, g);
      }
    }
    q.order.swap(live);
  }
}

std::vector<std::pair<std::uint64_t, Message>> Outbox::drain(
    std::uint32_t dest_peer) {
  std::vector<std::pair<std::uint64_t, Message>> out;
  Queue* qp = pending_.find(dest_peer);
  if (qp == nullptr) return out;
  out.reserve(qp->slots.size());
  qp->slots.for_each([&](std::uint64_t slot, auto& entry) {
    out.emplace_back(slot, std::move(entry.first));
  });
  total_pending_ -= qp->slots.size();
  drained_ += qp->slots.size();
  // Recycle the queue (its flat map keeps its capacity) instead of
  // letting the erase free it.
  Queue recycled = std::move(*qp);
  pending_.erase(dest_peer);
  recycled.slots.clear();
  recycled.order.clear();
  recycled.next_retry = 0;
  recycled.attempts = 0;
  queue_pool_.release(std::move(recycled));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::uint64_t, Message>> Outbox::drop_dead(
    std::uint32_t dest_peer) {
  std::vector<std::pair<std::uint64_t, Message>> out;
  Queue* qp = pending_.find(dest_peer);
  if (qp == nullptr) return out;
  out.reserve(qp->slots.size());
  qp->slots.for_each([&](std::uint64_t slot, auto& entry) {
    out.emplace_back(slot, std::move(entry.first));
  });
  total_pending_ -= qp->slots.size();
  dropped_dead_ += qp->slots.size();
  Queue recycled = std::move(*qp);
  pending_.erase(dest_peer);
  recycled.slots.clear();
  recycled.order.clear();
  recycled.next_retry = 0;
  recycled.attempts = 0;
  queue_pool_.release(std::move(recycled));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Outbox::schedule_retry(std::uint32_t dest_peer, std::uint64_t now_pass) {
  Queue* qp = pending_.find(dest_peer);
  if (qp == nullptr) return;
  Queue& q = *qp;
  std::uint64_t interval = retry_interval_;
  for (std::uint32_t i = 0; i < q.attempts && interval < retry_backoff_cap_;
       ++i) {
    interval *= 2;
  }
  q.next_retry = now_pass + std::min(interval, retry_backoff_cap_);
  ++q.attempts;
}

std::vector<std::uint32_t> Outbox::due_destinations(std::uint64_t pass) const {
  std::vector<std::uint32_t> due;
  pending_.for_each([&](std::uint64_t dest, const Queue& q) {
    if (!q.slots.empty() && q.next_retry <= pass) {
      due.push_back(static_cast<std::uint32_t>(dest));
    }
  });
  std::sort(due.begin(), due.end());
  return due;
}

bool Outbox::has_pending(std::uint32_t dest_peer) const {
  const Queue* qp = pending_.find(dest_peer);
  return qp != nullptr && !qp->slots.empty();
}

std::uint64_t Outbox::pending_for(std::uint32_t dest_peer) const {
  const Queue* qp = pending_.find(dest_peer);
  return qp == nullptr ? 0 : qp->slots.size();
}

void Outbox::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  std::uint64_t live = 0;
  pending_.for_each([&](std::uint64_t dest, const Queue& q) {
    live += q.slots.size();
    if (per_dest_cap_ != 0) {
      DPRANK_INVARIANT(q.slots.size() <= per_dest_cap_, kSub,
                       "destination " + std::to_string(dest) + " holds " +
                           std::to_string(q.slots.size()) +
                           " slots, over the per-destination cap of " +
                           std::to_string(per_dest_cap_));
    }
    // Every live slot must appear in the store-order deque under its
    // current generation exactly once — otherwise the cap eviction order
    // is wrong (or the slot can never be evicted at all).
    std::unordered_set<std::uint64_t> live_seen;
    for (const auto& [slot, gen] : q.order) {
      const auto* sit = q.slots.find(slot);
      if (sit == nullptr || sit->second != gen) continue;
      DPRANK_INVARIANT(live_seen.insert(slot).second, kSub,
                       "slot " + std::to_string(slot) + " for destination " +
                           std::to_string(dest) +
                           " appears twice in the eviction order");
      DPRANK_INVARIANT(gen <= generation_, kSub,
                       "slot generation is ahead of the store clock");
    }
    DPRANK_INVARIANT(
        live_seen.size() == q.slots.size(), kSub,
        "destination " + std::to_string(dest) + " has " +
            std::to_string(q.slots.size() - live_seen.size()) +
            " slot(s) missing from the eviction order (uncappable state)");
  });
  DPRANK_INVARIANT(live == total_pending_, kSub,
                   "pending_count() (" + std::to_string(total_pending_) +
                       ") disagrees with the per-destination slot sum (" +
                       std::to_string(live) + ")");
  DPRANK_INVARIANT(peak_pending_ >= total_pending_, kSub,
                   "peak_pending() understates the live pending count");
  // Credit conservation (§3.1): nothing stored may vanish unaccounted.
  DPRANK_INVARIANT(
      stored_ == total_pending_ + drained_ + superseded_ + evicted_ +
                     dropped_dead_,
      kSub,
      "outbox credit leak: stored=" + std::to_string(stored_) +
          " != pending=" + std::to_string(total_pending_) +
          " + drained=" + std::to_string(drained_) +
          " + evicted=" + std::to_string(evicted_) +
          " + superseded=" + std::to_string(superseded_) +
          " + dropped_dead=" + std::to_string(dropped_dead_));
}

}  // namespace dprank
