#include "net/outbox.hpp"

#include <algorithm>

namespace dprank {

void Outbox::store(std::uint32_t dest_peer, std::uint64_t slot, Message msg) {
  auto& slots = pending_[dest_peer];
  const auto [it, inserted] = slots.insert_or_assign(slot, std::move(msg));
  if (inserted) {
    ++total_pending_;
    peak_pending_ = std::max(peak_pending_, total_pending_);
  }
}

std::vector<std::pair<std::uint64_t, Message>> Outbox::drain(
    std::uint32_t dest_peer) {
  std::vector<std::pair<std::uint64_t, Message>> out;
  const auto it = pending_.find(dest_peer);
  if (it == pending_.end()) return out;
  out.reserve(it->second.size());
  for (auto& [slot, msg] : it->second) out.emplace_back(slot, std::move(msg));
  total_pending_ -= it->second.size();
  pending_.erase(it);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool Outbox::has_pending(std::uint32_t dest_peer) const {
  return pending_.contains(dest_peer);
}

}  // namespace dprank
