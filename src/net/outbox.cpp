#include "net/outbox.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/contracts.hpp"

namespace dprank {

void Outbox::evict_oldest(Queue& q) {
  while (!q.order.empty()) {
    const auto [slot, gen] = q.order.front();
    q.order.pop_front();
    const auto it = q.slots.find(slot);
    if (it == q.slots.end() || it->second.second != gen) continue;  // stale
    q.slots.erase(it);
    --total_pending_;
    ++evicted_;
    return;
  }
}

void Outbox::store(std::uint32_t dest_peer, std::uint64_t slot, Message msg) {
  auto& q = pending_[dest_peer];
  const std::uint64_t gen = ++generation_;
  const auto [it, inserted] =
      q.slots.insert_or_assign(slot, std::make_pair(std::move(msg), gen));
  q.order.emplace_back(slot, gen);
  ++stored_;
  if (!inserted) ++superseded_;  // newest-wins: the older value is gone
  if (inserted) {
    ++total_pending_;
    if (per_dest_cap_ != 0 && q.slots.size() > per_dest_cap_) {
      evict_oldest(q);
    }
    peak_pending_ = std::max(peak_pending_, total_pending_);
  }
  // Bound the lazy-invalidated order deque: compact once it is dominated
  // by stale overwrite entries.
  if (q.order.size() > 4 * (q.slots.size() + 4)) {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
    for (const auto& [s, g] : q.order) {
      const auto sit = q.slots.find(s);
      if (sit != q.slots.end() && sit->second.second == g) {
        live.emplace_back(s, g);
      }
    }
    q.order.swap(live);
  }
}

std::vector<std::pair<std::uint64_t, Message>> Outbox::drain(
    std::uint32_t dest_peer) {
  std::vector<std::pair<std::uint64_t, Message>> out;
  const auto it = pending_.find(dest_peer);
  if (it == pending_.end()) return out;
  out.reserve(it->second.slots.size());
  for (auto& [slot, entry] : it->second.slots) {
    out.emplace_back(slot, std::move(entry.first));
  }
  total_pending_ -= it->second.slots.size();
  drained_ += it->second.slots.size();
  pending_.erase(it);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Outbox::schedule_retry(std::uint32_t dest_peer, std::uint64_t now_pass) {
  const auto it = pending_.find(dest_peer);
  if (it == pending_.end()) return;
  auto& q = it->second;
  std::uint64_t interval = retry_interval_;
  for (std::uint32_t i = 0; i < q.attempts && interval < retry_backoff_cap_;
       ++i) {
    interval *= 2;
  }
  q.next_retry = now_pass + std::min(interval, retry_backoff_cap_);
  ++q.attempts;
}

std::vector<std::uint32_t> Outbox::due_destinations(std::uint64_t pass) const {
  std::vector<std::uint32_t> due;
  for (const auto& [dest, q] : pending_) {
    if (!q.slots.empty() && q.next_retry <= pass) due.push_back(dest);
  }
  std::sort(due.begin(), due.end());
  return due;
}

bool Outbox::has_pending(std::uint32_t dest_peer) const {
  const auto it = pending_.find(dest_peer);
  return it != pending_.end() && !it->second.slots.empty();
}

std::uint64_t Outbox::pending_for(std::uint32_t dest_peer) const {
  const auto it = pending_.find(dest_peer);
  return it == pending_.end() ? 0 : it->second.slots.size();
}

void Outbox::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  std::uint64_t live = 0;
  for (const auto& [dest, q] : pending_) {
    live += q.slots.size();
    if (per_dest_cap_ != 0) {
      DPRANK_INVARIANT(q.slots.size() <= per_dest_cap_, kSub,
                       "destination " + std::to_string(dest) + " holds " +
                           std::to_string(q.slots.size()) +
                           " slots, over the per-destination cap of " +
                           std::to_string(per_dest_cap_));
    }
    // Every live slot must appear in the store-order deque under its
    // current generation exactly once — otherwise the cap eviction order
    // is wrong (or the slot can never be evicted at all).
    std::unordered_set<std::uint64_t> live_seen;
    for (const auto& [slot, gen] : q.order) {
      const auto sit = q.slots.find(slot);
      if (sit == q.slots.end() || sit->second.second != gen) continue;
      DPRANK_INVARIANT(live_seen.insert(slot).second, kSub,
                       "slot " + std::to_string(slot) + " for destination " +
                           std::to_string(dest) +
                           " appears twice in the eviction order");
      DPRANK_INVARIANT(gen <= generation_, kSub,
                       "slot generation is ahead of the store clock");
    }
    DPRANK_INVARIANT(
        live_seen.size() == q.slots.size(), kSub,
        "destination " + std::to_string(dest) + " has " +
            std::to_string(q.slots.size() - live_seen.size()) +
            " slot(s) missing from the eviction order (uncappable state)");
  }
  DPRANK_INVARIANT(live == total_pending_, kSub,
                   "pending_count() (" + std::to_string(total_pending_) +
                       ") disagrees with the per-destination slot sum (" +
                       std::to_string(live) + ")");
  DPRANK_INVARIANT(peak_pending_ >= total_pending_, kSub,
                   "peak_pending() understates the live pending count");
  // Credit conservation (§3.1): nothing stored may vanish unaccounted.
  DPRANK_INVARIANT(
      stored_ == total_pending_ + drained_ + superseded_ + evicted_, kSub,
      "outbox credit leak: stored=" + std::to_string(stored_) +
          " != pending=" + std::to_string(total_pending_) +
          " + drained=" + std::to_string(drained_) +
          " + superseded=" + std::to_string(superseded_) +
          " + evicted=" + std::to_string(evicted_));
}

}  // namespace dprank
