#include "net/reliable_channel.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

std::uint64_t ReliableChannel::retry_interval(std::uint32_t attempt) const {
  std::uint64_t interval = std::max<std::uint32_t>(1, config_.ack_timeout_passes);
  const std::uint64_t cap =
      std::max<std::uint32_t>(1, config_.retry_backoff_cap);
  for (std::uint32_t i = 0; i < attempt && interval < cap; ++i) interval *= 2;
  return std::min(interval, cap);
}

void ReliableChannel::track(const Pending& send, std::uint64_t pass) {
  if (config_.max_attempts != 0 && send.attempt >= config_.max_attempts) {
    // Retry budget exhausted: terminal outcome instead of another backoff
    // round. The record never re-enters the in-flight table, so the
    // ledger sees neither an insertion nor an exit.
    ++gave_up_;
    gave_up_queue_.push_back(send);
    return;
  }
  auto [entry, inserted] = inflight_.try_emplace(send.slot);
  if (inserted) ++tracked_;
  if (entry->second.send.seq <= send.seq) entry->second.send = send;
  entry->second.retry_at = pass + retry_interval(send.attempt);
  peak_in_flight_ = std::max<std::uint64_t>(peak_in_flight_, inflight_.size());
}

void ReliableChannel::ack(std::uint64_t slot, std::uint32_t seq) {
  const Inflight* entry = inflight_.find(slot);
  if (entry != nullptr && entry->send.seq <= seq) {
    inflight_.erase(slot);
    ++acked_clears_;
  }
}

std::vector<ReliableChannel::Pending> ReliableChannel::take_due(
    std::uint64_t pass) {
  std::vector<Pending> due;
  inflight_.erase_if([&](std::uint64_t, Inflight& entry) {
    if (entry.retry_at > pass) return false;
    due.push_back(entry.send);
    return true;
  });
  // The flat map iterates in slot-array order; callers observe the
  // retransmission order, so restore the slot order the std::map gave.
  std::sort(due.begin(), due.end(),
            [](const Pending& a, const Pending& b) { return a.slot < b.slot; });
  retransmissions_ += due.size();
  taken_ += due.size();
  return due;
}

std::vector<ReliableChannel::Pending> ReliableChannel::forget_sender(
    std::uint32_t src) {
  std::vector<Pending> lost;
  inflight_.erase_if([&](std::uint64_t, Inflight& entry) {
    if (entry.send.src != src) return false;
    lost.push_back(entry.send);
    return true;
  });
  std::sort(lost.begin(), lost.end(),
            [](const Pending& a, const Pending& b) { return a.slot < b.slot; });
  forgotten_ += lost.size();
  return lost;
}

std::vector<ReliableChannel::Pending> ReliableChannel::give_up_on_dest(
    std::uint32_t dest) {
  std::vector<Pending> abandoned;
  inflight_.erase_if([&](std::uint64_t, Inflight& entry) {
    if (entry.send.dest != dest) return false;
    abandoned.push_back(entry.send);
    return true;
  });
  std::sort(abandoned.begin(), abandoned.end(),
            [](const Pending& a, const Pending& b) { return a.slot < b.slot; });
  gave_up_removed_ += abandoned.size();
  gave_up_ += abandoned.size();
  gave_up_queue_.insert(gave_up_queue_.end(), abandoned.begin(),
                        abandoned.end());
  return abandoned;
}

std::vector<ReliableChannel::Pending> ReliableChannel::take_gave_up() {
  std::vector<Pending> drained;
  drained.swap(gave_up_queue_);
  return drained;
}

std::uint64_t ReliableChannel::reassign_sender(std::uint32_t src,
                                               std::uint32_t heir) {
  std::uint64_t moved = 0;
  inflight_.for_each([&](std::uint64_t, Inflight& entry) {
    if (entry.send.src == src) {
      entry.send.src = heir;
      ++moved;
    }
  });
  return moved;
}

bool ReliableChannel::accept(std::uint64_t slot, std::uint32_t seq) {
  EdgeRecord& record = edges_[slot];
  if (seq > record.applied) {
    record.applied = seq;
    return true;
  }
  if (seq == record.applied) {
    ++duplicates_suppressed_;
  } else {
    ++stale_rejected_;
  }
  return false;
}

void ReliableChannel::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  edges_.for_each([&](std::uint64_t slot, const EdgeRecord& record) {
    // A slot applied without local issues only happens when sender and
    // receiver roles live in different channel instances; the simulator
    // shares one, where every applied value was issued here.
    if (record.issued != 0) {
      DPRANK_INVARIANT(record.applied <= record.issued, kSub,
                       "slot " + std::to_string(slot) + " applied seq " +
                           std::to_string(record.applied) +
                           " ahead of the newest issued seq " +
                           std::to_string(record.issued));
    }
  });
  inflight_.for_each([&](std::uint64_t slot, const Inflight& entry) {
    DPRANK_INVARIANT(entry.send.slot == slot, kSub,
                     "in-flight record filed under slot " +
                         std::to_string(slot) + " but carries slot " +
                         std::to_string(entry.send.slot));
    DPRANK_INVARIANT(entry.send.seq >= 1, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries an unissued sequence number 0");
    const EdgeRecord* record = edges_.find(slot);
    DPRANK_INVARIANT(record != nullptr && record->issued >= 1, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " has no issued sequence counter");
    DPRANK_INVARIANT(entry.send.seq <= record->issued, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries seq " + std::to_string(entry.send.seq) +
                         " ahead of the newest issued seq " +
                         std::to_string(record->issued));
  });
  DPRANK_INVARIANT(peak_in_flight_ >= inflight_.size(), kSub,
                   "peak_in_flight() understates the live in-flight count");
  // Conservation ledger: every insertion into the in-flight table left
  // through exactly one exit or is still live. (Budget-exhausted give-ups
  // never re-entered the table, so they appear in gave_up_ but not here.)
  DPRANK_INVARIANT(
      tracked_ ==
          acked_clears_ + forgotten_ + taken_ + gave_up_removed_ +
              inflight_.size(),
      kSub,
      "in-flight conservation ledger out of balance: tracked " +
          std::to_string(tracked_) + " != acked " +
          std::to_string(acked_clears_) + " + forgotten " +
          std::to_string(forgotten_) + " + taken " + std::to_string(taken_) +
          " + gave_up " + std::to_string(gave_up_removed_) + " + in_flight " +
          std::to_string(inflight_.size()));
  DPRANK_INVARIANT(gave_up_queue_.size() <= gave_up_, kSub,
                   "undrained give-up queue exceeds the total give-up count");
}

}  // namespace dprank
