#include "net/reliable_channel.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

std::uint64_t ReliableChannel::retry_interval(std::uint32_t attempt) const {
  std::uint64_t interval = std::max<std::uint32_t>(1, config_.ack_timeout_passes);
  const std::uint64_t cap =
      std::max<std::uint32_t>(1, config_.retry_backoff_cap);
  for (std::uint32_t i = 0; i < attempt && interval < cap; ++i) interval *= 2;
  return std::min(interval, cap);
}

void ReliableChannel::track(const Pending& send, std::uint64_t pass) {
  auto& entry = inflight_[send.slot];
  if (entry.send.seq <= send.seq) entry.send = send;
  entry.retry_at = pass + retry_interval(send.attempt);
  peak_in_flight_ = std::max<std::uint64_t>(peak_in_flight_, inflight_.size());
}

void ReliableChannel::ack(std::uint64_t slot, std::uint32_t seq) {
  const Inflight* entry = inflight_.find(slot);
  if (entry != nullptr && entry->send.seq <= seq) {
    inflight_.erase(slot);
  }
}

std::vector<ReliableChannel::Pending> ReliableChannel::take_due(
    std::uint64_t pass) {
  std::vector<Pending> due;
  inflight_.erase_if([&](std::uint64_t, Inflight& entry) {
    if (entry.retry_at > pass) return false;
    due.push_back(entry.send);
    return true;
  });
  // The flat map iterates in slot-array order; callers observe the
  // retransmission order, so restore the slot order the std::map gave.
  std::sort(due.begin(), due.end(),
            [](const Pending& a, const Pending& b) { return a.slot < b.slot; });
  retransmissions_ += due.size();
  return due;
}

std::vector<ReliableChannel::Pending> ReliableChannel::forget_sender(
    std::uint32_t src) {
  std::vector<Pending> lost;
  inflight_.erase_if([&](std::uint64_t, Inflight& entry) {
    if (entry.send.src != src) return false;
    lost.push_back(entry.send);
    return true;
  });
  std::sort(lost.begin(), lost.end(),
            [](const Pending& a, const Pending& b) { return a.slot < b.slot; });
  return lost;
}

bool ReliableChannel::accept(std::uint64_t slot, std::uint32_t seq) {
  EdgeRecord& record = edges_[slot];
  if (seq > record.applied) {
    record.applied = seq;
    return true;
  }
  if (seq == record.applied) {
    ++duplicates_suppressed_;
  } else {
    ++stale_rejected_;
  }
  return false;
}

void ReliableChannel::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  edges_.for_each([&](std::uint64_t slot, const EdgeRecord& record) {
    // A slot applied without local issues only happens when sender and
    // receiver roles live in different channel instances; the simulator
    // shares one, where every applied value was issued here.
    if (record.issued != 0) {
      DPRANK_INVARIANT(record.applied <= record.issued, kSub,
                       "slot " + std::to_string(slot) + " applied seq " +
                           std::to_string(record.applied) +
                           " ahead of the newest issued seq " +
                           std::to_string(record.issued));
    }
  });
  inflight_.for_each([&](std::uint64_t slot, const Inflight& entry) {
    DPRANK_INVARIANT(entry.send.slot == slot, kSub,
                     "in-flight record filed under slot " +
                         std::to_string(slot) + " but carries slot " +
                         std::to_string(entry.send.slot));
    DPRANK_INVARIANT(entry.send.seq >= 1, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries an unissued sequence number 0");
    const EdgeRecord* record = edges_.find(slot);
    DPRANK_INVARIANT(record != nullptr && record->issued >= 1, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " has no issued sequence counter");
    DPRANK_INVARIANT(entry.send.seq <= record->issued, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries seq " + std::to_string(entry.send.seq) +
                         " ahead of the newest issued seq " +
                         std::to_string(record->issued));
  });
  DPRANK_INVARIANT(peak_in_flight_ >= inflight_.size(), kSub,
                   "peak_in_flight() understates the live in-flight count");
}

}  // namespace dprank
