#include "net/reliable_channel.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

std::uint64_t ReliableChannel::retry_interval(std::uint32_t attempt) const {
  std::uint64_t interval = std::max<std::uint32_t>(1, config_.ack_timeout_passes);
  const std::uint64_t cap =
      std::max<std::uint32_t>(1, config_.retry_backoff_cap);
  for (std::uint32_t i = 0; i < attempt && interval < cap; ++i) interval *= 2;
  return std::min(interval, cap);
}

void ReliableChannel::track(const Pending& send, std::uint64_t pass) {
  auto& entry = inflight_[send.slot];
  if (entry.send.seq <= send.seq) entry.send = send;
  entry.retry_at = pass + retry_interval(send.attempt);
  peak_in_flight_ = std::max<std::uint64_t>(peak_in_flight_, inflight_.size());
}

void ReliableChannel::ack(std::uint64_t slot, std::uint32_t seq) {
  const auto it = inflight_.find(slot);
  if (it != inflight_.end() && it->second.send.seq <= seq) {
    inflight_.erase(it);
  }
}

std::vector<ReliableChannel::Pending> ReliableChannel::take_due(
    std::uint64_t pass) {
  std::vector<Pending> due;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.retry_at <= pass) {
      due.push_back(it->second.send);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  retransmissions_ += due.size();
  return due;
}

std::vector<ReliableChannel::Pending> ReliableChannel::forget_sender(
    std::uint32_t src) {
  std::vector<Pending> lost;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.send.src == src) {
      lost.push_back(it->second.send);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  return lost;
}

bool ReliableChannel::accept(std::uint64_t slot, std::uint32_t seq) {
  auto& applied = applied_[slot];
  if (seq > applied) {
    applied = seq;
    return true;
  }
  if (seq == applied) {
    ++duplicates_suppressed_;
  } else {
    ++stale_rejected_;
  }
  return false;
}

void ReliableChannel::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "net";
  for (const auto& [slot, issued] : seq_) {
    DPRANK_INVARIANT(issued >= 1, kSub,
                     "slot " + std::to_string(slot) +
                         " has an issued sequence counter of zero");
  }
  for (const auto& [slot, applied] : applied_) {
    const auto it = seq_.find(slot);
    // A slot can be applied without a local seq_ entry only when two
    // channel instances split sender and receiver roles; the simulator
    // shares one instance, where every applied value was issued here.
    if (it == seq_.end()) continue;
    DPRANK_INVARIANT(applied <= it->second, kSub,
                     "slot " + std::to_string(slot) + " applied seq " +
                         std::to_string(applied) +
                         " ahead of the newest issued seq " +
                         std::to_string(it->second));
  }
  for (const auto& [slot, entry] : inflight_) {
    DPRANK_INVARIANT(entry.send.slot == slot, kSub,
                     "in-flight record filed under slot " +
                         std::to_string(slot) + " but carries slot " +
                         std::to_string(entry.send.slot));
    DPRANK_INVARIANT(entry.send.seq >= 1, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries an unissued sequence number 0");
    const auto it = seq_.find(slot);
    DPRANK_INVARIANT(it != seq_.end(), kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " has no issued sequence counter");
    DPRANK_INVARIANT(entry.send.seq <= it->second, kSub,
                     "in-flight record on slot " + std::to_string(slot) +
                         " carries seq " + std::to_string(entry.send.seq) +
                         " ahead of the newest issued seq " +
                         std::to_string(it->second));
  }
  DPRANK_INVARIANT(peak_in_flight_ >= inflight_.size(), kSub,
                   "peak_in_flight() understates the live in-flight count");
}

}  // namespace dprank
