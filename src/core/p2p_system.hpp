#pragma once

// P2PSystem — the assembled system of the paper, behind one facade.
//
// Owns the pieces a deployment would run together: the document link
// graph, the peer overlay (Chord ring + placement), the pagerank state,
// and the term-partitioned keyword index. Provides the full document
// lifecycle the paper describes:
//
//   * converge()        — initial distributed pagerank (Fig. 1) and
//                         publication of ranks into the index (§2.4.2);
//   * add_document()    — §3.1 insert: place the document, seed its
//                         rank, propagate increments (Fig. 2), add its
//                         postings, refresh index entries of every
//                         document the cascade moved;
//   * remove_document() — §3.1 delete: negated-rank propagation, link
//                         and posting removal, index refresh;
//   * search()          — §2.4.3 incremental multi-word search over the
//                         maintained index.
//
// All network traffic (pagerank updates, index updates, search
// forwards) is tallied in one ledger, so "what does keeping ranks
// continuously fresh cost?" is a single method call.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dht/ring.hpp"
#include "graph/mutable_digraph.hpp"
#include "net/traffic_meter.hpp"
#include "p2p/placement.hpp"
#include "pagerank/options.hpp"
#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "search/incremental_search.hpp"

namespace dprank {

struct P2PSystemConfig {
  PeerId num_peers = 50;
  PagerankOptions pagerank;       // damping 0.85, epsilon 1e-3
  std::uint64_t seed = 42;
  /// Index entries are refreshed for documents whose rank moved by more
  /// than this relative amount during an incremental cascade (refreshing
  /// every touched posting on every insert would swamp the index).
  double index_refresh_threshold = 1e-3;
};

class P2PSystem {
 public:
  /// Adopt an initial corpus and its link graph. Documents are placed
  /// uniformly at random (the paper's setup); the index is built
  /// immediately, ranks are zero until converge().
  P2PSystem(const Digraph& initial_graph, const Corpus& corpus,
            const P2PSystemConfig& config);

  /// Run the initial distributed pagerank computation to convergence and
  /// publish every rank into the index. Returns the number of passes.
  std::uint64_t converge();

  /// Insert a document with the given index terms and out-links
  /// (§3.1 + §4.7). Returns its id. Requires converge() first.
  NodeId add_document(const std::vector<TermId>& terms,
                      const std::vector<NodeId>& out_links);

  /// Delete a document (§3.1): negated-rank propagation, graph
  /// isolation, posting removal. Requires converge() first.
  void remove_document(NodeId doc);

  /// Boolean multi-word search with pagerank-sorted incremental
  /// forwarding (§2.4.3).
  [[nodiscard]] QueryOutcome search(const std::vector<TermId>& terms,
                                    const SearchPolicy& policy) const;

  /// Paged search (§1: top hits first, "additional pages fetched
  /// incrementally as required"). The session references this system's
  /// index; keep the system alive while using it.
  [[nodiscard]] SearchSession begin_search(std::vector<TermId> terms,
                                           SearchPolicy policy) const;

  [[nodiscard]] const std::vector<double>& ranks() const { return ranks_; }
  [[nodiscard]] double rank_of(NodeId doc) const { return ranks_[doc]; }
  [[nodiscard]] PeerId peer_of(NodeId doc) const {
    return placement_.peer_of(doc);
  }
  [[nodiscard]] NodeId num_documents() const { return graph_.num_nodes(); }
  [[nodiscard]] bool is_live(NodeId doc) const { return live_[doc]; }

  /// One ledger for everything: pagerank updates, index updates, and
  /// (via searches' QueryOutcome) search traffic.
  [[nodiscard]] const TrafficMeter& traffic() const { return meter_; }

  /// Terms a document is indexed under.
  [[nodiscard]] const std::vector<TermId>& terms_of(NodeId doc) const {
    return terms_[doc];
  }

  /// Cross-component consistency check; returns human-readable
  /// violations (empty = healthy). Verifies that ranks, liveness, graph
  /// state and index postings agree — the invariant set every mutation
  /// must preserve. O(total postings); intended for tests, the CLI
  /// doctor, and debugging sessions.
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] TermId vocabulary() const {
    return static_cast<TermId>(index_.num_terms());
  }

 private:
  /// Refresh index entries for documents the last cascade moved.
  void refresh_index(const std::vector<NodeId>& touched,
                     const std::vector<double>& before);

  P2PSystemConfig config_;
  MutableDigraph graph_;
  ChordRing ring_;
  Placement placement_;
  std::vector<std::vector<TermId>> terms_;
  std::vector<bool> live_;
  std::vector<double> ranks_;
  DistributedIndex index_;
  TrafficMeter meter_;
  Rng rng_;
  bool converged_ = false;
};

}  // namespace dprank
