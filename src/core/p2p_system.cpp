#include "core/p2p_system.hpp"

#include <stdexcept>
#include <string>

#include "net/message.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/incremental.hpp"

namespace dprank {

P2PSystem::P2PSystem(const Digraph& initial_graph, const Corpus& corpus,
                     const P2PSystemConfig& config)
    : config_(config),
      graph_(initial_graph),
      ring_(config.num_peers),
      placement_(Placement::random(initial_graph.num_nodes(),
                                   config.num_peers, config.seed)),
      live_(initial_graph.num_nodes(), true),
      ranks_(initial_graph.num_nodes(), 0.0),
      index_(corpus, ring_),
      rng_(config.seed ^ 0x5157E0ULL) {
  if (corpus.num_docs() != initial_graph.num_nodes()) {
    throw std::invalid_argument(
        "P2PSystem: corpus and link graph must cover the same documents");
  }
  terms_.reserve(corpus.num_docs());
  for (NodeId d = 0; d < corpus.num_docs(); ++d) {
    terms_.push_back(corpus.terms_of(d));
  }
}

std::uint64_t P2PSystem::converge() {
  const Digraph snapshot = graph_.freeze();
  DistributedPagerank engine(snapshot, placement_, config_.pagerank);
  const auto run = engine.run();
  if (!run.converged) {
    throw std::runtime_error("P2PSystem::converge: engine hit pass cap");
  }
  ranks_ = engine.ranks();
  for (NodeId d = 0; d < graph_.num_nodes(); ++d) {
    if (!live_[d]) ranks_[d] = 0.0;
  }
  meter_.merge(engine.traffic());

  std::vector<PeerId> owners(graph_.num_nodes());
  for (NodeId d = 0; d < graph_.num_nodes(); ++d) {
    owners[d] = placement_.peer_of(d);
  }
  index_.publish_ranks(ranks_, owners, &meter_);
  converged_ = true;
  return run.passes;
}

NodeId P2PSystem::add_document(const std::vector<TermId>& doc_terms,
                               const std::vector<NodeId>& out_links) {
  if (!converged_) {
    throw std::logic_error("P2PSystem::add_document before converge()");
  }
  for (const NodeId v : out_links) {
    if (v >= graph_.num_nodes() || !live_[v]) {
      throw std::invalid_argument(
          "P2PSystem::add_document: out-link to missing document");
    }
  }
  const NodeId id = graph_.add_document(out_links);
  placement_.add_document(
      id, static_cast<PeerId>(rng_.bounded(config_.num_peers)));
  terms_.push_back(doc_terms);
  live_.push_back(true);
  ranks_.push_back(config_.pagerank.initial_rank);

  // §3.1: seed with the initial constant, send updates to out-links,
  // then reconverge the new document itself (no in-links => rank 1-d).
  const std::vector<double> before = ranks_;
  const Digraph snapshot = graph_.freeze();
  IncrementalPagerank engine(snapshot, ranks_, config_.pagerank,
                             &placement_);
  auto stats = engine.seed_and_propagate(id);
  std::vector<NodeId> touched = engine.last_touched();
  const double true_rank = 1.0 - config_.pagerank.damping;
  const double correction = true_rank - ranks_[id];
  ranks_[id] = true_rank;
  if (snapshot.out_degree(id) > 0 && correction != 0.0) {
    const double fwd = config_.pagerank.damping * correction /
                       static_cast<double>(snapshot.out_degree(id));
    for (const NodeId w : snapshot.out_neighbors(id)) {
      const auto more = engine.inject(w, fwd);
      stats.cross_peer_messages += more.cross_peer_messages;
      touched.insert(touched.end(), engine.last_touched().begin(),
                     engine.last_touched().end());
    }
  }
  meter_.record_messages(stats.cross_peer_messages,
                         PagerankUpdate::kWireBytes);

  index_.publish_one(id, doc_terms, ranks_[id], placement_.peer_of(id),
                     &meter_);
  refresh_index(touched, before);
  return id;
}

void P2PSystem::remove_document(NodeId doc) {
  if (!converged_) {
    throw std::logic_error("P2PSystem::remove_document before converge()");
  }
  if (doc >= graph_.num_nodes() || !live_[doc]) {
    throw std::invalid_argument("P2PSystem::remove_document: not live");
  }
  const std::vector<double> before = ranks_;
  const Digraph snapshot = graph_.freeze();
  IncrementalPagerank engine(snapshot, ranks_, config_.pagerank,
                             &placement_);
  const auto stats = engine.propagate_delete(doc);
  meter_.record_messages(stats.cross_peer_messages,
                         PagerankUpdate::kWireBytes);
  const std::vector<NodeId> touched = engine.last_touched();

  graph_.isolate_node(doc);
  ranks_[doc] = 0.0;
  live_[doc] = false;
  index_.remove_document(doc, terms_[doc], placement_.peer_of(doc),
                         &meter_);
  terms_[doc].clear();
  refresh_index(touched, before);
}

QueryOutcome P2PSystem::search(const std::vector<TermId>& query_terms,
                               const SearchPolicy& policy) const {
  const SearchEngine engine(index_);
  return engine.run_query(query_terms, policy);
}

SearchSession P2PSystem::begin_search(std::vector<TermId> query_terms,
                                      SearchPolicy policy) const {
  return SearchSession(SearchEngine(index_), std::move(query_terms), policy);
}

std::vector<std::string> P2PSystem::validate() const {
  std::vector<std::string> issues;
  auto complain = [&](std::string msg) { issues.push_back(std::move(msg)); };

  const NodeId n = graph_.num_nodes();
  if (placement_.num_docs() != n || live_.size() != n ||
      ranks_.size() != n || terms_.size() != n) {
    complain("container sizes disagree with the graph");
    return issues;  // everything below would index out of bounds
  }

  const double floor_rank = 1.0 - config_.pagerank.damping;
  for (NodeId d = 0; d < n; ++d) {
    if (live_[d]) {
      if (converged_ && ranks_[d] < floor_rank * 0.5) {
        complain("live doc " + std::to_string(d) + " has rank " +
                 std::to_string(ranks_[d]) + " below the teleport floor");
      }
    } else {
      if (ranks_[d] != 0.0) {
        complain("dead doc " + std::to_string(d) + " has nonzero rank");
      }
      if (!graph_.is_isolated(d)) {
        complain("dead doc " + std::to_string(d) + " still has links");
      }
      if (!terms_[d].empty()) {
        complain("dead doc " + std::to_string(d) + " still has terms");
      }
    }
  }

  // Index <-> liveness/terms agreement.
  std::vector<std::uint64_t> postings_per_doc(n, 0);
  for (TermId t = 0; t < index_.num_terms(); ++t) {
    for (const Posting& p : index_.postings(t)) {
      if (p.doc >= n) {
        complain("posting for unknown doc " + std::to_string(p.doc));
        continue;
      }
      if (!live_[p.doc]) {
        complain("dead doc " + std::to_string(p.doc) +
                 " still posted under term " + std::to_string(t));
      }
      ++postings_per_doc[p.doc];
    }
  }
  for (NodeId d = 0; d < n; ++d) {
    if (live_[d] && postings_per_doc[d] != terms_[d].size()) {
      complain("doc " + std::to_string(d) + " has " +
               std::to_string(postings_per_doc[d]) + " postings but " +
               std::to_string(terms_[d].size()) + " terms");
    }
  }
  return issues;
}

void P2PSystem::refresh_index(const std::vector<NodeId>& touched,
                              const std::vector<double>& before) {
  for (const NodeId v : touched) {
    if (v >= before.size()) continue;  // the new document: already published
    if (!live_[v]) continue;
    if (relative_change(before[v], ranks_[v]) >
        config_.index_refresh_threshold) {
      index_.publish_one(v, terms_[v], ranks_[v], placement_.peer_of(v),
                         &meter_);
    }
  }
}

}  // namespace dprank
