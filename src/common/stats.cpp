#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dprank {

Summary::Summary(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
  double mean = 0.0;
  double m2 = 0.0;
  double total = 0.0;
  std::size_t n = 0;
  for (const double x : sorted_) {
    ++n;
    total += x;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }
  mean_ = mean;
  m2_ = m2;
  total_ = total;
}

double Summary::percentile(double pct) const {
  if (sorted_.empty()) throw std::logic_error("Summary::percentile on empty");
  if (pct <= 0.0 || pct > 100.0) {
    throw std::invalid_argument("Summary::percentile: pct out of (0,100]");
  }
  // Nearest-rank: ceil(pct/100 * n), 1-based.
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

double Summary::min() const {
  if (sorted_.empty()) throw std::logic_error("Summary::min on empty");
  return sorted_.front();
}

double Summary::max() const {
  if (sorted_.empty()) throw std::logic_error("Summary::max on empty");
  return sorted_.back();
}

double Summary::stddev() const {
  if (sorted_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(sorted_.size() - 1));
}

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Welford::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

double max_cdf_deviation(const std::vector<double>& sorted_sample,
                         const std::vector<double>& ref_cdf) {
  assert(sorted_sample.size() == ref_cdf.size());
  const auto n = static_cast<double>(sorted_sample.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted_sample.size(); ++i) {
    // Two-sided KS statistic: the empirical CDF steps from i/n to
    // (i+1)/n at sorted_sample[i], so the supremum over the step needs
    // both sides — checking only (i+1)/n underestimates the deviation
    // whenever the empirical CDF runs below the reference.
    const double above = static_cast<double>(i + 1) / n;
    const double below = static_cast<double>(i) / n;
    worst = std::max(worst, std::abs(above - ref_cdf[i]));
    worst = std::max(worst, std::abs(below - ref_cdf[i]));
  }
  return worst;
}

}  // namespace dprank
