#pragma once

// Discrete power-law samplers.
//
// Two uses in the reproduction:
//  * graph synthesis (§4.1): Broder et al. found web in/out-degrees follow
//    P(degree = k) ∝ k^-α with α_in = 2.1, α_out = 2.4;
//  * corpus synthesis (§4.9): term frequencies in text follow Zipf's law.
//
// Both need "number of nodes with degree k proportional to k^-α" over a
// bounded support, so a single table-based sampler covers them. The table
// (inverse-CDF with binary search) is exact and cache-friendly for the
// supports used here (degree caps of a few thousand, 1880-term vocabulary).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dprank {

/// Samples integers k in [k_min, k_max] with P(k) ∝ k^-alpha.
class PowerLawSampler {
 public:
  PowerLawSampler(double alpha, std::uint64_t k_min, std::uint64_t k_max);

  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Analytic mean of the distribution (exact over the table).
  [[nodiscard]] double mean() const { return mean_; }

  /// CDF value P(K <= k); k outside support clamps.
  [[nodiscard]] double cdf(std::uint64_t k) const;

  [[nodiscard]] std::uint64_t k_min() const { return k_min_; }
  [[nodiscard]] std::uint64_t k_max() const { return k_max_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::uint64_t k_min_;
  std::uint64_t k_max_;
  std::vector<double> cdf_;  // cdf_[i] = P(K <= k_min + i)
  double mean_ = 0.0;
};

/// Zipf-distributed ranks: P(rank = r) ∝ r^-s over r in [1, n].
/// Convenience wrapper over PowerLawSampler returning 0-based ranks,
/// the shape the corpus generator wants for vocabulary indices.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s)
      : sampler_(s, 1, n) {}

  /// 0-based rank in [0, n).
  [[nodiscard]] std::uint64_t sample(Rng& rng) const {
    return sampler_.sample(rng) - 1;
  }

  [[nodiscard]] double expected_frequency(std::uint64_t rank0) const {
    return sampler_.cdf(rank0 + 1) - (rank0 == 0 ? 0.0 : sampler_.cdf(rank0));
  }

 private:
  PowerLawSampler sampler_;
};

}  // namespace dprank
