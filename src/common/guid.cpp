#include "common/guid.hpp"

#include "common/rng.hpp"

namespace dprank {

Guid guid_from_bytes(std::string_view bytes, std::uint64_t seed) {
  // Process the input as 8-byte little-endian blocks feeding a SplitMix64
  // absorb/mix sponge; derive two independent 64-bit lanes.
  std::uint64_t h1 = seed ^ 0x6A09E667F3BCC908ULL;
  std::uint64_t h2 = seed ^ 0xBB67AE8584CAA73BULL;
  std::size_t i = 0;
  while (i < bytes.size()) {
    std::uint64_t block = 0;
    const std::size_t n = std::min<std::size_t>(8, bytes.size() - i);
    for (std::size_t b = 0; b < n; ++b) {
      block |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[i + b]))
               << (8 * b);
    }
    h1 = mix64(h1 ^ block);
    h2 = mix64(h2 + block + 0x9E3779B97F4A7C15ULL);
    i += n;
  }
  h1 = mix64(h1 ^ bytes.size());
  h2 = mix64(h2 ^ (bytes.size() * 0xFF51AFD7ED558CCDULL));
  return Guid{h1, h2};
}

namespace {
Guid guid_from_tagged_int(std::uint64_t tag, std::uint64_t value) {
  const std::uint64_t h1 = mix64(value ^ tag);
  const std::uint64_t h2 = mix64(h1 ^ (value * 0xC2B2AE3D27D4EB4FULL) ^ tag);
  return Guid{h1, h2};
}
}  // namespace

Guid document_guid(std::uint64_t doc) {
  return guid_from_tagged_int(0xD0C0D0C0D0C0D0C0ULL, doc);
}

Guid peer_guid(std::uint64_t peer) {
  return guid_from_tagged_int(0x9EE29EE29EE29EE2ULL, peer);
}

Guid term_guid(std::string_view term) {
  return guid_from_bytes(term, 0x7E347E347E347E34ULL);
}

}  // namespace dprank
