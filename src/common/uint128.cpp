#include "common/uint128.hpp"

#include <stdexcept>

namespace dprank {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string U128::to_hex() const {
  std::string out(32, '0');
  std::uint64_t h = hi;
  std::uint64_t l = lo;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[h & 0xF];
    out[static_cast<std::size_t>(i) + 16] = kHexDigits[l & 0xF];
    h >>= 4;
    l >>= 4;
  }
  return out;
}

U128 U128::from_hex(const std::string& s) {
  std::size_t begin = 0;
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) begin = 2;
  if (begin == s.size() || s.size() - begin > 32) {
    throw std::invalid_argument("U128::from_hex: bad length: " + s);
  }
  U128 v;
  for (std::size_t i = begin; i < s.size(); ++i) {
    const int d = hex_value(s[i]);
    if (d < 0) {
      throw std::invalid_argument("U128::from_hex: bad digit in: " + s);
    }
    v = (v << 4) | U128{0, static_cast<std::uint64_t>(d)};
  }
  return v;
}

}  // namespace dprank
