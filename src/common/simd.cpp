#include "common/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace dprank::simd {

namespace {

// -1 = no test override; otherwise the forced Level value.
int g_forced_level = -1;

Level detect_level() {
  // Environment override first: DPRANK_SIMD=scalar pins the fallback,
  // =avx2 demands the vector path (still gated on CPU support so a
  // mis-set variable cannot crash), anything else means auto.
  const char* env = std::getenv("DPRANK_SIMD");
  const bool want_scalar = env != nullptr && std::strcmp(env, "scalar") == 0;
  if (want_scalar) return Level::kScalar;
#if DPRANK_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

}  // namespace

Level active_level() {
  if (g_forced_level >= 0) return static_cast<Level>(g_forced_level);
  static const Level detected = detect_level();
  return detected;
}

void force_level_for_test(Level level) {
  g_forced_level = static_cast<int>(level);
}

void reset_level_for_test() { g_forced_level = -1; }

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

}  // namespace dprank::simd
