#pragma once

// Statistical summaries used throughout the evaluation:
// percentile tables (Table 2's error distribution), running means
// (message/traffic averages), and histogram-style degree summaries.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dprank {

/// Order-statistics summary of a sample. Percentiles use the
/// nearest-rank definition on the sorted sample, matching the paper's
/// "up to P% of pages had relative error less than X" reading.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> sample);

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }

  /// Value v such that at least `pct` percent of the sample is <= v.
  /// pct in (0, 100]. Requires a non-empty sample.
  [[nodiscard]] double percentile(double pct) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double total() const { return total_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations (for stddev)
  double total_ = 0.0;
};

/// Welford's online mean/variance accumulator, for streams too large to
/// keep in memory (e.g. per-message statistics on the 5000k graph).
class Welford {
 public:
  void add(double x) noexcept;
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Kolmogorov-Smirnov statistic between an empirical sample
/// and a reference CDF evaluated at the sample points: the empirical CDF
/// steps from i/n to (i+1)/n at sorted_sample[i], and both sides of the
/// step are compared against ref_cdf[i]. Used by the graph generator
/// tests to check the power-law degree distribution.
[[nodiscard]] double max_cdf_deviation(const std::vector<double>& sorted_sample,
                                       const std::vector<double>& ref_cdf);

}  // namespace dprank
