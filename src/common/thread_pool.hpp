#pragma once

// Reusable fork-join worker pool.
//
// The distributed engine runs two parallel regions per pass (recompute,
// batch apply) for hundreds of passes; spawning threads per region would
// dominate the pass cost, so the pool keeps its workers alive across
// regions. The scheduling model is deliberately minimal:
//
//  * run(shards, fn) invokes fn(shard, slot) exactly once for every
//    shard in [0, shards) and returns when all invocations finished.
//    Shards are claimed dynamically (an atomic cursor), so uneven shard
//    costs balance automatically.
//  * The calling thread participates, so ThreadPool(0) degrades to a
//    plain sequential loop — callers get the single-threaded path for
//    free and deterministic engines can treat "no pool" and "pool with
//    zero workers" identically.
//  * `slot` is a stable per-participant index in [0, concurrency()):
//    slot 0 is the calling thread, slots 1.. are the pool workers. Use
//    it to index pre-allocated per-participant scratch without locks.
//
// Determinism contract: which slot executes which shard varies from run
// to run; callers that need reproducible output must key all results by
// shard (not by slot) and merge in shard order afterwards.
//
// The first exception thrown by any fn invocation is rethrown from
// run(); remaining shards still execute (the region always completes).
// run() is not reentrant: do not call run() from inside fn.

#include <cstdint>
#include <functional>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dprank {

class ThreadPool {
 public:
  /// Spawns `extra_workers` threads (0 is valid: everything runs on the
  /// calling thread).
  explicit ThreadPool(unsigned extra_workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total participants: the calling thread plus the pool workers.
  [[nodiscard]] unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Shard-parallel region: fn(shard, slot) for every shard in
  /// [0, shards). Blocks until every shard completed; rethrows the first
  /// exception any shard raised.
  void run(unsigned shards, const std::function<void(unsigned, unsigned)>& fn);

 private:
  /// One fork-join region. Workers snapshot the region pointer under the
  /// mutex, then claim shards lock-free; a worker that wakes late (or
  /// lingers past the caller's return) only ever touches its own
  /// snapshot, whose cursor is already exhausted.
  struct Region {
    const std::function<void(unsigned, unsigned)>* job = nullptr;
    unsigned shards = 0;
    std::atomic<unsigned> next{0};
    std::atomic<unsigned> completed{0};
  };

  /// Claim-and-execute loop shared by the caller and the workers.
  void work_on(Region& region, unsigned slot);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new region was published
  std::condition_variable done_cv_;  // caller: all shards completed
  std::shared_ptr<Region> region_;   // guarded by mu_
  std::uint64_t generation_ = 0;     // guarded by mu_
  bool stop_ = false;                // guarded by mu_
  std::exception_ptr error_;         // guarded by mu_ (first error wins)
  std::vector<std::thread> workers_;
};

}  // namespace dprank
