#include "common/contracts.hpp"

#include <utility>

namespace dprank::contracts {

namespace {

std::string build_report(const std::string& subsystem,
                         const std::string& expression,
                         const std::string& file, int line,
                         const std::string& message) {
  std::string out = "[dprank contract] subsystem=";
  out += subsystem;
  out += " at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += "\n  failed: ";
  out += expression;
  if (!message.empty()) {
    out += "\n  detail: ";
    out += message;
  }
  return out;
}

}  // namespace

ContractViolation::ContractViolation(std::string subsystem,
                                     std::string expression,
                                     const char* file, int line,
                                     std::string message)
    : std::logic_error(
          build_report(subsystem, expression, file, line, message)),
      subsystem_(std::move(subsystem)),
      expression_(std::move(expression)),
      file_(file),
      line_(line),
      message_(std::move(message)) {}

void fail(const char* subsystem, const char* expression, const char* file,
          int line, const std::string& message) {
  throw ContractViolation(subsystem, expression, file, line, message);
}

}  // namespace dprank::contracts
