#pragma once

// Executable invariant contracts (correctness tooling, DESIGN.md §8).
//
// The paper's correctness argument rests on invariants the code used to
// check only by example: rank mass is conserved across the chaotic
// iteration (§3.3), the Chord ring stays routable under churn (§2.4.2),
// per-edge delivery stays exactly-once through the ReliableChannel, and
// the parallel pass engine merges shards deterministically. This header
// turns those statements into contracts:
//
//   DPRANK_ASSERT(cond, subsystem, msg)      cheap precondition checks
//   DPRANK_INVARIANT(cond, subsystem, msg)   structural validate() checks
//
// Both evaluate `cond` only when DPRANK_CHECK_INVARIANTS is compiled in
// (CMake option of the same name; default ON for every build type except
// Release) and compile to nothing otherwise, so release binaries pay
// zero cost. `msg` is any expression convertible to std::string and is
// evaluated lazily, only on failure.
//
// A failing contract throws ContractViolation carrying a structured
// report — subsystem, stringified expression, file:line, and the
// caller's message — so tests can assert that a deliberately corrupted
// structure is caught by the *right* checker, and a crashing run names
// the broken subsystem instead of dying on a downstream symptom.

#include <stdexcept>
#include <string>

namespace dprank::contracts {

/// Thrown by a failing DPRANK_ASSERT / DPRANK_INVARIANT. what() carries
/// the full structured message; the fields are kept for test assertions.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string subsystem, std::string expression,
                    const char* file, int line, std::string message);

  [[nodiscard]] const std::string& subsystem() const { return subsystem_; }
  [[nodiscard]] const std::string& expression() const { return expression_; }
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  std::string subsystem_;
  std::string expression_;
  std::string file_;
  int line_;
  std::string message_;
};

/// Build the report and throw ContractViolation. Out-of-line so the
/// macro's failure path stays cold in the caller.
[[noreturn]] void fail(const char* subsystem, const char* expression,
                       const char* file, int line,
                       const std::string& message);

/// True when invariant checking was compiled in — lets the CLI and tests
/// tell the user whether --check-invariants can actually check anything.
[[nodiscard]] constexpr bool enabled() {
#if defined(DPRANK_CHECK_INVARIANTS) && DPRANK_CHECK_INVARIANTS
  return true;
#else
  return false;
#endif
}

}  // namespace dprank::contracts

#if defined(DPRANK_CHECK_INVARIANTS) && DPRANK_CHECK_INVARIANTS
#define DPRANK_ASSERT(cond, subsystem, msg)                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dprank::contracts::fail((subsystem), #cond, __FILE__, __LINE__, \
                                (msg));                                 \
    }                                                                   \
  } while (false)
#else
#define DPRANK_ASSERT(cond, subsystem, msg) \
  do {                                      \
  } while (false)
#endif

/// Same machinery, distinct name: DPRANK_ASSERT guards local pre/post
/// conditions, DPRANK_INVARIANT states a subsystem-level structural
/// invariant inside a validate() walk. Failure reports are labelled
/// "invariant" vs "assert" so a violation names its class.
#if defined(DPRANK_CHECK_INVARIANTS) && DPRANK_CHECK_INVARIANTS
#define DPRANK_INVARIANT(cond, subsystem, msg)                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dprank::contracts::fail((subsystem), "invariant: " #cond,       \
                                __FILE__, __LINE__, (msg));             \
    }                                                                   \
  } while (false)
#else
#define DPRANK_INVARIANT(cond, subsystem, msg) \
  do {                                         \
  } while (false)
#endif
