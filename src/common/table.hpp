#pragma once

// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints a paper-style table (Tables 1-4, 6 of the
// paper) after its google-benchmark run; TextTable handles alignment,
// headers and separators so those tables are readable in a terminal log.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace dprank {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows throw std::invalid_argument.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with a header rule, 2-space column gaps, left-aligned first
  /// column and right-aligned numeric columns.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  [[nodiscard]] std::string to_string() const;

  /// Write as RFC-4180-ish CSV (quotes applied when a cell contains a
  /// comma, quote or newline). Overwrites the file.
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant digits, trimming trailing
/// zeros ("1.5", "0.0012", "3e+06" style for extremes).
[[nodiscard]] std::string format_sig(double v, int digits = 3);

/// Format with fixed decimals.
[[nodiscard]] std::string format_fixed(double v, int decimals);

/// Human-readable count with thousands separators (1234567 -> "1,234,567").
[[nodiscard]] std::string format_count(std::uint64_t v);

}  // namespace dprank
