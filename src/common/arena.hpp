#pragma once

// Allocation-recycling primitives for the per-pass message path.
//
// The engines and the async runtime used to rebuild the same scratch
// buffers every pass — a vector allocated, filled, moved away and dropped,
// hundreds of times per run. These helpers keep that memory alive across
// passes:
//
//   * BufferPool<T>: a free list of std::vector<T> buffers. acquire()
//     hands back a cleared buffer with its old capacity intact; release()
//     returns it. Under AddressSanitizer a released buffer's storage is
//     poisoned until re-acquired, so a stale pointer into recycled memory
//     traps instead of silently reading the next user's data.
//   * ObjectPool<T>: the same free-list discipline for arbitrary
//     move-constructible objects (e.g. an Outbox queue with its warmed-up
//     flat map); no poisoning, since T owns its own memory.
//   * EpochArray<T>: a dense array whose slots self-reset lazily via an
//     epoch stamp. advance() makes every slot logically default again in
//     O(1); at(i) re-initializes a slot on first touch of the new epoch.
//     Replaces the clear()-every-pass pattern for per-peer counters where
//     only a handful of the slots are touched each pass.
//   * AlignedAllocator<T> / AlignedVec<T>: 64-byte-aligned vector storage
//     for the engine's hot arrays (contribution cells, pass scratch), so
//     the vectorized gather kernel (common/simd.hpp) never straddles a
//     cache line at a block boundary and streaming sweeps start aligned.
//
// Lifetime rules (DESIGN.md §9): pooled buffers belong to exactly one
// owner between acquire() and release(); releasing twice or using after
// release is a bug the ASan poisoning is designed to catch. Pools are not
// thread-safe — each thread (or each single-threaded phase) owns its own.

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define DPRANK_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DPRANK_HAS_ASAN 1
#endif
#endif
#ifndef DPRANK_HAS_ASAN
#define DPRANK_HAS_ASAN 0
#endif

#if DPRANK_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace dprank {

/// Minimal std::allocator drop-in returning storage aligned to kAlign
/// bytes (default: one cache line). The gather kernel's hot arrays use
/// AlignedVec so vector loads never split lines at block boundaries; the
/// alignment is a performance contract only — element layout and vector
/// semantics are unchanged.
template <typename T, std::size_t kAlign = 64>
struct AlignedAllocator {
  static_assert(kAlign >= alignof(T) && (kAlign & (kAlign - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) noexcept {}  // NOLINT
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlign});
  }
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned vector: the engine's contribution cells and pass
/// scratch live here (see common/simd.hpp and dprank_lint's
/// aligned-hot-buffer rule).
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/// Free list of reusable std::vector<T> buffers (see the header comment).
/// T must be trivially destructible: a parked buffer's storage is poisoned
/// wholesale under ASan, which assumes no live objects inside it.
template <typename T>
class BufferPool {
  static_assert(std::is_trivially_destructible_v<T>,
                "BufferPool poisons parked storage; non-trivial element "
                "types would need destruction first");

 public:
  /// A cleared buffer, reusing the capacity of the most recently released
  /// one when the pool is non-empty.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) {
      ++allocs_;
      return {};
    }
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    unpoison(buf);
    buf.clear();
    ++reuses_;
    return buf;
  }

  /// Hand a buffer back. The contents are dead from this point on; under
  /// ASan any stale reference into the buffer's storage now traps.
  void release(std::vector<T>&& buf) {
    buf.clear();
    poison(buf);
    free_.push_back(std::move(buf));
  }

  /// Buffers handed out fresh (pool was empty) vs recycled — the
  /// net.pool_reuse telemetry series reads these.
  [[nodiscard]] std::uint64_t allocations() const { return allocs_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  static void poison(std::vector<T>& buf) {
#if DPRANK_HAS_ASAN
    if (buf.capacity() != 0) {
      __asan_poison_memory_region(buf.data(), buf.capacity() * sizeof(T));
    }
#else
    (void)buf;
#endif
  }
  static void unpoison(std::vector<T>& buf) {
#if DPRANK_HAS_ASAN
    if (buf.capacity() != 0) {
      __asan_unpoison_memory_region(buf.data(), buf.capacity() * sizeof(T));
    }
#else
    (void)buf;
#endif
  }

  std::vector<std::vector<T>> free_;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
};

/// Free list for arbitrary move-constructible objects; acquire() returns
/// the most recently released instance (warm caches, warm capacity).
template <typename T>
class ObjectPool {
 public:
  [[nodiscard]] T acquire() {
    if (free_.empty()) {
      ++allocs_;
      return T{};
    }
    T obj = std::move(free_.back());
    free_.pop_back();
    ++reuses_;
    return obj;
  }

  void release(T&& obj) { free_.push_back(std::move(obj)); }

  [[nodiscard]] std::uint64_t allocations() const { return allocs_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  std::vector<T> free_;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
};

/// Dense array with O(1) logical reset: each slot carries the epoch it was
/// last written in; reading a slot from an older epoch sees (and stores) a
/// fresh default value instead. Slot count is fixed at construction or
/// resize(); advance() starts a new epoch.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;
  explicit EpochArray(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    values_.resize(n);
    stamps_.resize(n, 0);
  }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Invalidate every slot in O(1).
  void advance() { ++epoch_; }

  /// Reference to slot i, default-initialized on first touch this epoch.
  [[nodiscard]] T& at(std::size_t i) {
    if (stamps_[i] != epoch_) {
      stamps_[i] = epoch_;
      values_[i] = T{};
    }
    return values_[i];
  }

  /// Slot i's value without reviving it: the default when stale.
  [[nodiscard]] T peek(std::size_t i) const {
    return stamps_[i] == epoch_ ? values_[i] : T{};
  }

  /// True when slot i was written this epoch.
  [[nodiscard]] bool fresh(std::size_t i) const {
    return stamps_[i] == epoch_;
  }

 private:
  std::vector<T> values_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 1;  // stamps_ start at 0: everything stale
};

}  // namespace dprank
