#pragma once

// Portable 128-bit unsigned integer for the DHT identifier space.
//
// DHT-based P2P systems (Chord, Pastry, CAN) address documents and peers
// with 128-bit GUIDs. All ring arithmetic (distances, midpoints, powers of
// two for finger tables) happens modulo 2^128, which U128 implements
// explicitly so the code has no dependence on compiler __int128 extensions
// in its public interface.

#include <cstdint>
#include <functional>
#include <string>

namespace dprank {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}
  /// Implicit widening from 64-bit values, mirroring built-in integers.
  constexpr U128(std::uint64_t low) : hi(0), lo(low) {}  // NOLINT(google-explicit-constructor)

  friend constexpr bool operator==(const U128&, const U128&) = default;
  friend constexpr auto operator<=>(const U128& a, const U128& b) {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  friend constexpr U128 operator+(U128 a, U128 b) {
    U128 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
  }

  friend constexpr U128 operator-(U128 a, U128 b) {
    U128 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
  }

  friend constexpr U128 operator^(U128 a, U128 b) {
    return U128{a.hi ^ b.hi, a.lo ^ b.lo};
  }
  friend constexpr U128 operator&(U128 a, U128 b) {
    return U128{a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(U128 a, U128 b) {
    return U128{a.hi | b.hi, a.lo | b.lo};
  }

  friend constexpr U128 operator<<(U128 a, int k) {
    k &= 127;
    if (k == 0) return a;
    if (k >= 64) return U128{a.lo << (k - 64), 0};
    return U128{(a.hi << k) | (a.lo >> (64 - k)), a.lo << k};
  }

  friend constexpr U128 operator>>(U128 a, int k) {
    k &= 127;
    if (k == 0) return a;
    if (k >= 64) return U128{0, a.hi >> (k - 64)};
    return U128{a.hi >> k, (a.lo >> k) | (a.hi << (64 - k))};
  }

  /// 2^k mod 2^128, k in [0, 127].
  static constexpr U128 pow2(int k) { return U128{0, 1} << k; }

  /// Maximum representable value (2^128 - 1).
  static constexpr U128 max() {
    return U128{~std::uint64_t{0}, ~std::uint64_t{0}};
  }

  [[nodiscard]] constexpr bool is_zero() const { return hi == 0 && lo == 0; }

  /// Lowercase 32-digit hex rendering, zero padded.
  [[nodiscard]] std::string to_hex() const;

  /// Parse a hex string (with or without 0x prefix). Throws
  /// std::invalid_argument on malformed input.
  static U128 from_hex(const std::string& s);
};

/// Ring distance travelled clockwise from `from` to `to` (mod 2^128).
constexpr U128 ring_distance(U128 from, U128 to) { return to - from; }

/// True if id lies in the half-open clockwise interval (from, to].
/// The interval wraps modulo 2^128; when from == to the interval is the
/// full ring (Chord convention: a single-node ring owns every key).
constexpr bool in_interval_oc(U128 id, U128 from, U128 to) {
  if (from == to) return true;
  return ring_distance(from, id) != U128{0, 0} &&
         ring_distance(from, id) <= ring_distance(from, to);
}

/// True if id lies in the open clockwise interval (from, to). When
/// from == to the interval is the whole ring minus the endpoint.
constexpr bool in_interval_oo(U128 id, U128 from, U128 to) {
  const U128 d_id = ring_distance(from, id);
  if (from == to) return !d_id.is_zero();
  const U128 d_to = ring_distance(from, to);
  return !d_id.is_zero() && d_id < d_to;
}

}  // namespace dprank

template <>
struct std::hash<dprank::U128> {
  std::size_t operator()(const dprank::U128& v) const noexcept {
    // hi and lo are already uniformly distributed for GUIDs; fold them.
    return static_cast<std::size_t>(v.hi ^ (v.lo * 0x9E3779B97F4A7C15ULL));
  }
};
