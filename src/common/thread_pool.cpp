#include "common/thread_pool.hpp"

namespace dprank {

ThreadPool::ThreadPool(unsigned extra_workers) {
  workers_.reserve(extra_workers);
  for (unsigned w = 0; w < extra_workers; ++w) {
    workers_.emplace_back([this, slot = w + 1] {
      std::uint64_t seen = 0;
      for (;;) {
        std::shared_ptr<Region> region;
        {
          std::unique_lock lock(mu_);
          work_cv_.wait(lock,
                        [&] { return stop_ || generation_ != seen; });
          if (stop_) return;
          seen = generation_;
          region = region_;
        }
        work_on(*region, slot);
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on(Region& region, unsigned slot) {
  for (;;) {
    const unsigned shard = region.next.fetch_add(1);
    if (shard >= region.shards) break;
    try {
      (*region.job)(shard, slot);
    } catch (...) {
      const std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    if (region.completed.fetch_add(1) + 1 == region.shards) {
      // Last shard done: wake the caller. The lock pairs with the
      // caller's predicate read so the notification cannot be lost.
      const std::lock_guard lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(unsigned shards,
                     const std::function<void(unsigned, unsigned)>& fn) {
  if (shards == 0) return;
  auto region = std::make_shared<Region>();
  region->job = &fn;
  region->shards = shards;
  {
    const std::lock_guard lock(mu_);
    error_ = nullptr;
    region_ = region;
    ++generation_;
  }
  work_cv_.notify_all();
  work_on(*region, /*slot=*/0);
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] {
      return region->completed.load() == region->shards;
    });
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dprank
