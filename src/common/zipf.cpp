#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dprank {

PowerLawSampler::PowerLawSampler(double alpha, std::uint64_t k_min,
                                 std::uint64_t k_max)
    : alpha_(alpha), k_min_(k_min), k_max_(k_max) {
  if (k_min == 0 || k_min > k_max) {
    throw std::invalid_argument("PowerLawSampler: bad support");
  }
  const std::uint64_t n = k_max - k_min + 1;
  cdf_.resize(n);
  double acc = 0.0;
  double weighted = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto k = static_cast<double>(k_min + i);
    const double w = std::pow(k, -alpha);
    acc += w;
    weighted += k * w;
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  mean_ = weighted / acc;
}

std::uint64_t PowerLawSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::uint64_t>(
      std::distance(cdf_.begin(), it == cdf_.end() ? it - 1 : it));
  return k_min_ + idx;
}

double PowerLawSampler::cdf(std::uint64_t k) const {
  if (k < k_min_) return 0.0;
  if (k >= k_max_) return 1.0;
  return cdf_[k - k_min_];
}

}  // namespace dprank
