#pragma once

// Global Unique Identifiers for documents and peers.
//
// The paper assumes a DHT-based P2P layer where "the GUID implements a
// pointer to each document" (§2.1) and pagerank update messages carry a
// 128-bit GUID plus a 64-bit rank value (§4.6.1, 24-byte messages).
// GUIDs here are derived by hashing a stable name (document id, peer id)
// into the 128-bit ring, mirroring how Chord/Pastry hash keys and node
// addresses into their identifier space.

#include <cstdint>
#include <string_view>

#include "common/uint128.hpp"

namespace dprank {

using Guid = U128;

/// Hash an arbitrary byte string into the 128-bit identifier space.
/// A seeded xor-fold construction over SplitMix64 blocks; not
/// cryptographic, but uniform enough for consistent hashing.
[[nodiscard]] Guid guid_from_bytes(std::string_view bytes,
                                   std::uint64_t seed = 0);

/// GUID for document number `doc` (stable across runs).
[[nodiscard]] Guid document_guid(std::uint64_t doc);

/// GUID for peer number `peer` (stable across runs; distinct stream
/// from document GUIDs).
[[nodiscard]] Guid peer_guid(std::uint64_t peer);

/// GUID for an index term (used to place inverted-index partitions).
[[nodiscard]] Guid term_guid(std::string_view term);

}  // namespace dprank
