#include "common/env.hpp"

#include <cstdlib>

namespace dprank {

bool full_scale_requested() {
  // Env reads happen single-threaded at startup, before any pool spins up.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("DPRANK_FULL");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::uint64_t experiment_seed() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("DPRANK_SEED");
  if (v == nullptr || v[0] == '\0') return 42;
  return std::strtoull(v, nullptr, 10);
}

std::uint32_t experiment_threads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("DPRANK_THREADS");
  if (v == nullptr || v[0] == '\0') return 1;
  const unsigned long parsed = std::strtoul(v, nullptr, 10);
  if (parsed < 1) return 1;
  if (parsed > 256) return 256;
  return static_cast<std::uint32_t>(parsed);
}

std::vector<std::uint64_t> experiment_graph_sizes() {
  if (full_scale_requested()) {
    return {10'000, 100'000, 500'000, 5'000'000};
  }
  return {10'000, 100'000};
}

std::string size_label(std::uint64_t nodes) {
  if (nodes % 1000 == 0) return std::to_string(nodes / 1000) + "k";
  return std::to_string(nodes);
}

}  // namespace dprank
