#pragma once

// Portable SIMD wrapper for the engine's hot kernels (ROADMAP item 4).
//
// The only loop worth vectorizing in this codebase is also the one whose
// floating-point result is pinned bit-for-bit by the fifo golden digests:
// the in-CSR contribution fold
//     acc(v) = contrib[begin_v] + contrib[begin_v+1] + ... (left-to-right)
// The per-document summation order is the FP anchor — IEEE addition does
// not reassociate, so a tree reduction over one document's cells would
// change ranks (and break every golden digest). The vector kernel
// therefore assigns one *document per lane*: four documents fold
// concurrently, each lane accumulating its own cells strictly
// left-to-right, exactly the scalar order. Lane addition is element-wise
// IEEE-754, so every lane reproduces the scalar fold bit for bit.
//
// Web graphs are power-law: a fixed block of four documents would stall
// three short lanes behind one long one. The AVX2 kernel instead *refills*
// — the moment a lane's document runs out of cells, its accumulator is
// retired and the lane reloads with the next document, so all four lanes
// stay busy regardless of degree skew, and the common case (every lane
// mid-document) is a single unmasked gather + add per four cells. The
// equivalence tests in tests/test_layout_equivalence.cpp assert digest
// identity between the paths, and DPRANK_SIMD=scalar forces the fallback
// at runtime.
//
// Level selection: compile-time availability (x86-64 + GCC/Clang target
// attributes) gated by a runtime CPUID check, overridable with the
// DPRANK_SIMD environment variable ("scalar", "avx2", "auto") and by
// tests via force_level_for_test(). Non-x86 builds compile the scalar
// path only.

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DPRANK_SIMD_X86 1
#include <immintrin.h>
#else
#define DPRANK_SIMD_X86 0
#endif

namespace dprank::simd {

enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1 };

/// The level the current process uses: min(compiled support, CPU
/// support, DPRANK_SIMD override). Cached after the first call.
[[nodiscard]] Level active_level();

/// Test hook: pin the level (kScalar to exercise the fallback on AVX2
/// hardware). Overrides environment and CPUID until reset_level_for_test.
void force_level_for_test(Level level);
void reset_level_for_test();

[[nodiscard]] const char* level_name(Level level);

/// Concurrent per-document folds in the vector kernel.
inline constexpr std::size_t kFoldLanes = 4;

/// Scalar reference: for each document docs[i], fold its cells
/// cells[offsets[docs[i]] .. offsets[docs[i]+1]) strictly left-to-right
/// into acc_out[i]. This is the exact fold order of the pre-vectorization
/// engine loop; the AVX2 kernel below must match it bit for bit.
inline void fold_cells_scalar(const double* cells,
                              const std::uint64_t* offsets,
                              const std::uint32_t* docs, std::size_t count,
                              double* acc_out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = docs[i];
    const std::uint64_t end = offsets[v + 1];
    double acc = 0.0;
    for (std::uint64_t c = offsets[v]; c < end; ++c) acc += cells[c];
    acc_out[i] = acc;
  }
}

#if DPRANK_SIMD_X86

/// AVX2 lane-per-document fold with refill. While all four lanes are
/// mid-document the loop is one unmasked 4-lane gather + add per
/// iteration; the moment any lane exhausts its cells, lane state spills
/// to the stack, finished accumulators retire to acc_out and their lanes
/// reload with the next documents. When no documents remain, in-flight
/// lanes finish scalar from their current cursor — still the same
/// left-to-right per-document order, so every acc_out entry is
/// bit-identical to fold_cells_scalar.
__attribute__((target("avx2"))) inline void fold_cells_avx2(
    const double* cells, const std::uint64_t* offsets,
    const std::uint32_t* docs, std::size_t count, double* acc_out) {
  if (count < kFoldLanes) {
    fold_cells_scalar(cells, offsets, docs, count, acc_out);
    return;
  }
  constexpr std::size_t kIdle = ~std::size_t{0};
  alignas(32) std::uint64_t idx_a[kFoldLanes];
  alignas(32) std::uint64_t end_a[kFoldLanes];
  alignas(32) double acc_a[kFoldLanes];
  std::size_t pos[kFoldLanes];  // acc_out slot each lane is folding
  std::size_t next = 0;
  for (std::size_t j = 0; j < kFoldLanes; ++j) {
    const std::uint32_t v = docs[next];
    idx_a[j] = offsets[v];
    end_a[j] = offsets[v + 1];
    acc_a[j] = 0.0;
    pos[j] = next++;
  }
  __m256i idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx_a));
  __m256i end = _mm256_load_si256(reinterpret_cast<const __m256i*>(end_a));
  __m256d acc = _mm256_setzero_pd();
  for (;;) {
    // Signed compare is safe: in-CSR positions are < 2^63 by a huge
    // margin (edge ids fit the graph's edge count).
    const __m256i active = _mm256_cmpgt_epi64(end, idx);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(active));
    if (mask == 0xF) {
      // Every lane mid-document: gather one cell per lane and advance
      // (active lanes hold -1, so subtracting increments the cursors).
      acc = _mm256_add_pd(acc, _mm256_i64gather_pd(cells, idx, 8));
      idx = _mm256_sub_epi64(idx, active);
      continue;
    }
    // Some lane finished its document: spill, retire, refill.
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx_a), idx);
    _mm256_store_si256(reinterpret_cast<__m256i*>(end_a), end);
    _mm256_store_pd(acc_a, acc);
    for (std::size_t j = 0; j < kFoldLanes; ++j) {
      if ((mask >> j) & 1) continue;  // still folding
      if (pos[j] != kIdle) acc_out[pos[j]] = acc_a[j];
      if (next < count) {
        const std::uint32_t v = docs[next];
        idx_a[j] = offsets[v];
        end_a[j] = offsets[v + 1];
        acc_a[j] = 0.0;
        pos[j] = next++;
      } else {
        idx_a[j] = 0;  // park: idx == end reads as inactive
        end_a[j] = 0;
        acc_a[j] = 0.0;
        pos[j] = kIdle;
      }
    }
    if (next == count) {
      // No fresh documents: finish the in-flight lanes scalar from their
      // current cursors (continuing the same left-to-right fold).
      for (std::size_t j = 0; j < kFoldLanes; ++j) {
        if (pos[j] == kIdle) continue;
        double a = acc_a[j];
        for (std::uint64_t c = idx_a[j]; c < end_a[j]; ++c) a += cells[c];
        acc_out[pos[j]] = a;
      }
      return;
    }
    idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx_a));
    end = _mm256_load_si256(reinterpret_cast<const __m256i*>(end_a));
    acc = _mm256_load_pd(acc_a);
  }
}

#endif  // DPRANK_SIMD_X86

/// Fold a run of documents at the given level. Callers hoist
/// active_level() out of their pass loop and pass it in, so the hot path
/// pays one predictable branch per segment, no indirect call.
inline void fold_cells(Level level, const double* cells,
                       const std::uint64_t* offsets,
                       const std::uint32_t* docs, std::size_t count,
                       double* acc_out) {
#if DPRANK_SIMD_X86
  if (level == Level::kAvx2) {
    fold_cells_avx2(cells, offsets, docs, count, acc_out);
    return;
  }
#else
  (void)level;
#endif
  fold_cells_scalar(cells, offsets, docs, count, acc_out);
}

}  // namespace dprank::simd
