#include "common/rng.hpp"

#include <unordered_set>

namespace dprank {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the 256-bit state through SplitMix64 per Blackman & Vigna's
  // recommendation: never seed xoshiro with correlated words.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid (fixed point); SplitMix64 cannot emit four
  // zero words from any seed, but guard anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k >= n) {
    out.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return out;
  }
  // Floyd's algorithm: iterate j over the last k values of the range.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = bounded(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  shuffle(out);  // Floyd yields a biased order; callers expect uniform order.
  return out;
}

}  // namespace dprank
