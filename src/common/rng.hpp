#pragma once

// Deterministic, fast pseudo-random generation for simulations.
//
// All stochastic components in dprank (graph synthesis, document placement,
// churn schedules, query generation) draw from Xoshiro256** seeded through
// SplitMix64, so every experiment is reproducible from a single uint64 seed.

#include <cstdint>
#include <limits>
#include <vector>

namespace dprank {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless variant: hash a single value (does not advance external state).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Xoshiro256** — the recommended general-purpose generator of the
/// xoshiro/xoroshiro family. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fork a statistically independent child generator. Deterministic:
  /// the child seed depends only on this generator's current state.
  [[nodiscard]] Rng fork() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      using std::swap;
      swap(v[i], v[bounded(i + 1)]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm; O(k) expected). Requires k <= n.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t n, std::uint64_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace dprank
