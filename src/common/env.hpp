#pragma once

// Environment-driven experiment scaling.
//
// The paper's full sweep (500k and 5000k-node graphs) takes long on a
// single core, so benches default to the 10k/100k sizes and honor
// DPRANK_FULL=1 to run the complete table. DPRANK_SEED overrides the
// default experiment seed.

#include <cstdint>
#include <string>
#include <vector>

namespace dprank {

/// True when DPRANK_FULL is set to a non-empty, non-"0" value.
[[nodiscard]] bool full_scale_requested();

/// Experiment seed: DPRANK_SEED if set, else the fixed default (42).
[[nodiscard]] std::uint64_t experiment_seed();

/// Pass-parallel worker count for the distributed engine: DPRANK_THREADS
/// if set (clamped to [1, 256]), else 1. Thread count never changes the
/// results — only the wall time — so benches can sweep it freely.
[[nodiscard]] std::uint32_t experiment_threads();

/// Graph sizes for the current run: {10k, 100k} by default,
/// {10k, 100k, 500k, 5000k} under DPRANK_FULL=1.
[[nodiscard]] std::vector<std::uint64_t> experiment_graph_sizes();

/// Render 12000 as "12k", 5000000 as "5000k" — the paper's row labels.
[[nodiscard]] std::string size_label(std::uint64_t nodes);

}  // namespace dprank
