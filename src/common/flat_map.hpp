#pragma once

// Open-addressing hash map keyed by 64-bit ids.
//
// The messaging hot path keys everything by small packed integers — the
// sender's out-edge id (ReliableChannel slots, Outbox slots) or a peer id
// (Outbox destinations). `std::map`/`std::unordered_map` pay a node
// allocation plus a pointer chase per operation, which dominates the
// per-message cost once the rest of the pass is array-backed. FlatMap64
// stores key/value pairs inline in one power-of-two slot array with linear
// probing: no per-entry allocations, one cache line per lookup in the
// common case, and memory that is recycled across passes instead of
// churned through the allocator.
//
// Determinism contract: iteration (for_each / begin..end) walks the slot
// array, so its order depends on the insertion/erase history and the table
// capacity — never on pointer values or a per-process hash seed, so it IS
// reproducible run to run. Callers that expose ordering to the simulation
// (retransmission order, drain order) must still sort extracted entries by
// key, exactly as they did with the node-based maps.
//
// Erase uses tombstones; the table rehashes when live + dead slots exceed
// ~3/4 of capacity, which bounds probe lengths without moving entries on
// every erase (the Outbox erases whole queues at drain time).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dprank {

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Drops every entry but keeps the slot array for reuse (the
  /// allocation-free steady state the message path depends on).
  void clear() {
    std::fill(state_.begin(), state_.end(), kEmpty);
    size_ = 0;
    used_ = 0;
  }

  void reserve(std::size_t n) {
    const std::size_t needed = capacity_for(n);
    if (needed > slots_.size()) rehash(needed);
  }

  [[nodiscard]] Value* find(std::uint64_t key) {
    const std::size_t i = locate(key);
    return i != kNpos && state_[i] == kFull ? &slots_[i].second : nullptr;
  }
  [[nodiscard]] const Value* find(std::uint64_t key) const {
    const std::size_t i = locate(key);
    return i != kNpos && state_[i] == kFull ? &slots_[i].second : nullptr;
  }
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return find(key) != nullptr;
  }

  /// Default-constructs the value on first access, like std::map.
  Value& operator[](std::uint64_t key) {
    return try_emplace(key).first->second;
  }

  /// Returns ({key, value}*, inserted). The pointer stays valid until the
  /// next insertion (rehash may move entries) — same caveat as
  /// unordered_map iterators under rehash.
  std::pair<std::pair<std::uint64_t, Value>*, bool> try_emplace(
      std::uint64_t key) {
    grow_if_needed();
    std::size_t insert_at = kNpos;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (true) {
      if (state_[i] == kEmpty) {
        if (insert_at == kNpos) insert_at = i;
        break;
      }
      if (state_[i] == kDead) {
        if (insert_at == kNpos) insert_at = i;
      } else if (slots_[i].first == key) {
        return {&slots_[i], false};
      }
      i = (i + 1) & mask;
    }
    if (state_[insert_at] == kEmpty) ++used_;
    state_[insert_at] = kFull;
    slots_[insert_at].first = key;
    slots_[insert_at].second = Value{};
    ++size_;
    return {&slots_[insert_at], true};
  }

  bool erase(std::uint64_t key) {
    const std::size_t i = locate(key);
    if (i == kNpos || state_[i] != kFull) return false;
    state_[i] = kDead;
    slots_[i].second = Value{};
    --size_;
    return true;
  }

  /// fn(key, value&) for every live entry, in slot-array order (see the
  /// determinism contract above).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kFull) fn(slots_[i].first, slots_[i].second);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kFull) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Erase every entry fn(key, value&) returns true for; surviving and
  /// erased entries are visited exactly once.
  template <typename Fn>
  void erase_if(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kFull && fn(slots_[i].first, slots_[i].second)) {
        state_[i] = kDead;
        slots_[i].second = Value{};
        --size_;
      }
    }
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kDead = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  /// splitmix64 finalizer: fixed, platform-independent mixing (keys are
  /// sequential ids; identity hashing would cluster whole probe runs).
  [[nodiscard]] static std::uint64_t hash(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Rehash threshold is 3/4 full; size for it with headroom.
    while (cap * 3 < n * 4 + 4) cap *= 2;
    return cap;
  }

  /// Slot holding `key`, or the first empty slot of its probe run; kNpos
  /// only when the table is unallocated.
  [[nodiscard]] std::size_t locate(std::uint64_t key) const {
    if (slots_.empty()) return kNpos;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (state_[i] != kEmpty) {
      if (state_[i] == kFull && slots_[i].first == key) return i;
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((used_ + 1) * 4 > slots_.size() * 3) {
      // Dead-slot-heavy tables rehash in place (same capacity) — live
      // entries alone may be far below the threshold.
      rehash(size_ * 4 >= slots_.size() * 3 ? slots_.size() * 2
                                            : slots_.size());
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::pair<std::uint64_t, Value>> old_slots;
    std::vector<std::uint8_t> old_state;
    old_slots.swap(slots_);
    old_state.swap(state_);
    slots_.resize(new_cap);
    state_.assign(new_cap, kEmpty);
    size_ = 0;
    used_ = 0;
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = hash(old_slots[i].first) & mask;
      while (state_[j] == kFull) j = (j + 1) & mask;
      state_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
      ++size_;
      ++used_;
    }
  }

  std::vector<std::pair<std::uint64_t, Value>> slots_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstoned slots (probe-run bound)
};

}  // namespace dprank
