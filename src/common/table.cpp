#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dprank {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: empty header");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("TextTable: row wider than header");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == ',' ||
          c == '%')) {
      return false;
    }
  }
  return true;
}
}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = width[c] - row[c].size();
      // Right-align numeric-looking cells in non-first columns.
      if (c > 0 && looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::write_csv(const std::filesystem::path& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw std::runtime_error("TextTable::write_csv: cannot open " +
                             path.string());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_sig(double v, int digits) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  std::ostringstream oss;
  oss.precision(digits);
  oss << v;
  return oss.str();
}

std::string format_fixed(double v, int decimals) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(decimals);
  oss << v;
  return oss.str();
}

std::string format_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  int run = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace dprank
