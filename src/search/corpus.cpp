#include "search/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace dprank {

Corpus Corpus::synthesize(const CorpusParams& params) {
  if (params.vocabulary == 0 || params.num_docs == 0) {
    throw std::invalid_argument("Corpus::synthesize: empty corpus");
  }
  if (params.min_terms == 0 || params.min_terms > params.max_terms ||
      params.max_terms > params.vocabulary) {
    throw std::invalid_argument("Corpus::synthesize: bad term bounds");
  }
  Rng rng(params.seed ^ 0xC0B0C0B0ULL);
  const ZipfSampler zipf(params.vocabulary, params.zipf_exponent);

  Corpus c;
  c.vocabulary_ = params.vocabulary;
  c.docs_.resize(params.num_docs);
  c.df_.assign(params.vocabulary, 0);

  // Document lengths: geometric-ish spread around the mean via a
  // log-uniform draw in [min, max] biased toward the mean.
  const double log_lo = std::log(static_cast<double>(params.min_terms));
  const double log_hi = std::log(static_cast<double>(params.max_terms));
  const double log_mean = std::log(static_cast<double>(params.mean_terms));

  std::unordered_set<TermId> seen;
  for (auto& doc : c.docs_) {
    // Triangular draw in log space peaked at the mean document length.
    const double u = rng.uniform();
    const double v = rng.uniform();
    const double lo_mix = log_lo + (log_mean - log_lo) * u;
    const double hi_mix = log_mean + (log_hi - log_mean) * u;
    const double log_len = v < 0.5 ? lo_mix : hi_mix;
    const auto len = static_cast<std::uint32_t>(std::lround(
        std::exp(std::clamp(log_len, log_lo, log_hi))));

    seen.clear();
    // Sample Zipf term occurrences until `len` *distinct* terms appear or
    // the draw budget runs out (very common terms repeat a lot).
    const std::uint64_t budget = static_cast<std::uint64_t>(len) * 12 + 64;
    for (std::uint64_t draw = 0;
         draw < budget && seen.size() < len; ++draw) {
      seen.insert(static_cast<TermId>(zipf.sample(rng)));
    }
    doc.assign(seen.begin(), seen.end());
    std::sort(doc.begin(), doc.end());
    for (const TermId t : doc) ++c.df_[t];
  }
  return c;
}

std::vector<TermId> Corpus::top_terms(std::uint32_t k) const {
  std::vector<TermId> terms(vocabulary_);
  std::iota(terms.begin(), terms.end(), 0);
  const std::uint32_t keep = std::min<std::uint32_t>(k, vocabulary_);
  std::partial_sort(terms.begin(), terms.begin() + keep, terms.end(),
                    [&](TermId a, TermId b) {
                      if (df_[a] != df_[b]) return df_[a] > df_[b];
                      return a < b;
                    });
  terms.resize(keep);
  return terms;
}

}  // namespace dprank
