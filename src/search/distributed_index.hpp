#pragma once

// Distributed inverted index with pagerank integration (§2.4.2).
//
// "Keyword search on DHT based systems is typically implemented by using
// a distributed index, with the index entry for each keyword pointing to
// all documents containing that particular keyword. We propose adding an
// extra entry in the index to store the pageranks for documents. When
// the pagerank has been computed for a node, an index update message is
// sent, and the pagerank is noted in the index."
//
// Terms are partitioned across peers by hashing the term GUID onto the
// DHT ring; each posting carries the document id and its recorded
// pagerank so index peers can sort hits without contacting the owners.

#include <cstdint>
#include <vector>

#include "common/guid.hpp"
#include "dht/ring.hpp"
#include "net/traffic_meter.hpp"
#include "search/corpus.hpp"

namespace dprank {

struct Posting {
  NodeId doc = 0;
  double rank = 0.0;
};

class DistributedIndex {
 public:
  /// Build the index for `corpus`, partitioning terms over `ring`.
  /// Initial pageranks are zero until publish_ranks() runs.
  DistributedIndex(const Corpus& corpus, const ChordRing& ring);

  /// Record converged pageranks in the index. Each (document, term)
  /// posting on a different peer than the document's owner costs one
  /// index update message (§2.4.2), tallied into `meter` when provided.
  /// `doc_owner(doc)` names the peer holding the document.
  void publish_ranks(const std::vector<double>& ranks,
                     const std::vector<PeerId>& doc_owner,
                     TrafficMeter* meter = nullptr);

  /// Update one document's recorded rank across all its terms (used
  /// after incremental updates).
  void publish_one(NodeId doc, const std::vector<TermId>& terms,
                   double rank, PeerId doc_owner,
                   TrafficMeter* meter = nullptr);

  /// Remove a deleted document's postings (§3.1's delete path at the
  /// index). One deletion notice per term whose partition lives on a
  /// different peer than the document's owner.
  void remove_document(NodeId doc, const std::vector<TermId>& terms,
                       PeerId doc_owner, TrafficMeter* meter = nullptr);

  [[nodiscard]] PeerId peer_of_term(TermId term) const {
    return term_peer_[term];
  }

  /// Postings for a term, sorted by descending pagerank (ties by doc id).
  /// Sorting happens lazily after rank publications.
  [[nodiscard]] const std::vector<Posting>& postings(TermId term) const;

  [[nodiscard]] std::uint64_t total_postings() const {
    return total_postings_;
  }
  [[nodiscard]] std::size_t num_terms() const { return postings_.size(); }

 private:
  // Lazily re-sorted by rank on read; mutable pair implements the cache.
  mutable std::vector<std::vector<Posting>> postings_;  // by term
  std::vector<PeerId> term_peer_;
  mutable std::vector<bool> sorted_;
  std::uint64_t total_postings_ = 0;
};

}  // namespace dprank
