#include "search/incremental_search.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "search/bloom.hpp"

namespace dprank {

namespace {

/// Top-x% selection with the paper's min-20 escape hatch. Input is
/// already rank-sorted.
std::vector<Posting> apply_top_fraction(const std::vector<Posting>& hits,
                                        const SearchPolicy& policy) {
  if (policy.forward_fraction >= 1.0) return hits;
  const auto want = static_cast<std::size_t>(
      std::ceil(policy.forward_fraction * static_cast<double>(hits.size())));
  if (want < policy.min_forward) return hits;  // forward everything
  std::vector<Posting> out(hits.begin(),
                           hits.begin() + static_cast<std::ptrdiff_t>(want));
  return out;
}

/// Intersect `incoming` with `local`, preserving local's rank order.
std::vector<Posting> intersect(const std::vector<Posting>& incoming,
                               const std::vector<Posting>& local) {
  std::unordered_set<NodeId> ids;
  ids.reserve(incoming.size() * 2);
  for (const Posting& p : incoming) ids.insert(p.doc);
  std::vector<Posting> out;
  for (const Posting& p : local) {
    if (ids.contains(p.doc)) out.push_back(p);
  }
  return out;
}

}  // namespace

QueryOutcome SearchEngine::run_query(const std::vector<TermId>& terms,
                                     const SearchPolicy& policy) const {
  if (terms.empty()) {
    throw std::invalid_argument("SearchEngine::run_query: no terms");
  }
  QueryOutcome out;
  std::vector<Posting> current = index_.postings(terms[0]);
  PeerId holder = index_.peer_of_term(terms[0]);

  for (std::size_t i = 1; i < terms.size(); ++i) {
    const PeerId next_peer = index_.peer_of_term(terms[i]);
    const bool free_hop =
        policy.free_same_peer_hops && next_peer == holder;
    const std::vector<Posting> forwarded =
        apply_top_fraction(current, policy);
    out.forwarded_per_hop.push_back(
        static_cast<std::uint32_t>(forwarded.size()));
    if (tracer_ != nullptr) {
      tracer_->instant("search.forward", "search", next_peer,
                       {{"hop", static_cast<double>(i)},
                        {"forwarded", static_cast<double>(forwarded.size())}});
    }

    if (policy.bloom_prefilter) {
      // Coordinator keeps the working set; it ships a Bloom filter of the
      // (filtered) set, the term peer replies with matching candidate
      // ids, and exact intersection locally removes false positives.
      BloomFilter filter(forwarded.size(), policy.bloom_bits_per_item);
      for (const Posting& p : forwarded) filter.insert(p.doc);
      std::vector<Posting> candidates;
      for (const Posting& p : index_.postings(terms[i])) {
        if (filter.possibly_contains(p.doc)) candidates.push_back(p);
      }
      if (!free_hop) {
        const std::uint64_t filter_ids =
            (filter.byte_count() + policy.bytes_per_doc_id - 1) /
            policy.bytes_per_doc_id;
        out.ids_transferred += filter_ids + candidates.size();
        out.wire_bytes += filter.byte_count() +
                          candidates.size() * policy.bytes_per_doc_id;
      }
      current = intersect(candidates, forwarded);
      // holder unchanged: the coordinator retains the working set.
    } else {
      if (!free_hop) {
        out.ids_transferred += forwarded.size();
        out.wire_bytes += forwarded.size() * policy.bytes_per_doc_id;
      }
      current = intersect(forwarded, index_.postings(terms[i]));
      holder = next_peer;
    }
  }

  // Final transfer of the surviving hits back to the querying user.
  out.ids_transferred += current.size();
  out.wire_bytes += current.size() * policy.bytes_per_doc_id;
  out.hits.reserve(current.size());
  for (const Posting& p : current) out.hits.push_back(p.doc);

  if (metrics_ != nullptr) {
    metrics_->counter("search.queries").add(1);
    metrics_->counter("search.ids_transferred").add(out.ids_transferred);
    metrics_->counter("search.wire_bytes").add(out.wire_bytes);
    obs::Histogram& fanout = metrics_->histogram("search.query.fanout");
    for (const std::uint32_t f : out.forwarded_per_hop) {
      fanout.record(static_cast<double>(f));
    }
    metrics_->histogram("search.query.hits")
        .record(static_cast<double>(out.hits.size()));
  }
  if (tracer_ != nullptr) {
    tracer_->complete(
        "search.query", "search", index_.peer_of_term(terms[0]),
        static_cast<double>(terms.size()),
        {{"terms", static_cast<double>(terms.size())},
         {"hits", static_cast<double>(out.hits.size())},
         {"ids", static_cast<double>(out.ids_transferred)}});
  }
  return out;
}

SearchSession::SearchSession(SearchEngine engine, std::vector<TermId> terms,
                             SearchPolicy initial_policy)
    : engine_(engine), terms_(std::move(terms)), policy_(initial_policy) {
  if (terms_.empty()) {
    throw std::invalid_argument("SearchSession: no terms");
  }
  policy_.forward_fraction =
      std::clamp(policy_.forward_fraction, 1e-6, 1.0);
}

std::vector<NodeId> SearchSession::fetch_more() {
  if (exhausted_) return {};
  const auto outcome = engine_.run_query(terms_, policy_);
  total_ids_ += outcome.ids_transferred;
  ++fetches_;
  if (policy_.forward_fraction >= 1.0) exhausted_ = true;
  policy_.forward_fraction = std::min(1.0, policy_.forward_fraction * 2.0);

  std::unordered_set<NodeId> seen(delivered_.begin(), delivered_.end());
  std::vector<NodeId> fresh;
  for (const NodeId d : outcome.hits) {
    if (!seen.contains(d)) fresh.push_back(d);
  }
  delivered_.insert(delivered_.end(), fresh.begin(), fresh.end());
  return fresh;
}

}  // namespace dprank
