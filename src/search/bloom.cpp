#include "search/bloom.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace dprank {

BloomFilter::BloomFilter(std::uint64_t expected_items, double bits_per_item) {
  const std::uint64_t min_bits = 64;
  const auto bits = std::max<std::uint64_t>(
      min_bits, static_cast<std::uint64_t>(
                    std::ceil(static_cast<double>(std::max<std::uint64_t>(
                                  expected_items, 1)) *
                              bits_per_item)));
  bits_.assign((bits + 63) / 64, 0);
  k_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(bits_per_item * 0.6931)));
}

std::pair<std::uint64_t, std::uint64_t> BloomFilter::hash_pair(
    std::uint64_t item) const {
  const std::uint64_t h1 = mix64(item);
  const std::uint64_t h2 = mix64(h1 ^ 0x5851F42D4C957F2DULL) | 1;
  return {h1, h2};
}

void BloomFilter::insert(std::uint64_t item) {
  const auto [h1, h2] = hash_pair(item);
  const std::uint64_t m = bit_count();
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % m;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
  ++inserted_;
}

bool BloomFilter::possibly_contains(std::uint64_t item) const {
  const auto [h1, h2] = hash_pair(item);
  const std::uint64_t m = bit_count();
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % m;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::expected_fpr() const {
  const double m = static_cast<double>(bit_count());
  const double n = static_cast<double>(inserted_);
  const double k = static_cast<double>(k_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace dprank
