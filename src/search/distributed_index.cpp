#include "search/distributed_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/message.hpp"

namespace dprank {

DistributedIndex::DistributedIndex(const Corpus& corpus,
                                   const ChordRing& ring) {
  const TermId vocab = corpus.vocabulary();
  postings_.resize(vocab);
  term_peer_.resize(vocab);
  sorted_.assign(vocab, false);
  for (TermId t = 0; t < vocab; ++t) {
    term_peer_[t] = ring.successor_of_key(term_guid("term:" + std::to_string(t)));
    postings_[t].reserve(corpus.doc_frequency(t));
  }
  for (NodeId d = 0; d < corpus.num_docs(); ++d) {
    for (const TermId t : corpus.terms_of(d)) {
      postings_[t].push_back({d, 0.0});
      ++total_postings_;
    }
  }
}

void DistributedIndex::publish_ranks(const std::vector<double>& ranks,
                                     const std::vector<PeerId>& doc_owner,
                                     TrafficMeter* meter) {
  for (TermId t = 0; t < postings_.size(); ++t) {
    for (Posting& p : postings_[t]) {
      if (p.doc >= ranks.size()) {
        throw std::out_of_range("publish_ranks: rank vector too small");
      }
      p.rank = ranks[p.doc];
      if (meter != nullptr) {
        if (doc_owner[p.doc] == term_peer_[t]) {
          meter->record_local_update();
        } else {
          meter->record_message(IndexRankUpdate::kWireBytes);
        }
      }
    }
    sorted_[t] = false;
  }
}

void DistributedIndex::publish_one(NodeId doc,
                                   const std::vector<TermId>& terms,
                                   double rank, PeerId doc_owner,
                                   TrafficMeter* meter) {
  for (const TermId t : terms) {
    auto& plist = postings_[t];
    const auto it = std::find_if(plist.begin(), plist.end(),
                                 [&](const Posting& p) { return p.doc == doc; });
    if (it == plist.end()) {
      plist.push_back({doc, rank});
      ++total_postings_;
    } else {
      it->rank = rank;
    }
    sorted_[t] = false;
    if (meter != nullptr) {
      if (doc_owner == term_peer_[t]) {
        meter->record_local_update();
      } else {
        meter->record_message(IndexRankUpdate::kWireBytes);
      }
    }
  }
}

void DistributedIndex::remove_document(NodeId doc,
                                       const std::vector<TermId>& terms,
                                       PeerId doc_owner,
                                       TrafficMeter* meter) {
  for (const TermId t : terms) {
    auto& plist = postings_[t];
    const auto it = std::find_if(plist.begin(), plist.end(),
                                 [&](const Posting& p) { return p.doc == doc; });
    if (it == plist.end()) continue;
    plist.erase(it);
    --total_postings_;
    if (meter != nullptr) {
      if (doc_owner == term_peer_[t]) {
        meter->record_local_update();
      } else {
        meter->record_message(IndexRankUpdate::kWireBytes);
      }
    }
  }
}

const std::vector<Posting>& DistributedIndex::postings(TermId term) const {
  if (!sorted_[term]) {
    auto& plist = postings_[term];
    std::sort(plist.begin(), plist.end(),
              [](const Posting& a, const Posting& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.doc < b.doc;
              });
    sorted_[term] = true;
  }
  return postings_[term];
}

}  // namespace dprank
