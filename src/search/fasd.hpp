#pragma once

// FASD-style metadata-key search with pagerank integration (§2.4.1).
//
// In FASD (Kronfol) every document carries a metadata key — a weighted
// term vector — and queries are vectors too; matching documents are
// "close" to the query vector. The paper's modification: "results are
// forwarded based on a linear combination of document closeness and
// pagerank."
//
// This module implements:
//  * idf-weighted sparse metadata keys derived from a Corpus,
//  * cosine closeness between keys,
//  * the combined score alpha * closeness + (1 - alpha) * rank_norm,
//  * a Freenet-style greedy forwarding search over peers: the query
//    hops to whichever neighbor peer holds the best-scoring document,
//    collecting results until the TTL expires — anonymity-preserving
//    (no global index), at the price of approximate results.

#include <cstdint>
#include <vector>

#include "dht/ring.hpp"  // PeerId
#include "p2p/placement.hpp"
#include "search/corpus.hpp"

namespace dprank {

/// Sparse idf-weighted term vector, L2-normalized. Terms ascend.
struct MetadataKey {
  std::vector<TermId> terms;
  std::vector<double> weights;

  [[nodiscard]] bool empty() const { return terms.empty(); }
};

class FasdIndex {
 public:
  /// Build metadata keys for every corpus document. Weight of term t is
  /// idf(t) = log(num_docs / df(t)); vectors are L2-normalized.
  explicit FasdIndex(const Corpus& corpus);

  [[nodiscard]] const MetadataKey& key_of(NodeId doc) const {
    return keys_[doc];
  }
  [[nodiscard]] std::uint32_t num_docs() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

  /// Build a query key from raw terms with the same idf weighting.
  [[nodiscard]] MetadataKey make_query(const std::vector<TermId>& terms) const;

 private:
  std::vector<MetadataKey> keys_;
  std::vector<double> idf_;
};

/// Cosine similarity of two sparse keys (both normalized, so this is a
/// plain sparse dot product). Empty keys score 0.
[[nodiscard]] double closeness(const MetadataKey& a, const MetadataKey& b);

struct FasdScored {
  NodeId doc = 0;
  double score = 0.0;
  double close = 0.0;
  double rank = 0.0;
};

class FasdSearch {
 public:
  /// `alpha` weighs closeness against (min-max normalized) pagerank in
  /// the combined score.
  FasdSearch(const FasdIndex& index, const std::vector<double>& ranks,
             double alpha = 0.7);
  FasdSearch(FasdIndex&&, const std::vector<double>&, double) = delete;

  /// Exhaustive best-k by combined score (the quality ceiling the
  /// forwarding search is measured against).
  [[nodiscard]] std::vector<FasdScored> exhaustive_top_k(
      const MetadataKey& query, std::uint32_t k) const;

  struct ForwardResult {
    std::vector<FasdScored> results;  // best k found along the walk
    std::vector<PeerId> path;         // peers visited, in order
    /// Fraction of the exhaustive top-k score mass recovered.
    double recall_score = 0.0;
  };

  /// Freenet/FASD-style greedy forwarding: starting at `origin`, hop to
  /// the unvisited peer (among `fanout` candidate neighbors per step,
  /// chosen by id adjacency on the ring) whose best local document
  /// scores highest, for at most `ttl` hops. No peer learns more than
  /// its neighbors' best scores.
  [[nodiscard]] ForwardResult forwarding_search(
      const MetadataKey& query, const Placement& placement, PeerId origin,
      std::uint32_t ttl, std::uint32_t k, std::uint32_t fanout = 3) const;

 private:
  [[nodiscard]] FasdScored score_doc(const MetadataKey& query,
                                     NodeId doc) const;

  const FasdIndex& index_;
  std::vector<double> rank_norm_;  // min-max normalized pageranks
  double alpha_;
};

}  // namespace dprank
