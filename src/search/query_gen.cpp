#include "search/query_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace dprank {

std::vector<std::vector<TermId>> generate_queries(
    const Corpus& corpus, const QueryWorkloadParams& params) {
  if (params.terms_per_query == 0 ||
      params.terms_per_query > params.term_pool) {
    throw std::invalid_argument("generate_queries: bad terms_per_query");
  }
  const std::vector<TermId> pool = corpus.top_terms(params.term_pool);
  Rng rng(params.seed ^ 0x5EA4C4ULL ^
          (static_cast<std::uint64_t>(params.terms_per_query) << 32));
  std::vector<std::vector<TermId>> queries;
  queries.reserve(params.num_queries);
  for (std::uint32_t q = 0; q < params.num_queries; ++q) {
    const auto picks = rng.sample_without_replacement(
        pool.size(), params.terms_per_query);
    std::vector<TermId> query;
    query.reserve(picks.size());
    for (const auto idx : picks) query.push_back(pool[idx]);
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace dprank
