#pragma once

// Incremental multi-word search (§2.4.3, Table 6).
//
// A boolean AND query visits the index peer of each term in sequence.
// The first peer sorts its posting list by pagerank and forwards only the
// top x% of hits; each subsequent peer intersects the incoming set with
// its own postings, re-sorts by pagerank, and again forwards the top x%.
// The paper's escape hatch: "when the top x% of the documents falls below
// a threshold (we used 20), then all the results are forwarded along."
// The final peer returns the whole surviving intersection to the user.
//
// Traffic is counted in document ids transferred between peers plus the
// final transfer to the user — the unit Table 6 reports. Like the paper,
// accounting assumes each query term's index partition lives on a
// different peer ("we assumed that each search term in the query was
// always present in a different peer"); same-peer hops can optionally be
// counted as free for the DHT-realistic variant.
//
// Two baselines:
//  * kForwardEverything — no pageranks: full posting lists travel
//    (Table 6's "Baseline");
//  * Bloom-filter assisted intersection (the cited Reynolds & Vahdat
//    approach), standalone or composed with incremental forwarding.

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/distributed_index.hpp"

namespace dprank {

struct SearchPolicy {
  /// Fraction of hits forwarded between peers; 1.0 disables filtering.
  double forward_fraction = 0.10;
  /// If the top x% would be fewer than this many hits, forward all
  /// (the paper used 20).
  std::uint32_t min_forward = 20;
  /// Count a hop between two terms whose partitions share a peer as free.
  /// Table 6's accounting assumes distinct peers, so default false.
  bool free_same_peer_hops = false;
  /// Compose with a Bloom-filter prefilter: instead of document ids, the
  /// forwarding peer ships a Bloom filter of its (already top-x%
  /// filtered) hit set; the receiving peer intersects locally and ships
  /// the matching ids back. Traffic adds the filter's id-equivalents.
  bool bloom_prefilter = false;
  double bloom_bits_per_item = 8.0;
  /// Bytes a document id occupies on the wire (a 128-bit GUID).
  std::uint32_t bytes_per_doc_id = 16;
};

inline SearchPolicy kForwardEverything{.forward_fraction = 1.0,
                                       .min_forward = 0};

struct QueryOutcome {
  std::vector<NodeId> hits;           // returned to the user, rank order
  std::uint64_t ids_transferred = 0;  // inter-peer + final return
  std::uint64_t wire_bytes = 0;       // ids + bloom filters if any
  std::vector<std::uint32_t> forwarded_per_hop;
};

class SearchEngine {
 public:
  explicit SearchEngine(const DistributedIndex& index) : index_(index) {}
  explicit SearchEngine(DistributedIndex&&) = delete;

  /// Run a boolean AND query over `terms` (2 and 3 terms in the paper's
  /// evaluation; any count >= 1 works).
  [[nodiscard]] QueryOutcome run_query(const std::vector<TermId>& terms,
                                       const SearchPolicy& policy) const;

  /// Publish per-query telemetry into `registry`: `search.queries`,
  /// `search.ids_transferred`, `search.wire_bytes` counters plus
  /// `search.query.fanout` (ids forwarded per inter-peer hop) and
  /// `search.query.hits` histograms. The registry must outlive the
  /// engine (and every SearchSession copied from it).
  void bind_metrics(obs::MetricsRegistry& registry) { metrics_ = &registry; }

  /// Emit one complete span per query ("search.query", one lane per
  /// query pipeline) plus an instant per inter-peer forward hop.
  void bind_tracer(obs::Tracer& tracer) { tracer_ = &tracer; }

 private:
  const DistributedIndex& index_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

/// Incremental result fetching (§1/§4.9: the user "sees the most
/// important documents first, while other documents can be fetched
/// incrementally if requested").
///
/// A session starts with the policy's forward fraction and, on each
/// fetch_more(), re-issues the query with the fraction doubled,
/// returning only hits not yet delivered. Traffic accumulates across
/// re-executions (conservative: index peers are assumed stateless
/// between fetches, so each deepening pays the pipeline again).
class SearchSession {
 public:
  /// `engine` is a lightweight handle (it references the index, which
  /// must outlive the session).
  SearchSession(SearchEngine engine, std::vector<TermId> terms,
                SearchPolicy initial_policy);

  /// New hits, in pagerank order, that earlier fetches did not deliver.
  /// Empty when the result set is exhausted.
  std::vector<NodeId> fetch_more();

  /// All hits delivered so far, in delivery order.
  [[nodiscard]] const std::vector<NodeId>& delivered() const {
    return delivered_;
  }
  /// Cumulative document ids moved across all fetches.
  [[nodiscard]] std::uint64_t total_ids_transferred() const {
    return total_ids_;
  }
  /// True once a fetch at forward_fraction == 1 has run: nothing more
  /// can ever arrive.
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::uint32_t fetches_issued() const { return fetches_; }

 private:
  SearchEngine engine_;
  std::vector<TermId> terms_;
  SearchPolicy policy_;
  std::vector<NodeId> delivered_;
  std::uint64_t total_ids_ = 0;
  std::uint32_t fetches_ = 0;
  bool exhausted_ = false;
};

}  // namespace dprank
