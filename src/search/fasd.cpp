#include "search/fasd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace dprank {

FasdIndex::FasdIndex(const Corpus& corpus) {
  const auto n = static_cast<double>(corpus.num_docs());
  idf_.resize(corpus.vocabulary());
  for (TermId t = 0; t < corpus.vocabulary(); ++t) {
    const auto df = corpus.doc_frequency(t);
    idf_[t] = df == 0 ? 0.0 : std::log(n / static_cast<double>(df));
  }
  keys_.resize(corpus.num_docs());
  for (NodeId d = 0; d < corpus.num_docs(); ++d) {
    auto& key = keys_[d];
    double norm2 = 0.0;
    for (const TermId t : corpus.terms_of(d)) {
      const double w = idf_[t];
      if (w <= 0.0) continue;
      key.terms.push_back(t);
      key.weights.push_back(w);
      norm2 += w * w;
    }
    if (norm2 > 0.0) {
      const double inv = 1.0 / std::sqrt(norm2);
      for (auto& w : key.weights) w *= inv;
    }
  }
}

MetadataKey FasdIndex::make_query(const std::vector<TermId>& terms) const {
  MetadataKey key;
  std::vector<TermId> sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  double norm2 = 0.0;
  for (const TermId t : sorted) {
    if (t >= idf_.size()) {
      throw std::out_of_range("FasdIndex::make_query: unknown term");
    }
    const double w = idf_[t] > 0.0 ? idf_[t] : 1e-6;
    key.terms.push_back(t);
    key.weights.push_back(w);
    norm2 += w * w;
  }
  if (norm2 > 0.0) {
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto& w : key.weights) w *= inv;
  }
  return key;
}

double closeness(const MetadataKey& a, const MetadataKey& b) {
  double dot = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.terms.size() && j < b.terms.size()) {
    if (a.terms[i] < b.terms[j]) {
      ++i;
    } else if (a.terms[i] > b.terms[j]) {
      ++j;
    } else {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return dot;
}

FasdSearch::FasdSearch(const FasdIndex& index,
                       const std::vector<double>& ranks, double alpha)
    : index_(index), alpha_(alpha) {
  if (ranks.size() != index.num_docs()) {
    throw std::invalid_argument("FasdSearch: rank vector size mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("FasdSearch: alpha outside [0,1]");
  }
  const auto [lo, hi] = std::minmax_element(ranks.begin(), ranks.end());
  const double span = ranks.empty() || *hi == *lo ? 1.0 : *hi - *lo;
  const double base = ranks.empty() ? 0.0 : *lo;
  rank_norm_.resize(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    rank_norm_[i] = (ranks[i] - base) / span;
  }
}

FasdScored FasdSearch::score_doc(const MetadataKey& query, NodeId doc) const {
  FasdScored s;
  s.doc = doc;
  s.close = closeness(query, index_.key_of(doc));
  s.rank = rank_norm_[doc];
  s.score = alpha_ * s.close + (1.0 - alpha_) * s.rank;
  return s;
}

std::vector<FasdScored> FasdSearch::exhaustive_top_k(
    const MetadataKey& query, std::uint32_t k) const {
  std::vector<FasdScored> all;
  all.reserve(index_.num_docs());
  for (NodeId d = 0; d < index_.num_docs(); ++d) {
    all.push_back(score_doc(query, d));
  }
  const auto keep = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end(), [](const FasdScored& a, const FasdScored& b) {
                      return a.score > b.score;
                    });
  all.resize(keep);
  return all;
}

FasdSearch::ForwardResult FasdSearch::forwarding_search(
    const MetadataKey& query, const Placement& placement, PeerId origin,
    std::uint32_t ttl, std::uint32_t k, std::uint32_t fanout) const {
  if (placement.num_docs() != index_.num_docs()) {
    throw std::invalid_argument("forwarding_search: placement mismatch");
  }
  const PeerId num_peers = placement.num_peers();
  // Per-peer document lists.
  std::vector<std::vector<NodeId>> docs_of(num_peers);
  for (NodeId d = 0; d < index_.num_docs(); ++d) {
    docs_of[placement.peer_of(d)].push_back(d);
  }

  ForwardResult out;
  std::unordered_set<PeerId> visited;
  std::vector<FasdScored> found;

  auto visit_peer = [&](PeerId p) {
    visited.insert(p);
    out.path.push_back(p);
    for (const NodeId d : docs_of[p]) found.push_back(score_doc(query, d));
  };

  auto best_local_score = [&](PeerId p) {
    double best = -1.0;
    for (const NodeId d : docs_of[p]) {
      best = std::max(best, score_doc(query, d).score);
    }
    return best;
  };

  PeerId current = origin;
  visit_peer(current);
  for (std::uint32_t hop = 0; hop + 1 < ttl; ++hop) {
    // Candidate neighbors: ring-adjacent peer ids (FASD/Freenet peers
    // know a handful of neighbors, not the whole network).
    PeerId best_peer = kInvalidPeer;
    double best_score = -1.0;
    for (std::uint32_t f = 1; f <= fanout; ++f) {
      for (const PeerId cand :
           {static_cast<PeerId>((current + f) % num_peers),
            static_cast<PeerId>((current + num_peers - f) % num_peers)}) {
        if (visited.contains(cand)) continue;
        const double s = best_local_score(cand);
        if (s > best_score) {
          best_score = s;
          best_peer = cand;
        }
      }
    }
    if (best_peer == kInvalidPeer) break;  // neighborhood exhausted
    current = best_peer;
    visit_peer(current);
  }

  const auto keep = std::min<std::size_t>(k, found.size());
  std::partial_sort(found.begin(),
                    found.begin() + static_cast<std::ptrdiff_t>(keep),
                    found.end(), [](const FasdScored& a, const FasdScored& b) {
                      return a.score > b.score;
                    });
  found.resize(keep);
  out.results = std::move(found);

  // Score-mass recall against the exhaustive top-k.
  const auto exact = exhaustive_top_k(query, k);
  double exact_mass = 0.0;
  for (const auto& s : exact) exact_mass += s.score;
  double got_mass = 0.0;
  for (const auto& s : out.results) got_mass += s.score;
  out.recall_score = exact_mass > 0.0 ? got_mass / exact_mass : 1.0;
  return out;
}

}  // namespace dprank
