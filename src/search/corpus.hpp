#pragma once

// Synthetic document corpus (§4.9 substitute).
//
// The paper crawled ~11,000 news pages (99 MB), removed stopwords and
// thresholded to 1880 terms. That crawl is unavailable, so we synthesize
// a corpus with the same observable structure: 11k documents over an
// 1880-term vocabulary whose term occurrences follow Zipf's law, giving
// posting lists whose sizes span "appears in nearly every document"
// (top terms) down to a handful — the property incremental search traffic
// actually depends on. Document ids coincide with link-graph node ids so
// the pageranks computed by the distributed engine apply directly.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dprank {

using TermId = std::uint32_t;

struct CorpusParams {
  std::uint32_t num_docs = 11'000;
  TermId vocabulary = 1880;     // the paper's corpus dimensionality
  double zipf_exponent = 1.0;   // classic Zipf for term frequencies
  std::uint32_t mean_terms = 150;  // distinct indexed terms per document
  std::uint32_t min_terms = 10;
  std::uint32_t max_terms = 800;
  std::uint64_t seed = 42;
};

class Corpus {
 public:
  static Corpus synthesize(const CorpusParams& params);

  [[nodiscard]] std::uint32_t num_docs() const {
    return static_cast<std::uint32_t>(docs_.size());
  }
  [[nodiscard]] TermId vocabulary() const { return vocabulary_; }

  /// Distinct terms of a document, ascending TermId order.
  [[nodiscard]] const std::vector<TermId>& terms_of(NodeId doc) const {
    return docs_[doc];
  }

  /// Document frequency of a term (number of documents containing it).
  [[nodiscard]] std::uint32_t doc_frequency(TermId term) const {
    return df_[term];
  }

  /// The `k` most frequent terms, descending document frequency — the
  /// pool the paper draws its synthetic queries from ("randomly combining
  /// the top 100 most frequent terms").
  [[nodiscard]] std::vector<TermId> top_terms(std::uint32_t k) const;

 private:
  std::vector<std::vector<TermId>> docs_;
  std::vector<std::uint32_t> df_;
  TermId vocabulary_ = 0;
};

}  // namespace dprank
