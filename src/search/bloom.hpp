#pragma once

// Bloom filter (§2.4.2).
//
// "To avoid this excessive traffic Bloom filter based solutions have been
// proposed" [Reynolds & Vahdat]; the paper notes incremental search "can
// be coupled with a Bloom filter based method to provide further
// reduction in traffic". Standard Bloom filter over document ids with
// double hashing; the search bench uses it both standalone (the cited
// baseline) and composed with incremental search.

#include <cstdint>
#include <vector>

namespace dprank {

class BloomFilter {
 public:
  /// Filter sized for `expected_items` at `bits_per_item` (k hash
  /// functions chosen as bits_per_item * ln 2, the optimum).
  BloomFilter(std::uint64_t expected_items, double bits_per_item = 8.0);

  void insert(std::uint64_t item);
  [[nodiscard]] bool possibly_contains(std::uint64_t item) const;

  [[nodiscard]] std::uint64_t bit_count() const {
    return bits_.size() * 64;
  }
  [[nodiscard]] std::uint64_t byte_count() const { return bits_.size() * 8; }
  [[nodiscard]] std::uint32_t hash_count() const { return k_; }
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }

  /// Expected false-positive rate for the current fill.
  [[nodiscard]] double expected_fpr() const;

 private:
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> hash_pair(
      std::uint64_t item) const;

  std::vector<std::uint64_t> bits_;
  std::uint32_t k_ = 1;
  std::uint64_t inserted_ = 0;
};

}  // namespace dprank
