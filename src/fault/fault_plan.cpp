#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace dprank {

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)),
      fate_rng_(config_.seed ^ 0xFA017ULL),
      crash_rng_(mix64(config_.seed ^ 0xC4A54ULL)) {
  if (config_.drop_probability < 0.0 || config_.drop_probability >= 1.0 ||
      config_.duplicate_probability < 0.0 ||
      config_.duplicate_probability > 1.0 ||
      config_.reorder_probability < 0.0 ||
      config_.reorder_probability > 1.0 || config_.crash_probability < 0.0 ||
      config_.crash_probability > 1.0) {
    throw std::invalid_argument("FaultPlan: probability out of range");
  }
  for (const auto& part : config_.partitions) {
    if (part.fraction <= 0.0 || part.fraction >= 1.0) {
      throw std::invalid_argument("FaultPlan: partition fraction must split");
    }
    if (part.duration_passes == 0) {
      throw std::invalid_argument("FaultPlan: empty partition");
    }
  }
  if (config_.ack_timeout_passes == 0) {
    throw std::invalid_argument("FaultPlan: ack timeout must be >= 1 pass");
  }
  message_faults_ = config_.drop_probability > 0.0 ||
                    config_.duplicate_probability > 0.0;
  delay_enabled_ = config_.base_delay_passes > 0 ||
                   (config_.reorder_probability > 0.0 &&
                    config_.reorder_window > 0);
  // Deterministic schedules regardless of the order the caller listed them.
  std::sort(config_.crashes.begin(), config_.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.pass != b.pass ? a.pass < b.pass : a.peer < b.peer;
            });
  std::sort(config_.partitions.begin(), config_.partitions.end(),
            [](const PartitionEvent& a, const PartitionEvent& b) {
              return a.start_pass < b.start_pass;
            });
}

std::vector<PeerId> FaultPlan::begin_pass(std::uint64_t pass,
                                          PeerId num_peers) {
  if (pass < next_pass_) {
    throw std::logic_error("FaultPlan::begin_pass: passes must increase");
  }
  next_pass_ = pass + 1;

  if (partition_active_ && pass >= partition_end_) partition_active_ = false;
  for (const auto& part : config_.partitions) {
    if (part.start_pass == pass) {
      partition_active_ = true;
      partition_end_ = pass + part.duration_passes;
      partition_salt_ = mix64(config_.seed ^ (part.start_pass + 0x9A27ULL));
      partition_fraction_ = part.fraction;
      ++partitions_activated_;
    }
  }

  std::vector<PeerId> crashing;
  for (const auto& ev : config_.crashes) {
    if (ev.pass == pass && ev.peer < num_peers) crashing.push_back(ev.peer);
  }
  if (config_.crash_probability > 0.0) {
    for (PeerId p = 0; p < num_peers; ++p) {
      if (crash_rng_.chance(config_.crash_probability)) crashing.push_back(p);
    }
  }
  std::sort(crashing.begin(), crashing.end());
  crashing.erase(std::unique(crashing.begin(), crashing.end()),
                 crashing.end());
  crashes_injected_ += crashing.size();
  return crashing;
}

bool FaultPlan::side_of(PeerId p) const {
  // Deterministic pseudo-random side assignment: peer p is on side A with
  // probability partition_fraction_, independent of the peer count.
  const double u =
      static_cast<double>(mix64(partition_salt_ ^ p) >> 11) * 0x1.0p-53;
  return u < partition_fraction_;
}

bool FaultPlan::reachable(PeerId a, PeerId b) const {
  if (!partition_active_) return true;
  return side_of(a) == side_of(b);
}

SendFate FaultPlan::fate_for_send() {
  SendFate fate;
  if (message_faults_) {
    // Draw order matches the legacy FaultModel path exactly: drop first,
    // duplicate only for delivered messages.
    if (fate_rng_.chance(config_.drop_probability)) {
      fate.dropped = true;
      return fate;
    }
    fate.duplicated = fate_rng_.chance(config_.duplicate_probability);
  }
  if (delay_enabled_) {
    fate.delay_passes = config_.base_delay_passes;
    if (config_.reorder_window > 0 &&
        fate_rng_.chance(config_.reorder_probability)) {
      fate.delay_passes += static_cast<std::uint32_t>(
          1 + fate_rng_.bounded(config_.reorder_window));
    }
  }
  return fate;
}

std::uint64_t FaultPlan::retry_interval(std::uint32_t attempt) const {
  std::uint64_t interval = config_.ack_timeout_passes;
  const std::uint64_t cap = std::max<std::uint64_t>(1, config_.retry_backoff_cap);
  for (std::uint32_t i = 0; i < attempt && interval < cap; ++i) interval *= 2;
  return std::min(interval, cap);
}

}  // namespace dprank
