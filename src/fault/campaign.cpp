#include "fault/campaign.hpp"

#include <optional>
#include <stdexcept>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "p2p/placement.hpp"
#include "p2p/replication.hpp"
#include "pagerank/quality.hpp"

namespace dprank {

namespace {

// Independent RNG streams per concern: reseeding one (say, a different
// replica count) must not reshuffle the membership history.
constexpr std::uint64_t kScheduleSalt = 0x43484153u;  // "CHAS"
constexpr std::uint64_t kReplicaSalt = 0x5245504Cu;   // "REPL"

}  // namespace

std::vector<MembershipEvent> make_chaos_schedule(
    const ChaosCampaignConfig& config) {
  const std::uint64_t total_weight = std::uint64_t{config.join_weight} +
                                     config.leave_weight + config.crash_weight;
  if (total_weight == 0) {
    throw std::invalid_argument("make_chaos_schedule: all weights zero");
  }
  if (config.initial_peers == 0) {
    throw std::invalid_argument("make_chaos_schedule: zero initial peers");
  }
  Rng rng(mix64(config.seed ^ kScheduleSalt));
  // Live population, kept in ascending id order: joins always append the
  // next fresh id (larger than everything present) and erasures preserve
  // order, so victim sampling is deterministic and order-independent of
  // how earlier victims were removed.
  std::vector<PeerId> live(config.initial_peers);
  for (PeerId p = 0; p < config.initial_peers; ++p) live[p] = p;
  PeerId next_join = config.initial_peers;

  std::vector<MembershipEvent> schedule;
  schedule.reserve(config.events);
  std::uint64_t pass = config.first_event_pass;
  for (std::uint64_t i = 0; i < config.events; ++i) {
    const std::uint64_t w = rng.bounded(total_weight);
    MembershipEvent::Kind kind;
    if (w < config.join_weight) {
      kind = MembershipEvent::Kind::kJoin;
    } else if (w < std::uint64_t{config.join_weight} + config.leave_weight) {
      kind = MembershipEvent::Kind::kLeave;
    } else {
      kind = MembershipEvent::Kind::kCrash;
    }
    // Live-peer floor: a departure at or below min_live becomes a join,
    // so a crash-heavy weighting cannot empty the ring.
    if (kind != MembershipEvent::Kind::kJoin && live.size() <= config.min_live) {
      kind = MembershipEvent::Kind::kJoin;
    }
    PeerId peer;
    if (kind == MembershipEvent::Kind::kJoin) {
      peer = next_join++;
      live.push_back(peer);
    } else {
      const std::size_t idx = rng.bounded(live.size());
      peer = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    schedule.push_back(MembershipEvent{pass, kind, peer});
    pass += 1 + rng.bounded(config.event_gap_max + 1);
  }
  return schedule;
}

PeerId chaos_peer_capacity(PeerId initial_peers,
                           const std::vector<MembershipEvent>& schedule) {
  PeerId capacity = initial_peers;
  for (const MembershipEvent& ev : schedule) {
    if (ev.peer >= capacity) capacity = ev.peer + 1;
  }
  return capacity;
}

ChaosCampaignReport run_chaos_campaign(const Digraph& g,
                                       const ChaosCampaignConfig& config,
                                       obs::MetricsRegistry* metrics) {
  const std::vector<MembershipEvent> schedule = make_chaos_schedule(config);

  ChaosCampaignReport rep;
  for (const MembershipEvent& ev : schedule) {
    switch (ev.kind) {
      case MembershipEvent::Kind::kJoin: ++rep.joins; break;
      case MembershipEvent::Kind::kLeave: ++rep.leaves; break;
      case MembershipEvent::Kind::kCrash: ++rep.crashes; break;
    }
  }

  // Placement seeded from the converged initial ring (the coordinator's
  // construction-time normalization finds nothing to move), then grown to
  // cover every id the schedule will join.
  const ChordRing seed_ring(config.initial_peers);
  Placement placement = Placement::by_dht(g.num_nodes(), seed_ring);
  // Replicas are drawn against the initial population — before the
  // capacity grows — so every replica holder is live at pass 0.
  ReplicaRegistry replicas(g.num_nodes());
  if (config.replicas > 0) {
    replicas = ReplicaRegistry::uniform(placement, config.replicas,
                                        mix64(config.seed ^ kReplicaSalt));
  }
  placement.grow_peers(chaos_peer_capacity(config.initial_peers, schedule));

  MembershipCoordinator membership(placement, config.initial_peers, schedule,
                                   config.membership);

  std::optional<FaultPlan> plan;
  if (config.acked_delivery || config.drop_probability > 0.0) {
    FaultPlanConfig fpc;
    fpc.acked_delivery = config.acked_delivery;
    fpc.drop_probability = config.drop_probability;
    fpc.retry_max_attempts = config.retry_max_attempts;
    fpc.seed = config.seed;
    plan.emplace(fpc);
  }

  DistributedPagerank engine(g, placement, config.options);
  engine.attach_membership(membership);
  if (!replicas.empty()) engine.attach_replicas(replicas);
  if (plan.has_value()) engine.attach_fault_plan(*plan);
  if (config.mass_audit) engine.enable_mass_audit(config.audit_tolerance);
  if (metrics != nullptr) engine.attach_metrics(*metrics);

  rep.result = engine.run();

  rep.handoff_docs = engine.handoff_docs();
  rep.stale_owner_queries = engine.stale_owner_queries();
  rep.outbox_dropped_dead = engine.outbox_dropped_dead();
  rep.gave_up = engine.gave_up();
  rep.retransmissions = engine.retransmissions();
  rep.recovered_docs = engine.recovered_docs();
  rep.replica_restores = engine.replica_restores();
  rep.declared_dead = membership.detector().declared_dead();
  rep.false_suspicions = membership.detector().false_suspicions();
  rep.ring_repairs = membership.ring().repairs();
  rep.emergency_rebootstraps = membership.ring().emergency_rebootstraps();
  rep.stabilize_rounds = membership.stabilize_rounds_total();
  rep.detection_latencies = membership.detection_latencies();
  rep.final_live_peers = membership.live_peers();
  if (const MassAuditor* auditor = engine.mass_auditor()) {
    rep.audited_known_loss = auditor->known_lost();
    rep.known_loss_events = auditor->known_loss_events();
  }
  rep.final_ranks = engine.ranks();
  rep.rank_digest = fnv1a_rank_digest(rep.final_ranks);
  return rep;
}

}  // namespace dprank
