#pragma once

// Seeded chaos-soak campaign (extension; ROADMAP items 1 and 5).
//
// The unit layers each model one failure mode in isolation: the
// SelfHealingRing heals pointer damage, the FailureDetector turns crash
// silence into verdicts, the MembershipCoordinator moves key ranges, the
// MassAuditor repairs leaked rank mass. A chaos soak is the integration
// question: drive a *schedule* of join/leave/crash events through the
// full engine while the §2.3 chaotic iteration is converging, sweep the
// invariant contracts as it runs, and check the end state — the ranks
// converged, every emitted contribution accounted for (mass_ratio ==
// 1.0), the ring routable after every stabilization burst, and the whole
// history bit-reproducible from one seed.
//
// make_chaos_schedule() synthesizes the membership history: events are
// drawn from a seeded RNG with configurable join/leave/crash weights,
// spaced 1..(1 + event_gap_max) passes apart, victims sampled uniformly
// from the live population, joins assigned fresh ids above the initial
// population. A live-peer floor forces joins when the population runs
// low, so a crash-heavy weighting cannot empty the ring.
//
// run_chaos_campaign() wires the full stack — DHT placement, uniform
// replicas, acked lossy delivery with a bounded retry budget (so the
// channel's gave_up terminal outcome is actually exercised), the
// membership coordinator, and the mass audit — runs to convergence, and
// returns a flat report: per-kind event counts, handoff volume,
// stale-owner queries, detection-latency samples, ring repair totals,
// and an order-sensitive digest of the final rank vector. Two runs with
// equal config and seed must produce equal digests (the determinism
// contract the chaos tests and CI job assert); different seeds produce
// different membership histories and different digests.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "p2p/membership.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct ChaosCampaignConfig {
  /// Peers alive at pass 0 (ids 0..initial_peers-1).
  PeerId initial_peers = 64;
  /// Membership events to schedule (joins + leaves + crashes).
  std::uint64_t events = 40;
  /// Seeds the event schedule AND the replica/drop RNG streams.
  std::uint64_t seed = 42;

  // Event-kind mix (relative weights; crashes dominate by default
  // because they exercise the longest machinery chain).
  std::uint32_t join_weight = 1;
  std::uint32_t leave_weight = 1;
  std::uint32_t crash_weight = 2;

  /// Pass of the first event; later events follow at gaps of
  /// 1..(1 + event_gap_max) passes.
  std::uint64_t first_event_pass = 1;
  std::uint64_t event_gap_max = 2;
  /// Leaves/crashes are rerolled into joins at or below this population,
  /// so the schedule can never empty the ring.
  PeerId min_live = 8;

  /// Replicas per document (crash-range rank recovery). 0 = replica-less:
  /// reconstruction falls back to initial_rank and the audit repair
  /// re-injects the difference.
  std::uint32_t replicas = 1;

  /// Lossy acked transport: exercises retransmission, stale rejection
  /// and the bounded-budget gave_up path under membership churn.
  bool acked_delivery = true;
  double drop_probability = 0.02;
  std::uint32_t retry_max_attempts = 6;

  /// Quiescence audit + leak re-injection (mass_ratio == 1.0 at exit).
  bool mass_audit = true;
  double audit_tolerance = 1e-9;

  PagerankOptions options{};
  MembershipConfig membership{};
};

/// One campaign's end state, flattened for JSON export and assertions.
struct ChaosCampaignReport {
  DistributedRunResult result{};

  // Schedule composition actually generated.
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;

  // Membership machinery totals (engine + coordinator + detector + ring).
  std::uint64_t handoff_docs = 0;
  std::uint64_t stale_owner_queries = 0;
  std::uint64_t outbox_dropped_dead = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t declared_dead = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t ring_repairs = 0;
  std::uint64_t emergency_rebootstraps = 0;
  std::uint64_t stabilize_rounds = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t recovered_docs = 0;
  std::uint64_t replica_restores = 0;
  /// Crash-to-verdict latency per declared death, schedule order.
  std::vector<std::uint64_t> detection_latencies;
  /// MassAuditor known-loss ledger at exit (crash wipes, declared-dead
  /// evictions, gave-up records). With the audit enabled these losses
  /// are re-injected (mass_ratio returns to 1.0); with it disabled they
  /// are the bounded, *accounted* degradation the negative tests assert
  /// — lost mass is known, not silently leaked.
  double audited_known_loss = 0.0;
  std::uint64_t known_loss_events = 0;

  PeerId final_live_peers = 0;
  /// Converged rank vector at campaign exit, document order. The stream
  /// subsystem's batched reconvergence adopts these wholesale.
  std::vector<double> final_ranks;
  /// FNV-1a over the bit patterns of the final rank vector, in document
  /// order — equal configs and seeds must produce equal digests.
  std::uint64_t rank_digest = 0;
};

/// Synthesize the seeded membership-event schedule described above.
/// Deterministic from the config. Throws std::invalid_argument when the
/// weights are all zero or the initial population is empty.
[[nodiscard]] std::vector<MembershipEvent> make_chaos_schedule(
    const ChaosCampaignConfig& config);

/// Peer-id capacity the schedule needs: initial_peers plus one slot per
/// scheduled join.
[[nodiscard]] PeerId chaos_peer_capacity(
    PeerId initial_peers, const std::vector<MembershipEvent>& schedule);

/// Build the full stack and run one campaign over `g`. Publishes engine
/// telemetry into `metrics` when non-null.
[[nodiscard]] ChaosCampaignReport run_chaos_campaign(
    const Digraph& g, const ChaosCampaignConfig& config,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace dprank
