#pragma once

// Unified crash-fault injection plan (extension).
//
// The paper's availability story (§3.1, Table 1) models *graceful* churn:
// peers announce absence and the store-and-resend outbox covers them. Real
// P2P deployments also see message loss, duplication, reordering, delivery
// delay, fail-stop peer crashes (which destroy in-flight sender state, not
// just presence) and network partitions. FaultPlan is the single vocabulary
// for all of these: a deterministic, seeded schedule the pass simulator
// drives one pass at a time.
//
// Composition semantics, applied per cross-peer send in this order:
//   1. partition  — if sender and destination sit on opposite sides of the
//      active bipartition the message cannot be sent at all; the engine
//      parks it in the §3.1 outbox until the partition heals (partitions
//      are transport outages, not probabilistic faults).
//   2. drop       — the message vanishes in transit (sender still pays).
//   3. duplicate  — the message is delivered twice (traffic cost only;
//      receivers either dedupe by sequence number or rely on the
//      newest-value-wins contribution cells).
//   4. delay/reorder — the message is held in flight for base_delay_passes
//      plus, with reorder_probability, a uniform extra 1..reorder_window
//      passes. Unequal extra delays let messages overtake each other,
//      which is exactly the out-of-order hazard sequence numbers guard.
// Crashes are a per-pass event, not a per-send fate: a crashing peer loses
// its outbox and its stored (un-applied) contributions, goes offline for
// crash_downtime_passes, and must run recovery when it returns. Note that
// NOT all churn is graceful: a FaultPlan crash is fail-stop WITH state
// loss — only graceful §3.1 churn (ChurnSchedule) preserves every parked
// update. FaultPlan crashes are still *temporary* (the peer returns after
// its downtime); permanent fail-stop departure — the peer never returns,
// its key range must move, and a failure detector must declare it dead —
// is the dynamic-membership vocabulary (p2p/membership.hpp), scheduled as
// MembershipEvents rather than CrashEvents.
//
// Determinism: every decision is a pure function of the seed and the call
// sequence. The engine iterates peers, senders and edges in deterministic
// order, so a given (graph, placement, plan seed) triple always replays the
// identical fault history. Send fates and crash sampling draw from
// independent RNG streams so adding crash pressure does not reshuffle the
// drop pattern.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dht/ring.hpp"

namespace dprank {

/// Fail-stop crash of `peer` at the start of `pass`.
struct CrashEvent {
  std::uint64_t pass = 0;
  PeerId peer = 0;
};

/// Bipartition of the peer set for `duration_passes` starting at
/// `start_pass`: roughly `fraction` of the peers land on side A (the side
/// of each peer is a deterministic hash of the seed and the event), and no
/// message crosses the cut while the partition is active.
struct PartitionEvent {
  std::uint64_t start_pass = 0;
  std::uint64_t duration_passes = 1;
  double fraction = 0.5;
};

struct FaultPlanConfig {
  // Per-send probabilistic faults (the legacy FaultModel vocabulary).
  double drop_probability = 0.0;       // message vanishes in transit
  double duplicate_probability = 0.0;  // message delivered twice

  // Delivery latency: every delivered message is visible
  // 1 + base_delay_passes passes after the send; with
  // reorder_probability it is additionally held a uniform
  // 1..reorder_window passes (reorder_window == 0 disables reordering).
  std::uint32_t base_delay_passes = 0;
  double reorder_probability = 0.0;
  std::uint32_t reorder_window = 0;

  // Crashes: explicit schedule plus an optional per-peer-per-pass rate.
  std::vector<CrashEvent> crashes;
  double crash_probability = 0.0;
  std::uint32_t crash_downtime_passes = 2;

  // Partitions: explicit schedule (at most one active at a time; a later
  // event starting while another is active supersedes it).
  std::vector<PartitionEvent> partitions;

  // Net-layer reliability: acknowledged delivery with sequence numbers.
  // Dropped messages are detected by ack timeout and retransmitted with
  // exponential backoff; receivers reject stale (out-of-order) values and
  // suppress duplicates by sequence number.
  bool acked_delivery = false;
  std::uint32_t ack_timeout_passes = 1;   // passes before first retry
  std::uint32_t retry_backoff_cap = 16;   // max passes between retries
  /// Retransmission budget per record; 0 = retry forever. Pair a bound
  /// with the failure detector under permanent departure, so abandoned
  /// sends reach the channel's `gave_up` terminal outcome and their rank
  /// mass is audited instead of leaking.
  std::uint32_t retry_max_attempts = 0;

  std::uint64_t seed = 42;
};

/// The fate of one cross-peer send (partitions are decided separately via
/// reachable()).
struct SendFate {
  bool dropped = false;
  bool duplicated = false;
  std::uint32_t delay_passes = 0;  // extra passes beyond the usual +1
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  /// Per-pass driver hook: activates/retires partitions and collects the
  /// crashes striking at the start of `pass` (explicit events plus random
  /// sampling over `num_peers`). Passes must be requested in increasing
  /// order; each pass may be begun once.
  [[nodiscard]] std::vector<PeerId> begin_pass(std::uint64_t pass,
                                               PeerId num_peers);

  /// True when no active partition separates `a` from `b`.
  [[nodiscard]] bool reachable(PeerId a, PeerId b) const;
  [[nodiscard]] bool partition_active() const { return partition_active_; }

  /// Decide the fate of one cross-peer send. Consumes the fate RNG stream:
  /// call in deterministic send order.
  [[nodiscard]] SendFate fate_for_send();

  /// Exponential-backoff retransmission interval for the given retry
  /// attempt (0 = first retry): ack_timeout * 2^attempt, capped.
  [[nodiscard]] std::uint64_t retry_interval(std::uint32_t attempt) const;

  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }
  [[nodiscard]] bool has_message_faults() const { return message_faults_; }
  [[nodiscard]] std::uint64_t crashes_injected() const {
    return crashes_injected_;
  }
  [[nodiscard]] std::uint64_t partitions_activated() const {
    return partitions_activated_;
  }

 private:
  [[nodiscard]] bool side_of(PeerId p) const;

  FaultPlanConfig config_;
  bool message_faults_ = false;  // any per-send probabilistic fault enabled
  bool delay_enabled_ = false;
  // Seeded exactly like the legacy FaultModel RNG so the inject_faults()
  // compatibility shim replays bit-identical drop/duplicate histories.
  Rng fate_rng_;
  Rng crash_rng_;
  std::uint64_t next_pass_ = 0;
  bool partition_active_ = false;
  std::uint64_t partition_end_ = 0;
  std::uint64_t partition_salt_ = 0;
  double partition_fraction_ = 0.5;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t partitions_activated_ = 0;
};

}  // namespace dprank
