#pragma once

// Distributed pagerank engine — the paper's core contribution (§2.3,
// Fig. 1), executed under the evaluation methodology of §4.2.
//
// Semantics:
//  * Every document starts at `initial_rank`. A document's rank is
//    R(v) = (1-d) + d * sum of the stored contributions of its in-links,
//    where a contribution is the freshest value R(u)/outdeg(u) the link
//    source has sent (chaotic iteration: each document recomputes from
//    whatever values have arrived, with no global synchronization).
//  * A pagerank update message for edge u->v is modelled as a write to a
//    per-edge contribution cell (u's out-edge slot), the array-backed
//    equivalent of the 24-byte GUID+rank message of §4.6.1.
//  * A pass (§4.2): all present peers concurrently recompute the
//    documents that received updates; documents whose relative change
//    exceeds epsilon send updates to their out-links. Messages sent in
//    pass t are visible in pass t+1 ("pagerank messages are sent and
//    received instantaneously and all peers start their next iteration
//    concurrently").
//  * Execution model: each pass is a compute phase (recompute dirty
//    documents, sharded by owning peer) followed by an exchange phase.
//    With PagerankOptions::threads > 1 both phases run on a reusable
//    worker pool (common/thread_pool.hpp). On clean and churn-only
//    configurations the exchange coalesces each source peer's emissions
//    into one batch per destination peer (§4.6.1's "collect together all
//    the pagerank messages") and applies batches sharded by destination;
//    configurations with a fault plan, tracer, replicas, overlay or mass
//    audit keep the sequential sender-major exchange (those paths consume
//    ordered RNG/cache/trace state). Every per-shard result is keyed by
//    peer and merged in peer order, so ranks, pass history, residual
//    series and traffic tables are bit-identical for every thread count.
//  * Same-peer updates are applied locally without network messages
//    (Fig. 1 step b); cross-peer updates are counted in the traffic
//    meter.
//  * Churn (§3.1, §4.3): documents on absent peers neither compute nor
//    receive. Updates addressed to an absent peer wait in the sender's
//    per-edge outbox (newest value wins) and are delivered on the first
//    pass the destination peer is present. Messages are counted once, at
//    delivery.
//  * Convergence: no document has a pending recompute and no update is
//    waiting in any outbox — the paper's "error in all the documents is
//    less than the error threshold" criterion. With a fault plan
//    attached, in-flight (delayed) messages, unacked retransmissions and
//    peers awaiting crash recovery also block convergence, and with the
//    mass audit enabled the final quiescent state must additionally pass
//    the rank-mass conservation check (leaks are repaired by
//    re-injection and the iteration continues).
//
// Fault model (extension; see fault/fault_plan.hpp): a FaultPlan attaches
// the full taxonomy — drop, duplication, bounded reordering, delivery
// delay, fail-stop peer crashes, and network partitions — driven one pass
// at a time. Crashes destroy sender outbox state and the peer's stored
// contributions (unlike graceful churn); on return the peer runs
// recovery: document ranks are restored from replicas
// (p2p/replication.hpp) where a live copy exists, and contributions are
// re-requested from live link sources otherwise. With
// FaultPlanConfig::acked_delivery, cross-peer sends carry sequence
// numbers and unacked messages retransmit with exponential backoff
// (net/reliable_channel.hpp); receivers reject stale reordered values and
// suppress duplicates. The MassAuditor (pagerank/mass_audit.hpp) tracks
// every emission and re-injects leaked contributions so the chaotic
// iteration still converges to the no-fault fixed point.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "graph/digraph.hpp"
#include "net/ip_cache.hpp"
#include "net/reliable_channel.hpp"
#include "net/traffic_meter.hpp"
#include "p2p/churn.hpp"
#include "p2p/membership.hpp"
#include "p2p/placement.hpp"
#include "p2p/replication.hpp"
#include "pagerank/engine.hpp"
#include "pagerank/mass_audit.hpp"
#include "pagerank/options.hpp"

namespace dprank {

/// DEPRECATED legacy fault vocabulary: UDP-style drop/duplication only.
/// Superseded by FaultPlan (fault/fault_plan.hpp), which composes drop,
/// duplication, reordering, delay, crashes and partitions under one seed;
/// inject_faults() remains as a thin compatibility shim that builds an
/// equivalent FaultPlan (bit-identical drop/duplicate history for the
/// same seed). New code should use attach_fault_plan().
struct FaultModel {
  double drop_probability = 0.0;       // message vanishes in transit
  double duplicate_probability = 0.0;  // message delivered twice
  std::uint64_t seed = 42;
};

class DistributedPagerank : public PagerankEngineInterface {
 public:
  /// The placement must cover exactly g.num_nodes() documents. The engine
  /// keeps references: graph and placement must outlive it (temporaries
  /// are rejected at compile time).
  DistributedPagerank(const Digraph& g, const Placement& placement,
                      const PagerankOptions& options);
  DistributedPagerank(Digraph&&, const Placement&, PagerankOptions) = delete;
  DistributedPagerank(const Digraph&, Placement&&, PagerankOptions) = delete;
  DistributedPagerank(Digraph&&, Placement&&, PagerankOptions) = delete;

  /// Meter overlay hop costs (§3.2): every cross-peer update consults
  /// `cache` over `ring` — an enabled cache models IP caching (first
  /// message routed, then direct), a disabled one models Freenet-style
  /// per-message routing. Both must outlive the engine. Call before
  /// run(); without this, every message is billed one hop.
  void attach_overlay(const ChordRing& ring, IpCache& cache);

  /// Deliver every update to each cached copy of the destination
  /// document as well (§2.3: "all copies of the document can contain
  /// the correct computed pagerank"). Replica addresses are pointers
  /// held at the source, so replica sends cost one hop. Replicas on
  /// absent peers are skipped and counted stale. Must outlive the
  /// engine; call before run(). With a fault plan attached, replicas
  /// additionally serve as the crash-recovery rank store.
  void attach_replicas(const ReplicaRegistry& replicas);

  /// Attach the unified fault plan (drop/duplicate/reorder/delay/crash/
  /// partition; see fault/fault_plan.hpp). The plan is driven one pass at
  /// a time and advances its own RNG streams — it must outlive the engine
  /// and must not be shared between engines. Call before run().
  void attach_fault_plan(FaultPlan& plan);

  /// Attach a dynamic-membership coordinator (p2p/membership.hpp): the
  /// peer population changes while the iteration runs. Each pass the
  /// engine pulls the coordinator's PassPlan and acts on it — crashed
  /// peers lose sender state and stored contributions, declared-dead
  /// peers trigger outbox eviction (dropped_dead) and channel give-up,
  /// leavers hand their in-flight sends to their ring heir, and every
  /// document handoff moves parked state to the new owner (join/leave)
  /// or reconstructs the range from replicas and live sources
  /// (kReconstruct). The coordinator must share this engine's Placement
  /// object and must outlive it; call before run(). Mutually exclusive
  /// with attach_overlay (a static converged ring), a ChurnSchedule
  /// (both own the presence mask) and fault-plan crashes (separate crash
  /// vocabularies — schedule crashes as membership events).
  void attach_membership(MembershipCoordinator& membership);

  /// Enable the rank-mass conservation audit: at every would-be
  /// convergence the engine audits the contribution ledger and, if the
  /// accounted mass ratio deviates from 1.0 beyond `tolerance`,
  /// re-injects exactly the leaked contributions and keeps iterating.
  /// Call before run().
  void enable_mass_audit(double tolerance = 1e-9) override;

  /// DEPRECATED: legacy drop/duplicate injection. Compatibility shim that
  /// attaches an internally-owned FaultPlan with the same probabilities
  /// and seed (replays the identical fault history as the original
  /// implementation). Use attach_fault_plan() for the full taxonomy.
  void inject_faults(const FaultModel& faults);

  /// Publish run telemetry into `registry` (obs/metrics.hpp) when run()
  /// finishes: the traffic ledger under net.*, run totals under
  /// pagerank.* counters, the per-pass residual series
  /// `pagerank.residual` (x = pass, y = max relative change — matching
  /// pass_history() entry for entry), recompute/crash timelines, and a
  /// histogram of per-pass message counts. Flush-at-end keeps the hot
  /// loop untouched; live per-send metrics come from the attached
  /// IpCache (IpCache::bind_metrics). The registry must outlive the
  /// engine. Call before run().
  void attach_metrics(obs::MetricsRegistry& registry) override;

  /// Attach a causal message tracer (obs/trace.hpp). Every cross-peer
  /// update mints a TraceId at send time; DHT routing hops, outbox
  /// parking, delivery delay, drops, retransmissions, crash losses and
  /// the final application all append events under that id, so the
  /// exported Chrome trace reconstructs any message's journey by id.
  /// `clock` advances simulated time once per pass (1 us per pass when
  /// omitted — ordering only). Tracer must outlive the engine; call
  /// before run().
  void attach_tracer(obs::Tracer& tracer, PassClock clock = nullptr) override;

  /// Run to convergence. `churn == nullptr` means all peers always
  /// present. Can be called once per engine instance.
  DistributedRunResult run(ChurnSchedule* churn = nullptr,
                           const PassObserver& observer = nullptr) override;

  /// The reference implementation: exact, churn-capable, traceable. The
  /// quality bound is the fifo mean relative error vs the centralized
  /// oracle at the default ε = 1e-3 on the conformance graph, with slack.
  [[nodiscard]] EngineTraits traits() const override {
    EngineTraits t;
    t.name = "distributed";
    t.supports_churn = true;
    t.exact = true;
    t.supports_tracer = true;
    t.quality_bound = 0.01;
    return t;
  }

  [[nodiscard]] const std::vector<double>& ranks() const override {
    return ranks_;
  }
  [[nodiscard]] const TrafficMeter& traffic() const override {
    return meter_;
  }
  [[nodiscard]] const std::vector<PassStats>& pass_history() const override {
    return history_;
  }
  [[nodiscard]] std::uint64_t outbox_peak() const { return outbox_peak_; }
  /// Bytes held by the engine's per-document / per-edge arrays (capacity,
  /// not size — what the allocator actually carries). Graph storage is
  /// reported separately by Digraph::memory_bytes(); both feed the mem.*
  /// gauges and the scale bench's bytes-per-edge figure.
  [[nodiscard]] std::uint64_t memory_bytes() const;
  [[nodiscard]] const PagerankOptions& options() const { return options_; }
  [[nodiscard]] std::uint64_t replica_messages() const {
    return replica_messages_;
  }
  [[nodiscard]] std::uint64_t replica_stale_skips() const {
    return replica_stale_;
  }
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated_messages() const {
    return duplicated_;
  }

  // ---- Fault-plan observability (zero without an attached plan) ----
  [[nodiscard]] std::uint64_t crashes() const { return crashes_seen_; }
  [[nodiscard]] std::uint64_t recovered_docs() const {
    return recovered_docs_;
  }
  [[nodiscard]] std::uint64_t replica_restores() const {
    return replica_restores_;
  }
  [[nodiscard]] std::uint64_t recovery_messages() const {
    return recovery_messages_;
  }
  [[nodiscard]] std::uint64_t repair_messages() const {
    return repair_messages_;
  }
  [[nodiscard]] std::uint64_t partition_deferrals() const {
    return partition_deferrals_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return channel_ ? channel_->retransmissions() : 0;
  }
  [[nodiscard]] std::uint64_t stale_rejected() const {
    return channel_ ? channel_->stale_rejected() : 0;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return channel_ ? channel_->duplicates_suppressed() : 0;
  }
  /// Records the channel retired through the `gave_up` terminal outcome
  /// (declared-dead destinations + exhausted retry budgets).
  [[nodiscard]] std::uint64_t gave_up() const {
    return channel_ ? channel_->gave_up() : 0;
  }

  // ---- Membership observability (zero without attach_membership) ----
  [[nodiscard]] std::uint64_t handoff_docs() const { return handoff_docs_; }
  [[nodiscard]] std::uint64_t stale_owner_queries() const {
    return stale_owner_queries_;
  }
  /// Parked updates evicted when their destination was declared dead
  /// (the engine-side analogue of Outbox::dropped_dead_count()).
  [[nodiscard]] std::uint64_t outbox_dropped_dead() const {
    return outbox_dropped_dead_;
  }
  /// Ledger view; nullptr until enable_mass_audit() (or an audit-enabled
  /// run) creates it.
  [[nodiscard]] const MassAuditor* mass_auditor() const {
    return auditor_.get();
  }
  /// The final quiescence audit (valid after run() with audit enabled).
  [[nodiscard]] const MassAuditReport& last_audit() const {
    return last_audit_;
  }

  /// Full engine invariant walk (contracts.hpp; subsystem "pagerank"),
  /// plus a cascade into the attached subsystems (graph, overlay ring,
  /// reliable channel). Checks, at a pass boundary:
  ///  * per-edge array sizing matches the graph;
  ///  * dirty-set integrity — in_dirty_[v] set exactly for the documents
  ///    queued in dirty_, no duplicates (the parallel merge precondition);
  ///  * outbox bookkeeping — pending flags, the per-destination deferred
  ///    lists and pending_count agree edge for edge, every parked edge is
  ///    filed under the peer owning its target, and the peak never
  ///    understates the live count;
  ///  * delay-buffer accounting (delayed_total_ vs buffered messages);
  ///  * rank-mass identity on fault-free runs — the MassAuditor ledger
  ///    balances exactly against the applied + parked values (§2.3's
  ///    fixed point; skipped under a fault plan, where transient leaks
  ///    are expected until audit_and_repair re-injects them).
  /// Driven every PagerankOptions::validate_every_n_passes passes by
  /// run(); callable directly after run() returns. Throws
  /// contracts::ContractViolation on the first violation; no-op when
  /// contracts are compiled out.
  void validate_state() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  struct DelayedMsg {
    EdgeId edge = 0;
    PeerId src = 0;
    double value = 0.0;
    std::uint32_t seq = 0;
    obs::TraceId trace = obs::kNoTrace;
  };

  void deliver_deferred(const std::vector<bool>& presence,
                        PassStats& stats);
  void mark_dirty(NodeId v);
  void mark_dirty_now(NodeId v);
  /// Overlay hop bill for one update from peer `src` to the document
  /// `target_doc` held by `holder`; 1 when no overlay is attached.
  [[nodiscard]] std::uint64_t send_hops(PeerId src, PeerId holder,
                                        NodeId target_doc);
  /// Fan an update for document v out to its cached copies (§2.3).
  void send_to_replicas(PeerId src, NodeId v,
                        const std::vector<bool>& presence,
                        PassStats& stats);

  // ---- fault-plan machinery ----
  void prepare_fault_state();
  [[nodiscard]] bool reachable(PeerId a, PeerId b) const {
    return plan_ == nullptr || plan_->reachable(a, b);
  }
  /// Park the freshest value for `e` in the per-edge outbox (newest
  /// sequence number wins when acked delivery tracks them). `trace`
  /// continues the message's journey from the outbox when it drains.
  void park(EdgeId e, PeerId src, PeerId dest, double value,
            std::uint32_t seq, obs::TraceId trace, PassStats& stats);
  /// Apply a delivered value to the contribution cell (sequence-checked
  /// under acked delivery). `now` marks the target dirty for the current
  /// pass instead of the next.
  bool apply_update(EdgeId e, double value, std::uint32_t seq, bool now);
  void crash_peer(PeerId p, std::uint64_t pass);
  void recover_peer(PeerId p, const std::vector<bool>& presence,
                    PassStats& stats);
  /// Fail-stop wipe, sender side: every update `p` had parked for
  /// offline destinations and its in-flight retransmission records.
  void wipe_sender_state(PeerId p);
  /// Fail-stop wipe, receiver side: document v's stored contribution
  /// cells (values still parked at live senders survive).
  void wipe_receiver_cells(NodeId v);
  /// Mass-audit + trace the channel records that reached the `gave_up`
  /// terminal outcome since the last drain.
  void drain_gave_up();
  /// Act on one pass's membership plan (crashes, declared-dead
  /// evictions, leaver state transfer, document handoffs).
  void apply_membership(const MembershipCoordinator::PassPlan& mplan,
                        std::uint64_t pass, PassStats& stats);
  void deliver_delayed(std::uint64_t pass,
                       const std::vector<bool>& presence, PassStats& stats);
  void process_retries(std::uint64_t pass,
                       const std::vector<bool>& presence, PassStats& stats);
  /// Quiescence audit; returns true when mass is conserved (converged),
  /// false after re-injecting leaked contributions (keep iterating).
  bool audit_and_repair(const std::vector<bool>& presence,
                        PassStats& stats);
  /// The MassAuditor's view of the ledger: the contribution store
  /// permuted back to out-edge indexing (it is stored per in-CSR
  /// position), with parked outbox values overlaid.
  void build_effective(std::vector<double>& out) const;

  // ---- telemetry ----
  /// End the journey `t` (no-op for kNoTrace) with the applied/stale
  /// terminal event at the receiving peer.
  void trace_terminal(obs::TraceId t, bool applied, PeerId pv);
  /// Journey mint + send/DHT-hop events for one cross-peer emission;
  /// returns the id to thread through the message's fate.
  [[nodiscard]] obs::TraceId trace_send(EdgeId e, PeerId pu, PeerId pv,
                                        NodeId v, double value,
                                        std::uint64_t pass,
                                        std::uint64_t hops);
  /// Publish run totals, the residual series and timelines to metrics_.
  void flush_metrics(const DistributedRunResult& result);

  const Digraph& graph_;
  const Placement& placement_;
  PagerankOptions options_;

  const ChordRing* ring_ = nullptr;
  IpCache* ip_cache_ = nullptr;
  const ReplicaRegistry* replicas_ = nullptr;
  std::uint64_t replica_messages_ = 0;
  std::uint64_t replica_stale_ = 0;

  MembershipCoordinator* membership_ = nullptr;
  std::uint64_t handoff_docs_ = 0;
  std::uint64_t stale_owner_queries_ = 0;
  std::uint64_t outbox_dropped_dead_ = 0;

  FaultPlan* plan_ = nullptr;
  std::unique_ptr<FaultPlan> owned_plan_;  // inject_faults() shim
  std::unique_ptr<ReliableChannel> channel_;
  std::unique_ptr<MassAuditor> auditor_;
  bool audit_enabled_ = false;
  double audit_tolerance_ = 1e-9;
  static constexpr double kAuditSlack = 1e-12;
  MassAuditReport last_audit_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t crashes_seen_ = 0;
  std::uint64_t recovered_docs_ = 0;
  std::uint64_t replica_restores_ = 0;
  std::uint64_t recovery_messages_ = 0;
  std::uint64_t repair_messages_ = 0;
  std::uint64_t repair_rounds_ = 0;
  std::uint64_t partition_deferrals_ = 0;

  // Crash bookkeeping (sized on first use).
  std::vector<std::uint64_t> crashed_until_;  // peer offline through pass-1
  std::vector<std::uint8_t> needs_recovery_;  // uint8_t: see pending_
  std::vector<std::vector<NodeId>> docs_by_peer_;
  std::vector<NodeId> edge_src_;        // edge id -> source document
  // Replica rank store (crash-recovery path); never folded by the
  // gather kernel. dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> replica_value_;   // last rank a live replica holds
  // Churn presence minus crashed peers. vector<bool> is safe here:
  // written only by the coordinator between parallel regions, and read
  // through const access inside them. dprank-lint: allow(vector-bool)
  std::vector<bool> presence_eff_;
  // Mass-audit workspace (cold validation path, never gathered).
  // dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> effective_scratch_;  // audit workspace

  // Delivery-delay buffer: pass -> messages arriving at its start. A
  // node-based ordered map is right here: the fault path is cold, only
  // the earliest due passes are visited, and delivery order must follow
  // due-pass order. dprank-lint: allow(hot-path-map)
  std::map<std::uint64_t, std::vector<DelayedMsg>> delayed_;
  std::uint64_t delayed_total_ = 0;

  // The interface returns const std::vector<double>&, so ranks_ keeps the
  // default allocator. dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> ranks_;
  // Delivered contribution cells, indexed by in-CSR *position* (see
  // Digraph::in_edge_begin): a document's cells are contiguous, so the
  // recompute — the engine's hottest loop — streams them sequentially.
  // Everything keyed by message identity (outbox, sequence numbers,
  // audit ledger) stays on out-edge ids; writes translate through
  // Digraph::out_to_in_edge. 64-byte aligned: the vector gather kernel
  // (common/simd.hpp) sweeps this array.
  AlignedVec<double> contrib_;
  // Outbox parking values: scalar random writes only, the fold kernel
  // never streams them. dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> pending_value_;  // per out-edge, undelivered value
  // Per out-edge outbox flag. uint8_t, not vector<bool>: parallel workers
  // set flags for distinct edges concurrently, which must not share words.
  std::vector<std::uint8_t> pending_;
  std::vector<std::uint32_t> pending_seq_;  // parked seq (acked mode only)
  // (edge, sender peer) pairs parked for an absent destination peer
  std::vector<std::vector<std::pair<EdgeId, PeerId>>> deferred_by_peer_;
  std::uint64_t total_pending_ = 0;
  std::uint64_t outbox_peak_ = 0;

  std::vector<std::uint8_t> in_dirty_;  // uint8_t: see pending_
  std::vector<NodeId> dirty_;       // docs to recompute this pass
  std::vector<NodeId> next_dirty_;  // docs to recompute next pass

  std::vector<std::uint64_t> peer_msgs_this_pass_;

  // ---- pass-parallel execution (see the header comment) ----
  // Per-source-peer shard results. Everything is keyed by peer and merged
  // in sorted-peer order on the coordinating thread, never by worker
  // slot, so output is independent of the scheduler.
  struct PeerScratch {
    std::uint64_t docs_recomputed = 0;
    double max_rel = 0.0;
    std::uint64_t deferred_calls = 0;    // park() equivalents this pass
    std::uint64_t deferred_docs = 0;     // residual schedule: tail pushed
    std::vector<NodeId> senders;         // epsilon-exceeding, dirty order
    // Residual schedule: documents this peer kept dirty instead of
    // processing — the deferred low-residual tail, plus documents whose
    // change cleared epsilon but not the adaptive threshold.
    std::vector<NodeId> kept_dirty;
    // Batched exchange: emission targets grouped per destination peer.
    // buckets[i] covers targets[begin, end) for destination dst (sorted
    // by dst; the dst == source bucket holds the Fig. 1b local updates).
    struct Bucket {
      PeerId dst = 0;
      std::size_t begin = 0;
      std::size_t end = 0;
    };
    std::vector<NodeId> targets;
    // Residual schedule: |Δcontribution| per entry of targets, folded
    // into residual_ by the destination shard (deterministic order).
    // Residual-mode only; residual runs never take the fused gather
    // path. dprank-lint: allow(unaligned-hot-buffer)
    std::vector<double> target_deltas;
    std::vector<Bucket> buckets;
    std::vector<std::pair<PeerId, EdgeId>> parked;  // newly parked edges
  };
  // Per-participant workspace for bucketing emissions by destination
  // (indexed by pool slot, reused across passes).
  struct SlotScratch {
    std::vector<std::vector<NodeId>> bucket;  // per destination peer
    std::vector<std::vector<double>> bucket_delta;  // residual mode only
    std::vector<PeerId> touched;
  };
  struct DstSlice {  // one source peer's targets aimed at a destination
    PeerId src = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void prepare_parallel_state();
  /// Bucket dirty_ by owning peer into peer_dirty_ / active_peers_
  /// (sorted) and reset the active peers' scratch.
  void bucket_dirty();
  /// Invoke fn(shard) for every shard in [0, shards) — on the pool when
  /// one exists, as a plain inlined loop otherwise (the template keeps
  /// the sequential path free of std::function dispatch). fn also
  /// receives the participant slot for SlotScratch indexing.
  template <typename Fn>
  void parallel_region(std::size_t shards, Fn&& fn);
  /// Phase 1 for one peer's dirty bucket: recompute, collect senders.
  /// Under Schedule::kResidual the bucket is first ordered by accumulated
  /// residual (descending) and its low-residual tail may be deferred into
  /// kept_dirty instead of processed.
  void compute_peer(PeerId p, const std::vector<bool>& presence,
                    bool track_replica_values);
  /// Batched fast-path exchange (clean/churn configs only): emit per
  /// source peer into per-destination buckets, bill coalesced or
  /// per-update traffic, apply and mark sharded by destination peer.
  void exchange_batched(const std::vector<bool>& presence, PassStats& stats,
                        obs::Histogram* batch_hist);
  /// Single-threaded fifo fast path: one fused pass replacing
  /// bucket_dirty + compute_peer + merge + exchange. The dirty set is
  /// grouped peer-major into flat preallocated arrays (counting sort —
  /// no per-peer vectors, no pass-0 allocation storm), documents are
  /// recomputed through the vector fold kernel (common/simd.hpp; one
  /// document per lane, per-lane left-to-right cell order), and delivery
  /// is one cell write at the emission site with plain per-destination
  /// tallies (at 500 peers the median batch is one update, so
  /// materialized buckets cost more than the updates). Ranks, counters,
  /// traffic and dirty-set membership are bit-identical to the sharded
  /// path — the golden-digest tests pin this; only the order of
  /// next_dirty_ differs, which no observable state depends on.
  void pass_sequential(const std::vector<bool>& presence, bool all_present,
                       PassStats& stats, obs::Histogram* batch_hist);
  /// Emission half of pass_sequential; kAllPresent elides the per-edge
  /// presence test on churn-free runs.
  template <bool kAllPresent>
  void exchange_sequential(const std::vector<bool>& presence,
                           PassStats& stats, obs::Histogram* batch_hist);

  std::unique_ptr<ThreadPool> pool_;   // only when options_.threads > 1
  bool batched_exchange_ = false;
  std::vector<std::vector<NodeId>> peer_dirty_;
  std::vector<PeerId> active_peers_;   // peers owning dirty docs, sorted
  std::vector<PeerScratch> peer_scratch_;
  std::vector<SlotScratch> slot_scratch_;
  std::vector<std::vector<DstSlice>> dst_incoming_;
  std::vector<std::vector<NodeId>> dst_marked_;
  std::vector<PeerId> active_dsts_;    // destinations this pass, sorted
  // ---- fused sequential-pass scratch (pass_sequential only) ----
  bool seq_fast_ = false;
  simd::Level simd_level_ = simd::Level::kScalar;  // hoisted per run
  AlignedVec<NodeId> seq_docs_;     // dirty docs, grouped peer-major
  AlignedVec<double> seq_acc_;      // per-doc cell sums from the fold kernel
  AlignedVec<NodeId> seq_senders_;  // epsilon-exceeding docs, peer-major
  std::vector<std::uint32_t> seq_count_;    // per peer: docs this pass
  std::vector<std::uint64_t> seq_seg_end_;  // per peer: scatter cursor,
                                            // then one past the segment
  // Per active peer: its sender segment [pos[i], pos[i+1]) in seq_senders_.
  std::vector<std::uint64_t> seq_sender_pos_;
  // exchange_sequential scratch: per-destination update counts, reset
  // through touched_dsts_ after each source peer instead of cleared.
  std::vector<std::uint32_t> dst_count32_;
  std::vector<PeerId> touched_dsts_;

  // ---- residual scheduler state (Schedule::kResidual only) ----
  bool residual_mode_ = false;
  double eff_epsilon_ = 0.0;   // this pass's emission threshold
  double prev_max_rel_ = 0.0;  // last pass's max relative change
  // Accumulated |Δcontribution| since the document's last recompute;
  // +inf until first recomputed, so pass 0 processes everything.
  // Residual scheduler state; residual runs never take the fused
  // gather path. dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> residual_;
  // Rank value behind the document's last emission: the emission gate
  // compares against what the out-links actually hold, not last pass's
  // rank, so coalesced (deferred) updates are never silently dropped.
  // Residual-mode emission gate, off the fused gather path.
  // dprank-lint: allow(unaligned-hot-buffer)
  std::vector<double> last_sent_;
  std::vector<std::uint8_t> defer_age_;  // consecutive deferrals

  TrafficMeter meter_;
  std::vector<PassStats> history_;
  bool ran_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  PassClock pass_clock_;
  std::vector<obs::TraceId> pending_trace_;  // parked journey per edge
};

}  // namespace dprank
