#pragma once

// Distributed pagerank engine — the paper's core contribution (§2.3,
// Fig. 1), executed under the evaluation methodology of §4.2.
//
// Semantics:
//  * Every document starts at `initial_rank`. A document's rank is
//    R(v) = (1-d) + d * sum of the stored contributions of its in-links,
//    where a contribution is the freshest value R(u)/outdeg(u) the link
//    source has sent (chaotic iteration: each document recomputes from
//    whatever values have arrived, with no global synchronization).
//  * A pagerank update message for edge u->v is modelled as a write to a
//    per-edge contribution cell (u's out-edge slot), the array-backed
//    equivalent of the 24-byte GUID+rank message of §4.6.1.
//  * A pass (§4.2): all present peers concurrently recompute the
//    documents that received updates; documents whose relative change
//    exceeds epsilon send updates to their out-links. Messages sent in
//    pass t are visible in pass t+1 ("pagerank messages are sent and
//    received instantaneously and all peers start their next iteration
//    concurrently").
//  * Same-peer updates are applied locally without network messages
//    (Fig. 1 step b); cross-peer updates are counted in the traffic
//    meter.
//  * Churn (§3.1, §4.3): documents on absent peers neither compute nor
//    receive. Updates addressed to an absent peer wait in the sender's
//    per-edge outbox (newest value wins) and are delivered on the first
//    pass the destination peer is present. Messages are counted once, at
//    delivery.
//  * Convergence: no document has a pending recompute and no update is
//    waiting in any outbox — the paper's "error in all the documents is
//    less than the error threshold" criterion.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "graph/digraph.hpp"
#include "net/ip_cache.hpp"
#include "net/traffic_meter.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "p2p/replication.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct PassStats {
  std::uint64_t pass = 0;
  std::uint64_t docs_recomputed = 0;
  std::uint64_t messages_sent = 0;      // cross-peer, delivered immediately
  std::uint64_t messages_deferred = 0;  // parked in an outbox this pass
  std::uint64_t messages_delivered_late = 0;  // outbox drains this pass
  std::uint64_t local_updates = 0;
  std::uint64_t max_peer_messages = 0;  // busiest sender, for Eq. 4
  double max_rel_change = 0.0;
};

/// Network fault injection (extension): UDP-style delivery where update
/// messages can be silently dropped or duplicated. The protocol's
/// newest-value-wins contribution cells make duplicates harmless; a
/// dropped update leaves a *stale contribution* (bounded error) unless a
/// later update for the same link overwrites it — the degradation the
/// fault ablation measures.
struct FaultModel {
  double drop_probability = 0.0;       // message vanishes in transit
  double duplicate_probability = 0.0;  // message delivered twice
  std::uint64_t seed = 42;
};

struct DistributedRunResult {
  std::uint64_t passes = 0;
  bool converged = false;
};

class DistributedPagerank {
 public:
  /// The placement must cover exactly g.num_nodes() documents. The engine
  /// keeps references: graph and placement must outlive it (temporaries
  /// are rejected at compile time).
  DistributedPagerank(const Digraph& g, const Placement& placement,
                      PagerankOptions options);
  DistributedPagerank(Digraph&&, const Placement&, PagerankOptions) = delete;
  DistributedPagerank(const Digraph&, Placement&&, PagerankOptions) = delete;
  DistributedPagerank(Digraph&&, Placement&&, PagerankOptions) = delete;

  /// Observer invoked after every pass with (pass index, current ranks);
  /// used to measure convergence trajectories (§4.3).
  using PassObserver =
      std::function<void(std::uint64_t, const std::vector<double>&)>;

  /// Meter overlay hop costs (§3.2): every cross-peer update consults
  /// `cache` over `ring` — an enabled cache models IP caching (first
  /// message routed, then direct), a disabled one models Freenet-style
  /// per-message routing. Both must outlive the engine. Call before
  /// run(); without this, every message is billed one hop.
  void attach_overlay(const ChordRing& ring, IpCache& cache);

  /// Deliver every update to each cached copy of the destination
  /// document as well (§2.3: "all copies of the document can contain
  /// the correct computed pagerank"). Replica addresses are pointers
  /// held at the source, so replica sends cost one hop. Replicas on
  /// absent peers are skipped and counted stale. Must outlive the
  /// engine; call before run().
  void attach_replicas(const ReplicaRegistry& replicas);

  /// Inject message drops/duplicates (see FaultModel). Call before
  /// run(). Dropped messages still count as sent (the sender paid for
  /// them); duplicates add an extra counted delivery.
  void inject_faults(const FaultModel& faults);

  /// Run to convergence. `churn == nullptr` means all peers always
  /// present. Can be called once per engine instance.
  DistributedRunResult run(ChurnSchedule* churn = nullptr,
                           const PassObserver& observer = nullptr);

  [[nodiscard]] const std::vector<double>& ranks() const { return ranks_; }
  [[nodiscard]] const TrafficMeter& traffic() const { return meter_; }
  [[nodiscard]] const std::vector<PassStats>& pass_history() const {
    return history_;
  }
  [[nodiscard]] std::uint64_t outbox_peak() const { return outbox_peak_; }
  [[nodiscard]] const PagerankOptions& options() const { return options_; }
  [[nodiscard]] std::uint64_t replica_messages() const {
    return replica_messages_;
  }
  [[nodiscard]] std::uint64_t replica_stale_skips() const {
    return replica_stale_;
  }
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated_messages() const {
    return duplicated_;
  }

 private:
  void deliver_deferred(const std::vector<bool>& presence,
                        PassStats& stats);
  void mark_dirty(NodeId v);
  /// Overlay hop bill for one update from peer `src` to the document
  /// `target_doc` held by `holder`; 1 when no overlay is attached.
  [[nodiscard]] std::uint64_t send_hops(PeerId src, PeerId holder,
                                        NodeId target_doc);
  /// Fan an update for document v out to its cached copies (§2.3).
  void send_to_replicas(PeerId src, NodeId v,
                        const std::vector<bool>& presence,
                        PassStats& stats);

  const Digraph& graph_;
  const Placement& placement_;
  PagerankOptions options_;

  const ChordRing* ring_ = nullptr;
  IpCache* ip_cache_ = nullptr;
  const ReplicaRegistry* replicas_ = nullptr;
  std::uint64_t replica_messages_ = 0;
  std::uint64_t replica_stale_ = 0;

  FaultModel faults_;
  bool faults_enabled_ = false;
  Rng fault_rng_{0};
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;

  std::vector<double> ranks_;
  std::vector<double> contrib_;        // per out-edge, delivered value
  std::vector<double> pending_value_;  // per out-edge, undelivered value
  std::vector<bool> pending_;          // per out-edge outbox flag
  // (edge, sender peer) pairs parked for an absent destination peer
  std::vector<std::vector<std::pair<EdgeId, PeerId>>> deferred_by_peer_;
  std::uint64_t total_pending_ = 0;
  std::uint64_t outbox_peak_ = 0;

  std::vector<bool> in_dirty_;
  std::vector<NodeId> dirty_;       // docs to recompute this pass
  std::vector<NodeId> next_dirty_;  // docs to recompute next pass

  std::vector<std::uint64_t> peer_msgs_this_pass_;

  TrafficMeter meter_;
  std::vector<PassStats> history_;
  bool ran_ = false;
};

}  // namespace dprank
