#include "pagerank/distributed_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/guid.hpp"
#include "net/message.hpp"

namespace dprank {

DistributedPagerank::DistributedPagerank(const Digraph& g,
                                         const Placement& placement,
                                         PagerankOptions options)
    : graph_(g), placement_(placement), options_(options) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "DistributedPagerank: placement does not cover the graph");
  }
  const NodeId n = g.num_nodes();
  ranks_.assign(n, options_.initial_rank);
  // "Available pagerank for in-links from the previous iteration" at
  // pass 0 is the initial value: contribution of edge u->v starts at
  // initial_rank / outdeg(u).
  contrib_.resize(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const auto deg = g.out_degree(u);
    if (deg == 0) continue;
    const double c = options_.initial_rank / static_cast<double>(deg);
    for (EdgeId e = g.out_edge_begin(u); e < g.out_edge_end(u); ++e) {
      contrib_[e] = c;
    }
  }
  pending_value_.assign(g.num_edges(), 0.0);
  pending_.assign(g.num_edges(), false);
  deferred_by_peer_.resize(placement.num_peers());
  in_dirty_.assign(n, true);
  dirty_.resize(n);
  for (NodeId v = 0; v < n; ++v) dirty_[v] = v;  // first pass: everyone
  next_dirty_.reserve(n);
  peer_msgs_this_pass_.assign(placement.num_peers(), 0);
}

void DistributedPagerank::attach_overlay(const ChordRing& ring,
                                         IpCache& cache) {
  if (ran_) throw std::logic_error("attach_overlay after run");
  if (ring.size() != placement_.num_peers()) {
    throw std::invalid_argument(
        "attach_overlay: ring size does not match placement peers");
  }
  ring_ = &ring;
  ip_cache_ = &cache;
}

void DistributedPagerank::attach_replicas(const ReplicaRegistry& replicas) {
  if (ran_) throw std::logic_error("attach_replicas after run");
  if (replicas.num_docs() != placement_.num_docs()) {
    throw std::invalid_argument(
        "attach_replicas: registry does not cover the documents");
  }
  replicas_ = &replicas;
}

void DistributedPagerank::inject_faults(const FaultModel& faults) {
  if (ran_) throw std::logic_error("inject_faults after run");
  if (faults.drop_probability < 0.0 || faults.drop_probability >= 1.0 ||
      faults.duplicate_probability < 0.0 ||
      faults.duplicate_probability > 1.0) {
    throw std::invalid_argument("inject_faults: probabilities out of range");
  }
  faults_ = faults;
  faults_enabled_ = faults.drop_probability > 0.0 ||
                    faults.duplicate_probability > 0.0;
  fault_rng_ = Rng(faults.seed ^ 0xFA017ULL);
}

std::uint64_t DistributedPagerank::send_hops(PeerId src, PeerId holder,
                                             NodeId target_doc) {
  if (ring_ == nullptr) return 1;
  return std::max<std::uint64_t>(
      1, ip_cache_->send_hops_to_peer(src, holder, document_guid(target_doc),
                                      *ring_));
}

void DistributedPagerank::mark_dirty(NodeId v) {
  if (!in_dirty_[v]) {
    in_dirty_[v] = true;
    next_dirty_.push_back(v);
  }
}

void DistributedPagerank::send_to_replicas(PeerId src, NodeId v,
                                           const std::vector<bool>& presence,
                                           PassStats& stats) {
  for (const PeerId rp : replicas_->replicas_of(v)) {
    if (rp == src) {
      meter_.record_local_update();
      ++stats.local_updates;
    } else if (presence[rp]) {
      // Replica addresses are pointers held at the source (§2.3):
      // replica sends are always direct.
      meter_.record_message(PagerankUpdate::kWireBytes);
      ++replica_messages_;
      ++stats.messages_sent;
    } else {
      ++replica_stale_;
    }
  }
}

void DistributedPagerank::deliver_deferred(const std::vector<bool>& presence,
                                           PassStats& stats) {
  for (PeerId p = 0; p < deferred_by_peer_.size(); ++p) {
    if (!presence[p] || deferred_by_peer_[p].empty()) continue;
    for (const auto& [e, src_peer] : deferred_by_peer_[p]) {
      contrib_[e] = pending_value_[e];
      pending_[e] = false;
      --total_pending_;
      const NodeId v = graph_.out_target(e);
      meter_.record_message(PagerankUpdate::kWireBytes,
                            send_hops(src_peer, p, v));
      ++stats.messages_delivered_late;
      // Delivered at pass start: the target recomputes this pass.
      if (!in_dirty_[v]) {
        in_dirty_[v] = true;
        dirty_.push_back(v);
      }
      if (replicas_ != nullptr && !replicas_->empty()) {
        send_to_replicas(src_peer, v, presence, stats);
      }
    }
    deferred_by_peer_[p].clear();
  }
}

DistributedRunResult DistributedPagerank::run(ChurnSchedule* churn,
                                              const PassObserver& observer) {
  if (ran_) throw std::logic_error("DistributedPagerank::run: already ran");
  ran_ = true;
  if (churn != nullptr && churn->num_peers() != placement_.num_peers()) {
    throw std::invalid_argument("DistributedPagerank::run: churn peer count");
  }

  const std::vector<bool> all_present(placement_.num_peers(), true);
  const double d = options_.damping;
  const double base = 1.0 - d;
  std::vector<NodeId> senders;

  DistributedRunResult result;
  for (std::uint64_t pass = 0; pass < options_.max_passes; ++pass) {
    PassStats stats;
    stats.pass = pass;
    const std::vector<bool>& presence =
        churn != nullptr ? churn->presence_for_pass(pass) : all_present;

    // Phase 0: outbox drains for peers that are present this pass.
    if (total_pending_ != 0) deliver_deferred(presence, stats);

    // Phase 1: recompute documents that received updates. Documents on
    // absent peers stay dirty until their peer returns.
    senders.clear();
    for (const NodeId v : dirty_) {
      if (!presence[placement_.peer_of(v)]) {
        in_dirty_[v] = false;  // re-marked below for the next pass
        mark_dirty(v);
        continue;
      }
      in_dirty_[v] = false;
      double acc = 0.0;
      const auto slots = graph_.in_to_out_edge(v);
      for (const EdgeId e : slots) acc += contrib_[e];
      const double newrank = base + d * acc;
      const double rel = relative_change(ranks_[v], newrank);
      ranks_[v] = newrank;
      ++stats.docs_recomputed;
      stats.max_rel_change = std::max(stats.max_rel_change, rel);
      if (rel > options_.epsilon && graph_.out_degree(v) != 0) {
        senders.push_back(v);
      }
    }

    // Phase 2: senders emit their new contribution on every out-link;
    // visible next pass (or parked in the outbox for absent peers).
    for (const NodeId u : senders) {
      const PeerId pu = placement_.peer_of(u);
      const double c = ranks_[u] / static_cast<double>(graph_.out_degree(u));
      for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u);
           ++e) {
        const NodeId v = graph_.out_target(e);
        const PeerId pv = placement_.peer_of(v);
        if (pv == pu) {
          contrib_[e] = c;
          mark_dirty(v);
          meter_.record_local_update();
          ++stats.local_updates;
        } else if (presence[pv]) {
          // Fault injection applies to the direct (unacknowledged) path;
          // the outbox path below models reliable store-and-resend.
          if (faults_enabled_ &&
              fault_rng_.chance(faults_.drop_probability)) {
            // Sender paid for the message; the contribution cell keeps
            // its stale value until a later update overwrites it.
            meter_.record_message(PagerankUpdate::kWireBytes,
                                  send_hops(pu, pv, v));
            ++stats.messages_sent;
            ++peer_msgs_this_pass_[pu];
            ++dropped_;
            continue;
          }
          contrib_[e] = c;
          mark_dirty(v);
          meter_.record_message(PagerankUpdate::kWireBytes,
                                send_hops(pu, pv, v));
          ++stats.messages_sent;
          ++peer_msgs_this_pass_[pu];
          if (faults_enabled_ &&
              fault_rng_.chance(faults_.duplicate_probability)) {
            // Idempotent overwrite: the duplicate only costs traffic.
            meter_.record_message(PagerankUpdate::kWireBytes);
            ++stats.messages_sent;
            ++duplicated_;
          }
        } else {
          pending_value_[e] = c;
          if (!pending_[e]) {
            pending_[e] = true;
            deferred_by_peer_[pv].emplace_back(e, pu);
            ++total_pending_;
            outbox_peak_ = std::max(outbox_peak_, total_pending_);
          }
          ++stats.messages_deferred;
        }
        if (replicas_ != nullptr && !replicas_->empty() && presence[pv]) {
          send_to_replicas(pu, v, presence, stats);
        }
      }
    }

    stats.max_peer_messages = 0;
    for (const NodeId u : senders) {
      const PeerId pu = placement_.peer_of(u);
      stats.max_peer_messages =
          std::max(stats.max_peer_messages, peer_msgs_this_pass_[pu]);
      peer_msgs_this_pass_[pu] = 0;  // reset only touched entries
    }

    history_.push_back(stats);
    result.passes = pass + 1;
    if (observer) observer(pass, ranks_);

    dirty_.swap(next_dirty_);
    next_dirty_.clear();
    if (dirty_.empty() && total_pending_ == 0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dprank
