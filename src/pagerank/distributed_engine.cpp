#include "pagerank/distributed_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "common/guid.hpp"
#include "net/message.hpp"
#include "obs/mem_probe.hpp"

namespace dprank {

DistributedPagerank::DistributedPagerank(const Digraph& g,
                                         const Placement& placement,
                                         const PagerankOptions& options)
    : graph_(g), placement_(placement), options_(options) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "DistributedPagerank: placement does not cover the graph");
  }
  const NodeId n = g.num_nodes();
  ranks_.assign(n, options_.initial_rank);
  // "Available pagerank for in-links from the previous iteration" at
  // pass 0 is the initial value: contribution of edge u->v starts at
  // initial_rank / outdeg(u). Cells live at in-CSR positions (see the
  // header): iterate per destination, reading each source's out-degree.
  contrib_.resize(g.num_edges());
  // One division per *source document* (identical to dividing per edge —
  // same operands, same rounding), then a scatter: n divisions instead of
  // m for the million-doc constructor.
  std::vector<double> init_contrib(n);
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t deg = g.out_degree(u);
    init_contrib[u] =
        deg == 0 ? 0.0 : options_.initial_rank / static_cast<double>(deg);
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto sources = g.in_neighbors(v);
    const EdgeId base = g.in_edge_begin(v);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      contrib_[base + i] = init_contrib[sources[i]];
    }
  }
  pending_value_.assign(g.num_edges(), 0.0);
  pending_.assign(g.num_edges(), false);
  deferred_by_peer_.resize(placement.num_peers());
  in_dirty_.assign(n, true);
  dirty_.resize(n);
  for (NodeId v = 0; v < n; ++v) dirty_[v] = v;  // first pass: everyone
  next_dirty_.reserve(n);
  peer_msgs_this_pass_.assign(placement.num_peers(), 0);
  residual_mode_ = options_.schedule == Schedule::kResidual;
  if (residual_mode_) {
    residual_.assign(n, std::numeric_limits<double>::infinity());
    last_sent_.assign(n, options_.initial_rank);
    defer_age_.assign(n, 0);
  }
}

void DistributedPagerank::attach_overlay(const ChordRing& ring,
                                         IpCache& cache) {
  if (ran_) throw std::logic_error("attach_overlay after run");
  if (membership_ != nullptr) {
    throw std::logic_error(
        "attach_overlay: dynamic membership is attached; the static "
        "converged ring and the self-healing ring are mutually exclusive");
  }
  if (ring.size() != placement_.num_peers()) {
    throw std::invalid_argument(
        "attach_overlay: ring size does not match placement peers");
  }
  ring_ = &ring;
  ip_cache_ = &cache;
}

void DistributedPagerank::attach_replicas(const ReplicaRegistry& replicas) {
  if (ran_) throw std::logic_error("attach_replicas after run");
  if (replicas.num_docs() != placement_.num_docs()) {
    throw std::invalid_argument(
        "attach_replicas: registry does not cover the documents");
  }
  replicas_ = &replicas;
}

void DistributedPagerank::attach_fault_plan(FaultPlan& plan) {
  if (ran_) throw std::logic_error("attach_fault_plan after run");
  if (plan_ != nullptr) {
    throw std::logic_error(
        "attach_fault_plan: a fault plan (or inject_faults shim) is "
        "already attached");
  }
  plan_ = &plan;
}

void DistributedPagerank::attach_membership(
    MembershipCoordinator& membership) {
  if (ran_) throw std::logic_error("attach_membership after run");
  if (ring_ != nullptr) {
    throw std::logic_error(
        "attach_membership: attach_overlay models a fixed converged ring; "
        "dynamic membership owns its own self-healing ring");
  }
  if (&membership.placement() != &placement_) {
    throw std::invalid_argument(
        "attach_membership: the coordinator must share this engine's "
        "Placement object (handoffs mutate it in place)");
  }
  membership_ = &membership;
}

void DistributedPagerank::enable_mass_audit(double tolerance) {
  if (ran_) throw std::logic_error("enable_mass_audit after run");
  if (tolerance < 0.0) {
    throw std::invalid_argument("enable_mass_audit: negative tolerance");
  }
  audit_enabled_ = true;
  audit_tolerance_ = tolerance;
}

void DistributedPagerank::inject_faults(const FaultModel& faults) {
  if (ran_) throw std::logic_error("inject_faults after run");
  if (plan_ != nullptr) {
    throw std::logic_error("inject_faults: a fault plan is already attached");
  }
  if (faults.drop_probability < 0.0 || faults.drop_probability >= 1.0 ||
      faults.duplicate_probability < 0.0 ||
      faults.duplicate_probability > 1.0) {
    throw std::invalid_argument("inject_faults: probabilities out of range");
  }
  FaultPlanConfig config;
  config.drop_probability = faults.drop_probability;
  config.duplicate_probability = faults.duplicate_probability;
  config.seed = faults.seed;
  owned_plan_ = std::make_unique<FaultPlan>(config);
  plan_ = owned_plan_.get();
}

void DistributedPagerank::attach_metrics(obs::MetricsRegistry& registry) {
  if (ran_) throw std::logic_error("attach_metrics after run");
  metrics_ = &registry;
}

void DistributedPagerank::attach_tracer(obs::Tracer& tracer,
                                        PassClock clock) {
  if (ran_) throw std::logic_error("attach_tracer after run");
  tracer_ = &tracer;
  pass_clock_ = std::move(clock);
  pending_trace_.assign(graph_.num_edges(), obs::kNoTrace);
}

void DistributedPagerank::trace_terminal(obs::TraceId t, bool applied,
                                         PeerId pv) {
  if (t == obs::kNoTrace) return;
  tracer_->async_end(t, applied ? "update.apply" : "update.stale",
                     "pagerank", pv, {});
}

obs::TraceId DistributedPagerank::trace_send(EdgeId e, PeerId pu, PeerId pv,
                                             NodeId v, double value,
                                             std::uint64_t pass,
                                             std::uint64_t hops) {
  const obs::TraceId tid = tracer_->begin_trace();
  if (tid == obs::kNoTrace) return tid;  // unsampled journey
  tracer_->async_begin(tid, "update.send", "pagerank", pu,
                       {{"edge", static_cast<double>(e)},
                        {"pass", static_cast<double>(pass)},
                        {"value", value}});
  if (hops > 1 && ring_ != nullptr) {
    // Hop-by-hop overlay story: send_hops() already billed the route and
    // updated the cache; route() is read-only, so re-deriving the path
    // changes nothing the simulation can observe.
    const auto route = ring_->route(pu, document_guid(v));
    for (const PeerId hop : route.hops) {
      tracer_->async_step(tid, "dht.hop", "dht", hop, {});
    }
    if (route.destination != pv) {
      tracer_->async_step(tid, "dht.hop", "dht", pv, {});
    }
  }
  return tid;
}

std::uint64_t DistributedPagerank::send_hops(PeerId src, PeerId holder,
                                             NodeId target_doc) {
  if (ring_ == nullptr) return 1;
  return std::max<std::uint64_t>(
      1, ip_cache_->send_hops_to_peer(src, holder, document_guid(target_doc),
                                      *ring_));
}

void DistributedPagerank::mark_dirty(NodeId v) {
  if (!in_dirty_[v]) {
    in_dirty_[v] = true;
    next_dirty_.push_back(v);
  }
}

void DistributedPagerank::mark_dirty_now(NodeId v) {
  if (!in_dirty_[v]) {
    in_dirty_[v] = true;
    dirty_.push_back(v);
  }
}

void DistributedPagerank::send_to_replicas(PeerId src, NodeId v,
                                           const std::vector<bool>& presence,
                                           PassStats& stats) {
  for (const PeerId rp : replicas_->replicas_of(v)) {
    if (rp == src) {
      meter_.record_local_update();
      ++stats.local_updates;
    } else if (presence[rp]) {
      // Replica addresses are pointers held at the source (§2.3):
      // replica sends are always direct.
      meter_.record_message(PagerankUpdate::kWireBytes);
      ++replica_messages_;
      ++stats.messages_sent;
    } else {
      ++replica_stale_;
    }
  }
}

void DistributedPagerank::park(EdgeId e, PeerId src, PeerId dest,
                               double value, std::uint32_t seq,
                               obs::TraceId trace, PassStats& stats) {
  if (channel_ != nullptr) {
    if (pending_[e] && pending_seq_[e] > seq) {
      // A fresher emission is already parked for this edge.
      ++stats.messages_deferred;
      if (trace != obs::kNoTrace) {
        tracer_->async_end(trace, "update.superseded", "net", dest, {});
      }
      return;
    }
    pending_seq_[e] = seq;
  }
  pending_value_[e] = value;
  if (!pending_[e]) {
    pending_[e] = true;
    deferred_by_peer_[dest].emplace_back(e, src);
    ++total_pending_;
    outbox_peak_ = std::max(outbox_peak_, total_pending_);
  }
  if (tracer_ != nullptr) {
    obs::TraceId& slot = pending_trace_[e];
    if (slot != obs::kNoTrace && slot != trace) {
      // Newest value wins the outbox slot; the overwritten journey ends.
      tracer_->async_end(slot, "update.superseded", "net", dest, {});
    }
    slot = trace;
    if (trace != obs::kNoTrace) {
      tracer_->async_step(trace, "outbox.park", "net", dest,
                          {{"edge", static_cast<double>(e)}});
    }
  }
  ++stats.messages_deferred;
}

bool DistributedPagerank::apply_update(EdgeId e, double value,
                                       std::uint32_t seq, bool now) {
  if (channel_ != nullptr && !channel_->accept(e, seq)) {
    return false;  // stale reordered value or duplicate: rejected
  }
  const EdgeId cell = graph_.out_to_in_edge(e);
  const NodeId v = graph_.out_target(e);
  if (residual_mode_) residual_[v] += std::abs(value - contrib_[cell]);
  contrib_[cell] = value;
  if (now) {
    mark_dirty_now(v);
  } else {
    mark_dirty(v);
  }
  if (channel_ != nullptr) channel_->ack(e, seq);
  return true;
}

void DistributedPagerank::prepare_fault_state() {
  const NodeId n = graph_.num_nodes();
  if (plan_ != nullptr) {
    const PeerId num_peers = placement_.num_peers();
    crashed_until_.assign(num_peers, 0);
    needs_recovery_.assign(num_peers, false);
    docs_by_peer_.assign(num_peers, {});
    for (NodeId v = 0; v < n; ++v) {
      docs_by_peer_[placement_.peer_of(v)].push_back(v);
    }
    if (plan_->config().acked_delivery) {
      channel_ = std::make_unique<ReliableChannel>(ReliableChannel::Config{
          plan_->config().ack_timeout_passes,
          plan_->config().retry_backoff_cap,
          plan_->config().retry_max_attempts});
      pending_seq_.assign(graph_.num_edges(), 0);
    }
  }
  if ((plan_ != nullptr || membership_ != nullptr) && replicas_ != nullptr &&
      !replicas_->empty()) {
    // Replicas double as the rank store crash recovery (fault plan) and
    // crash-range reconstruction (membership) restore from.
    replica_value_.assign(n, options_.initial_rank);
  }
  // Periodic validation re-uses the mass ledger for the fault-free
  // conservation identity — only worth feeding when contracts are
  // compiled in (validate_state() is a no-op otherwise).
  const bool audit_for_validation =
      options_.validate_every_n_passes != 0 && contracts::enabled();
  if (plan_ != nullptr || membership_ != nullptr || audit_enabled_ ||
      audit_for_validation) {
    auditor_ =
        std::make_unique<MassAuditor>(graph_, options_.initial_rank);
  }
  // The audit's repair pass and the membership handoffs both need to map
  // an out-edge back to its source document.
  if (audit_enabled_ || membership_ != nullptr) {
    edge_src_.resize(graph_.num_edges());
    for (NodeId u = 0; u < n; ++u) {
      for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u);
           ++e) {
        edge_src_[e] = u;
      }
    }
  }
}

void DistributedPagerank::crash_peer(PeerId p, std::uint64_t pass) {
  ++crashes_seen_;
  const std::uint32_t downtime =
      std::max<std::uint32_t>(1, plan_->config().crash_downtime_passes);
  crashed_until_[p] = pass + downtime;
  needs_recovery_[p] = true;
  if (tracer_ != nullptr) {
    tracer_->instant("peer.crash", "fault", p,
                     {{"pass", static_cast<double>(pass)},
                      {"downtime", static_cast<double>(downtime)}});
  }

  wipe_sender_state(p);
  // Receiver-side state lost: p's stored contributions (the cells feeding
  // its documents). Values still parked at live senders survive.
  for (const NodeId v : docs_by_peer_[p]) wipe_receiver_cells(v);
}

void DistributedPagerank::wipe_sender_state(PeerId p) {
  // Sender-side state lost: every update p had parked for offline
  // destinations vanishes with it.
  for (PeerId q = 0; q < deferred_by_peer_.size(); ++q) {
    auto& entries = deferred_by_peer_[q];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].second == p) {
        const EdgeId e = entries[i].first;
        pending_[e] = false;
        --total_pending_;
        if (auditor_ != nullptr) auditor_->on_known_loss(pending_value_[e]);
        if (tracer_ != nullptr && pending_trace_[e] != obs::kNoTrace) {
          tracer_->async_end(pending_trace_[e], "crash.loss", "fault", p,
                             {});
          pending_trace_[e] = obs::kNoTrace;
        }
      } else {
        entries[kept++] = entries[i];
      }
    }
    entries.resize(kept);
  }
  // In-flight retransmission records from p are lost too (delayed
  // messages already on the wire survive — they are in the network, not
  // in p's memory).
  if (channel_ != nullptr) {
    for (const auto& lost : channel_->forget_sender(p)) {
      if (auditor_ != nullptr) auditor_->on_known_loss(lost.value);
      if (tracer_ != nullptr && lost.trace != obs::kNoTrace) {
        tracer_->async_end(lost.trace, "crash.loss", "fault", p, {});
      }
    }
  }
}

void DistributedPagerank::wipe_receiver_cells(NodeId v) {
  const auto slots = graph_.in_to_out_edge(v);
  const EdgeId base = graph_.in_edge_begin(v);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!pending_[slots[i]] && auditor_ != nullptr) {
      auditor_->on_known_loss(contrib_[base + i]);
    }
    contrib_[base + i] = 0.0;
  }
}

void DistributedPagerank::recover_peer(PeerId p,
                                       const std::vector<bool>& presence,
                                       PassStats& stats) {
  needs_recovery_[p] = false;
  if (tracer_ != nullptr) tracer_->instant("peer.recover", "fault", p, {});
  // Step 1: restore document ranks — from a live replica copy where one
  // exists (one fetch message per document), from the initial value
  // otherwise.
  for (const NodeId v : docs_by_peer_[p]) {
    bool restored = false;
    if (!replica_value_.empty()) {
      for (const PeerId rp : replicas_->replicas_of(v)) {
        if (presence[rp] && reachable(rp, p)) {
          ranks_[v] = replica_value_[v];
          meter_.record_message(PagerankUpdate::kWireBytes);
          ++replica_restores_;
          ++recovery_messages_;
          restored = true;
          break;
        }
      }
    }
    if (!restored) ranks_[v] = options_.initial_rank;
    ++recovered_docs_;
    ++stats.recovered_docs;
  }
  // Step 2: rebuild the contribution store by re-requesting each in-link
  // source's current contribution. Ranks were all restored above, so
  // same-peer sources are consistent regardless of document order.
  for (const NodeId v : docs_by_peer_[p]) {
    const auto sources = graph_.in_neighbors(v);
    const auto slots = graph_.in_to_out_edge(v);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const NodeId u = sources[i];
      const EdgeId e = slots[i];
      const PeerId pu = placement_.peer_of(u);
      if (pu != p && pending_[e]) {
        // The sender holds a parked (fresher) value for this edge; the
        // outbox drain later this pass delivers it.
        continue;
      }
      if (pu != p && (!presence[pu] || !reachable(pu, p))) {
        // Source unreachable: the cell stays empty until the source's
        // next emission, its outbox, or the mass audit repairs it.
        continue;
      }
      const double c =
          ranks_[u] / static_cast<double>(graph_.out_degree(u));
      contrib_[graph_.in_edge_begin(v) + i] = c;
      if (auditor_ != nullptr) auditor_->on_emit(e, c);
      if (channel_ != nullptr) {
        const std::uint32_t seq = channel_->next_seq(e);
        (void)channel_->accept(e, seq);
        channel_->ack(e, seq);
      }
      if (pu == p) {
        meter_.record_local_update();
        ++stats.local_updates;
      } else {
        // One pull: the re-request out, the contribution back.
        meter_.record_resend(PagerankUpdate::kWireBytes);
        meter_.record_message(PagerankUpdate::kWireBytes,
                              send_hops(pu, p, v));
        ++recovery_messages_;
      }
    }
    // A rebuilt document must recompute promptly whatever its residual
    // history says: its cells were just rewritten wholesale.
    if (residual_mode_) {
      residual_[v] = std::numeric_limits<double>::infinity();
    }
    mark_dirty_now(v);
  }
}

void DistributedPagerank::drain_gave_up() {
  if (channel_ == nullptr) return;
  for (const auto& g : channel_->take_gave_up()) {
    if (auditor_ != nullptr) auditor_->on_known_loss(g.value);
    if (tracer_ != nullptr && g.trace != obs::kNoTrace) {
      tracer_->async_end(g.trace, "net.gave_up", "net",
                         static_cast<PeerId>(g.dest), {});
    }
  }
}

void DistributedPagerank::apply_membership(
    const MembershipCoordinator::PassPlan& mplan, std::uint64_t pass,
    PassStats& stats) {
  const std::vector<bool>& presence = membership_->presence();

  // 1. Fail-stop crashes: the peer's sender-side outbox state,
  //    retransmission records and stored contribution cells vanish.
  //    Ownership of its documents stays frozen on the dead id until the
  //    detector's verdict (the coordinator holds the range back), so
  //    parked updates addressed to it stay correctly filed meanwhile.
  for (const PeerId p : mplan.crashes) {
    ++crashes_seen_;
    ++stats.crashes;
    if (tracer_ != nullptr) {
      tracer_->instant("peer.crash", "fault", p,
                       {{"pass", static_cast<double>(pass)}});
    }
    wipe_sender_state(p);
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (placement_.peer_of(v) == p) wipe_receiver_cells(v);
    }
  }

  // 2. Graceful leavers: in-flight sender responsibility moves to the
  //    ring heir along with the documents (§3.1 "notify before
  //    departing", extended to permanent departure). Parked entries are
  //    re-labelled to the peer now owning each edge's source.
  for (const auto& [leaver, heir] : mplan.leaves) {
    for (auto& entries : deferred_by_peer_) {
      for (auto& [e, src] : entries) {
        if (src == leaver) src = placement_.peer_of(edge_src_[e]);
      }
    }
    if (channel_ != nullptr) channel_->reassign_sender(leaver, heir);
  }

  // 3. Declared dead: the net layer stops waiting. Parked updates
  //    addressed to the dead peer are evicted (the Outbox dropped_dead
  //    exit) and the channel abandons retransmission (gave_up) — both
  //    losses are audited so the quiescence repair re-injects the mass.
  for (const PeerId d : mplan.declared_dead) {
    auto& entries = deferred_by_peer_[d];
    for (const auto& [e, src] : entries) {
      pending_[e] = false;
      --total_pending_;
      ++outbox_dropped_dead_;
      if (auditor_ != nullptr) auditor_->on_known_loss(pending_value_[e]);
      if (tracer_ != nullptr && pending_trace_[e] != obs::kNoTrace) {
        tracer_->async_end(pending_trace_[e], "outbox.dropped_dead", "net",
                           d, {});
        pending_trace_[e] = obs::kNoTrace;
      }
    }
    entries.clear();
    if (channel_ != nullptr) (void)channel_->give_up_on_dest(d);
  }
  drain_gave_up();

  // 4. Handoffs. Phase A restores every reconstructed document's rank
  //    first (from a live replica copy where one exists), so phase B's
  //    cell rebuild reads consistent source ranks whatever the order of
  //    documents inside the moved range — recover_peer's two-phase
  //    shape.
  stats.handoff_docs += mplan.handoffs.size();
  handoff_docs_ += mplan.handoffs.size();
  using Reason = MembershipCoordinator::Handoff::Reason;
  for (const auto& h : mplan.handoffs) {
    if (h.reason != Reason::kReconstruct) {
      // Live-to-live transfer: the new owner pulls (join) or the leaver
      // pushes (leave) the document's rank and its stored contribution
      // cells in one bulk message; the values themselves are already
      // correct, so only traffic and dirty bookkeeping change.
      const std::size_t cells = graph_.in_neighbors(h.doc).size();
      meter_.record_batch(1 + cells, options_.batch_payload_bytes,
                          options_.batch_header_bytes);
      continue;
    }
    bool restored = false;
    if (!replica_value_.empty()) {
      for (const PeerId rp : replicas_->replicas_of(h.doc)) {
        if (presence[rp] && reachable(rp, h.to)) {
          ranks_[h.doc] = replica_value_[h.doc];
          meter_.record_message(PagerankUpdate::kWireBytes);
          ++replica_restores_;
          ++recovery_messages_;
          restored = true;
          break;
        }
      }
    }
    if (!restored) ranks_[h.doc] = options_.initial_rank;
    ++recovered_docs_;
    ++stats.recovered_docs;
  }
  for (const auto& h : mplan.handoffs) {
    if (h.reason != Reason::kReconstruct) continue;
    const NodeId v = h.doc;
    const PeerId owner = h.to;
    const auto sources = graph_.in_neighbors(v);
    const auto slots = graph_.in_to_out_edge(v);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const NodeId u = sources[i];
      const EdgeId e = slots[i];
      const PeerId pu = placement_.peer_of(u);
      if (pu != owner && pending_[e]) {
        // A fresher value waits in the sender's outbox; the drain later
        // this pass delivers it (re-filed to the new owner below).
        continue;
      }
      if (pu != owner && (!presence[pu] || !reachable(pu, owner))) {
        // Source unreachable: the cell stays empty until the source's
        // next emission or the quiescence mass repair.
        continue;
      }
      const double c = ranks_[u] / static_cast<double>(graph_.out_degree(u));
      contrib_[graph_.in_edge_begin(v) + i] = c;
      if (auditor_ != nullptr) auditor_->on_emit(e, c);
      if (channel_ != nullptr) {
        const std::uint32_t seq = channel_->next_seq(e);
        (void)channel_->accept(e, seq);
        channel_->ack(e, seq);
      }
      if (pu == owner) {
        meter_.record_local_update();
        ++stats.local_updates;
      } else {
        // One pull: the re-request out, the contribution back.
        meter_.record_resend(PagerankUpdate::kWireBytes);
        meter_.record_message(PagerankUpdate::kWireBytes);
        ++recovery_messages_;
      }
    }
    if (residual_mode_) {
      residual_[v] = std::numeric_limits<double>::infinity();
    }
    mark_dirty_now(v);
  }

  // 5. Re-file parked entries whose target changed owner: the outbox
  //    files every parked edge under the peer owning its target
  //    (validate_state's invariant), and that peer just changed for the
  //    moved ranges. Only the old owners' lists can hold stale filings.
  if (!mplan.handoffs.empty()) {
    std::vector<PeerId> affected;
    affected.reserve(mplan.handoffs.size());
    for (const auto& h : mplan.handoffs) affected.push_back(h.from);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    for (const PeerId from : affected) {
      auto& entries = deferred_by_peer_[from];
      std::size_t kept = 0;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const PeerId owner =
            placement_.peer_of(graph_.out_target(entries[i].first));
        if (owner == from) {
          entries[kept++] = entries[i];
        } else {
          deferred_by_peer_[owner].push_back(entries[i]);
        }
      }
      entries.resize(kept);
    }
  }
}

void DistributedPagerank::deliver_delayed(std::uint64_t pass,
                                          const std::vector<bool>& presence,
                                          PassStats& stats) {
  auto it = delayed_.begin();
  while (it != delayed_.end() && it->first <= pass) {
    for (const DelayedMsg& m : it->second) {
      const NodeId v = graph_.out_target(m.edge);
      const PeerId pv = placement_.peer_of(v);
      if (presence[pv] && reachable(m.src, pv)) {
        // Traffic was billed at send time.
        const bool applied = apply_update(m.edge, m.value, m.seq, /*now=*/true);
        trace_terminal(m.trace, applied, pv);
      } else {
        park(m.edge, m.src, pv, m.value, m.seq, m.trace, stats);
      }
    }
    delayed_total_ -= it->second.size();
    it = delayed_.erase(it);
  }
}

void DistributedPagerank::process_retries(std::uint64_t pass,
                                          const std::vector<bool>& presence,
                                          PassStats& stats) {
  if (channel_ == nullptr) return;
  const std::uint64_t before = channel_->retransmissions();
  for (auto& pend : channel_->take_due(pass)) {
    const EdgeId e = pend.slot;
    const NodeId v = graph_.out_target(e);
    const PeerId pv = placement_.peer_of(v);
    if (!presence[pv] || !reachable(pend.src, pv)) {
      // Destination offline or partitioned: hand the message to the §3.1
      // store-and-resend outbox instead of burning retries.
      park(e, pend.src, pv, pend.value, pend.seq, pend.trace, stats);
      continue;
    }
    const SendFate fate = plan_->fate_for_send();
    meter_.record_resend(PagerankUpdate::kWireBytes);
    if (pend.trace != obs::kNoTrace) {
      tracer_->async_step(pend.trace, "net.retransmit", "net", pend.src,
                          {{"attempt", static_cast<double>(pend.attempt + 1)}});
    }
    if (fate.dropped) {
      ++dropped_;
      if (pend.trace != obs::kNoTrace) {
        tracer_->async_step(pend.trace, "net.drop", "fault", pv, {});
      }
      pend.attempt += 1;  // exponential backoff grows
      channel_->track(pend, pass);
    } else {
      // Retransmissions are point-to-point recovery sends: they skip the
      // delay model; duplicates only cost traffic.
      if (fate.duplicated) {
        meter_.record_resend(PagerankUpdate::kWireBytes);
        ++duplicated_;
      }
      const bool applied = apply_update(e, pend.value, pend.seq, /*now=*/true);
      trace_terminal(pend.trace, applied, pv);
    }
  }
  stats.retransmissions += channel_->retransmissions() - before;
  // Records whose retry budget ran out during re-track above reached the
  // gave_up terminal outcome: account the loss now, not at quiescence.
  drain_gave_up();
}

void DistributedPagerank::build_effective(std::vector<double>& out) const {
  // Effective value per edge: the applied cell (permuted back from its
  // in-CSR position to the out-edge id the ledger is keyed by), or the
  // parked outbox value for edges still waiting on an offline
  // destination.
  const EdgeId m = graph_.num_edges();
  out.resize(m);
  for (EdgeId e = 0; e < m; ++e) out[e] = contrib_[graph_.out_to_in_edge(e)];
  for (const auto& entries : deferred_by_peer_) {
    for (const auto& [e, src] : entries) {
      out[e] = pending_value_[e];
    }
  }
}

bool DistributedPagerank::audit_and_repair(const std::vector<bool>& presence,
                                           PassStats& stats) {
  build_effective(effective_scratch_);
  const MassAuditReport report =
      auditor_->audit(effective_scratch_, kAuditSlack);
  if (report.conserved(audit_tolerance_)) {
    last_audit_ = report;
    return true;
  }
  // Proportional re-injection: re-send exactly the contributions the
  // ledger says went missing, then keep iterating.
  ++repair_rounds_;
  for (const EdgeId e :
       auditor_->leaking_edges(effective_scratch_, kAuditSlack)) {
    const NodeId v = graph_.out_target(e);
    const PeerId pv = placement_.peer_of(v);
    const PeerId pu = placement_.peer_of(edge_src_[e]);
    const double value = auditor_->expected(e);
    const std::uint32_t seq =
        channel_ != nullptr ? channel_->next_seq(e) : 0;
    if (presence[pv] && reachable(pu, pv)) {
      (void)apply_update(e, value, seq, /*now=*/false);
      meter_.record_resend(PagerankUpdate::kWireBytes);
      ++repair_messages_;
      ++stats.repair_messages;
    } else {
      park(e, pu, pv, value, seq, obs::kNoTrace, stats);
    }
  }
  return false;
}

void DistributedPagerank::prepare_parallel_state() {
  // The batched exchange applies updates outside the sequential emission
  // order. That is invisible on clean and churn-only runs — every write
  // lands in its own per-edge cell and every counter is a commutative
  // sum — but fault plans, tracers, replicas, overlays, dynamic
  // membership and the audit all consume ordered state (RNG draws, cache
  // warms, trace event order, stale-owner counts), so those
  // configurations keep the sequential sender-major exchange.
  batched_exchange_ = plan_ == nullptr && tracer_ == nullptr &&
                      replicas_ == nullptr && ring_ == nullptr &&
                      membership_ == nullptr && !audit_enabled_;
  const std::uint32_t threads = std::max<std::uint32_t>(1, options_.threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
  const PeerId num_peers = placement_.num_peers();
  peer_dirty_.resize(num_peers);
  peer_scratch_.resize(num_peers);
  if (batched_exchange_) {
    if (pool_ == nullptr && !residual_mode_) {
      // Sequential fifo runs take the fused pass_sequential path: flat
      // scratch sized once here, so no pass ever grows an allocation.
      seq_fast_ = true;
      const NodeId n = graph_.num_nodes();
      seq_docs_.resize(n);
      seq_acc_.resize(n);
      seq_senders_.resize(n);
      seq_count_.assign(num_peers, 0);
      seq_seg_end_.assign(num_peers, 0);
      seq_sender_pos_.reserve(static_cast<std::size_t>(num_peers) + 1);
      dst_count32_.assign(num_peers, 0);
      touched_dsts_.reserve(num_peers);
      simd_level_ = simd::active_level();
      return;
    }
    dst_incoming_.resize(num_peers);
    dst_marked_.resize(num_peers);
    slot_scratch_.resize(pool_ != nullptr ? pool_->concurrency() : 1);
    for (auto& ws : slot_scratch_) {
      ws.bucket.resize(num_peers);
      if (residual_mode_) ws.bucket_delta.resize(num_peers);
    }
  }
}

template <typename Fn>
void DistributedPagerank::parallel_region(std::size_t shards, Fn&& fn) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < shards; ++i) fn(i, 0);
    return;
  }
  pool_->run(static_cast<unsigned>(shards),
             [&fn](unsigned shard, unsigned slot) { fn(shard, slot); });
}

void DistributedPagerank::bucket_dirty() {
  for (const PeerId p : active_peers_) peer_dirty_[p].clear();
  active_peers_.clear();
  for (const NodeId v : dirty_) {
    const PeerId p = placement_.peer_of(v);
    if (peer_dirty_[p].empty()) active_peers_.push_back(p);
    peer_dirty_[p].push_back(v);
  }
  std::sort(active_peers_.begin(), active_peers_.end());
  // Determinism precondition for every per-peer merge below: results are
  // folded in this order, so it must be strictly sorted (no duplicates).
  DPRANK_ASSERT(std::adjacent_find(active_peers_.begin(),
                                   active_peers_.end(),
                                   std::greater_equal<PeerId>()) ==
                    active_peers_.end(),
                "pagerank",
                "active peer list is not strictly sorted; the parallel "
                "merge order would be scheduler-dependent");
  for (const PeerId p : active_peers_) {
    PeerScratch& s = peer_scratch_[p];
    s.docs_recomputed = 0;
    s.max_rel = 0.0;
    s.deferred_calls = 0;
    s.deferred_docs = 0;
    s.senders.clear();
    s.kept_dirty.clear();
    s.targets.clear();
    s.target_deltas.clear();
    s.buckets.clear();
    s.parked.clear();
  }
}

void DistributedPagerank::compute_peer(PeerId p,
                                       const std::vector<bool>& presence,
                                       bool track_replica_values) {
  if (!presence[p]) return;  // docs stay dirty; re-marked at the merge
  PeerScratch& s = peer_scratch_[p];
  std::vector<NodeId>& bucket = peer_dirty_[p];
  const double d = options_.damping;
  const double base = 1.0 - d;
  // Residual schedule: order the bucket by accumulated |Δcontribution|
  // so one recompute coalesces every update behind the largest pending
  // mass, and decide whether this pass may defer the low-residual tail.
  // No deferral once the iteration is within epsilon of converging — the
  // endgame runs exhaustively, exactly like fifo.
  const bool may_defer = residual_mode_ && prev_max_rel_ > options_.epsilon;
  const double cutoff =
      may_defer ? options_.residual_defer_ratio * prev_max_rel_ : 0.0;
  if (residual_mode_) {
    std::sort(bucket.begin(), bucket.end(), [&](NodeId a, NodeId b) {
      const double ra = residual_[a];
      const double rb = residual_[b];
      return ra != rb ? ra > rb : a < b;
    });
  }
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    const NodeId v = bucket[i];
    if (may_defer && i != 0 && defer_age_[v] < options_.residual_max_defer) {
      // The damped residual bounds this document's possible rank change;
      // relative to its current rank it is the analogue of the epsilon
      // test. Every peer processes its top document (i == 0) and the age
      // cap forces periodic progress, so deferral cannot starve anyone.
      const double denom = ranks_[v] > 0 ? ranks_[v] : -ranks_[v];
      const double relres =
          denom > 0 ? d * residual_[v] / denom : d * residual_[v];
      if (relres < cutoff) {
        ++defer_age_[v];
        ++s.deferred_docs;
        s.kept_dirty.push_back(v);  // in_dirty_ stays set
        continue;
      }
    }
    in_dirty_[v] = 0;
    double acc = 0.0;
    const EdgeId cells_end = graph_.in_edge_end(v);
    for (EdgeId c = graph_.in_edge_begin(v); c < cells_end; ++c) {
      acc += contrib_[c];
    }
    const double newrank = base + d * acc;
    const double rel = relative_change(ranks_[v], newrank);
    ranks_[v] = newrank;
    ++s.docs_recomputed;
    s.max_rel = std::max(s.max_rel, rel);
    if (track_replica_values) {
      // A live replica mirrors the recomputation (§2.3: replicas
      // receive the same updates) — the copy crash recovery restores.
      for (const PeerId rp : replicas_->replicas_of(v)) {
        if (presence[rp]) {
          replica_value_[v] = newrank;
          break;
        }
      }
    }
    if (!residual_mode_) {
      if (rel > options_.epsilon && graph_.out_degree(v) != 0) {
        s.senders.push_back(v);
      }
      continue;
    }
    residual_[v] = 0.0;
    defer_age_[v] = 0;
    if (graph_.out_degree(v) == 0) continue;
    // Emission gate against the value the out-links actually hold (the
    // last emission), not last pass's rank — a deferred document's
    // coalesced change is judged in full.
    const double rel_sent = relative_change(last_sent_[v], newrank);
    if (rel_sent > eff_epsilon_) {
      s.senders.push_back(v);
      last_sent_[v] = newrank;
    } else if (rel_sent > options_.epsilon) {
      // Cleared epsilon but not this pass's adaptive threshold: hold the
      // emission (stay dirty) instead of dropping it — it goes out once
      // the schedule tightens.
      in_dirty_[v] = 1;
      s.kept_dirty.push_back(v);
    }
  }
}

void DistributedPagerank::exchange_batched(const std::vector<bool>& presence,
                                           PassStats& stats,
                                           obs::Histogram* batch_hist) {
  // Emission, one shard per source peer: workers write only per-edge
  // cells (contrib_ / pending_ / pending_value_ — each edge has a unique
  // emitting source) and their own peer/slot scratch. Targets are
  // grouped into one bucket per destination peer — §4.6.1's "collect
  // together all the pagerank messages going towards these documents".
  parallel_region(active_peers_.size(), [&](std::size_t i, unsigned slot) {
    const PeerId p = active_peers_[i];
    PeerScratch& s = peer_scratch_[p];
    if (s.senders.empty()) return;
    SlotScratch& ws = slot_scratch_[slot];
    for (const NodeId u : s.senders) {
      const double c = ranks_[u] / static_cast<double>(graph_.out_degree(u));
      for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u);
           ++e) {
        const NodeId v = graph_.out_target(e);
        const PeerId pv = placement_.peer_of(v);
        // Ledger write (validation runs only): per-edge cell, same
        // disjointness as contrib_, so workers never collide.
        if (auditor_ != nullptr) auditor_->on_emit(e, c);
        if (presence[pv]) {
          const EdgeId cell = graph_.out_to_in_edge(e);
          auto& b = ws.bucket[pv];
          if (b.empty()) ws.touched.push_back(pv);
          b.push_back(v);
          if (residual_mode_) {
            // |Δcontribution| travels with the target; the destination
            // shard folds it into residual_ (it owns v's slot).
            ws.bucket_delta[pv].push_back(c > contrib_[cell]
                                              ? c - contrib_[cell]
                                              : contrib_[cell] - c);
          }
          contrib_[cell] = c;
        } else {
          // park(), minus the shared bookkeeping (merged below).
          pending_value_[e] = c;
          ++s.deferred_calls;
          if (!pending_[e]) {
            pending_[e] = 1;
            s.parked.emplace_back(pv, e);
          }
        }
      }
    }
    std::sort(ws.touched.begin(), ws.touched.end());
    for (const PeerId dst : ws.touched) {
      auto& b = ws.bucket[dst];
      s.buckets.push_back(
          {dst, s.targets.size(), s.targets.size() + b.size()});
      s.targets.insert(s.targets.end(), b.begin(), b.end());
      b.clear();
      if (residual_mode_) {
        auto& bd = ws.bucket_delta[dst];
        s.target_deltas.insert(s.target_deltas.end(), bd.begin(), bd.end());
        bd.clear();
      }
    }
    ws.touched.clear();
  });

  // Merge, in sorted source-peer order: fold counters, bill traffic in
  // bulk (same totals as the per-update calls), park deferred edges and
  // index each bucket under its destination for the apply region.
  std::uint64_t delivered_total = 0;
  std::uint64_t local_total = 0;
  for (const PeerId p : active_peers_) {
    PeerScratch& s = peer_scratch_[p];
    if (contracts::enabled()) {
      // Determinism precondition: each shard's buckets must be strictly
      // sorted by destination and tile the target list contiguously —
      // the apply region indexes targets[begin, end) through them.
      [[maybe_unused]] std::size_t off = 0;
      [[maybe_unused]] PeerId prev_dst = 0;
      [[maybe_unused]] bool first = true;
      for (const PeerScratch::Bucket& b : s.buckets) {
        DPRANK_ASSERT(first || b.dst > prev_dst, "pagerank",
                      "exchange buckets are not strictly sorted by "
                      "destination peer");
        DPRANK_ASSERT(b.begin == off && b.end >= b.begin, "pagerank",
                      "exchange bucket ranges do not tile the target list");
        off = b.end;
        prev_dst = b.dst;
        first = false;
      }
      DPRANK_ASSERT(off == s.targets.size(), "pagerank",
                    "exchange buckets do not cover every emitted target");
    }
    stats.messages_deferred += s.deferred_calls;
    for (const auto& [dst, e] : s.parked) {
      deferred_by_peer_[dst].emplace_back(e, p);
      ++total_pending_;
    }
    std::uint64_t cross_msgs = 0;  // wire messages this peer sent
    for (const PeerScratch::Bucket& b : s.buckets) {
      const std::uint64_t k = b.end - b.begin;
      if (b.dst == p) {
        local_total += k;
        stats.local_updates += k;
      } else {
        delivered_total += k;
        if (options_.coalesce_wire) {
          meter_.record_batch(k, options_.batch_payload_bytes,
                              options_.batch_header_bytes);
          ++cross_msgs;
        } else {
          cross_msgs += k;
        }
        if (batch_hist != nullptr) batch_hist->record(static_cast<double>(k));
      }
      if (dst_incoming_[b.dst].empty()) active_dsts_.push_back(b.dst);
      dst_incoming_[b.dst].push_back({p, b.begin, b.end});
    }
    stats.messages_sent += cross_msgs;
    stats.max_peer_messages = std::max(stats.max_peer_messages, cross_msgs);
  }
  if (!options_.coalesce_wire && delivered_total != 0) {
    meter_.record_messages(delivered_total, PagerankUpdate::kWireBytes);
  }
  if (local_total != 0) meter_.record_local_updates(local_total);
  outbox_peak_ = std::max(outbox_peak_, total_pending_);

  // Apply-side marking, one shard per destination peer: a destination
  // owns its documents' dirty flags, so shards never collide; the merge
  // appends each destination's newly-marked documents in sorted order.
  std::sort(active_dsts_.begin(), active_dsts_.end());
  parallel_region(active_dsts_.size(), [&](std::size_t i, unsigned) {
    const PeerId dst = active_dsts_[i];
    auto& marked = dst_marked_[dst];
    marked.clear();
    for (const DstSlice& slice : dst_incoming_[dst]) {
      const auto& targets = peer_scratch_[slice.src].targets;
      if (residual_mode_) {
        // Fold the emitted |Δcontribution| into the destinations'
        // residuals. Slices arrive in sorted source-peer order and each
        // slice in emission order, so the floating-point accumulation
        // order is fixed regardless of thread count.
        const auto& deltas = peer_scratch_[slice.src].target_deltas;
        for (std::size_t t = slice.begin; t < slice.end; ++t) {
          residual_[targets[t]] += deltas[t];
        }
      }
      for (std::size_t t = slice.begin; t < slice.end; ++t) {
        const NodeId v = targets[t];
        if (!in_dirty_[v]) {
          in_dirty_[v] = 1;
          marked.push_back(v);
        }
      }
    }
  });
  for (const PeerId dst : active_dsts_) {
    next_dirty_.insert(next_dirty_.end(), dst_marked_[dst].begin(),
                       dst_marked_[dst].end());
    dst_incoming_[dst].clear();
  }
  active_dsts_.clear();
}

void DistributedPagerank::pass_sequential(const std::vector<bool>& presence,
                                          bool all_present, PassStats& stats,
                                          obs::Histogram* batch_hist) {
  // Group dirty_ peer-major with a counting sort over flat arrays: count
  // per peer, carve segments in ascending peer order, stable scatter.
  // Segment order and intra-segment order match bucket_dirty() exactly,
  // so the recompute below visits documents in compute_peer's order.
  active_peers_.clear();
  for (const NodeId v : dirty_) {
    const PeerId p = placement_.peer_of(v);
    if (seq_count_[p]++ == 0) active_peers_.push_back(p);
  }
  std::sort(active_peers_.begin(), active_peers_.end());
  std::uint64_t off = 0;
  for (const PeerId p : active_peers_) {
    seq_seg_end_[p] = off;  // scatter cursor, starts at the segment base
    off += seq_count_[p];
  }
  for (const NodeId v : dirty_) {
    seq_docs_[seq_seg_end_[placement_.peer_of(v)]++] = v;
  }
  // seq_seg_end_[p] now sits one past p's segment.

  // Phase 1: recompute, split fold-then-epilogue per segment. The fold
  // kernel (common/simd.hpp) writes each document's cell sum into
  // seq_acc_ — its lane-refill path computes the sums out of document
  // order, but every per-document fold is the exact left-to-right scalar
  // order, so seq_acc_ is bit-identical either way. The epilogue then
  // walks the segment strictly in bucket order, keeping the observable
  // sequence (rank writes, max fold, sender selection) identical to the
  // pre-vectorization loop.
  const double d = options_.damping;
  const double base = 1.0 - d;
  const double eps = options_.epsilon;
  const simd::Level level = simd_level_;
  const double* cells = contrib_.data();
  const EdgeId* offsets = graph_.in_offsets_data();
  const float* inv_deg = graph_.inv_out_degrees().data();
  double max_rel = 0.0;
  std::uint64_t recomputed = 0;
  std::uint64_t sender_total = 0;
  seq_sender_pos_.clear();
  for (const PeerId p : active_peers_) {
    seq_sender_pos_.push_back(sender_total);
    const std::uint64_t seg_end = seq_seg_end_[p];
    const std::uint64_t seg_begin = seg_end - seq_count_[p];
    seq_count_[p] = 0;  // ready for the next pass
    if (!all_present && !presence[p]) {
      // Docs stay dirty (flags stay set); requeued for the next pass.
      next_dirty_.insert(next_dirty_.end(), seq_docs_.data() + seg_begin,
                         seq_docs_.data() + seg_end);
      continue;
    }
    simd::fold_cells(level, cells, offsets, seq_docs_.data() + seg_begin,
                     seg_end - seg_begin, seq_acc_.data() + seg_begin);
    for (std::uint64_t i = seg_begin; i < seg_end; ++i) {
      const NodeId v = seq_docs_[i];
      in_dirty_[v] = 0;
      const double newrank = base + d * seq_acc_[i];
      const double rel = relative_change(ranks_[v], newrank);
      ranks_[v] = newrank;
      if (rel > max_rel) max_rel = rel;
      // inv_out_degree(v) != 0 is exactly out_degree(v) != 0 (the
      // stored inverse is 0 only for degree 0), one 4-byte load.
      if (rel > eps && inv_deg[v] != 0.0f) seq_senders_[sender_total++] = v;
    }
    recomputed += seg_end - seg_begin;
  }
  seq_sender_pos_.push_back(sender_total);
  stats.docs_recomputed = recomputed;
  stats.max_rel_change = max_rel;

  // Phase 2: emission, templated on the all-present fast case so clean
  // runs never consult the presence mask per edge.
  if (all_present) {
    exchange_sequential<true>(presence, stats, batch_hist);
  } else {
    exchange_sequential<false>(presence, stats, batch_hist);
  }
}

template <bool kAllPresent>
void DistributedPagerank::exchange_sequential(
    const std::vector<bool>& presence, PassStats& stats,
    obs::Histogram* batch_hist) {
  // Mirror of exchange_batched for the sequential fifo case: identical
  // emission order (source peers ascending, senders in recompute order),
  // identical billing order (per source, destinations ascending), same
  // counters — but each update is one inline cell write plus a plain
  // per-destination tally instead of a materialized bucket.
  std::uint64_t delivered_total = 0;
  std::uint64_t local_total = 0;
  // Size-1 wire batches dominate incremental passes; each histogram
  // record is several atomic RMWs, so they are tallied here and recorded
  // once at the end. record_count(1.0, k) is bit-identical to k separate
  // record(1.0) calls: the values are small integers (sums stay exact)
  // and bucket/min/max updates commute.
  std::uint64_t ones = 0;
  // Narrow (32-bit) cross index when the graph carries one — half the
  // index bytes through the hottest random-access loop.
  const std::uint32_t* cross32 = graph_.out_to_in32_data();
  MassAuditor* const auditor = auditor_.get();
  for (std::size_t ai = 0; ai < active_peers_.size(); ++ai) {
    const PeerId p = active_peers_[ai];
    const std::uint64_t s_begin = seq_sender_pos_[ai];
    const std::uint64_t s_end = seq_sender_pos_[ai + 1];
    if (s_begin == s_end) continue;
    touched_dsts_.clear();
    for (std::uint64_t si = s_begin; si < s_end; ++si) {
      const NodeId u = seq_senders_[si];
      const double c = ranks_[u] / static_cast<double>(graph_.out_degree(u));
      const EdgeId out_end = graph_.out_edge_end(u);
      for (EdgeId e = graph_.out_edge_begin(u); e < out_end; ++e) {
        const NodeId v = graph_.out_target(e);
        const PeerId pv = placement_.peer_of(v);
        if (auditor != nullptr) auditor->on_emit(e, c);
        if (kAllPresent || presence[pv]) {
          const EdgeId cell = cross32 != nullptr
                                  ? static_cast<EdgeId>(cross32[e])
                                  : graph_.out_to_in_edge(e);
          contrib_[cell] = c;
          if (dst_count32_[pv]++ == 0) touched_dsts_.push_back(pv);
          if (!in_dirty_[v]) {
            in_dirty_[v] = 1;
            next_dirty_.push_back(v);
          }
        } else {
          // park(), with the bookkeeping inlined (no channel, tracer or
          // fault plan can be attached on this path).
          pending_value_[e] = c;
          ++stats.messages_deferred;
          if (!pending_[e]) {
            pending_[e] = 1;
            deferred_by_peer_[pv].emplace_back(e, p);
            ++total_pending_;
          }
        }
      }
    }
    std::sort(touched_dsts_.begin(), touched_dsts_.end());
    std::uint64_t cross_msgs = 0;  // wire messages this peer sent
    for (const PeerId dst : touched_dsts_) {
      const std::uint64_t k = dst_count32_[dst];
      dst_count32_[dst] = 0;  // ready for the next source peer
      if (dst == p) {
        local_total += k;
        stats.local_updates += k;
      } else {
        delivered_total += k;
        if (options_.coalesce_wire) {
          meter_.record_batch(k, options_.batch_payload_bytes,
                              options_.batch_header_bytes);
          ++cross_msgs;
        } else {
          cross_msgs += k;
        }
        if (batch_hist != nullptr) {
          if (k == 1) {
            ++ones;
          } else {
            batch_hist->record(static_cast<double>(k));
          }
        }
      }
    }
    stats.messages_sent += cross_msgs;
    stats.max_peer_messages = std::max(stats.max_peer_messages, cross_msgs);
  }
  if (batch_hist != nullptr && ones != 0) {
    batch_hist->record_count(1.0, ones);
  }
  if (!options_.coalesce_wire && delivered_total != 0) {
    meter_.record_messages(delivered_total, PagerankUpdate::kWireBytes);
  }
  if (local_total != 0) meter_.record_local_updates(local_total);
  outbox_peak_ = std::max(outbox_peak_, total_pending_);
}

void DistributedPagerank::deliver_deferred(const std::vector<bool>& presence,
                                           PassStats& stats) {
  const bool selective = plan_ != nullptr && plan_->partition_active();
  for (PeerId p = 0; p < deferred_by_peer_.size(); ++p) {
    auto& entries = deferred_by_peer_[p];
    if (!presence[p] || entries.empty()) continue;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto [e, src_peer] = entries[i];
      if (selective && !plan_->reachable(src_peer, p)) {
        entries[kept++] = entries[i];  // still cut off: stays parked
        continue;
      }
      const std::uint32_t seq =
          channel_ != nullptr ? pending_seq_[e] : 0;
      obs::TraceId t = obs::kNoTrace;
      if (tracer_ != nullptr) {
        t = pending_trace_[e];
        pending_trace_[e] = obs::kNoTrace;
      }
      pending_[e] = false;
      --total_pending_;
      const bool applied = apply_update(e, pending_value_[e], seq, /*now=*/true);
      const NodeId v = graph_.out_target(e);
      meter_.record_message(PagerankUpdate::kWireBytes,
                            send_hops(src_peer, p, v));
      ++stats.messages_delivered_late;
      if (t != obs::kNoTrace) {
        tracer_->async_step(t, "outbox.deliver", "net", p, {});
        trace_terminal(t, applied, p);
      }
      if (replicas_ != nullptr && !replicas_->empty()) {
        send_to_replicas(src_peer, v, presence, stats);
      }
    }
    entries.resize(kept);
  }
}

std::uint64_t DistributedPagerank::memory_bytes() const {
  const auto bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.capacity()) *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(ranks_) + bytes(contrib_) + bytes(pending_value_) +
         bytes(pending_) + bytes(pending_seq_) + bytes(in_dirty_) +
         bytes(dirty_) + bytes(next_dirty_) + bytes(seq_docs_) +
         bytes(seq_acc_) +
         bytes(seq_senders_) + bytes(seq_count_) + bytes(seq_seg_end_) +
         bytes(seq_sender_pos_) + bytes(dst_count32_) +
         bytes(touched_dsts_) + bytes(residual_) + bytes(last_sent_) +
         bytes(defer_age_);
}

void DistributedPagerank::validate_state() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "pagerank";
  const NodeId n = graph_.num_nodes();
  const EdgeId m = graph_.num_edges();
  DPRANK_INVARIANT(ranks_.size() == n, kSub,
                   "rank array does not cover the documents");
  DPRANK_INVARIANT(contrib_.size() == m, kSub,
                   "contribution store does not cover the edges");
  DPRANK_INVARIANT(pending_.size() == m && pending_value_.size() == m, kSub,
                   "outbox arrays do not cover the edges");
  DPRANK_INVARIANT(pending_seq_.empty() || pending_seq_.size() == m, kSub,
                   "parked-sequence array does not cover the edges");

  // Dirty-set integrity: the recompute queues and the membership flags
  // must agree exactly — a document queued twice would be recomputed
  // twice in one pass, and a flagged-but-unqueued document would never
  // be recomputed again. This is the precondition bucket_dirty() relies
  // on for its deterministic peer sharding.
  std::vector<std::uint8_t> queued(n, 0);
  const auto check_queue = [&](const std::vector<NodeId>& q) {
    for (const NodeId v : q) {
      DPRANK_INVARIANT(v < n, kSub, "dirty queue holds an unknown document");
      DPRANK_INVARIANT(queued[v] == 0, kSub,
                       "document " + std::to_string(v) +
                           " queued for recompute twice");
      queued[v] = 1;
      DPRANK_INVARIANT(in_dirty_[v] != 0, kSub,
                       "document " + std::to_string(v) +
                           " queued for recompute but not flagged dirty");
    }
  };
  check_queue(dirty_);
  check_queue(next_dirty_);
  std::size_t flagged = 0;
  for (NodeId v = 0; v < n; ++v) flagged += in_dirty_[v] != 0 ? 1 : 0;
  DPRANK_INVARIANT(
      flagged == dirty_.size() + next_dirty_.size(), kSub,
      "dirty flags (" + std::to_string(flagged) +
          ") disagree with the recompute queues (" +
          std::to_string(dirty_.size() + next_dirty_.size()) +
          ") — flagged-but-unqueued documents lose updates");

  // Outbox bookkeeping: pending flags, the per-destination deferred
  // lists and the counters are three views of one set of parked edges.
  std::vector<std::uint8_t> parked(m, 0);
  std::uint64_t parked_entries = 0;
  for (PeerId dest = 0; dest < deferred_by_peer_.size(); ++dest) {
    for (const auto& [e, src] : deferred_by_peer_[dest]) {
      DPRANK_INVARIANT(e < m, kSub, "parked entry holds an unknown edge");
      DPRANK_INVARIANT(parked[e] == 0, kSub,
                       "edge " + std::to_string(e) +
                           " parked in two deferred lists");
      parked[e] = 1;
      DPRANK_INVARIANT(pending_[e] != 0, kSub,
                       "edge " + std::to_string(e) +
                           " parked but not flagged pending");
      DPRANK_INVARIANT(
          placement_.peer_of(graph_.out_target(e)) == dest, kSub,
          "edge " + std::to_string(e) +
              " filed under a peer that does not own its target");
      DPRANK_INVARIANT(src < placement_.num_peers(), kSub,
                       "parked entry names an unknown sender peer");
      ++parked_entries;
    }
  }
  std::uint64_t flagged_edges = 0;
  for (EdgeId e = 0; e < m; ++e) flagged_edges += pending_[e] != 0 ? 1 : 0;
  DPRANK_INVARIANT(flagged_edges == parked_entries, kSub,
                   "outbox credit leak: " + std::to_string(flagged_edges) +
                       " edges flagged pending vs " +
                       std::to_string(parked_entries) +
                       " parked in deferred lists");
  DPRANK_INVARIANT(total_pending_ == parked_entries, kSub,
                   "outbox credit leak: pending count " +
                       std::to_string(total_pending_) + " vs " +
                       std::to_string(parked_entries) + " parked entries");
  DPRANK_INVARIANT(outbox_peak_ >= total_pending_, kSub,
                   "outbox peak understates the live pending count");

  // Residual-scheduler state: arrays cover the documents, residual mass
  // is non-negative, the defer age never escapes its cap, and any
  // document holding undigested residual is queued for a recompute (a
  // positive residual with no dirty flag would be an update the
  // scheduler lost).
  if (residual_mode_) {
    DPRANK_INVARIANT(residual_.size() == n && last_sent_.size() == n &&
                         defer_age_.size() == n,
                     kSub,
                     "residual-scheduler arrays do not cover the documents");
    for (NodeId v = 0; v < n; ++v) {
      DPRANK_INVARIANT(residual_[v] >= 0.0, kSub,
                       "negative residual at document " + std::to_string(v));
      DPRANK_INVARIANT(defer_age_[v] <= options_.residual_max_defer, kSub,
                       "defer age exceeds residual_max_defer at document " +
                           std::to_string(v));
      DPRANK_INVARIANT(!(residual_[v] > 0.0) || in_dirty_[v] != 0, kSub,
                       "document " + std::to_string(v) +
                           " holds residual mass but is not marked dirty");
    }
  }

  // Delivery-delay buffer accounting.
  std::uint64_t delayed_msgs = 0;
  for (const auto& [due, msgs] : delayed_) delayed_msgs += msgs.size();
  DPRANK_INVARIANT(delayed_msgs == delayed_total_, kSub,
                   "delay-buffer count disagrees with buffered messages");

  // Cascade into the attached subsystems: each reports under its own
  // subsystem tag, so a failure names the layer that broke.
  if (channel_ != nullptr) channel_->validate();
  graph_.validate();
  if (ring_ != nullptr) ring_->validate(/*route_samples=*/16);

  // Rank-mass conservation identity (§2.3): on fault-free runs every
  // emitted contribution is applied or parked, nothing else — the ledger
  // balances exactly. Under a fault plan or dynamic membership transient
  // leaks are expected (crash wipes, unacked drops, dropped_dead
  // evictions) until audit_and_repair re-injects them, so the identity
  // only holds at quiescence and is checked there by the audit machinery
  // instead.
  if (auditor_ != nullptr && plan_ == nullptr && membership_ == nullptr) {
    // Audit-only local (cold validation path, never gathered).
    // dprank-lint: allow(unaligned-hot-buffer)
    std::vector<double> effective;
    build_effective(effective);
    const MassAuditReport report = auditor_->audit(effective, kAuditSlack);
    DPRANK_INVARIANT(report.conserved(audit_tolerance_), kSub,
                     "rank mass leaked on a fault-free run: ratio " +
                         std::to_string(report.mass_ratio) + " across " +
                         std::to_string(report.leaking_edges) + " edge(s)");
  }
}

DistributedRunResult DistributedPagerank::run(ChurnSchedule* churn,
                                              const PassObserver& observer) {
  if (ran_) throw std::logic_error("DistributedPagerank::run: already ran");
  ran_ = true;
  if (churn != nullptr && churn->num_peers() != placement_.num_peers()) {
    throw std::invalid_argument("DistributedPagerank::run: churn peer count");
  }
  if (membership_ != nullptr && churn != nullptr) {
    throw std::invalid_argument(
        "DistributedPagerank::run: dynamic membership and a churn schedule "
        "both own the presence mask; attach one or the other");
  }
  if (membership_ != nullptr && plan_ != nullptr &&
      (!plan_->config().crashes.empty() ||
       plan_->config().crash_probability > 0.0)) {
    throw std::invalid_argument(
        "DistributedPagerank::run: fault-plan crashes are temporary "
        "(downtime + recovery) and index a static ownership map; with "
        "dynamic membership, schedule crashes as membership events");
  }
  prepare_fault_state();
  prepare_parallel_state();

  const PeerId num_peers = placement_.num_peers();
  const std::vector<bool> all_present(num_peers, true);
  const bool track_replica_values = !replica_value_.empty();
  obs::Histogram* pass_wall =
      metrics_ != nullptr ? &metrics_->histogram("pagerank.pass_wall_us")
                          : nullptr;
  obs::Histogram* batch_hist =
      metrics_ != nullptr && batched_exchange_
          ? &metrics_->histogram("pagerank.batch_size")
          : nullptr;

  DistributedRunResult result;
  for (std::uint64_t pass = 0; pass < options_.max_passes; ++pass) {
    // Telemetry measures the simulator itself (real wall time per pass),
    // never feeds the simulation.
    // dprank-analyze: allow(nondet-source) -- measures the harness only
    // dprank-lint: allow(wall-clock)
    const auto wall_start = std::chrono::steady_clock::now();
    PassStats stats;
    stats.pass = pass;
    const std::vector<bool>* presence =
        churn != nullptr ? &churn->presence_for_pass(pass) : &all_present;

    if (membership_ != nullptr) {
      // Membership pass hook: scheduled events strike, heartbeats feed
      // the detector, the ring stabilizes, ownership moves — then the
      // engine moves/wipes/rebuilds the corresponding state. The
      // coordinator's mask is the pass's base presence (a fault plan's
      // temporary effects compose on top below).
      apply_membership(membership_->begin_pass(pass), pass, stats);
      presence = &membership_->presence();
      if (contracts::enabled()) membership_->validate();
    }

    if (plan_ != nullptr) {
      // Fault-plan pass hook: partitions advance, crashes strike.
      const std::vector<PeerId> crashing = plan_->begin_pass(pass, num_peers);
      for (const PeerId p : crashing) crash_peer(p, pass);
      stats.crashes = crashing.size();
      presence_eff_ = *presence;
      for (PeerId p = 0; p < num_peers; ++p) {
        if (crashed_until_[p] > pass) presence_eff_[p] = false;
      }
      presence = &presence_eff_;
      // Crashed peers whose downtime ended and whom churn brought back
      // run recovery before any delivery touches them.
      for (PeerId p = 0; p < num_peers; ++p) {
        if (needs_recovery_[p] && presence_eff_[p]) {
          recover_peer(p, presence_eff_, stats);
        }
      }
      deliver_delayed(pass, *presence, stats);
      process_retries(pass, *presence, stats);
    }

    // Phase 0: outbox drains for peers that are present this pass.
    if (total_pending_ != 0) deliver_deferred(*presence, stats);

    // Phase 1: recompute documents that received updates, sharded by
    // owning peer (documents on absent peers stay dirty until their peer
    // returns). Workers touch only state their shard's peer owns; the
    // merge folds per-peer results in sorted peer order, so the outcome
    // is identical for every thread count.
    if (residual_mode_) {
      // This pass's emission threshold: epsilon, or — under the adaptive
      // schedule — loosened while last pass's max relative change was
      // still large, tightening back to epsilon as the run settles.
      eff_epsilon_ =
          options_.adaptive_epsilon
              ? std::max(options_.epsilon, std::min(0.05, prev_max_rel_ / 8.0))
              : options_.epsilon;
    }
    if (seq_fast_) {
      // Fused single-threaded fifo pass: grouping, recompute and
      // emission in one call over flat scratch (see pass_sequential).
      pass_sequential(*presence, churn == nullptr, stats, batch_hist);
      prev_max_rel_ = stats.max_rel_change;
    } else {
    bucket_dirty();
    parallel_region(active_peers_.size(), [&](std::size_t i, unsigned) {
      compute_peer(active_peers_[i], *presence, track_replica_values);
    });
    for (const PeerId p : active_peers_) {
      if (!(*presence)[p]) {
        // Re-marked for the next pass (in_dirty_ stayed set).
        next_dirty_.insert(next_dirty_.end(), peer_dirty_[p].begin(),
                           peer_dirty_[p].end());
        continue;
      }
      const PeerScratch& s = peer_scratch_[p];
      stats.docs_recomputed += s.docs_recomputed;
      stats.max_rel_change = std::max(stats.max_rel_change, s.max_rel);
      stats.docs_deferred += s.deferred_docs;
      if (!s.kept_dirty.empty()) {
        // Deferred tail + held emissions: still flagged dirty, queued for
        // the next pass in sorted peer order.
        next_dirty_.insert(next_dirty_.end(), s.kept_dirty.begin(),
                           s.kept_dirty.end());
      }
    }
    prev_max_rel_ = stats.max_rel_change;

    // Phase 2: senders emit their new contribution on every out-link;
    // visible next pass (or parked in the outbox for absent peers).
    if (batched_exchange_) {
      exchange_batched(*presence, stats, batch_hist);
    } else {
    // Sequential sender-major exchange: fault fates, overlay cache warms
    // and trace events must observe emissions in one canonical order —
    // peers ascending, each peer's senders in recompute order.
    for (const PeerId pu : active_peers_) {
     for (const NodeId u : peer_scratch_[pu].senders) {
      const double c = ranks_[u] / static_cast<double>(graph_.out_degree(u));
      for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u);
           ++e) {
        const NodeId v = graph_.out_target(e);
        const PeerId pv = placement_.peer_of(v);
        bool replica_eligible = true;
        if (pv == pu) {
          const EdgeId cell = graph_.out_to_in_edge(e);
          if (residual_mode_) residual_[v] += std::abs(c - contrib_[cell]);
          contrib_[cell] = c;
          if (auditor_ != nullptr) auditor_->on_emit(e, c);
          mark_dirty(v);
          meter_.record_local_update();
          ++stats.local_updates;
        } else if ((*presence)[pv] && reachable(pu, pv)) {
          if (auditor_ != nullptr) auditor_->on_emit(e, c);
          const std::uint32_t seq =
              channel_ != nullptr ? channel_->next_seq(e) : 0;
          SendFate fate;
          if (plan_ != nullptr) fate = plan_->fate_for_send();
          // The sender pays for the message whatever its fate.
          const std::uint64_t hops = send_hops(pu, pv, v);
          meter_.record_message(PagerankUpdate::kWireBytes, hops);
          ++stats.messages_sent;
          ++peer_msgs_this_pass_[pu];
          const obs::TraceId tid =
              tracer_ != nullptr ? trace_send(e, pu, pv, v, c, pass, hops)
                                 : obs::kNoTrace;
          if (fate.dropped) {
            ++dropped_;
            if (tid != obs::kNoTrace) {
              tracer_->async_step(tid, "net.drop", "fault", pv, {});
            }
            if (channel_ != nullptr) {
              // Unacked: schedule the retransmission.
              channel_->track({e, pv, pu, c, seq, 0, tid}, pass);
            } else {
              if (auditor_ != nullptr) auditor_->on_known_loss(c);
              if (tid != obs::kNoTrace) {
                tracer_->async_end(tid, "update.lost", "fault", pv, {});
              }
            }
            replica_eligible = false;  // lost before the fan-out point
          } else {
            if (fate.delay_passes > 0) {
              delayed_[pass + 1 + fate.delay_passes].push_back(
                  {e, pu, c, seq, tid});
              ++delayed_total_;
              if (tid != obs::kNoTrace) {
                tracer_->async_step(
                    tid, "net.delay", "fault", pv,
                    {{"passes", static_cast<double>(fate.delay_passes)}});
              }
            } else {
              const bool applied = apply_update(e, c, seq, /*now=*/false);
              trace_terminal(tid, applied, pv);
            }
            if (fate.duplicated) {
              // Idempotent overwrite: the duplicate only costs traffic.
              meter_.record_message(PagerankUpdate::kWireBytes);
              ++stats.messages_sent;
              ++duplicated_;
              if (tracer_ != nullptr) {
                tracer_->instant("net.duplicate", "fault", pv, {});
              }
              if (channel_ != nullptr && fate.delay_passes == 0) {
                (void)channel_->accept(e, seq);  // suppressed by seq
              }
            }
          }
        } else {
          if (plan_ != nullptr && (*presence)[pv]) ++partition_deferrals_;
          if (membership_ != nullptr && membership_->undetected_crash(pv)) {
            // The sender does not know the owner is gone yet: the query
            // goes out to the stale owner and parks until the verdict.
            ++stale_owner_queries_;
            ++stats.stale_owner_queries;
          }
          if (auditor_ != nullptr) auditor_->on_emit(e, c);
          const std::uint32_t seq =
              channel_ != nullptr ? channel_->next_seq(e) : 0;
          const obs::TraceId tid =
              tracer_ != nullptr ? trace_send(e, pu, pv, v, c, pass, 1)
                                 : obs::kNoTrace;
          park(e, pu, pv, c, seq, tid, stats);
        }
        if (replica_eligible && replicas_ != nullptr &&
            !replicas_->empty() && (*presence)[pv]) {
          send_to_replicas(pu, v, *presence, stats);
        }
      }
     }
    }

    stats.max_peer_messages = 0;
    for (const PeerId pu : active_peers_) {
      if (peer_scratch_[pu].senders.empty()) continue;
      stats.max_peer_messages =
          std::max(stats.max_peer_messages, peer_msgs_this_pass_[pu]);
      peer_msgs_this_pass_[pu] = 0;  // reset only touched entries
    }
    }
    }

    // Quiescence: nothing to recompute, nothing parked, nothing in
    // flight, nobody awaiting recovery — then, if auditing, the mass
    // ledger must balance (leaks are re-injected and the loop resumes).
    bool quiescent = next_dirty_.empty() && total_pending_ == 0;
    if (plan_ != nullptr && quiescent) {
      quiescent = delayed_total_ == 0 &&
                  (channel_ == nullptr || channel_->idle());
      if (quiescent) {
        for (PeerId p = 0; p < num_peers; ++p) {
          if (needs_recovery_[p]) {
            quiescent = false;
            break;
          }
        }
      }
    }
    if (membership_ != nullptr && quiescent) {
      // Convergence is meaningless while events remain scheduled or a
      // crash is still undeclared (its range is frozen, its updates are
      // parked): the run idles forward until membership settles.
      quiescent = membership_->quiescent();
    }
    if (quiescent && audit_enabled_) {
      quiescent = audit_and_repair(*presence, stats);
    }

    if (tracer_ != nullptr) {
      // One span per pass on the engine track (pid 0); the clock decides
      // how much simulated time the pass consumed.
      const double dur_us = pass_clock_ ? pass_clock_(stats) : 1.0;
      tracer_->complete(
          "pass", "engine", 0, dur_us,
          {{"pass", static_cast<double>(pass)},
           {"recomputed", static_cast<double>(stats.docs_recomputed)},
           {"sent", static_cast<double>(stats.messages_sent)},
           {"residual", stats.max_rel_change}});
      tracer_->advance_time(tracer_->now_us() + dur_us);
    }

    if (pass_wall != nullptr) {
      pass_wall->record(std::chrono::duration<double, std::micro>(
                            // Same telemetry read as wall_start.
                            // dprank-analyze: allow(nondet-source) -- ditto
                            // dprank-lint: allow(wall-clock)
                            std::chrono::steady_clock::now() - wall_start)
                            .count());
    }

    history_.push_back(stats);
    result.passes = pass + 1;
    if (observer) observer(pass, ranks_);

    dirty_.swap(next_dirty_);
    next_dirty_.clear();
    if (options_.validate_every_n_passes != 0 &&
        (pass + 1) % options_.validate_every_n_passes == 0) {
      validate_state();
    }
    if (quiescent) {
      result.converged = true;
      break;
    }
  }
  // Terminal sweep: whatever cadence was chosen, the final state is
  // always checked (convergence or pass-budget exhaustion alike).
  if (options_.validate_every_n_passes != 0) validate_state();
  if (audit_enabled_) {
    if (!result.converged) {
      // Ran out of passes: report the leak as it stands.
      build_effective(effective_scratch_);
      last_audit_ = auditor_->audit(effective_scratch_, kAuditSlack);
    }
    result.mass_ratio = last_audit_.mass_ratio;
  }
  result.repair_rounds = repair_rounds_;
  if (metrics_ != nullptr) flush_metrics(result);
  return result;
}

void DistributedPagerank::flush_metrics(const DistributedRunResult& result) {
  obs::MetricsRegistry& reg = *metrics_;
  meter_.flush_to(reg);
  reg.counter("pagerank.runs").add(1);
  reg.counter("pagerank.passes").add(result.passes);
  if (result.converged) reg.counter("pagerank.converged_runs").add(1);
  reg.counter("pagerank.dropped").add(dropped_);
  reg.counter("pagerank.duplicated").add(duplicated_);
  reg.counter("pagerank.crashes").add(crashes_seen_);
  reg.counter("pagerank.recovered_docs").add(recovered_docs_);
  reg.counter("pagerank.retransmissions").add(retransmissions());
  reg.counter("pagerank.repair_messages").add(repair_messages_);
  reg.counter("pagerank.replica_messages").add(replica_messages_);
  reg.gauge("pagerank.mass_ratio").set(result.mass_ratio);
  reg.gauge("pagerank.outbox_peak").set(static_cast<double>(outbox_peak_));
  reg.gauge("pagerank.threads")
      .set(static_cast<double>(std::max<std::uint32_t>(1, options_.threads)));
  // Memory footprint (scale bench, §DESIGN.md 14): graph CSR arrays,
  // the engine's per-document/per-edge arrays, and the OS-accounted
  // process peak — observability only, read after the run.
  reg.gauge("mem.graph_bytes")
      .set(static_cast<double>(graph_.memory_bytes()));
  reg.gauge("mem.engine_bytes").set(static_cast<double>(memory_bytes()));
  reg.gauge("mem.peak_rss_bytes")
      .set(static_cast<double>(obs::peak_rss_bytes()));

  // Per-pass telemetry, entry for entry with pass_history(): the residual
  // series is the convergence timeline Fig. 2-style plots read.
  obs::Series& residual = reg.series("pagerank.residual");
  obs::Series& recomputed = reg.series("pagerank.docs_recomputed");
  obs::Series& sent = reg.series("pagerank.messages_sent");
  obs::Histogram& pass_msgs = reg.histogram("pagerank.pass.messages");
  bool any_fault_event = false;
  for (const PassStats& p : history_) {
    const double x = static_cast<double>(p.pass);
    residual.append(x, p.max_rel_change);
    recomputed.append(x, static_cast<double>(p.docs_recomputed));
    sent.append(x, static_cast<double>(p.messages_sent));
    pass_msgs.record(static_cast<double>(p.messages_sent));
    if (p.crashes != 0 || p.recovered_docs != 0) any_fault_event = true;
  }
  if (residual_mode_) {
    // Scheduler telemetry: how much recompute work the residual order
    // pushed to later passes (always absent under Schedule::kFifo, so
    // fifo exports are unchanged byte for byte).
    std::uint64_t total_deferred = 0;
    obs::Series& deferred = reg.series("pagerank.deferred");
    for (const PassStats& p : history_) {
      total_deferred += p.docs_deferred;
      deferred.append(static_cast<double>(p.pass),
                      static_cast<double>(p.docs_deferred));
    }
    reg.counter("pagerank.docs_deferred").add(total_deferred);
  }
  if (membership_ != nullptr) {
    reg.counter("membership.events").add(membership_->events_applied());
    reg.counter("membership.handoff_docs").add(handoff_docs_);
    reg.counter("membership.stale_owner_queries").add(stale_owner_queries_);
    reg.counter("membership.outbox_dropped_dead").add(outbox_dropped_dead_);
    reg.counter("membership.gave_up").add(gave_up());
    reg.counter("membership.ring_repairs").add(membership_->ring().repairs());
    reg.counter("membership.emergency_rebootstraps")
        .add(membership_->ring().emergency_rebootstraps());
    reg.counter("membership.stabilize_rounds")
        .add(membership_->stabilize_rounds_total());
    reg.counter("membership.declared_dead")
        .add(membership_->detector().declared_dead());
    reg.counter("membership.false_suspicions")
        .add(membership_->detector().false_suspicions());
    reg.gauge("membership.live_peers")
        .set(static_cast<double>(membership_->live_peers()));
    // Crash -> verdict latency per death: recovery starts at the
    // verdict, so this histogram is the recovery-trigger latency the
    // chaos campaign reports.
    obs::Histogram& lat = reg.histogram("membership.detection_latency");
    for (const std::uint64_t l : membership_->detection_latencies()) {
      lat.record(static_cast<double>(l));
    }
    obs::Series& handoffs = reg.series("membership.handoffs");
    obs::Series& stale = reg.series("membership.stale_queries");
    for (const PassStats& p : history_) {
      if (p.handoff_docs != 0) {
        handoffs.append(static_cast<double>(p.pass),
                        static_cast<double>(p.handoff_docs));
      }
      if (p.stale_owner_queries != 0) {
        stale.append(static_cast<double>(p.pass),
                     static_cast<double>(p.stale_owner_queries));
      }
    }
  }
  if (any_fault_event) {
    obs::Series& crash_tl = reg.series("pagerank.crash_events");
    obs::Series& recovery_tl = reg.series("pagerank.recovery_events");
    for (const PassStats& p : history_) {
      if (p.crashes != 0) {
        crash_tl.append(static_cast<double>(p.pass),
                        static_cast<double>(p.crashes));
      }
      if (p.recovered_docs != 0) {
        recovery_tl.append(static_cast<double>(p.pass),
                           static_cast<double>(p.recovered_docs));
      }
    }
  }
}

}  // namespace dprank
