#include "pagerank/dense_oracle.hpp"

#include <cmath>
#include <stdexcept>

namespace dprank {

std::vector<double> solve_dense(std::vector<double> m,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  if (m.size() != n * n) {
    throw std::invalid_argument("solve_dense: matrix/vector size mismatch");
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(m[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double v = std::abs(m[row * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (best < 1e-14) {
      throw std::runtime_error("solve_dense: singular system");
    }
    if (pivot != col) {
      for (std::size_t k = col; k < n; ++k) {
        std::swap(m[col * n + k], m[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double diag = m[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = m[row * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        m[row * n + k] -= factor * m[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) {
      acc -= m[row * n + k] * x[k];
    }
    x[row] = acc / m[row * n + row];
  }
  return x;
}

std::vector<double> dense_pagerank_oracle(const Digraph& g, double damping,
                                          NodeId max_nodes) {
  const NodeId n = g.num_nodes();
  if (n > max_nodes) {
    throw std::invalid_argument(
        "dense_pagerank_oracle: graph too large for O(n^3) solve");
  }
  if (n == 0) return {};
  // M = I - d * A^T_w  (row v: 1 on the diagonal, -d / outdeg(u) for
  // each in-link u -> v).
  const std::size_t nn = n;
  std::vector<double> m(nn * nn, 0.0);
  for (std::size_t v = 0; v < nn; ++v) m[v * nn + v] = 1.0;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : g.in_neighbors(v)) {
      m[static_cast<std::size_t>(v) * nn + u] -=
          damping / static_cast<double>(g.out_degree(u));
    }
  }
  const std::vector<double> b(nn, 1.0 - damping);
  return solve_dense(std::move(m), b);
}

}  // namespace dprank
