#pragma once

// Centralized synchronous pagerank solver (§2.2).
//
// This is the conventional iterative solution R_{t+1} = c + d A R_t that
// Google's crawler-based system computes on a central server, and the
// reference R_c against which §4.4/Table 2 measure the distributed
// scheme's quality. Jacobi iteration over the CSR graph; converges for
// d < 1 because the iteration operator is a contraction.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct CentralizedResult {
  std::vector<double> ranks;
  std::uint64_t iterations = 0;
  double final_max_rel_change = 0.0;
  bool converged = false;
};

/// Iterate until the maximum relative change over all documents drops
/// below `tolerance` (or max_iterations). `damping` as in Eq. 1.
[[nodiscard]] CentralizedResult centralized_pagerank(
    const Digraph& g, double damping = 0.85, double tolerance = 1e-12,
    std::uint64_t max_iterations = 100'000, double initial_rank = 1.0);

/// One synchronous Jacobi sweep: out = (1-d) + d * A^T in. Exposed for
/// the sync-vs-async ablation and trajectory measurements.
void pagerank_sweep(const Digraph& g, double damping,
                    const std::vector<double>& in, std::vector<double>& out);

/// Extrapolated power iteration, after Kamvar, Haveliwala, Manning &
/// Golub's "Extrapolation methods for accelerating PageRank
/// computations" (cited by the paper's §7, which conjectures the
/// asynchronous iteration may beat such acceleration). Uses the A^d
/// variant: the iteration error contracts with the *known* ratio d, so
/// every `period` sweeps each component jumps to its geometric limit
/// x + d/(1-d) * (x_m - x_{m-1}). Overshoots below the (1-d) rank floor
/// are rejected.
[[nodiscard]] CentralizedResult centralized_pagerank_extrapolated(
    const Digraph& g, double damping = 0.85, double tolerance = 1e-12,
    std::uint64_t max_iterations = 100'000, std::uint32_t period = 10);

}  // namespace dprank
