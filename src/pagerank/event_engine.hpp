#pragma once

// Event-driven distributed pagerank (extension beyond the paper).
//
// The paper's simulator "does not model network latency effects,
// message routing, and other system overheads" (§4.2) and instead
// estimates execution time analytically (Eq. 4). This engine closes
// that gap: a discrete-event simulation where
//   * each peer is a sequential processor (recomputes cost time),
//   * each peer's uplink is serialized (one transfer at a time, the
//     §4.6.1 assumption) with finite bandwidth and fixed latency,
//   * updates destined for one peer in one send window are coalesced
//     into a single transfer (the paper's batching model).
// The protocol itself is unchanged (Fig. 1 with per-document epsilon
// gating), so the fixed point matches the other engines; what this adds
// is a *measured* completion time to put next to the Eq. 4 estimate,
// and a check that the pass abstraction did not distort the results.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "p2p/placement.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct EventNetParams {
  double bandwidth_bytes_per_sec = 200.0 * 1024;  // per-peer uplink
  double latency_sec = 0.050;                     // one-way propagation
  double compute_seconds_per_doc = 12e-6;         // §4.6.1 calibration
  double message_bytes = 24.0;                    // GUID + rank
  /// A peer drains its inbox at most once per this interval (0 =
  /// process every arrival separately). Batching is what keeps chaotic
  /// iteration's message bill polynomial: without it every arriving
  /// delta triggers its own recompute-and-resend, and the event count
  /// grows steeply as epsilon tightens. 50 ms ~ one network latency.
  double min_batch_interval_sec = 0.050;
};

struct EventRunResult {
  std::vector<double> ranks;
  double completion_seconds = 0.0;   // last processing finishes
  std::uint64_t transfers = 0;       // coalesced network sends
  std::uint64_t messages = 0;        // individual 24-byte updates
  std::uint64_t events = 0;          // processed arrival events
  std::uint64_t recomputes = 0;
  bool converged = false;            // event cap not tripped
};

class EventDrivenPagerank {
 public:
  EventDrivenPagerank(const Digraph& g, const Placement& placement,
                      const PagerankOptions& options, EventNetParams net = {});
  EventDrivenPagerank(Digraph&&, const Placement&, PagerankOptions,
                      EventNetParams) = delete;

  /// Run to quiescence (empty event queue). `event_cap` bounds runaway
  /// simulations (0 = unlimited).
  [[nodiscard]] EventRunResult run(std::uint64_t event_cap = 0);

 private:
  const Digraph& graph_;
  const Placement& placement_;
  PagerankOptions options_;
  EventNetParams net_;
};

}  // namespace dprank
