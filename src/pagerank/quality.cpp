#include "pagerank/quality.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"

namespace dprank {

std::vector<double> relative_errors(const std::vector<double>& distributed,
                                    const std::vector<double>& reference) {
  if (distributed.size() != reference.size()) {
    throw std::invalid_argument("relative_errors: size mismatch");
  }
  std::vector<double> errs(distributed.size());
  for (std::size_t i = 0; i < distributed.size(); ++i) {
    const double diff = std::abs(distributed[i] - reference[i]);
    errs[i] = reference[i] != 0.0 ? diff / std::abs(reference[i]) : diff;
  }
  return errs;
}

QualityReport summarize_quality(const std::vector<double>& distributed,
                                const std::vector<double>& reference) {
  const auto errs = relative_errors(distributed, reference);
  if (errs.empty()) {
    // Vacuous comparison: zero error everywhere, everything within 1%.
    // (Summary::percentile throws on empty input, so return before
    // constructing one.)
    QualityReport r;
    r.fraction_within_1pct = 1.0;
    return r;
  }
  std::size_t within = 0;
  for (const double e : errs) {
    if (e < 0.01) ++within;
  }
  const Summary s(errs);
  QualityReport r;
  r.p50 = s.percentile(50);
  r.p75 = s.percentile(75);
  r.p90 = s.percentile(90);
  r.p99 = s.percentile(99);
  r.p99_9 = s.percentile(99.9);
  r.max = s.max();
  r.avg = s.mean();
  r.fraction_within_1pct =
      static_cast<double>(within) / static_cast<double>(errs.size());
  return r;
}

double l1_rank_error(const std::vector<double>& distributed,
                     const std::vector<double>& reference) {
  if (distributed.size() != reference.size()) {
    throw std::invalid_argument("l1_rank_error: size mismatch");
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < distributed.size(); ++i) {
    num += std::abs(distributed[i] - reference[i]);
    den += std::abs(reference[i]);
  }
  return den != 0.0 ? num / den : num;
}

namespace {

/// Indices of the k largest values (ties by smaller index first).
std::vector<std::size_t> top_k_indices(const std::vector<double>& values,
                                       std::size_t k) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t keep = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  order.resize(keep);
  return order;
}

}  // namespace

double top_k_overlap(const std::vector<double>& distributed,
                     const std::vector<double>& reference, std::size_t k) {
  if (distributed.size() != reference.size()) {
    throw std::invalid_argument("top_k_overlap: size mismatch");
  }
  if (distributed.empty() || k == 0) return 1.0;
  const auto a = top_k_indices(distributed, k);
  const auto b = top_k_indices(reference, k);
  const std::unordered_set<std::size_t> bset(b.begin(), b.end());
  std::size_t hits = 0;
  for (const auto i : a) {
    if (bset.contains(i)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

double kendall_tau_sampled(const std::vector<double>& distributed,
                           const std::vector<double>& reference,
                           std::uint64_t samples, std::uint64_t seed) {
  if (distributed.size() != reference.size()) {
    throw std::invalid_argument("kendall_tau_sampled: size mismatch");
  }
  const std::size_t n = distributed.size();
  if (n < 2) return 1.0;
  Rng rng(seed ^ 0x7A07AULL);
  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto i = static_cast<std::size_t>(rng.bounded(n));
    auto j = static_cast<std::size_t>(rng.bounded(n - 1));
    if (j >= i) ++j;
    const double da = distributed[i] - distributed[j];
    const double db = reference[i] - reference[j];
    const double prod = da * db;
    if (prod > 0) {
      ++concordant;
    } else if (prod < 0) {
      ++discordant;
    }
    // ties in either ranking contribute to neither count (tau-a on the
    // untied sample)
  }
  const auto total = concordant + discordant;
  if (total == 0) return 1.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(total);
}

std::uint64_t fnv1a_rank_digest(const std::vector<double>& ranks) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double r : ranks) {
    const auto bits = std::bit_cast<std::uint64_t>(r);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace dprank
