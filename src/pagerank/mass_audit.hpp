#pragma once

// Rank-mass conservation audit (extension).
//
// The chaotic iteration (§2.3) is self-stabilizing only if every emitted
// contribution eventually lands in its destination cell: the fixed point
// is defined by "cell(u->v) == R(u)/outdeg(u) for the freshest emission".
// Graceful churn preserves this (the §3.1 outbox buffers every undelivered
// value), but crash faults and unacked lossy delivery can *leak* rank
// mass: a contribution that was emitted but exists nowhere — not applied,
// not parked, not in flight — leaves the destination permanently stale.
//
// MassAuditor is the ledger that makes such leaks observable and
// repairable. It records, per out-edge, the freshest contribution the
// sender emitted (`expected`). An audit compares that against the
// *effective* value the system still holds for the edge (the applied cell,
// or the parked outbox value). The accounted fraction
//
//     mass_ratio = 1 - sum|expected - effective| / sum|expected|
//
// equals 1.0 exactly when no emission was lost; the distributed engine
// re-injects the missing contributions (proportional repair: exactly the
// leaked values are re-sent) whenever the audit finds leaks beyond the
// tolerance, so the iteration converges to the no-fault fixed point even
// under crash pressure. Conceptually the ledger is the union of sender
// outbox state — in a deployment each peer audits its own out-edges and
// the global ratio is a gossip aggregate; the simulator computes it
// directly.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dprank {

struct MassAuditReport {
  double emitted_total = 0.0;    // sum of |expected| over all edges
  double leaked = 0.0;           // sum of |expected - effective| over leaks
  double mass_ratio = 1.0;       // 1 - leaked / emitted_total
  std::uint64_t leaking_edges = 0;
  [[nodiscard]] bool conserved(double tolerance) const {
    return mass_ratio >= 1.0 - tolerance && mass_ratio <= 1.0 + tolerance;
  }
};

class MassAuditor {
 public:
  /// The ledger starts from the engine's initial state: every edge u->v
  /// carries initial_rank / outdeg(u).
  MassAuditor(const Digraph& g, double initial_rank);

  /// The sender refreshed its contribution on edge `e` (an emission, a
  /// recovery re-request response, or a repair re-send).
  void on_emit(EdgeId e, double value) { expected_[e] = value; }

  [[nodiscard]] double expected(EdgeId e) const { return expected_[e]; }
  [[nodiscard]] std::uint64_t num_edges() const { return expected_.size(); }

  /// A known, attributable loss (crash wipe, outbox eviction, unacked
  /// drop): cheap per-pass signal, tracked without scanning.
  void on_known_loss(double amount) {
    known_lost_ += amount < 0 ? -amount : amount;
    ++known_loss_events_;
  }
  [[nodiscard]] double known_lost() const { return known_lost_; }
  [[nodiscard]] std::uint64_t known_loss_events() const {
    return known_loss_events_;
  }

  /// Full O(E) audit: `effective` holds the value the system currently
  /// retains for each edge (applied cell, or the parked pending value for
  /// edges waiting in an outbox). `slack` absorbs floating-point copy
  /// noise; values are copied verbatim through the engine, so the default
  /// is effectively exact.
  [[nodiscard]] MassAuditReport audit(const std::vector<double>& effective,
                                      double slack = 1e-12) const;

  /// Edge ids whose effective value deviates from the ledger by more than
  /// `slack` — the re-injection work list, in edge order.
  [[nodiscard]] std::vector<EdgeId> leaking_edges(
      const std::vector<double>& effective, double slack = 1e-12) const;

 private:
  std::vector<double> expected_;
  double known_lost_ = 0.0;
  std::uint64_t known_loss_events_ = 0;
};

}  // namespace dprank
