#pragma once

// Pluggable pagerank-engine interface — the contract every engine in the
// zoo implements: run-to-convergence over a `Digraph` plus a peer
// `Placement`, exposing ranks, pass/round history, the traffic ledger and
// the metrics/tracer/mass-audit attachment points.
//
// Engines (see engines/registry.hpp for the factory):
//  * "distributed" — the paper's Fig. 1 chaotic iteration
//    (pagerank/distributed_engine.hpp), the reference implementation.
//  * "walk" — Das Sarma-style random walks (engines/walk_engine.hpp):
//    seeded walk tokens forwarded peer to peer, ranks estimated from
//    visit counts. Statistical (traits().exact == false).
//  * "gossip" — Ishii/Tempo-style randomized gossip
//    (engines/gossip_engine.hpp): each round every peer recomputes a
//    seeded-random subset of its dirty documents. Converges to the same
//    fixed point as fifo.
//
// A "pass" is whatever one synchronized round means for the algorithm
// (Fig. 1 pass, one step of every live walk, one gossip round); engines
// fill the shared PassStats vocabulary and leave fields that do not
// apply at zero. All engine-internal randomness derives from
// EngineOptions::seed, so same-seed reruns are bit-identical.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "net/traffic_meter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/churn.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct PassStats {
  std::uint64_t pass = 0;
  std::uint64_t docs_recomputed = 0;
  std::uint64_t messages_sent = 0;      // cross-peer, delivered immediately
  std::uint64_t messages_deferred = 0;  // parked in an outbox this pass
  std::uint64_t messages_delivered_late = 0;  // outbox drains this pass
  std::uint64_t local_updates = 0;
  std::uint64_t max_peer_messages = 0;  // busiest sender, for Eq. 4
  double max_rel_change = 0.0;
  // Fault-plan extensions (all zero without an attached plan).
  std::uint64_t crashes = 0;            // peers crashing at pass start
  std::uint64_t recovered_docs = 0;     // documents rebuilt this pass
  std::uint64_t retransmissions = 0;    // acked-delivery retries this pass
  std::uint64_t repair_messages = 0;    // mass-audit re-injections
  /// Dirty documents whose recompute the residual scheduler pushed to a
  /// later pass (always zero under Schedule::kFifo).
  std::uint64_t docs_deferred = 0;
  // Dynamic-membership extensions (all zero without attach_membership).
  /// Documents whose ownership moved this pass (join pulls, leave pushes
  /// and crash-range reconstructions).
  std::uint64_t handoff_docs = 0;
  /// Cross-peer sends addressed to a crashed-but-undeclared owner — the
  /// detection-latency window where senders still query the stale owner.
  std::uint64_t stale_owner_queries = 0;
};

struct DistributedRunResult {
  std::uint64_t passes = 0;
  bool converged = false;
  /// Rank-mass conservation at termination (1.0 = every emitted
  /// contribution accounted for). Only meaningful with the mass audit
  /// enabled; 1.0 otherwise.
  double mass_ratio = 1.0;
  /// Audit rounds that found leaks and re-injected mass.
  std::uint64_t repair_rounds = 0;
};

/// Static per-engine capabilities and guarantees, used by the
/// conformance suite, the bench matrix and dprank_cli to drive every
/// engine through the shared interface without downcasting.
struct EngineTraits {
  /// Registry name (engines/registry.hpp).
  const char* name = "";
  /// run() accepts a ChurnSchedule — absent peers neither compute nor
  /// receive, and state addressed to them parks until they return.
  bool supports_churn = false;
  /// Converges to the §2.3 fixed point within epsilon; false for
  /// statistical estimators whose residual error is bounded only by
  /// quality_bound.
  bool exact = true;
  /// attach_tracer is supported (per-message causal journeys).
  bool supports_tracer = false;
  /// Declared mean relative-error bound vs centralized_pagerank on the
  /// conformance config (2k-doc paper graph, default options); enforced
  /// by tests/test_engine_interface.cpp.
  double quality_bound = 0.0;
};

/// Engine-zoo construction knobs: the shared PagerankOptions plus the
/// per-algorithm parameters the factory (engines/registry.hpp) forwards
/// to whichever engine it builds. Fields an engine does not consume are
/// ignored.
struct EngineOptions {
  PagerankOptions pagerank;
  /// Seed for algorithm-internal randomness (walk trajectories, gossip
  /// document selection). The default engine draws nothing from it.
  std::uint64_t seed = 42;
  // ---- random-walk engine (engines/walk_engine.hpp) ----
  /// Walk tokens started per document; the estimator's relative error
  /// shrinks as 1/sqrt(walks_per_node).
  std::uint32_t walks_per_node = 64;
  /// Forced-termination step cap. Survival past s steps has probability
  /// d^s (4e-15 at the default), so the truncation bias is negligible
  /// while termination is guaranteed.
  std::uint32_t walk_step_cap = 200;
  // ---- gossip engine (engines/gossip_engine.hpp) ----
  /// Probability that a dirty document is selected for recompute in a
  /// given round (the randomized-update rate).
  double gossip_fraction = 0.5;
  /// Consecutive rounds a dirty document may be passed over before its
  /// recompute is forced (keeps the randomized schedule fair).
  std::uint32_t gossip_max_defer = 8;
};

/// Abstract engine: run once to convergence, then read the results.
/// Implementations keep references to the graph/placement handed to
/// their constructors — both must outlive the engine. Attachment points
/// must be called before run(); accessors are valid any time (ranks()
/// reflects the initial state until run() completes).
class PagerankEngineInterface {
 public:
  /// Observer invoked after every pass with (pass index, current ranks);
  /// used to measure convergence trajectories (§4.3). For statistical
  /// engines the per-pass ranks are the current estimate.
  using PassObserver =
      std::function<void(std::uint64_t, const std::vector<double>&)>;
  /// Per-pass simulated duration in microseconds, driven by the pass
  /// just completed (sim/time_model.hpp's make_pass_clock builds one
  /// from the Eq. 4 network model).
  using PassClock = std::function<double(const PassStats&)>;

  PagerankEngineInterface() = default;
  PagerankEngineInterface(const PagerankEngineInterface&) = delete;
  PagerankEngineInterface& operator=(const PagerankEngineInterface&) = delete;
  PagerankEngineInterface(PagerankEngineInterface&&) = delete;
  PagerankEngineInterface& operator=(PagerankEngineInterface&&) = delete;
  virtual ~PagerankEngineInterface() = default;

  /// Run to convergence. `churn == nullptr` means all peers always
  /// present; engines with traits().supports_churn == false reject a
  /// non-null schedule with std::logic_error. Can be called once per
  /// engine instance.
  virtual DistributedRunResult run(ChurnSchedule* churn = nullptr,
                                   const PassObserver& observer = nullptr) = 0;

  [[nodiscard]] virtual const std::vector<double>& ranks() const = 0;
  [[nodiscard]] virtual const TrafficMeter& traffic() const = 0;
  [[nodiscard]] virtual const std::vector<PassStats>& pass_history()
      const = 0;

  /// Publish run telemetry into `registry` when run() finishes (net.*
  /// traffic ledger, pagerank.* run totals, per-pass series). The
  /// registry must outlive the engine; call before run().
  virtual void attach_metrics(obs::MetricsRegistry& registry) = 0;

  /// Attach a causal message tracer. Only engines with
  /// traits().supports_tracer override this; the default rejects.
  virtual void attach_tracer(obs::Tracer& /*tracer*/,
                             PassClock /*clock*/ = nullptr) {
    throw std::logic_error(
        "attach_tracer: engine does not support tracing (check "
        "traits().supports_tracer)");
  }

  /// Enable the engine's conservation audit: the distributed engine
  /// audits rank-mass against the emission ledger, the walk engine
  /// audits token conservation, the gossip engine its emission ledger.
  /// Call before run(); run() then reports mass_ratio and refuses to
  /// converge while the audit fails.
  virtual void enable_mass_audit(double tolerance = 1e-9) = 0;

  [[nodiscard]] virtual EngineTraits traits() const = 0;
};

}  // namespace dprank
