#include "pagerank/incremental.hpp"

#include <algorithm>
#include <stdexcept>

namespace dprank {

namespace {
// Safety valve against non-terminating cascades. Unreachable for
// damping < 1 (increments decay geometrically), but a damping-1 graph
// with a cycle of out-degree-1 documents would otherwise loop forever.
constexpr std::uint32_t kMaxCascadeDepth = 1'000'000;
}  // namespace

IncrementalPagerank::IncrementalPagerank(const Digraph& g,
                                         std::vector<double>& ranks,
                                         const PagerankOptions& options,
                                         const Placement* placement)
    : graph_(g), ranks_(ranks), options_(options), placement_(placement) {
  if (ranks.size() != g.num_nodes()) {
    throw std::invalid_argument("IncrementalPagerank: rank vector size");
  }
  covered_epoch_.assign(g.num_nodes(), 0);
}

PropagationStats IncrementalPagerank::run_cascade(
    std::vector<WorkItem> queue, bool restore) {
  ++epoch_;
  undo_log_.clear();
  last_touched_.clear();
  PropagationStats stats;
  std::size_t head = 0;
  while (head < queue.size()) {
    const WorkItem item = queue[head++];
    deliver(item, stats, queue, restore);
  }
  if (restore) {
    // Undo in reverse order; the first-touch log restores the
    // pre-cascade value of every mutated document.
    for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
      ranks_[it->first] = it->second;
    }
    last_touched_.clear();  // nothing actually changed
  }
  return stats;
}

void IncrementalPagerank::deliver(const WorkItem& item,
                                  PropagationStats& stats,
                                  std::vector<WorkItem>& queue,
                                  bool restore) {
  const NodeId v = item.node;
  if (restore && covered_epoch_[v] != epoch_) {
    undo_log_.emplace_back(v, ranks_[v]);
  }
  if (covered_epoch_[v] != epoch_) {
    covered_epoch_[v] = epoch_;
    ++stats.nodes_covered;
    last_touched_.push_back(v);
  }
  ++stats.updates_delivered;
  stats.path_length = std::max(stats.path_length, item.depth);

  const double newrank = ranks_[v] + item.delta;
  const double rel = relative_change(ranks_[v], newrank);
  ranks_[v] = newrank;
  if (rel <= options_.epsilon) return;  // increment no longer significant
  const auto deg = graph_.out_degree(v);
  if (deg == 0 || item.depth >= kMaxCascadeDepth) return;

  const double fwd =
      options_.damping * item.delta / static_cast<double>(deg);
  const PeerId pv =
      placement_ != nullptr ? placement_->peer_of(v) : kInvalidPeer;
  for (const NodeId w : graph_.out_neighbors(v)) {
    if (placement_ != nullptr && placement_->peer_of(w) != pv) {
      ++stats.cross_peer_messages;
    }
    queue.push_back({w, fwd, item.depth + 1});
  }
}

void IncrementalPagerank::touch_seed(NodeId node) {
  if (covered_epoch_[node] != epoch_) {
    covered_epoch_[node] = epoch_;
    last_touched_.push_back(node);
  }
}

PropagationStats IncrementalPagerank::seed_and_propagate(NodeId node) {
  if (node >= graph_.num_nodes()) {
    throw std::out_of_range("seed_and_propagate: bad node");
  }
  ranks_[node] = options_.initial_rank;
  std::uint64_t cross = 0;
  auto items = make_seed_items(node, options_.initial_rank, cross);
  auto stats = run_cascade(std::move(items), false);
  stats.cross_peer_messages += cross;
  touch_seed(node);  // the seed's own rank was rewritten above
  return stats;
}

PropagationStats IncrementalPagerank::probe_insert(NodeId node) {
  if (node >= graph_.num_nodes()) {
    throw std::out_of_range("probe_insert: bad node");
  }
  const double old = ranks_[node];
  ranks_[node] = options_.initial_rank;
  std::uint64_t cross = 0;
  auto items = make_seed_items(node, options_.initial_rank, cross);
  auto stats = run_cascade(std::move(items), true);
  stats.cross_peer_messages += cross;
  ranks_[node] = old;
  return stats;
}

PropagationStats IncrementalPagerank::propagate_delete(NodeId node) {
  if (node >= graph_.num_nodes()) {
    throw std::out_of_range("propagate_delete: bad node");
  }
  std::uint64_t cross = 0;
  auto items = make_seed_items(node, -ranks_[node], cross);
  auto stats = run_cascade(std::move(items), false);
  stats.cross_peer_messages += cross;
  // The deleted document itself is touched: its rank is zeroed by the
  // caller (propagate_full_delete / delete_document), and index
  // consumers must drop their entry for it.
  touch_seed(node);
  return stats;
}

PropagationStats IncrementalPagerank::propagate_full_delete(MutableDigraph& g,
                                                            NodeId node) {
  if (g.num_nodes() != graph_.num_nodes()) {
    throw std::invalid_argument(
        "propagate_full_delete: graph is not the snapshot source");
  }
  if (node >= graph_.num_nodes()) {
    throw std::out_of_range("propagate_full_delete: bad node");
  }
  auto stats = propagate_delete(node);
  g.isolate_node(node);
  ranks_[node] = 0.0;
  return stats;
}

PropagationStats IncrementalPagerank::inject(NodeId node, double delta) {
  if (node >= graph_.num_nodes()) {
    throw std::out_of_range("inject: bad node");
  }
  return run_cascade({{node, delta, 0}}, false);
}

PropagationStats IncrementalPagerank::inject_batch(
    std::vector<std::pair<NodeId, double>> deltas) {
  for (const auto& [node, delta] : deltas) {
    (void)delta;
    if (node >= graph_.num_nodes()) {
      throw std::out_of_range("inject_batch: bad node");
    }
  }
  // Coalesce: one seed delivery per document, ascending id order (the
  // deterministic order the streaming equivalence tests pin).
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<WorkItem> items;
  items.reserve(deltas.size());
  for (const auto& [node, delta] : deltas) {
    if (!items.empty() && items.back().node == node) {
      items.back().delta += delta;
    } else {
      items.push_back({node, delta, 0});
    }
  }
  return run_cascade(std::move(items), false);
}

std::vector<IncrementalPagerank::WorkItem>
IncrementalPagerank::make_seed_items(NodeId node, double rank_value,
                                     std::uint64_t& cross_out) {
  std::vector<WorkItem> items;
  const auto deg = graph_.out_degree(node);
  if (deg == 0) return items;
  // A document with rank R contributes R/outdeg on each out-link; the
  // damped effect on each target's rank is d * R / outdeg (Fig. 2 shows
  // the d = 1 case: 1/3 then 1/6).
  const double delta =
      options_.damping * rank_value / static_cast<double>(deg);
  items.reserve(deg);
  const PeerId pn =
      placement_ != nullptr ? placement_->peer_of(node) : kInvalidPeer;
  for (const NodeId w : graph_.out_neighbors(node)) {
    if (placement_ != nullptr && placement_->peer_of(w) != pn) ++cross_out;
    items.push_back({w, delta, 1});
  }
  return items;
}

PropagationStats insert_document(MutableDigraph& g,
                                 std::vector<double>& ranks,
                                 const std::vector<NodeId>& out_links,
                                 const PagerankOptions& options,
                                 NodeId* new_id_out) {
  const NodeId id = g.add_document(out_links);
  ranks.push_back(options.initial_rank);
  if (new_id_out != nullptr) *new_id_out = id;
  const Digraph snapshot = g.freeze();
  IncrementalPagerank engine(snapshot, ranks, options);
  // §3.1: seed with the initial constant and send updates to out-links...
  PropagationStats stats = engine.seed_and_propagate(id);
  // ...then "the system eventually reconverges": the new document has no
  // in-links yet, so its own recompute settles at (1-d); the correction
  // relative to the seed propagates like any other update.
  const double true_rank = 1.0 - options.damping;
  const double correction = true_rank - ranks[id];
  ranks[id] = true_rank;
  if (snapshot.out_degree(id) > 0 && correction != 0.0) {
    const double fwd = options.damping * correction /
                       static_cast<double>(snapshot.out_degree(id));
    for (const NodeId w : snapshot.out_neighbors(id)) {
      const auto more = engine.inject(w, fwd);
      stats.updates_delivered += more.updates_delivered;
      stats.cross_peer_messages += more.cross_peer_messages;
      stats.nodes_covered += more.nodes_covered;  // upper bound; may recount
      stats.path_length = std::max(stats.path_length,
                                   more.path_length + 1);
    }
  }
  return stats;
}

PropagationStats delete_document(MutableDigraph& g,
                                 std::vector<double>& ranks, NodeId node,
                                 const PagerankOptions& options) {
  const Digraph snapshot = g.freeze();
  IncrementalPagerank engine(snapshot, ranks, options);
  return engine.propagate_full_delete(g, node);
}

}  // namespace dprank
