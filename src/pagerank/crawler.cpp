#include "pagerank/crawler.hpp"

namespace dprank {

CrawlerTraffic centralized_crawler_traffic(const Digraph& g,
                                           const CrawlerModelParams& params) {
  CrawlerTraffic t;
  t.naive_fetch_bytes =
      static_cast<std::uint64_t>(g.num_nodes()) * params.avg_document_bytes;
  t.link_upload_bytes = g.num_edges() * params.bytes_per_link_record;
  t.rank_redistribution_bytes =
      static_cast<std::uint64_t>(g.num_nodes()) * params.bytes_per_rank_record;
  return t;
}

}  // namespace dprank
