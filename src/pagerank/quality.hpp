#pragma once

// Pagerank quality measurement (§4.4, Table 2).
//
// Quality is the relative error |R_d - R_c| / R_c of the distributed
// result against the conventional synchronous solver, summarized at the
// percentiles the paper tabulates (50, 75, 90, 99, 99.9, max, avg).

#include <vector>

#include "common/stats.hpp"

namespace dprank {

struct QualityReport {
  // The paper's Table 2 rows.
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p99_9 = 0.0;
  double max = 0.0;
  double avg = 0.0;
  /// Fraction of documents with relative error below 0.01 (the §4.3
  /// "99% of the nodes converged to within 1%" claim).
  double fraction_within_1pct = 0.0;
};

/// Per-document relative errors; reference entries equal to zero are
/// compared by absolute error (they do not occur for d < 1, where every
/// rank is >= 1-d).
[[nodiscard]] std::vector<double> relative_errors(
    const std::vector<double>& distributed,
    const std::vector<double>& reference);

[[nodiscard]] QualityReport summarize_quality(
    const std::vector<double>& distributed,
    const std::vector<double>& reference);

/// Normalized L1 distance: Σ|distributed_i − reference_i| / Σ|reference_i|
/// — the single-number rank-mass displacement the cross-engine bench
/// matrix reports. 0.0 for two empty vectors; absolute L1 when the
/// reference has zero mass. Throws std::invalid_argument on size
/// mismatch.
[[nodiscard]] double l1_rank_error(const std::vector<double>& distributed,
                                   const std::vector<double>& reference);

// ---- Ordering quality -------------------------------------------------
//
// Search relevance depends on the *ordering* pageranks induce, not on
// their absolute values (§2.4: hits are sorted by pagerank and the top
// x% forwarded). These metrics quantify how faithfully the distributed
// ranks preserve the reference ordering.

/// |top-k(distributed) ∩ top-k(reference)| / k. Ties broken by index.
/// k is clamped to the vector size.
[[nodiscard]] double top_k_overlap(const std::vector<double>& distributed,
                                   const std::vector<double>& reference,
                                   std::size_t k);

/// Kendall rank-correlation tau-a estimated over `samples` random pairs
/// (exact all-pairs is O(n^2)); 1 = identical ordering, -1 = reversed.
/// Deterministic for a given seed.
[[nodiscard]] double kendall_tau_sampled(
    const std::vector<double>& distributed,
    const std::vector<double>& reference, std::uint64_t samples = 200'000,
    std::uint64_t seed = 42);

/// FNV-1a over the exact bit patterns of the ranks: equal digests mean
/// bit-identical vectors, the determinism check the chaos-soak and
/// stream-liverank benches gate on (same seed => same digest).
[[nodiscard]] std::uint64_t fnv1a_rank_digest(
    const std::vector<double>& ranks);

}  // namespace dprank
