#include "pagerank/mass_audit.hpp"

#include <cmath>
#include <stdexcept>

namespace dprank {

MassAuditor::MassAuditor(const Digraph& g, double initial_rank) {
  expected_.resize(g.num_edges(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto deg = g.out_degree(u);
    if (deg == 0) continue;
    const double c = initial_rank / static_cast<double>(deg);
    for (EdgeId e = g.out_edge_begin(u); e < g.out_edge_end(u); ++e) {
      expected_[e] = c;
    }
  }
}

MassAuditReport MassAuditor::audit(const std::vector<double>& effective,
                                   double slack) const {
  if (effective.size() != expected_.size()) {
    throw std::invalid_argument("MassAuditor::audit: size mismatch");
  }
  MassAuditReport report;
  for (EdgeId e = 0; e < expected_.size(); ++e) {
    report.emitted_total += std::abs(expected_[e]);
    const double diff = std::abs(expected_[e] - effective[e]);
    if (diff > slack) {
      report.leaked += diff;
      ++report.leaking_edges;
    }
  }
  report.mass_ratio = report.emitted_total > 0.0
                          ? 1.0 - report.leaked / report.emitted_total
                          : 1.0;
  return report;
}

std::vector<EdgeId> MassAuditor::leaking_edges(
    const std::vector<double>& effective, double slack) const {
  if (effective.size() != expected_.size()) {
    throw std::invalid_argument("MassAuditor::leaking_edges: size mismatch");
  }
  std::vector<EdgeId> leaks;
  for (EdgeId e = 0; e < expected_.size(); ++e) {
    if (std::abs(expected_[e] - effective[e]) > slack) leaks.push_back(e);
  }
  return leaks;
}

}  // namespace dprank
