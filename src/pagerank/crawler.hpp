#pragma once

// Centralized crawler alternatives (§5).
//
// The paper contrasts the distributed scheme against two centralized
// designs on a P2P store:
//  1. a rudimentary crawler that fetches every file to a central server
//     ("such a scheme is undesirable");
//  2. an efficient crawler that ships only the link structure, computes
//     ranks centrally, and redistributes them to the owning peers.
// Both are implemented here as traffic models so the ablation bench can
// put numbers next to the distributed engine's message bytes.

#include <cstdint>

#include "graph/digraph.hpp"
#include "p2p/placement.hpp"

namespace dprank {

struct CrawlerTraffic {
  /// Scheme 1: every document's full contents crosses the network once.
  std::uint64_t naive_fetch_bytes = 0;
  /// Scheme 2 upstream: one (src GUID, dst GUID) record per link.
  std::uint64_t link_upload_bytes = 0;
  /// Scheme 2 downstream: one (GUID, rank) record per document.
  std::uint64_t rank_redistribution_bytes = 0;

  [[nodiscard]] std::uint64_t link_scheme_total() const {
    return link_upload_bytes + rank_redistribution_bytes;
  }
};

struct CrawlerModelParams {
  /// Mean stored document size; the paper's corpus was 99 MB over ~11k
  /// documents, i.e. ~9 KB per document.
  std::uint64_t avg_document_bytes = 9 * 1024;
  std::uint64_t bytes_per_link_record = 32;  // two 128-bit GUIDs
  std::uint64_t bytes_per_rank_record = 24;  // GUID + 64-bit rank
};

/// Traffic for one full centralized recomputation. Documents and links
/// already resident on the (hypothetical) server peer would not cross the
/// network; with a dedicated external server, everything does, which is
/// the model used here.
[[nodiscard]] CrawlerTraffic centralized_crawler_traffic(
    const Digraph& g, const CrawlerModelParams& params = {});

}  // namespace dprank
