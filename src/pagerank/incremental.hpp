#pragma once

// Incremental pagerank updates on document insert/delete (§3.1, §4.7,
// Fig. 2).
//
// After initial convergence, a new document is "immediately integrated":
// its rank is seeded with the initial constant (1.0) and each out-link
// receives an increment rank/outdeg. A receiving document adds the
// increment to its rank and, if the change is still significant relative
// to its rank (> epsilon), forwards d * increment / outdeg to its own
// out-links — the geometric decay pictured in Figure 2 (G sends 1/3, H
// forwards 1/6). A deletion sends the document's rank negated (§3.1,
// §4.7) and the system reconverges.
//
// Table 4 measures, per insert, the longest propagation path and the set
// of documents reached ("node coverage ... an upper bound on the number
// of messages a document insert can generate").
//
// Mass conservation under deletion: the unnormalized Eq. 1 form carries
// rank mass ~N across the system. A full delete (propagate_full_delete /
// delete_document) removes document v's mass R(v) deliberately: each
// out-link loses d * R(v)/outdeg(v) (the negated §3.1 update), the
// (1-d) base share and the epsilon-truncated cascade tail simply leave
// the system with the document, and the in-link sources' out-degrees are
// NOT re-normalized (a second-order effect the paper's protocol does not
// model — their remaining targets keep the slightly-stale per-link
// share until those sources next recompute). The global rank sum
// therefore drops by approximately R(v) per delete; stream consumers
// that audit mass must treat deletes as accounted withdrawals, not
// leaks. What a full delete guarantees is the absence of *dangling*
// rank: the deleted document's own rank is zeroed in the same call that
// isolates it, so no query can serve a rank for a document that no
// longer exists.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/mutable_digraph.hpp"
#include "p2p/placement.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct PropagationStats {
  std::uint64_t updates_delivered = 0;   // total update messages
  std::uint64_t cross_peer_messages = 0; // subset crossing peers (needs placement)
  std::uint64_t nodes_covered = 0;       // distinct documents updated
  std::uint32_t path_length = 0;         // longest chain of forwards
};

/// Increment propagator over a converged rank vector. Operates on a CSR
/// graph for the Table 4 sweeps; `probe` mode restores ranks afterwards
/// so thousands of independent inserts can be measured cheaply.
class IncrementalPagerank {
 public:
  /// `placement` may be nullptr; cross_peer_messages is then zero and all
  /// updates count as deliveries only.
  IncrementalPagerank(const Digraph& g, std::vector<double>& ranks,
                      const PagerankOptions& options,
                      const Placement* placement = nullptr);
  IncrementalPagerank(Digraph&&, std::vector<double>&, PagerankOptions,
                      const Placement*) = delete;

  /// Paper's Table 4 experiment: re-seed an existing document with the
  /// initial rank and propagate increments from it. Mutates ranks.
  PropagationStats seed_and_propagate(NodeId node);

  /// Same, but restores all touched ranks before returning (measurement
  /// probe; the rank vector is unchanged afterwards).
  PropagationStats probe_insert(NodeId node);

  /// Document deletion (§3.1): propagate the node's rank negated to its
  /// out-links. Does not modify the graph; pair with
  /// MutableDigraph::isolate_node for a full delete. Mutates ranks.
  PropagationStats propagate_delete(NodeId node);

  /// Raw increment injection: deliver `delta` to `node` at depth 0 and
  /// run the cascade. Mutates ranks.
  PropagationStats inject(NodeId node, double delta);

  /// Batched, coalesced injection — the streaming-ingest entry point:
  /// deliver every (node, delta) seed at depth 0 in ONE cascade.
  /// Duplicate nodes are coalesced first (deltas summed, ascending node
  /// order), so a document hit by several events in a batch receives one
  /// delivery and at most one forward fan-out instead of one cascade per
  /// event. Numerically equivalent to per-event inject() within the
  /// epsilon truncation tolerance (the significance test sees the summed
  /// delta rather than each piece). Mutates ranks.
  PropagationStats inject_batch(std::vector<std::pair<NodeId, double>> deltas);

  /// Full document deletion paired with the mutable graph: propagate the
  /// negated rank over this engine's (pre-delete) snapshot, then isolate
  /// `node` in `g` and zero its rank — one call, so a stream delete can
  /// never leave a dangling rank between the cascade and the isolation.
  /// `g` must be the graph this engine's snapshot was frozen from (same
  /// node count and adjacency for `node`). See the header comment for
  /// the mass-conservation consequence: the system's rank sum drops by
  /// ~R(node) by design.
  PropagationStats propagate_full_delete(MutableDigraph& g, NodeId node);

  /// Distinct documents whose rank the most recent cascade changed
  /// (valid until the next cascade; empty after probe_insert, which
  /// restores every touched rank). Populated by every mutating entry
  /// point: seed_and_propagate and propagate_delete include the seeded/
  /// deleted document itself (its rank was rewritten even though the
  /// cascade stats do not count it), inject and inject_batch include the
  /// injection points. Consumers use this to refresh dependent state,
  /// e.g. index entries (§2.4.2) or a live top-k cache. May therefore
  /// hold one more entry than PropagationStats::nodes_covered.
  [[nodiscard]] const std::vector<NodeId>& last_touched() const {
    return last_touched_;
  }

 private:
  struct WorkItem {
    NodeId node;
    double delta;
    std::uint32_t depth;
  };

  PropagationStats run_cascade(std::vector<WorkItem> initial, bool restore);
  void deliver(const WorkItem& item, PropagationStats& stats,
               std::vector<WorkItem>& queue, bool restore);
  /// Record `node` in last_touched_ after a cascade that rewrote its
  /// rank outside deliver() (seed re-seeding, delete zeroing).
  void touch_seed(NodeId node);
  /// Initial deltas from `node` to its out-links at depth 1, as if the
  /// node's rank just became `rank_value`. Cross-peer seed messages are
  /// tallied into `cross_out` when a placement is attached.
  std::vector<WorkItem> make_seed_items(NodeId node, double rank_value,
                                        std::uint64_t& cross_out);

  const Digraph& graph_;
  std::vector<double>& ranks_;
  PagerankOptions options_;
  const Placement* placement_;

  // probe bookkeeping: first-touch undo log + covered markers
  std::vector<std::pair<NodeId, double>> undo_log_;
  std::vector<std::uint32_t> covered_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> last_touched_;
};

/// Full document insertion against a mutable graph: adds the node with
/// its out-links, seeds it, and returns the propagation stats measured on
/// a CSR snapshot. Convenience used by examples/tests; the Table 4 bench
/// uses IncrementalPagerank directly.
PropagationStats insert_document(MutableDigraph& g,
                                 std::vector<double>& ranks,
                                 const std::vector<NodeId>& out_links,
                                 const PagerankOptions& options,
                                 NodeId* new_id_out = nullptr);

/// Full document deletion: propagates the negated rank, then isolates the
/// node in the graph and zeroes its rank.
PropagationStats delete_document(MutableDigraph& g,
                                 std::vector<double>& ranks, NodeId node,
                                 const PagerankOptions& options);

}  // namespace dprank
