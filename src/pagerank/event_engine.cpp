#include "pagerank/event_engine.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace dprank {

namespace {

struct WireUpdate {
  EdgeId edge;
  double value;
};

/// A wakeup token: "peer dst should look at its inbox at `time`".
/// Updates themselves wait in per-peer inboxes tagged with their arrival
/// times, so one wakeup can drain every batch that has arrived by then —
/// the batching real nodes do when their inbox fills while they work.
struct Wakeup {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for determinism
  PeerId dst = 0;
};

struct WakeupLater {
  bool operator()(const Wakeup& a, const Wakeup& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct InboxEntry {
  double arrival = 0.0;
  std::vector<WireUpdate> updates;
};

}  // namespace

EventDrivenPagerank::EventDrivenPagerank(const Digraph& g,
                                         const Placement& placement,
                                         const PagerankOptions& options,
                                         EventNetParams net)
    : graph_(g), placement_(placement), options_(options), net_(net) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "EventDrivenPagerank: placement does not cover the graph");
  }
}

EventRunResult EventDrivenPagerank::run(std::uint64_t event_cap) {
  const NodeId n = graph_.num_nodes();
  const PeerId num_peers = placement_.num_peers();
  const double d = options_.damping;
  const double base = 1.0 - d;

  EventRunResult result;
  result.ranks.assign(n, options_.initial_rank);
  std::vector<double> contrib(graph_.num_edges(), 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto deg = graph_.out_degree(u);
    if (deg == 0) continue;
    const double c = options_.initial_rank / static_cast<double>(deg);
    for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u);
         ++e) {
      contrib[e] = c;
    }
  }

  std::vector<std::vector<NodeId>> docs_of(num_peers);
  for (NodeId v = 0; v < n; ++v) docs_of[placement_.peer_of(v)].push_back(v);

  std::vector<double> cpu_free(num_peers, 0.0);
  std::vector<double> uplink_free(num_peers, 0.0);
  std::vector<double> next_drain(num_peers, 0.0);  // batching gate
  std::vector<std::deque<InboxEntry>> inbox(num_peers);
  std::priority_queue<Wakeup, std::vector<Wakeup>, WakeupLater> queue;
  std::uint64_t seq = 0;

  // Scratch reused across events.
  std::vector<std::vector<WireUpdate>> outgoing(num_peers);
  std::vector<PeerId> touched_peers;
  std::vector<NodeId> changed;
  std::unordered_set<NodeId> changed_set;

  auto mark_changed = [&](NodeId v) {
    if (changed_set.insert(v).second) changed.push_back(v);
  };

  // Run the local recompute cascade at `peer` from the pre-seeded
  // `changed` set: same-peer forwards are applied and reprocessed
  // immediately; cross-peer forwards accumulate in `outgoing`.
  // Returns the number of document recomputes performed.
  auto run_local_cascade = [&](PeerId peer) -> std::uint64_t {
    std::uint64_t recomputed = 0;
    std::vector<NodeId> work;
    while (!changed.empty()) {
      work.clear();
      work.swap(changed);
      changed_set.clear();
      for (const NodeId v : work) {
        double acc = 0.0;
        for (const EdgeId e : graph_.in_to_out_edge(v)) acc += contrib[e];
        const double newrank = base + d * acc;
        const double rel = relative_change(result.ranks[v], newrank);
        result.ranks[v] = newrank;
        ++recomputed;
        if (rel <= options_.epsilon) continue;
        const auto deg = graph_.out_degree(v);
        if (deg == 0) continue;
        const double c = newrank / static_cast<double>(deg);
        for (EdgeId e = graph_.out_edge_begin(v);
             e < graph_.out_edge_end(v); ++e) {
          const NodeId w = graph_.out_target(e);
          const PeerId pw = placement_.peer_of(w);
          if (pw == peer) {
            contrib[e] = c;
            mark_changed(w);
          } else {
            if (outgoing[pw].empty()) touched_peers.push_back(pw);
            outgoing[pw].push_back({e, c});
          }
        }
      }
    }
    return recomputed;
  };

  // Serialize this peer's pending batches onto its uplink, starting no
  // earlier than `ready`; deposit them in destination inboxes and
  // schedule wakeups honoring each destination's batching gate.
  auto dispatch = [&](PeerId src, double ready) {
    for (const PeerId q : touched_peers) {
      auto& batch = outgoing[q];
      const double bytes =
          static_cast<double>(batch.size()) * net_.message_bytes;
      const double depart = std::max(ready, uplink_free[src]) +
                            bytes / net_.bandwidth_bytes_per_sec;
      uplink_free[src] = depart;
      result.messages += batch.size();
      ++result.transfers;
      const double arrival = depart + net_.latency_sec;
      inbox[q].push_back({arrival, std::move(batch)});
      queue.push({std::max(arrival, next_drain[q]), seq++, q});
      batch.clear();
    }
    touched_peers.clear();
  };

  // t = 0: every peer recomputes its documents from the initial
  // contributions (Fig. 1's first pass) and ships the resulting batches.
  for (PeerId p = 0; p < num_peers; ++p) {
    for (const NodeId v : docs_of[p]) mark_changed(v);
    const auto recomputed = run_local_cascade(p);
    result.recomputes += recomputed;
    const double end =
        static_cast<double>(recomputed) * net_.compute_seconds_per_doc;
    cpu_free[p] = end;
    result.completion_seconds = std::max(result.completion_seconds, end);
    dispatch(p, end);
  }

  result.converged = true;
  while (!queue.empty()) {
    if (event_cap != 0 && result.events >= event_cap) {
      result.converged = false;
      break;
    }
    const Wakeup ev = queue.top();
    queue.pop();
    const PeerId p = ev.dst;
    // Drain every inbox batch that has arrived by the time the CPU
    // actually starts (mail piles up while the peer works or while the
    // batching gate holds).
    const double start = std::max({ev.time, cpu_free[p], next_drain[p]});
    bool any = false;
    while (!inbox[p].empty() && inbox[p].front().arrival <= start) {
      for (const auto& u : inbox[p].front().updates) {
        contrib[u.edge] = u.value;
        mark_changed(graph_.out_target(u.edge));
      }
      inbox[p].pop_front();
      any = true;
    }
    if (!any) {
      // Stale wakeup (a previous wakeup already drained these batches).
      // Reschedule if gated mail remains.
      if (!inbox[p].empty()) {
        queue.push(
            {std::max(inbox[p].front().arrival, next_drain[p]), seq++, p});
      }
      continue;
    }
    ++result.events;
    const auto recomputed = run_local_cascade(p);
    result.recomputes += recomputed;
    const double end =
        start + static_cast<double>(recomputed) * net_.compute_seconds_per_doc;
    cpu_free[p] = end;
    next_drain[p] = end + net_.min_batch_interval_sec;
    result.completion_seconds = std::max(result.completion_seconds, end);
    dispatch(p, end);
  }
  return result;
}

}  // namespace dprank
