#include "pagerank/async_runtime.hpp"

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

namespace dprank {

namespace {

/// One pagerank update on the wire: the sender's out-edge id names both
/// the destination document (out_target(edge)) and the contribution cell.
struct WireUpdate {
  EdgeId edge;
  double value;
};

/// MPSC mailbox. Senders push batches; the owner drains everything in a
/// single lock acquisition.
class Mailbox {
 public:
  /// Senders keep their batch vector (contents are copied into the queue
  /// under the lock), so a per-destination scratch buffer retains its
  /// capacity across pushes instead of being reallocated every flush.
  void push(const std::vector<WireUpdate>& batch) {
    {
      const std::lock_guard lock(mu_);
      for (const auto& u : batch) queue_.push_back(u);
    }
    cv_.notify_one();
  }

  void push_one(WireUpdate u) {
    {
      const std::lock_guard lock(mu_);
      queue_.push_back(u);
    }
    cv_.notify_one();
  }

  /// Blocks until there is mail or `stop` becomes true. Returns the
  /// drained queue (empty only on stop) in a buffer from `pool` — the
  /// owner's pool, since only the owning thread drains; release the
  /// buffer back once the batch is applied.
  std::vector<WireUpdate> drain_or_stop(const std::atomic<bool>& stop,
                                        BufferPool<WireUpdate>& pool) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || stop.load(); });
    std::vector<WireUpdate> out = pool.acquire();
    out.insert(out.end(), queue_.begin(), queue_.end());
    queue_.clear();
    return out;
  }

  void notify() { cv_.notify_one(); }

  /// Post-join probe for the end-of-run invariant walk: quiescence means
  /// every queue drained.
  [[nodiscard]] bool empty() {
    const std::lock_guard lock(mu_);
    return queue_.empty();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WireUpdate> queue_;
};

}  // namespace

AsyncPagerankRuntime::AsyncPagerankRuntime(const Digraph& g,
                                           const Placement& placement,
                                           const PagerankOptions& options)
    : graph_(g), placement_(placement), options_(options) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "AsyncPagerankRuntime: placement does not cover the graph");
  }
}

AsyncRunResult AsyncPagerankRuntime::run(std::uint64_t message_cap) {
  return run_impl(message_cap, nullptr);
}

AsyncRunResult AsyncPagerankRuntime::run_with_churn(
    const ChurnParams& churn, std::uint64_t message_cap) {
  return run_impl(message_cap, &churn);
}

AsyncRunResult AsyncPagerankRuntime::run_impl(std::uint64_t message_cap,
                                              const ChurnParams* churn) {
  const NodeId n = graph_.num_nodes();
  const PeerId num_peers = placement_.num_peers();

  AsyncRunResult result;
  result.ranks.assign(n, options_.initial_rank);
  std::vector<double> contrib(graph_.num_edges(), 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto deg = graph_.out_degree(u);
    if (deg == 0) continue;
    const double c = options_.initial_rank / static_cast<double>(deg);
    for (EdgeId e = graph_.out_edge_begin(u); e < graph_.out_edge_end(u); ++e) {
      contrib[e] = c;
    }
  }

  std::vector<Mailbox> mailbox(num_peers);
  std::vector<std::vector<NodeId>> docs_of(num_peers);
  for (NodeId v = 0; v < n; ++v) docs_of[placement_.peer_of(v)].push_back(v);

  // Credit counter: one unit per queued wire update plus one startup unit
  // per peer. Quiescence <=> counter reaches zero.
  std::atomic<std::int64_t> inflight{static_cast<std::int64_t>(num_peers)};
  std::atomic<bool> stop{false};
  // Churn gates: a paused peer sleeps on pause_cv (without consuming
  // credits) until resumed or stopped. deque<atomic> because atomics are
  // immovable. The controller flips the flags under pause_mu before
  // notifying, so a worker checking the predicate under the lock cannot
  // miss a resume.
  std::deque<std::atomic<bool>> paused(num_peers);
  for (auto& p : paused) p.store(false);
  std::mutex pause_mu;
  std::condition_variable pause_cv;
  // True while the churn controller is running. The test pause seam only
  // injects a pause while this holds (checked under pause_mu, which
  // orders it against the controller's final resume-all), so an injected
  // pause can never be left set after the last resume — no wakeup is
  // ever missed.
  std::atomic<bool> churn_active{churn != nullptr && num_peers > 1};
  std::atomic<std::uint64_t> cross_msgs{0};
  std::atomic<std::uint64_t> local_updates{0};
  std::atomic<std::uint64_t> recomputes{0};
  std::atomic<std::uint64_t> capped_discards{0};
  std::atomic<std::uint64_t> paused_holds{0};
  std::atomic<bool> capped{false};
  // Live registry handles, resolved once before the workers spawn (name
  // lookup takes the registry mutex; updates through these are lock-free
  // and hit the counters from every worker thread concurrently).
  obs::Counter* m_cross = nullptr;
  obs::Counter* m_local = nullptr;
  obs::Counter* m_recomputes = nullptr;
  obs::Counter* m_discards = nullptr;
  obs::Histogram* m_batch = nullptr;
  if (metrics_ != nullptr) {
    m_cross = &metrics_->counter("async.cross_messages");
    m_local = &metrics_->counter("async.local_updates");
    m_recomputes = &metrics_->counter("async.recomputes");
    m_discards = &metrics_->counter("async.capped_discards");
    m_batch = &metrics_->histogram("async.mail_batch_size");
  }
  std::mutex done_mu;
  std::condition_variable done_cv;

  auto release_credits = [&](std::int64_t k) {
    if (inflight.fetch_sub(k) == k) {
      const std::lock_guard lock(done_mu);
      done_cv.notify_one();
    }
  };

  const double d = options_.damping;
  const double base = 1.0 - d;

  // Per-worker recycled mail buffers (each worker owns its own pool —
  // they are not thread-safe); reuse totals feed net.pool_reuse.
  std::atomic<std::uint64_t> pool_reuses{0};
  std::atomic<std::uint64_t> pool_allocs{0};

  auto worker = [&](PeerId me) {
    std::vector<std::vector<WireUpdate>> outgoing(num_peers);
    BufferPool<WireUpdate> mail_pool;
    // `changed` collects documents needing recompute, deduplicated;
    // `work` is its double buffer — the pair swap every cascade round,
    // keeping both capacities warm.
    std::vector<NodeId> changed;
    std::vector<NodeId> work;
    std::unordered_set<NodeId> changed_set;

    auto recompute_and_send = [&](NodeId v) {
      double acc = 0.0;
      for (const EdgeId e : graph_.in_to_out_edge(v)) acc += contrib[e];
      const double newrank = base + d * acc;
      const double rel = relative_change(result.ranks[v], newrank);
      result.ranks[v] = newrank;
      recomputes.fetch_add(1, std::memory_order_relaxed);
      if (m_recomputes != nullptr) m_recomputes->add(1);
      if (rel <= options_.epsilon) return;
      const auto deg = graph_.out_degree(v);
      if (deg == 0) return;
      const double c = newrank / static_cast<double>(deg);
      for (EdgeId e = graph_.out_edge_begin(v); e < graph_.out_edge_end(v);
           ++e) {
        const PeerId pv = placement_.peer_of(graph_.out_target(e));
        outgoing[pv].push_back({e, c});
      }
    };

    auto flush_outgoing = [&]() {
      for (PeerId p = 0; p < num_peers; ++p) {
        if (outgoing[p].empty()) continue;
        if (p == me) {
          // Local deliveries: apply immediately, schedule recomputes.
          local_updates.fetch_add(outgoing[p].size(),
                                  std::memory_order_relaxed);
          if (m_local != nullptr) m_local->add(outgoing[p].size());
          for (const auto& u : outgoing[p]) {
            contrib[u.edge] = u.value;
            const NodeId v = graph_.out_target(u.edge);
            if (changed_set.insert(v).second) changed.push_back(v);
          }
        } else {
          cross_msgs.fetch_add(outgoing[p].size(),
                               std::memory_order_relaxed);
          if (m_cross != nullptr) m_cross->add(outgoing[p].size());
          inflight.fetch_add(static_cast<std::int64_t>(outgoing[p].size()));
          mailbox[p].push(outgoing[p]);
        }
        outgoing[p].clear();
      }
    };

    // Startup: Fig. 1's "first pass" — every hosted document recomputes
    // from the initial contributions and sends if it moved.
    for (const NodeId v : docs_of[me]) recompute_and_send(v);
    // Drain local cascades before releasing the startup credit.
    for (;;) {
      flush_outgoing();
      if (changed.empty()) break;
      work.clear();
      work.swap(changed);
      changed_set.clear();
      for (const NodeId v : work) recompute_and_send(v);
    }
    release_credits(1);

    // Sleep until this peer is unpaused (or the run stops). Returns true
    // if the peer was actually paused on entry.
    auto wait_while_paused = [&]() -> bool {
      if (!paused[me].load(std::memory_order_acquire)) return false;
      std::unique_lock lock(pause_mu);
      pause_cv.wait(lock, [&] {
        return !paused[me].load(std::memory_order_acquire) || stop.load();
      });
      return true;
    };

    // Message loop.
    while (!stop.load()) {
      (void)wait_while_paused();
      std::vector<WireUpdate> mail =
          mailbox[me].drain_or_stop(stop, mail_pool);
      if (mail.empty()) continue;  // stop raised
      if (test_pause_after_drain_ && test_pause_after_drain_(me)) {
        // Test seam: simulate a churn pause that landed while this thread
        // was blocked in the drain above — exactly the window the
        // post-drain gate below closes.
        const std::lock_guard lock(pause_mu);
        if (churn_active.load(std::memory_order_relaxed)) {
          paused[me].store(true, std::memory_order_release);
        }
      }
      // The pause may have landed while this thread was blocked in the
      // drain above; the pre-drain gate never saw it. A paused peer must
      // not apply updates, so hold the batch — credits retained, nothing
      // lost — until the controller resumes us.
      if (paused[me].load(std::memory_order_acquire)) {
        paused_holds.fetch_add(1, std::memory_order_relaxed);
        (void)wait_while_paused();
      }
      if (m_batch != nullptr) {
        m_batch->record(static_cast<double>(mail.size()));
      }
      if (message_cap != 0 &&
          cross_msgs.load(std::memory_order_relaxed) > message_cap) {
        // Over the cap: the batch is dropped on the floor. It was already
        // counted sent in cross_msgs when queued — tally the discard
        // separately so delivered = sent - discarded stays truthful.
        capped.store(true);
        capped_discards.fetch_add(mail.size(), std::memory_order_relaxed);
        if (m_discards != nullptr) m_discards->add(mail.size());
        release_credits(static_cast<std::int64_t>(mail.size()));
        mail_pool.release(std::move(mail));
        continue;
      }
      // Apply the whole batch, then recompute each touched document once
      // (the §4.6.1 coalesced-transfer model).
      for (const auto& u : mail) {
        contrib[u.edge] = u.value;
        const NodeId v = graph_.out_target(u.edge);
        if (changed_set.insert(v).second) changed.push_back(v);
      }
      while (!changed.empty()) {
        work.clear();
        work.swap(changed);
        changed_set.clear();
        for (const NodeId v : work) recompute_and_send(v);
        flush_outgoing();
      }
      const auto credits = static_cast<std::int64_t>(mail.size());
      mail_pool.release(std::move(mail));
      release_credits(credits);
    }
    pool_reuses.fetch_add(mail_pool.reuses(), std::memory_order_relaxed);
    pool_allocs.fetch_add(mail_pool.allocations(), std::memory_order_relaxed);
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(num_peers);
    for (PeerId p = 0; p < num_peers; ++p) threads.emplace_back(worker, p);

    // Churn controller: pause/resume random peer subsets while the
    // computation runs. All peers are guaranteed resumed when it exits.
    std::jthread controller;
    if (churn != nullptr && num_peers > 1) {
      controller = std::jthread([&, params = *churn] {
        Rng rng(params.seed ^ 0xA5B5C5ULL);
        for (std::uint32_t cycle = 0;
             cycle < params.cycles && inflight.load() != 0; ++cycle) {
          const auto count = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     params.pause_fraction * num_peers));
          const auto victims =
              rng.sample_without_replacement(num_peers, count);
          for (const auto v : victims) paused[v].store(true);
          // The async runtime runs real threads; churn downtime is real
          // elapsed time, not simulated passes — there is no pass clock
          // to consult here.
          // dprank-analyze: allow(nondet-source) -- real-thread downtime
          // dprank-lint: allow(wall-clock)
          std::this_thread::sleep_for(
              std::chrono::microseconds(params.pause_microseconds));
          {
            // Resumes flip under pause_mu so a worker mid-predicate-check
            // cannot miss the wakeup.
            const std::lock_guard lock(pause_mu);
            for (const auto v : victims) paused[v].store(false);
          }
          pause_cv.notify_all();
          // Real inter-cycle gap, as above.
          // dprank-analyze: allow(nondet-source) -- real-thread downtime
          // dprank-lint: allow(wall-clock)
          std::this_thread::sleep_for(
              std::chrono::microseconds(params.pause_microseconds));
        }
        {
          const std::lock_guard lock(pause_mu);
          churn_active.store(false, std::memory_order_relaxed);
          for (auto& p : paused) p.store(false);
        }
        pause_cv.notify_all();
      });
    }

    {
      std::unique_lock lock(done_mu);
      done_cv.wait(lock, [&] { return inflight.load() == 0; });
    }
    stop.store(true);
    {
      // Pair with the pause predicate so no worker sleeps through stop.
      const std::lock_guard lock(pause_mu);
    }
    pause_cv.notify_all();
    for (PeerId p = 0; p < num_peers; ++p) mailbox[p].notify();
  }  // controller and worker jthreads join here

  // End-of-run invariant walk: quiescence was detected via the credit
  // counter, so every credit must be returned, every mailbox drained,
  // and the sent/discarded ledger consistent. A violation here means the
  // credit protocol lost or double-counted a unit — exactly the class of
  // bug the counter exists to rule out.
  if (contracts::enabled()) {
    [[maybe_unused]] const char* kSub = "pagerank";
    DPRANK_INVARIANT(inflight.load() == 0, kSub,
                     "async run joined with " +
                         std::to_string(inflight.load()) +
                         " delivery credit(s) outstanding");
    for (PeerId p = 0; p < num_peers; ++p) {
      DPRANK_INVARIANT(mailbox[p].empty(), kSub,
                       "async run joined with undelivered mail for peer " +
                           std::to_string(p));
    }
    DPRANK_INVARIANT(cross_msgs.load() >= capped_discards.load(), kSub,
                     "more updates discarded by the message cap than were "
                     "ever sent cross-peer");
    DPRANK_INVARIANT(capped.load() || capped_discards.load() == 0, kSub,
                     "updates were discarded without the cap tripping");
    DPRANK_INVARIANT(num_peers == 0 || recomputes.load() >= n, kSub,
                     "startup pass skipped documents: " +
                         std::to_string(recomputes.load()) +
                         " recomputes for " + std::to_string(n) +
                         " documents");
  }

  result.cross_peer_messages = cross_msgs.load();
  result.local_updates = local_updates.load();
  result.recomputes = recomputes.load();
  result.capped_discards = capped_discards.load();
  result.paused_holds = paused_holds.load();
  result.converged = !capped.load();
  if (metrics_ != nullptr && result.paused_holds != 0) {
    metrics_->counter("async.paused_holds").add(result.paused_holds);
  }
  if (metrics_ != nullptr) {
    metrics_->counter("async.runs").add(1);
    if (result.converged) metrics_->counter("async.converged_runs").add(1);
    // Arena health of the mailbox hot path: recycled vs freshly allocated
    // drain buffers across all workers (a reuse ratio near 1 means the
    // message loop ran allocation-free after warm-up).
    metrics_->counter("net.pool_reuse").add(pool_reuses.load());
    metrics_->counter("net.pool_alloc").add(pool_allocs.load());
  }
  return result;
}

}  // namespace dprank
