#pragma once

// Threaded chaotic-iteration runtime (§2.3).
//
// The pass-based DistributedPagerank reproduces the paper's *evaluation
// methodology* (synchronized passes, instantaneous delivery). This
// runtime is the algorithm as it would actually be deployed: each peer is
// a thread with a mailbox, there is no global synchronization, and
// documents recompute whenever updates happen to arrive — Chazan &
// Miranker's chaotic relaxation, executed for real.
//
// Concurrency design (one writer per cell, no locks on the numeric data):
//  * rank[v] and the contribution cells of v's in-edges are written only
//    by the thread owning v's peer — an update message is (edge id,
//    value) and is applied by the *receiver*;
//  * mailboxes are mutex+condition_variable MPSC queues; receivers drain
//    the whole queue in one lock acquisition and coalesce updates per
//    document, the paper's §4.6.1 "collect together all the pagerank
//    messages" transfer model;
//  * termination is credit-counted: a global in-flight counter covers
//    every queued batch and startup unit; when it reaches zero the system
//    is quiescent (every queue empty, no thread mid-cascade) and the
//    coordinator stops the workers.
//
// Determinism: the final fixed point depends on message interleaving only
// within the epsilon tolerance; tests assert agreement with the
// centralized solver at the quality level Table 2 predicts.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "p2p/placement.hpp"
#include "pagerank/options.hpp"

namespace dprank {

struct AsyncRunResult {
  std::vector<double> ranks;
  std::uint64_t cross_peer_messages = 0;  // sent (includes later discards)
  std::uint64_t local_updates = 0;
  std::uint64_t recomputes = 0;
  /// Updates a capped run discarded after the message cap tripped. Sent
  /// and discarded are tallied separately: cross_peer_messages counts
  /// what the wire carried, delivered_messages() what receivers applied.
  std::uint64_t capped_discards = 0;
  /// Batches a paused peer held at the post-drain churn gate instead of
  /// processing while paused (regression counter for the gate race).
  std::uint64_t paused_holds = 0;
  bool converged = false;  // false only if the safety cap tripped
  [[nodiscard]] std::uint64_t delivered_messages() const {
    return cross_peer_messages - capped_discards;
  }
};

class AsyncPagerankRuntime {
 public:
  /// One thread per peer is spawned by run(); keep placements used here
  /// to a few dozen peers. (The paper's 500-peer sweeps use the
  /// pass-based engine; this runtime exists to validate the asynchronous
  /// algorithm itself.)
  AsyncPagerankRuntime(const Digraph& g, const Placement& placement,
                       const PagerankOptions& options);
  AsyncPagerankRuntime(Digraph&&, const Placement&, PagerankOptions) = delete;
  AsyncPagerankRuntime(const Digraph&, Placement&&, PagerankOptions) = delete;
  AsyncPagerankRuntime(Digraph&&, Placement&&, PagerankOptions) = delete;

  /// Run the chaotic iteration to quiescence and return the result.
  /// `message_cap` aborts a runaway cascade (0 = no cap).
  [[nodiscard]] AsyncRunResult run(std::uint64_t message_cap = 0);

  /// Real-time churn injection: a controller thread repeatedly pauses a
  /// random fraction of the peer threads for `pause_microseconds` and
  /// resumes them, `cycles` times. Paused peers neither drain their
  /// mailboxes nor send; messages simply wait (the transport analogue of
  /// §3.1's store-and-resend). A pause that lands while a peer is blocked
  /// on its mailbox still gates the batch: the drained mail is held,
  /// credits retained, until the controller resumes the peer (counted in
  /// AsyncRunResult::paused_holds). Quiescence detection is unaffected —
  /// held messages keep their credits — so the run still terminates at
  /// the true fixed point.
  struct ChurnParams {
    std::uint32_t cycles = 10;
    double pause_fraction = 0.3;
    std::uint32_t pause_microseconds = 500;
    std::uint64_t seed = 42;
  };
  [[nodiscard]] AsyncRunResult run_with_churn(const ChurnParams& churn,
                                              std::uint64_t message_cap = 0);

  /// Stream live telemetry into `registry` during run(): worker threads
  /// update `async.cross_messages`, `async.local_updates` and
  /// `async.recomputes` counters and the `async.mail_batch_size`
  /// histogram concurrently (the registry's primitives are relaxed
  /// atomics, so this is the intended concurrent-writer usage). The
  /// registry must outlive the run. Call before run().
  void bind_metrics(obs::MetricsRegistry& registry) { metrics_ = &registry; }

  /// Test-only seam for the post-drain churn gate. When set, a worker
  /// that drains a non-empty batch calls `hook(me)` immediately after the
  /// drain returns; if it returns true the runtime pauses that peer right
  /// there — deterministically recreating a churn pause landing inside
  /// the drain's blind window, instead of racing real controller timing
  /// against the mailbox wait. The injected pause is applied only while
  /// the churn controller is still live (so its final resume-all is
  /// guaranteed to clear it); outside run_with_churn() the hook is inert.
  void set_test_pause_after_drain(std::function<bool(PeerId)> hook) {
    test_pause_after_drain_ = std::move(hook);
  }

 private:
  AsyncRunResult run_impl(std::uint64_t message_cap,
                          const ChurnParams* churn);

  const Digraph& graph_;
  const Placement& placement_;
  PagerankOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::function<bool(PeerId)> test_pause_after_drain_;
};

}  // namespace dprank
