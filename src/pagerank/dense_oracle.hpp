#pragma once

// Dense linear-algebra oracle for pagerank (testing aid).
//
// Every engine in this library iterates toward the fixed point of
//   R = (1 - d) * 1 + d * A^T_w R,
// i.e. the solution of the linear system (I - d A^T_w) R = (1 - d) * 1,
// where A_w is the out-degree-normalized link matrix (Eq. 2 of the
// paper). For small graphs this system can be solved *directly* by
// Gaussian elimination with partial pivoting — no iteration, no
// epsilon, no shared code with the engines — giving an independent
// ground truth the iterative solvers are tested against.
//
// O(n^3) time, O(n^2) memory: intended for graphs up to a few hundred
// nodes inside the test suite.

#include <vector>

#include "graph/digraph.hpp"

namespace dprank {

/// Direct solve of the pagerank system. Throws std::invalid_argument for
/// graphs larger than `max_nodes` (guard against accidental O(n^3) on a
/// web-scale graph) and std::runtime_error if the system is singular
/// (cannot happen for 0 < damping < 1).
[[nodiscard]] std::vector<double> dense_pagerank_oracle(
    const Digraph& g, double damping = 0.85, NodeId max_nodes = 2000);

/// Solve a general dense system M x = b by Gaussian elimination with
/// partial pivoting (row-major M of size n*n). Exposed for tests.
[[nodiscard]] std::vector<double> solve_dense(std::vector<double> m,
                                              std::vector<double> b);

}  // namespace dprank
