#include "pagerank/centralized.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dprank {

void pagerank_sweep(const Digraph& g, double damping,
                    const std::vector<double>& in, std::vector<double>& out) {
  const NodeId n = g.num_nodes();
  if (in.size() != n || out.size() != n) {
    throw std::invalid_argument("pagerank_sweep: size mismatch");
  }
  const double base = 1.0 - damping;
  for (NodeId v = 0; v < n; ++v) {
    double acc = 0.0;
    for (const NodeId u : g.in_neighbors(v)) {
      acc += in[u] / static_cast<double>(g.out_degree(u));
    }
    out[v] = base + damping * acc;
  }
}

CentralizedResult centralized_pagerank_extrapolated(
    const Digraph& g, double damping, double tolerance,
    std::uint64_t max_iterations, std::uint32_t period) {
  if (period < 3) {
    throw std::invalid_argument(
        "centralized_pagerank_extrapolated: period must be >= 3");
  }
  const NodeId n = g.num_nodes();
  CentralizedResult result;
  result.ranks.assign(n, 1.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> prev1(n, 0.0);  // x_{m-1}
  std::vector<double> prev2(n, 0.0);  // x_{m-2}

  for (std::uint64_t it = 0; it < max_iterations; ++it) {
    pagerank_sweep(g, damping, result.ranks, next);
    double worst = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      worst = std::max(worst, relative_change(result.ranks[v], next[v]));
    }
    result.ranks.swap(next);
    result.iterations = it + 1;
    result.final_max_rel_change = worst;
    if (worst < tolerance) {
      result.converged = true;
      break;
    }

    // result.ranks now holds x_m with m = it + 1. At each extrapolation
    // point, annihilate the dominant error mode: successive difference
    // vectors satisfy delta_m ~ r * delta_{m-1} with r the (signed)
    // dominant eigenvalue of the damped operator, so the limit is
    // x* ~ x_m + r/(1-r) * delta_m. r is estimated by the Rayleigh-style
    // projection <delta_m, delta_{m-1}> / <delta_{m-1}, delta_{m-1}>,
    // which keeps its sign — the property the acceleration needs to be
    // stable on oscillating modes.
    const std::uint64_t m = it + 1;
    if (m % period == period - 2) prev2 = result.ranks;
    if (m % period == period - 1) prev1 = result.ranks;
    if (m % period == 0 && m >= period) {
      double num = 0.0;
      double den = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        const double d_prev = prev1[v] - prev2[v];
        const double d_cur = result.ranks[v] - prev1[v];
        num += d_cur * d_prev;
        den += d_prev * d_prev;
      }
      if (den > 0.0) {
        const double r = num / den;
        if (std::abs(r) < 0.999) {  // |r| >= 1 would not be contracting
          const double gain = r / (1.0 - r);
          for (NodeId v = 0; v < n; ++v) {
            const double accel =
                result.ranks[v] + gain * (result.ranks[v] - prev1[v]);
            // Ranks are bounded below by (1 - d); reject overshoots.
            if (accel >= 1.0 - damping) result.ranks[v] = accel;
          }
        }
      }
    }
  }
  return result;
}

CentralizedResult centralized_pagerank(const Digraph& g, double damping,
                                       double tolerance,
                                       std::uint64_t max_iterations,
                                       double initial_rank) {
  const NodeId n = g.num_nodes();
  CentralizedResult result;
  result.ranks.assign(n, initial_rank);
  std::vector<double> next(n, 0.0);
  for (std::uint64_t it = 0; it < max_iterations; ++it) {
    pagerank_sweep(g, damping, result.ranks, next);
    double worst = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      worst = std::max(worst, relative_change(result.ranks[v], next[v]));
    }
    result.ranks.swap(next);
    result.iterations = it + 1;
    result.final_max_rel_change = worst;
    if (worst < tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dprank
