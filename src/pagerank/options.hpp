#pragma once

// Shared pagerank parameters.
//
// The reproduction uses the unnormalized Google form of Eq. 1:
//     R(i) = (1 - d) + d * sum_{j in in(i)} R(j) / outdeg(j)
// so ranks sum to ~N and a freshly inserted document is seeded with the
// paper's "initial pagerank value (1.0 in our case)" (§4.7). Dangling
// documents simply emit no contributions — the paper does not model
// dangling-mass redistribution, and using the identical operator in the
// distributed and centralized solvers makes Table 2's quality comparison
// exact.

#include <cstdint>

namespace dprank {

/// Order in which DistributedPagerank works through its dirty set.
enum class Schedule : std::uint8_t {
  /// Fig. 1 as written: every dirty document is recomputed each pass, in
  /// the order it was marked. The default — and the bit-compatibility
  /// baseline: ranks, pass history and traffic are unchanged from engines
  /// that predate the scheduler.
  kFifo = 0,
  /// Residual-prioritized (after D-Iteration and Das Sarma et al.): each
  /// dirty document carries the |Δcontribution| mass accumulated since
  /// its last recompute; every peer works highest-residual-first and may
  /// defer the low-residual tail of its bucket to a later pass, so one
  /// recompute (and one emission fan-out) coalesces several incoming
  /// updates. Converges to the same epsilon with fewer update messages;
  /// rank values differ from kFifo only within the epsilon tolerance.
  kResidual = 1,
};

struct PagerankOptions {
  /// Damping factor d of Eq. 1. Google's standard 0.85. The Figure 2
  /// illustration corresponds to d = 1 (increments 1/3 and 1/6 with no
  /// damping); tests reproduce that with damping = 1.0.
  double damping = 0.85;

  /// Error threshold epsilon of Fig. 1: a document whose relative rank
  /// change |old-new|/new exceeds epsilon propagates updates.
  double epsilon = 1e-3;

  /// Initial rank assigned to every document (and to inserted ones).
  double initial_rank = 1.0;

  /// Safety valve for the pass loop.
  std::uint64_t max_passes = 1'000'000;

  /// Pass-parallel worker count for DistributedPagerank (the §4.2 "all
  /// peers compute concurrently" methodology executed for real): the
  /// per-pass recompute is sharded by owning peer and, on clean/churn
  /// configurations, the update exchange is applied per destination
  /// peer from coalesced per-(source, destination) batches. Results are
  /// bit-identical for every thread count — threads change wall time
  /// only. 1 = fully sequential (no pool).
  std::uint32_t threads = 1;

  /// Opt-in §4.6.1 coalesced-transfer billing for the batched exchange:
  /// the k updates a source peer sends one destination in a pass travel
  /// as ONE wire message of batch_header_bytes + k * batch_payload_bytes
  /// (TrafficMeter::record_batch), instead of k separate 24-byte
  /// messages. Changes the traffic model, not the ranks: convergence and
  /// pass history stay identical; traffic().messages() becomes the batch
  /// count with the per-update count in traffic().batched_updates().
  /// Only the batched exchange coalesces — fault/overlay/replica runs
  /// and outbox drains always bill per update.
  bool coalesce_wire = false;

  /// Wire framing for coalesce_wire (§4.6.1: 16-byte GUID + 8-byte rank
  /// per update behind one transport header).
  std::uint32_t batch_header_bytes = 16;
  std::uint32_t batch_payload_bytes = 24;

  /// Dirty-set processing order; see Schedule. CLI: --schedule.
  Schedule schedule = Schedule::kFifo;

  /// kResidual sub-flag: start each pass with a loosened emission
  /// threshold that tightens toward epsilon as the global residual falls
  /// (documents whose change clears epsilon but not the loosened
  /// threshold stay dirty rather than emitting, so no update is lost —
  /// it is sent once the schedule tightens). Cuts early-phase message
  /// storms; final quality is still governed by epsilon. CLI:
  /// --adaptive-epsilon.
  bool adaptive_epsilon = false;

  /// kResidual tuning: a document is deferred when its relative residual
  /// falls below residual_defer_ratio x the previous pass's max relative
  /// change (no deferral once that max is within epsilon — the endgame
  /// runs exhaustively). Each peer always processes its highest-residual
  /// document, and no document is deferred more than residual_max_defer
  /// consecutive passes, which bounds staleness and guarantees progress.
  double residual_defer_ratio = 0.5;
  std::uint32_t residual_max_defer = 8;

  /// Run the engine's full invariant walk (DistributedPagerank
  /// validate_state(); see common/contracts.hpp) every n-th pass boundary
  /// and once more at termination. 0 disables periodic validation. The
  /// checks are no-ops when contracts are compiled out
  /// (DPRANK_CHECK_INVARIANTS=OFF), so leaving this set in release builds
  /// costs nothing. CLI: --check-invariants [n].
  std::uint64_t validate_every_n_passes = 0;
};

/// Relative change |oldv - newv| / |newv| with a guard for newv == 0
/// (falls back to the absolute change, which then compares directly
/// against epsilon).
[[nodiscard]] inline double relative_change(double oldv, double newv) {
  const double diff = oldv > newv ? oldv - newv : newv - oldv;
  const double denom = newv > 0 ? newv : (newv < 0 ? -newv : 0.0);
  return denom > 0 ? diff / denom : diff;
}

}  // namespace dprank
