#pragma once

// Shared pagerank parameters.
//
// The reproduction uses the unnormalized Google form of Eq. 1:
//     R(i) = (1 - d) + d * sum_{j in in(i)} R(j) / outdeg(j)
// so ranks sum to ~N and a freshly inserted document is seeded with the
// paper's "initial pagerank value (1.0 in our case)" (§4.7). Dangling
// documents simply emit no contributions — the paper does not model
// dangling-mass redistribution, and using the identical operator in the
// distributed and centralized solvers makes Table 2's quality comparison
// exact.

#include <cstdint>

namespace dprank {

struct PagerankOptions {
  /// Damping factor d of Eq. 1. Google's standard 0.85. The Figure 2
  /// illustration corresponds to d = 1 (increments 1/3 and 1/6 with no
  /// damping); tests reproduce that with damping = 1.0.
  double damping = 0.85;

  /// Error threshold epsilon of Fig. 1: a document whose relative rank
  /// change |old-new|/new exceeds epsilon propagates updates.
  double epsilon = 1e-3;

  /// Initial rank assigned to every document (and to inserted ones).
  double initial_rank = 1.0;

  /// Safety valve for the pass loop.
  std::uint64_t max_passes = 1'000'000;
};

/// Relative change |oldv - newv| / |newv| with a guard for newv == 0
/// (falls back to the absolute change, which then compares directly
/// against epsilon).
[[nodiscard]] inline double relative_change(double oldv, double newv) {
  const double diff = oldv > newv ? oldv - newv : newv - oldv;
  const double denom = newv > 0 ? newv : (newv < 0 ? -newv : 0.0);
  return denom > 0 ? diff / denom : diff;
}

}  // namespace dprank
