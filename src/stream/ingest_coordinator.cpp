#include "stream/ingest_coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "pagerank/quality.hpp"

namespace dprank {

namespace {
// Per-cycle salt for the reconvergence campaign seeds ("RCNV"): cycle k
// of two same-config runs draws the same campaign, different cycles draw
// independent membership histories.
constexpr std::uint64_t kReconvergeSalt = 0x52434E56ULL;
}  // namespace

bool apply_structural_event(MutableDigraph& g,
                            std::vector<std::uint8_t>& deleted,
                            const StreamEvent& ev,
                            const StreamSourceHook& touch) {
  switch (ev.kind) {
    case StreamEvent::Kind::kInsert: {
      if (ev.node != g.num_nodes()) {
        throw std::invalid_argument(
            "apply_structural_event: insert id out of sequence (graph did "
            "not start from the stream's initial_docs)");
      }
      const NodeId id = g.add_node();
      deleted.push_back(0);
      if (touch) touch(id);
      for (const NodeId w : ev.out_links) {
        // Targets were live at emission time, but an earlier delete in
        // the same batch may have tombstoned one — skip links into it.
        if (w < id && deleted[w] == 0) g.add_edge(id, w);
      }
      return true;
    }
    case StreamEvent::Kind::kDelete: {
      const NodeId v = ev.node;
      if (v >= g.num_nodes() || deleted[v] != 0) return false;
      if (touch) {
        touch(v);
        for (const NodeId u : g.in_neighbors(v)) touch(u);
      }
      g.isolate_node(v);
      deleted[v] = 1;
      return true;
    }
    case StreamEvent::Kind::kAddEdge: {
      const NodeId u = ev.node;
      const NodeId v = ev.target;
      if (u >= g.num_nodes() || v >= g.num_nodes() || u == v) return false;
      if (deleted[u] != 0 || deleted[v] != 0) return false;
      if (g.has_edge(u, v)) return false;
      if (touch) touch(u);
      g.add_edge(u, v);
      return true;
    }
    case StreamEvent::Kind::kRemoveEdge: {
      const NodeId u = ev.node;
      if (u >= g.num_nodes() || deleted[u] != 0) return false;
      const std::uint32_t deg = g.out_degree(u);
      if (deg == 0) return false;
      const NodeId w = g.out_neighbors(u)[ev.ordinal % deg];
      if (touch) touch(u);
      g.remove_edge(u, w);
      return true;
    }
  }
  return false;
}

IngestCoordinator::IngestCoordinator(MutableDigraph graph,
                                     std::vector<double> ranks,
                                     IngestConfig config,
                                     obs::MetricsRegistry* metrics)
    : graph_(std::move(graph)),
      ranks_(std::move(ranks)),
      config_(std::move(config)),
      metrics_(metrics) {
  if (ranks_.size() != graph_.num_nodes()) {
    throw std::invalid_argument("IngestCoordinator: rank vector size");
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("IngestCoordinator: zero batch_size");
  }
  deleted_.assign(graph_.num_nodes(), 0);
  snap_epoch_.assign(graph_.num_nodes(), 0);
  pending_.reserve(config_.batch_size);
}

void IngestCoordinator::snapshot_source(NodeId u,
                                        std::vector<SourceSnapshot>& snaps) {
  // An insert allocated the id a moment ago: grow the parallel arrays
  // (rank 0 until the post-mutation assignment; tombstone flag is grown
  // by apply_structural_event itself).
  if (ranks_.size() < graph_.num_nodes()) {
    ranks_.resize(graph_.num_nodes(), 0.0);
    snap_epoch_.resize(graph_.num_nodes(), 0);
  }
  if (snap_epoch_[u] == batch_epoch_) return;  // first touch only
  snap_epoch_[u] = batch_epoch_;
  SourceSnapshot s;
  s.node = u;
  s.rank = ranks_[u];
  s.outs = graph_.out_neighbors(u);
  snaps.push_back(std::move(s));
}

IngestBatchStats IngestCoordinator::flush() {
  IngestBatchStats out;
  if (pending_.empty()) return out;
  // Telemetry measuring the harness, not the simulation: no control flow
  // depends on the reading.
  // dprank-analyze: allow(nondet-source) -- measures the harness only
  // dprank-lint: allow(wall-clock)
  const auto t0 = std::chrono::steady_clock::now();

  ++batch_epoch_;
  std::vector<SourceSnapshot> snaps;
  std::vector<NodeId> inserted;
  std::vector<NodeId> deleted_now;
  const auto touch = [this, &snaps](NodeId u) { snapshot_source(u, snaps); };

  // Tier 1: structure, in stream order (identical across batch sizes).
  for (const StreamEvent& ev : pending_) {
    const bool applied = apply_structural_event(graph_, deleted_, ev, touch);
    if (!applied) continue;
    if (ev.kind == StreamEvent::Kind::kInsert) inserted.push_back(ev.node);
    if (ev.kind == StreamEvent::Kind::kDelete) deleted_now.push_back(ev.node);
  }

  // Rank assignments outside the cascade: an inserted document enters at
  // its no-in-link fixed point (1-d) — in-links gained later in the same
  // batch arrive through the emission diff of their sources — and a
  // deleted document carries no rank from the instant it is isolated.
  const double d = config_.options.damping;
  for (const NodeId id : inserted) {
    if (deleted_[id] == 0) ranks_[id] = 1.0 - d;
  }
  for (const NodeId v : deleted_now) ranks_[v] = 0.0;

  // Tier 2: fold the batch into one emission diff. Old emissions use the
  // snapshotted (pre-batch) rank and out-list; new emissions use the
  // current ones. Per-target sums coalesce naturally in inject_batch.
  std::vector<std::pair<NodeId, double>> deltas;
  for (const SourceSnapshot& s : snaps) {
    if (!s.outs.empty() && s.rank != 0.0) {
      const double per =
          d * s.rank / static_cast<double>(s.outs.size());
      for (const NodeId w : s.outs) {
        if (deleted_[w] == 0) deltas.emplace_back(w, -per);
      }
    }
    const std::vector<NodeId>& outs = graph_.out_neighbors(s.node);
    if (!outs.empty() && ranks_[s.node] != 0.0) {
      const double per =
          d * ranks_[s.node] / static_cast<double>(outs.size());
      for (const NodeId w : outs) {
        if (deleted_[w] == 0) deltas.emplace_back(w, per);
      }
    }
  }

  out.events = pending_.size();
  out.coalesced_seeds = deltas.size();
  const Digraph snapshot = graph_.freeze();
  IncrementalPagerank engine(snapshot, ranks_, config_.options);
  out.cascade = engine.inject_batch(std::move(deltas));

  last_batch_touched_ = engine.last_touched();
  last_batch_touched_.insert(last_batch_touched_.end(), inserted.begin(),
                             inserted.end());
  last_batch_touched_.insert(last_batch_touched_.end(), deleted_now.begin(),
                             deleted_now.end());
  std::sort(last_batch_touched_.begin(), last_batch_touched_.end());
  last_batch_touched_.erase(
      std::unique(last_batch_touched_.begin(), last_batch_touched_.end()),
      last_batch_touched_.end());

  events_applied_ += pending_.size();
  pending_.clear();
  ++version_;

  // Contract coverage for the live graph: until this sweep existed, no
  // src-side walk ever reached MutableDigraph::validate() — a corrupted
  // adjacency mirror would have served wrong ranks until the next full
  // reconvergence.
  if (contracts::enabled() && config_.sweep_every_batches != 0 &&
      ++batches_since_sweep_ >= config_.sweep_every_batches) {
    batches_since_sweep_ = 0;
    validate();
    if (metrics_ != nullptr) metrics_->counter("stream.contract_sweeps").add();
  }

  // dprank-analyze: allow(nondet-source) -- measures the harness only
  // dprank-lint: allow(wall-clock)
  const auto t1 = std::chrono::steady_clock::now();
  out.apply_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  if (metrics_ != nullptr) {
    metrics_->histogram("stream.batch_apply_us").record(out.apply_us);
    metrics_->counter("stream.batches").add();
    metrics_->counter("stream.events_applied").add(out.events);
    metrics_->counter("stream.cascade_updates")
        .add(out.cascade.updates_delivered);
  }
  return out;
}

void IngestCoordinator::reconverge() {
  flush();
  ChaosCampaignConfig cc = config_.reconverge;
  cc.options = config_.options;
  cc.seed = mix64(config_.seed ^ (kReconvergeSalt + reconverge_cycles_));
  const Digraph snapshot = graph_.freeze();
  ChaosCampaignReport rep = run_chaos_campaign(snapshot, cc, metrics_);
  ranks_ = std::move(rep.final_ranks);
  // The campaign ranks every node of the frozen graph; tombstones come
  // back at the isolated-node fixed point (1-d) and must stay zeroed.
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (deleted_[v] != 0) ranks_[v] = 0.0;
  }
  mass_ratios_.push_back(rep.result.mass_ratio);
  ++reconverge_cycles_;
  ++version_;
  last_batch_touched_.clear();  // whole vector replaced: full refresh
  if (contracts::enabled()) {
    batches_since_sweep_ = 0;
    validate();
    if (metrics_ != nullptr) metrics_->counter("stream.contract_sweeps").add();
  }
  if (metrics_ != nullptr) {
    metrics_->counter("stream.reconverges").add();
    metrics_->series("stream.mass_ratio")
        .append(static_cast<double>(events_offered_), rep.result.mass_ratio);
  }
}

void IngestCoordinator::offer(const StreamEvent& ev) {
  pending_.push_back(ev);
  ++events_offered_;
  if (pending_.size() >= config_.batch_size) flush();
  if (config_.reconverge_every_events > 0 &&
      events_offered_ % config_.reconverge_every_events == 0) {
    reconverge();
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("stream.pending")
        .set(static_cast<double>(pending_.size()));
  }
}

std::uint64_t IngestCoordinator::digest() const {
  return fnv1a_rank_digest(ranks_);
}

void IngestCoordinator::validate() const {
  if (!contracts::enabled()) return;
  constexpr const char* kSub = "stream";
  graph_.validate();
  DPRANK_INVARIANT(ranks_.size() == graph_.num_nodes(), kSub,
                   "rank vector out of step with the live graph");
  DPRANK_INVARIANT(deleted_.size() == graph_.num_nodes(), kSub,
                   "tombstone array out of step with the live graph");
  DPRANK_INVARIANT(snap_epoch_.size() == graph_.num_nodes(), kSub,
                   "snapshot-epoch array out of step with the live graph");
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (deleted_[v] == 0) continue;
    DPRANK_INVARIANT(ranks_[v] == 0.0, kSub,
                     "tombstoned document serves a nonzero rank");
    DPRANK_INVARIANT(graph_.out_degree(v) == 0, kSub,
                     "tombstoned document still has out-edges");
  }
}

}  // namespace dprank
