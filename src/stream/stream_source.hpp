#pragma once

// Seeded streaming-event source (ROADMAP item 1; §3.1/§4.7 as a live
// workload).
//
// The paper measures document insert/delete as one-shot probes against a
// converged system. A real P2P deployment sees them as a *stream*: docs
// appear, age, gain and lose links, and vanish while queries are being
// served. StreamSource synthesizes that stream deterministically — the
// whole event sequence is a pure function of the config (seed included),
// so every experiment replays bit-identically and a same-seed double run
// is the determinism contract the stream bench gates on.
//
// Attachment is Zipf-ish over document age (low live-slot index = old
// document), the discrete stand-in for preferential attachment: old,
// well-linked documents keep collecting links, matching the power-law
// degree evidence the paper's generator (§4.1) builds on. Deletions are
// uniform over the live population, with a floor that rerolls deletes
// into inserts so the stream can never empty the corpus.
//
// Events carry everything needed to apply them WITHOUT consulting the
// source again:
//  * kInsert names the id the document WILL get (the next MutableDigraph
//    node id — inserts are the only events that allocate ids, so the
//    source can predict them) plus its out-links;
//  * kRemoveEdge names the source document and an ordinal resolved
//    against the live out-list at apply time (ordinal % outdeg) — the
//    source does not track edges, but structural application order is
//    identical across batch sizes, so the resolution is deterministic;
//  * kAddEdge may duplicate an existing edge and kRemoveEdge may land on
//    an empty out-list; appliers treat both as no-ops.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "graph/digraph.hpp"

namespace dprank {

struct StreamEvent {
  enum class Kind : std::uint8_t { kInsert, kDelete, kAddEdge, kRemoveEdge };

  Kind kind = Kind::kInsert;
  /// 0-based position in the stream.
  std::uint64_t seq = 0;
  /// Arrival time in microseconds: seq / events_per_sec.
  std::uint64_t timestamp_us = 0;
  /// kInsert: the id the document will be assigned; kDelete: the victim;
  /// kAddEdge/kRemoveEdge: the source document.
  NodeId node = 0;
  /// kAddEdge only: the destination document.
  NodeId target = 0;
  /// kRemoveEdge only: out-slot selector, resolved as ordinal % outdeg
  /// against the source's out-list at apply time.
  std::uint32_t ordinal = 0;
  /// kInsert only: out-links of the new document (live at emission time).
  std::vector<NodeId> out_links;

  [[nodiscard]] bool operator==(const StreamEvent&) const = default;
};

struct StreamSourceConfig {
  /// Documents alive before the stream starts (ids 0..initial_docs-1).
  NodeId initial_docs = 0;
  /// Upper bound on events this source will emit; sizes the Zipf table.
  std::uint64_t max_events = 10'000;
  std::uint64_t seed = 42;
  /// Offered ingest rate; only affects timestamps, never event content.
  double events_per_sec = 1000.0;
  /// Zipf skew of the age-attachment distribution.
  double zipf_s = 0.9;

  // Event-kind mix (relative weights).
  std::uint32_t insert_weight = 3;
  std::uint32_t delete_weight = 1;
  std::uint32_t add_edge_weight = 4;
  std::uint32_t remove_edge_weight = 1;

  /// Deletes reroll into inserts at or below this live population.
  NodeId min_live_docs = 2;
  /// Inserted documents carry 1..max_out_links out-links.
  std::uint32_t max_out_links = 4;
};

class StreamSource {
 public:
  /// Throws std::invalid_argument when the weights are all zero or the
  /// initial corpus is smaller than min_live_docs (or than 2).
  explicit StreamSource(const StreamSourceConfig& config);

  /// Generate the next event. Deterministic: two sources built from
  /// equal configs emit equal sequences.
  StreamEvent next();

  /// Convenience: the next n events.
  [[nodiscard]] std::vector<StreamEvent> take(std::uint64_t n);

  [[nodiscard]] std::uint64_t emitted() const { return seq_; }
  [[nodiscard]] NodeId live_docs() const {
    return static_cast<NodeId>(live_.size());
  }
  /// Id the next insert will assign.
  [[nodiscard]] NodeId next_id() const { return next_id_; }

 private:
  /// Zipf-by-age sample from the live population.
  [[nodiscard]] NodeId sample_live();

  StreamSourceConfig config_;
  Rng rng_;
  ZipfSampler zipf_;
  /// Live documents in insertion-age order (index 0 = oldest).
  std::vector<NodeId> live_;
  std::uint64_t seq_ = 0;
  NodeId next_id_ = 0;
};

}  // namespace dprank
