#pragma once

// Batched streaming ingest over the incremental pagerank engine
// (ROADMAP item 1; §3.1/§4.7 run continuously).
//
// The coordinator owns the live graph + rank vector and applies stream
// events in three tiers of increasing cost:
//
//  1. STRUCTURE, per event: every mutation is applied to the
//     MutableDigraph in stream order, so the graph's evolution is
//     identical no matter how events are batched (this is what makes
//     per-event and batched ingest comparable, and what lets remove-edge
//     ordinals resolve deterministically).
//  2. RANK, per batch (the coalescing path): instead of cascading once
//     per event, the batch is folded into one emission diff. For every
//     document whose out-links or rank-at-the-source changed, the batch
//     records a first-touch snapshot (pre-batch out-list + rank); after
//     all mutations, each such source contributes
//       -d * rank_old / outdeg_old   to every old out-neighbor, and
//       +d * rank_new / outdeg_new   to every current out-neighbor.
//     The per-target sums — a document hit by several events in the
//     batch gets ONE coalesced delta — are injected as a single
//     IncrementalPagerank::inject_batch cascade over one frozen CSR
//     snapshot. Deltas aimed at deleted documents are dropped (their
//     mass leaves with the document; see pagerank/incremental.hpp).
//     Inserted documents enter at their no-in-link fixed point (1-d);
//     deletes zero the victim's rank in the same batch that isolates it,
//     so a served rank can never be dangling.
//  3. RECONVERGENCE, every reconverge_every_events offered events: the
//     pending batch is flushed and a full distributed run —
//     run_chaos_campaign over the frozen current graph, churn/crash
//     faults and the mass audit active — replaces the incrementally
//     maintained ranks with the engine's converged solution. The audit's
//     mass_ratio at each such quiescence point is recorded
//     (mass_ratios()); the stream bench gates on every entry being 1.0.
//     Reconvergence fires at fixed OFFERED-event marks, not applied
//     marks, so runs with different batch sizes reconverge on identical
//     graphs and adopt identical ranks — the property that makes the
//     staleness-vs-batch-size comparison well posed.
//
// Determinism: the coordinator's state after N offered events is a pure
// function of (initial graph, initial ranks, config, event sequence).
// Wall-clock reads exist only to feed the stream.batch_apply_us
// telemetry; no control flow depends on them.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/campaign.hpp"
#include "graph/mutable_digraph.hpp"
#include "obs/metrics.hpp"
#include "pagerank/incremental.hpp"
#include "pagerank/options.hpp"
#include "stream/stream_source.hpp"

namespace dprank {

/// Called with a document id whose out-links (or presence) are about to
/// change, BEFORE the mutation lands. Inserts report the new id right
/// after allocation (empty adjacency); deletes report the victim and
/// every in-neighbor whose out-list loses the edge.
using StreamSourceHook = std::function<void(NodeId)>;

/// Apply one event's structural mutation to (g, deleted) with the
/// coordinator's exact semantics — shared with the staleness oracle so
/// the oracle's replay of pending events cannot drift from ingest.
/// Returns false when the event is a no-op (duplicate edge, empty
/// out-list, tombstoned operand); no hook fires for no-ops. Throws
/// std::invalid_argument when an insert's predicted id does not match
/// the next node id (the graph did not start from the stream's
/// initial_docs).
bool apply_structural_event(MutableDigraph& g,
                            std::vector<std::uint8_t>& deleted,
                            const StreamEvent& ev,
                            const StreamSourceHook& touch = {});

struct IngestConfig {
  /// Events per rank batch; 1 = per-event cascades through the same
  /// code path (the equivalence tests compare the two).
  std::uint32_t batch_size = 16;
  /// Full distributed reconvergence every this many OFFERED events
  /// (0 = never). Forces a flush first.
  std::uint64_t reconverge_every_events = 0;
  /// Salts the per-cycle reconvergence campaign seeds.
  std::uint64_t seed = 42;
  /// Contract sweep (validate()) every this many applied batches when
  /// invariants are compiled in; 0 = only at reconvergence. The sweep
  /// walks the MutableDigraph's adjacency mirror — O(V+E) — so per-batch
  /// sweeping is for tests, not production ingest.
  std::uint32_t sweep_every_batches = 32;
  PagerankOptions options{};
  /// Template for the reconvergence campaigns; options and seed are
  /// overwritten per cycle.
  ChaosCampaignConfig reconverge{};
};

struct IngestBatchStats {
  std::uint64_t events = 0;        // events in the applied batch
  std::uint64_t coalesced_seeds = 0;  // deltas after per-target coalescing
  PropagationStats cascade{};
  double apply_us = 0.0;
};

class IngestCoordinator {
 public:
  /// `ranks` must be converged for `graph` (callers typically run the
  /// distributed engine or the centralized solver first) and sized to
  /// graph.num_nodes(). Throws std::invalid_argument on size mismatch
  /// or zero batch_size.
  IngestCoordinator(MutableDigraph graph, std::vector<double> ranks,
                    IngestConfig config,
                    obs::MetricsRegistry* metrics = nullptr);

  /// Enqueue one event; flushes when the batch fills and reconverges at
  /// the configured offered-event marks.
  void offer(const StreamEvent& ev);

  /// Apply the pending batch now (no-op when empty). Returns the batch
  /// stats (all-zero when empty).
  IngestBatchStats flush();

  /// Flush, then replace the rank vector with a full distributed
  /// reconvergence of the current graph (churn + mass audit active).
  void reconverge();

  [[nodiscard]] const MutableDigraph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<double>& ranks() const { return ranks_; }
  /// Tombstone flags, indexed by node id.
  [[nodiscard]] const std::vector<std::uint8_t>& deleted() const {
    return deleted_;
  }
  [[nodiscard]] bool is_deleted(NodeId v) const {
    return v < deleted_.size() && deleted_[v] != 0;
  }
  /// Bumped once per applied batch and once per reconvergence; query
  /// caches key on it.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t events_offered() const {
    return events_offered_;
  }
  [[nodiscard]] std::uint64_t events_applied() const {
    return events_applied_;
  }
  [[nodiscard]] const std::vector<StreamEvent>& pending() const {
    return pending_;
  }
  /// Documents whose rank the last batch changed (deduplicated; includes
  /// inserted and deleted documents). Empty right after reconvergence,
  /// which replaces the whole vector — consumers must full-refresh.
  [[nodiscard]] const std::vector<NodeId>& last_batch_touched() const {
    return last_batch_touched_;
  }
  /// mass_ratio observed at every reconvergence quiescence point.
  [[nodiscard]] const std::vector<double>& mass_ratios() const {
    return mass_ratios_;
  }
  [[nodiscard]] std::uint64_t reconverge_cycles() const {
    return reconverge_cycles_;
  }
  [[nodiscard]] const PagerankOptions& options() const {
    return config_.options;
  }
  /// FNV-1a digest of the current rank vector (determinism checks).
  [[nodiscard]] std::uint64_t digest() const;

  /// Contract sweep: cascades into graph_.validate() and checks the
  /// coordinator's own parallel-array invariants (rank/tombstone sizes,
  /// tombstoned documents isolated with zero rank). No-op unless
  /// contracts are compiled in. Runs automatically every
  /// sweep_every_batches applied batches and at every reconvergence;
  /// throws ContractViolation (subsystem "stream") on corruption.
  void validate() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates

  struct SourceSnapshot {
    NodeId node = 0;
    double rank = 0.0;
    std::vector<NodeId> outs;
  };

  /// First-touch snapshot of `u` for the current batch (grows the rank /
  /// tombstone / marker arrays when `u` was just allocated).
  void snapshot_source(NodeId u, std::vector<SourceSnapshot>& snaps);

  MutableDigraph graph_;
  std::vector<double> ranks_;
  std::vector<std::uint8_t> deleted_;
  IngestConfig config_;
  obs::MetricsRegistry* metrics_;

  std::vector<StreamEvent> pending_;
  std::uint64_t events_offered_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t reconverge_cycles_ = 0;
  std::vector<NodeId> last_batch_touched_;
  std::vector<double> mass_ratios_;

  // First-touch markers: snap_epoch_[v] == batch_epoch_ means v is
  // already snapshotted for the in-flight batch.
  std::uint32_t batch_epoch_ = 0;
  std::vector<std::uint32_t> snap_epoch_;
  std::uint32_t batches_since_sweep_ = 0;
};

}  // namespace dprank
