#include "stream/live_rank_service.hpp"

#include <algorithm>
#include <cmath>

#include "graph/mutable_digraph.hpp"
#include "pagerank/centralized.hpp"

namespace dprank {

LiveRankService::LiveRankService(const IngestCoordinator& coordinator,
                                 obs::MetricsRegistry* metrics)
    : coordinator_(coordinator), metrics_(metrics) {}

void LiveRankService::record_lag() {
  ++queries_;
  const auto lag = static_cast<double>(coordinator_.pending().size());
  if (metrics_ != nullptr) {
    metrics_->gauge("stream.ingest_lag_events").set(lag);
    metrics_->histogram("stream.query_lag_events").record(lag);
    metrics_->counter("stream.queries").add();
  }
}

double LiveRankService::rank_of(NodeId doc) {
  record_lag();
  const std::vector<double>& ranks = coordinator_.ranks();
  if (doc >= ranks.size() || coordinator_.is_deleted(doc)) return 0.0;
  return ranks[doc];
}

void LiveRankService::recompute_top(std::size_t k) {
  const std::vector<double>& ranks = coordinator_.ranks();
  cache_.clear();
  cache_.reserve(ranks.size());
  for (NodeId v = 0; v < ranks.size(); ++v) {
    if (!coordinator_.is_deleted(v)) cache_.emplace_back(v, ranks[v]);
  }
  const std::size_t keep = std::min(k, cache_.size());
  const auto by_rank_desc = [](const std::pair<NodeId, double>& a,
                               const std::pair<NodeId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  std::partial_sort(cache_.begin(),
                    cache_.begin() + static_cast<std::ptrdiff_t>(keep),
                    cache_.end(), by_rank_desc);
  cache_.resize(keep);
  cache_version_ = coordinator_.version();
  cache_valid_ = true;
  ++topk_recomputes_;
  if (metrics_ != nullptr) metrics_->counter("stream.topk_recomputes").add();
}

std::vector<std::pair<NodeId, double>> LiveRankService::top_k(std::size_t k) {
  record_lag();
  if (k == 0) return {};
  const std::uint64_t version = coordinator_.version();
  const bool fresh = cache_valid_ && cache_version_ == version;
  bool revalidated = false;
  if (cache_valid_ && !fresh && version == cache_version_ + 1 &&
      k <= cache_.size() && !cache_.empty()) {
    // One batch behind: the cached ordering survives iff no touched
    // document sits in the cached prefix or now outranks its floor.
    const std::vector<NodeId>& touched = coordinator_.last_batch_touched();
    const std::vector<double>& ranks = coordinator_.ranks();
    const double floor = cache_.back().second;
    revalidated = !touched.empty();
    for (const NodeId t : touched) {
      const bool in_cache =
          std::any_of(cache_.begin(), cache_.end(),
                      [t](const auto& e) { return e.first == t; });
      const double now =
          (t < ranks.size() && !coordinator_.is_deleted(t)) ? ranks[t] : 0.0;
      if (in_cache || now >= floor) {
        revalidated = false;
        break;
      }
    }
    if (revalidated) cache_version_ = version;
  }
  if (fresh || revalidated) {
    if (k <= cache_.size()) {
      ++topk_cache_hits_;
      if (metrics_ != nullptr) {
        metrics_->counter("stream.topk_cache_hits").add();
      }
      return {cache_.begin(),
              cache_.begin() + static_cast<std::ptrdiff_t>(k)};
    }
  }
  recompute_top(k);
  return cache_;
}

StalenessReport LiveRankService::measure_staleness(double oracle_tolerance) {
  // Oracle view: the live graph with pending events applied, solved to
  // convergence. Shares apply_structural_event with ingest so the replay
  // cannot drift from what flush() will do.
  MutableDigraph oracle_graph = coordinator_.graph();
  std::vector<std::uint8_t> oracle_dead = coordinator_.deleted();
  for (const StreamEvent& ev : coordinator_.pending()) {
    apply_structural_event(oracle_graph, oracle_dead, ev);
  }
  const PagerankOptions& opt = coordinator_.options();
  const CentralizedResult oracle =
      centralized_pagerank(oracle_graph.freeze(), opt.damping,
                           oracle_tolerance, 100'000, opt.initial_rank);

  const std::vector<double>& served = coordinator_.ranks();
  StalenessReport rep;
  rep.pending_events = coordinator_.pending().size();
  double sum = 0.0;
  for (std::size_t v = 0; v < oracle.ranks.size(); ++v) {
    // Pending inserts are unknown to the service and serve as 0;
    // tombstones (applied or pending) carry no oracle rank.
    const double s =
        (v < served.size() && !coordinator_.is_deleted(static_cast<NodeId>(v)))
            ? served[v]
            : 0.0;
    const double o = oracle_dead[v] != 0 ? 0.0 : oracle.ranks[v];
    if (s == 0.0 && o == 0.0) continue;
    const double diff = std::abs(s - o);
    sum += diff;
    rep.max_abs = std::max(rep.max_abs, diff);
    ++rep.docs;
  }
  rep.mean_abs = rep.docs == 0 ? 0.0 : sum / static_cast<double>(rep.docs);
  if (metrics_ != nullptr) {
    metrics_->series("stream.staleness")
        .append(static_cast<double>(coordinator_.events_offered()),
                rep.mean_abs);
    metrics_->gauge("stream.staleness_max").set(rep.max_abs);
  }
  return rep;
}

}  // namespace dprank
