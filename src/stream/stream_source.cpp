#include "stream/stream_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace dprank {

namespace {
// Retry budget for rejection sampling (distinct link targets, u != v).
// Falling out of the budget degrades gracefully (shorter link list /
// deterministic fallback target) instead of looping.
constexpr int kSampleTries = 16;
}  // namespace

StreamSource::StreamSource(const StreamSourceConfig& config)
    : config_(config),
      rng_(mix64(config.seed ^ 0x53545245414DULL)),  // "STREAM"
      zipf_(std::uint64_t{config.initial_docs} + config.max_events,
            config.zipf_s) {
  const std::uint64_t total = std::uint64_t{config.insert_weight} +
                              config.delete_weight + config.add_edge_weight +
                              config.remove_edge_weight;
  if (total == 0) {
    throw std::invalid_argument("StreamSource: all weights zero");
  }
  if (config.initial_docs < 2 || config.initial_docs < config.min_live_docs) {
    throw std::invalid_argument("StreamSource: initial corpus too small");
  }
  if (config.max_out_links == 0) {
    throw std::invalid_argument("StreamSource: max_out_links zero");
  }
  live_.resize(config.initial_docs);
  for (NodeId v = 0; v < config.initial_docs; ++v) live_[v] = v;
  next_id_ = config.initial_docs;
}

NodeId StreamSource::sample_live() {
  // The table covers the maximum possible population; indices beyond the
  // current live count are rejected. Low indices dominate under Zipf, so
  // rejections are rare and the loop terminates quickly.
  std::uint64_t idx = zipf_.sample(rng_);
  while (idx >= live_.size()) idx = zipf_.sample(rng_);
  return live_[idx];
}

StreamEvent StreamSource::next() {
  const std::uint64_t total = std::uint64_t{config_.insert_weight} +
                              config_.delete_weight + config_.add_edge_weight +
                              config_.remove_edge_weight;
  const std::uint64_t w = rng_.bounded(total);
  StreamEvent::Kind kind;
  if (w < config_.insert_weight) {
    kind = StreamEvent::Kind::kInsert;
  } else if (w < std::uint64_t{config_.insert_weight} + config_.delete_weight) {
    kind = StreamEvent::Kind::kDelete;
  } else if (w < std::uint64_t{config_.insert_weight} + config_.delete_weight +
                     config_.add_edge_weight) {
    kind = StreamEvent::Kind::kAddEdge;
  } else {
    kind = StreamEvent::Kind::kRemoveEdge;
  }
  // Population floor: a delete at or below min_live_docs becomes an
  // insert, so the corpus can never empty (mirrors make_chaos_schedule's
  // live-peer floor).
  if (kind == StreamEvent::Kind::kDelete &&
      live_.size() <= config_.min_live_docs) {
    kind = StreamEvent::Kind::kInsert;
  }

  StreamEvent ev;
  ev.kind = kind;
  ev.seq = seq_;
  ev.timestamp_us = static_cast<std::uint64_t>(
      static_cast<double>(seq_) * 1e6 / config_.events_per_sec);

  switch (kind) {
    case StreamEvent::Kind::kInsert: {
      const std::uint32_t want = 1 + static_cast<std::uint32_t>(rng_.bounded(
                                         config_.max_out_links));
      ev.out_links.reserve(want);
      for (std::uint32_t i = 0; i < want; ++i) {
        for (int tries = 0; tries < kSampleTries; ++tries) {
          const NodeId cand = sample_live();
          if (std::find(ev.out_links.begin(), ev.out_links.end(), cand) ==
              ev.out_links.end()) {
            ev.out_links.push_back(cand);
            break;
          }
        }
      }
      ev.node = next_id_++;
      live_.push_back(ev.node);
      break;
    }
    case StreamEvent::Kind::kDelete: {
      const std::size_t idx = rng_.bounded(live_.size());
      ev.node = live_[idx];
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(idx));
      break;
    }
    case StreamEvent::Kind::kAddEdge: {
      ev.node = sample_live();
      ev.target = ev.node;
      for (int tries = 0; tries < kSampleTries && ev.target == ev.node;
           ++tries) {
        ev.target = sample_live();
      }
      if (ev.target == ev.node) {
        // Deterministic fallback: the oldest live document that is not
        // the source (live_ has >= 2 entries: min_live_docs >= 2).
        ev.target = live_[0] == ev.node ? live_[1] : live_[0];
      }
      break;
    }
    case StreamEvent::Kind::kRemoveEdge: {
      ev.node = sample_live();
      ev.ordinal = static_cast<std::uint32_t>(rng_.bounded(1u << 16));
      break;
    }
  }
  ++seq_;
  return ev;
}

std::vector<StreamEvent> StreamSource::take(std::uint64_t n) {
  std::vector<StreamEvent> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace dprank
