#pragma once

// Rank-query front-end over a live IngestCoordinator (ROADMAP item 1).
//
// §2.4 sorts search hits by pagerank; a streaming deployment has to do
// that while ingest is mid-flight, which makes every answer *stale* to
// some degree: pending (offered-but-unapplied) events are invisible, and
// applied batches are only incrementally propagated until the next full
// reconvergence. LiveRankService serves point ranks and top-k from the
// coordinator's current vector and quantifies the error honestly:
//
//  * staleness — measure_staleness() builds the oracle the served ranks
//    are compared against: copy the live graph, replay the pending
//    events structurally (same apply_structural_event as ingest, so the
//    oracle cannot drift), solve to convergence with the centralized
//    solver at a tight tolerance, zero tombstones. Staleness is the
//    per-document |served - oracle| (documents the service does not know
//    yet serve as 0), summarized as mean/max and recorded on the
//    `stream.staleness` series (x = events offered). At a fixed ingest
//    rate, shrinking the batch size shrinks the pending window and the
//    mean staleness with it — the trade-off curve the stream bench maps.
//  * ingest lag — every point query records offered - applied (the
//    pending-event count) on `stream.ingest_lag_events`.
//
// top-k caching rides the coordinator's last_batch_touched() plumbing:
// a cached ordering survives a batch when none of the touched documents
// was in the cached prefix and none rose above its floor rank — the
// common case for small batches, where a cascade touches a handful of
// mid-tail documents. Reconvergence clears the touched list and forces
// a full recompute.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "stream/ingest_coordinator.hpp"

namespace dprank {

struct StalenessReport {
  /// Mean |served - oracle| over documents live in either view.
  double mean_abs = 0.0;
  double max_abs = 0.0;
  /// Documents compared (live in served or oracle view).
  std::uint64_t docs = 0;
  /// Pending (offered-but-unapplied) events at measurement time.
  std::uint64_t pending_events = 0;
};

class LiveRankService {
 public:
  explicit LiveRankService(const IngestCoordinator& coordinator,
                           obs::MetricsRegistry* metrics = nullptr);

  /// Current served rank of `doc`; 0 for tombstones and ids the service
  /// has not seen yet. Records the ingest lag.
  [[nodiscard]] double rank_of(NodeId doc);

  /// Top-k live documents by served rank, descending (ties by smaller
  /// id). Cached across queries; see the header comment for the
  /// invalidation rule.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> top_k(std::size_t k);

  /// Compare the served ranks against a fully-reconverged oracle that
  /// has also seen the pending events. O(centralized solve); a
  /// measurement probe, not a serving-path operation.
  [[nodiscard]] StalenessReport measure_staleness(
      double oracle_tolerance = 1e-12);

  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t topk_recomputes() const {
    return topk_recomputes_;
  }
  [[nodiscard]] std::uint64_t topk_cache_hits() const {
    return topk_cache_hits_;
  }

 private:
  void record_lag();
  void recompute_top(std::size_t k);

  const IngestCoordinator& coordinator_;
  obs::MetricsRegistry* metrics_;

  std::uint64_t cache_version_ = 0;
  bool cache_valid_ = false;
  std::vector<std::pair<NodeId, double>> cache_;  // descending rank
  std::uint64_t queries_ = 0;
  std::uint64_t topk_recomputes_ = 0;
  std::uint64_t topk_cache_hits_ = 0;
};

}  // namespace dprank
