#pragma once

// Span/event tracing with causal message traces.
//
// A TraceId is minted at send time and rides along with the update as it
// moves between subsystems — DHT routing hops, outbox parking, delivery
// delay, retransmission, crash loss, and final application all append
// events carrying the same id. Exported as Chrome trace_event JSON
// (obs/export.hpp) the id becomes an async-event track, so Perfetto /
// chrome://tracing renders one lane per message journey and the whole
// story of any update is reconstructable by filtering on its id.
//
// Time base: the pass simulator has no wall clock, so the tracer keeps a
// simulated-time cursor in microseconds. The engine advances it once per
// pass by the Eq. 4 estimate (sim/time_model.hpp's make_pass_clock);
// events within a pass are spaced a nanosecond apart in emission order,
// which preserves causal ordering in the viewer without inventing
// sub-pass timing the simulator never modelled.
//
// Event names and categories must be string literals (or otherwise
// outlive the tracer): events store the pointers, not copies — tracing a
// million messages must not make a million string allocations.
//
// Thread-safe: event emission takes a mutex (tracing is opt-in and the
// pass engine is single-threaded; the threaded runtime traces coarse
// spans only). Sampling: `sample_every = k` keeps every k-th minted
// trace, letting big runs trace a representative subset; `max_events`
// hard-caps memory, counting dropped events instead of growing.

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dprank::obs {

using TraceId = std::uint64_t;
inline constexpr TraceId kNoTrace = 0;

struct TraceEvent {
  static constexpr int kMaxArgs = 4;

  double ts_us = 0.0;
  double dur_us = 0.0;       // 'X' events only
  char phase = 'i';          // X complete, i instant, b/n/e async begin/step/end
  std::uint32_t pid = 0;     // peer id (Perfetto renders one track group per pid)
  TraceId id = kNoTrace;     // async journey id; 0 for plain events
  const char* name = "";
  const char* category = "";
  std::uint8_t num_args = 0;
  std::pair<const char*, double> args[kMaxArgs];
};

class Tracer {
 public:
  struct Config {
    std::size_t max_events = 1'000'000;
    std::uint64_t sample_every = 1;  // keep every k-th minted trace id
  };

  Tracer() = default;
  explicit Tracer(Config config) : config_(config) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mint the id for a new message journey, or kNoTrace when the sampler
  /// skips this one (callers emit nothing for unsampled journeys).
  [[nodiscard]] TraceId begin_trace();

  /// Async-journey events: begin ('b') at send, step ('n') for each
  /// waypoint (hop, park, drop, retransmit...), end ('e') at the terminal
  /// outcome (applied or lost). All three share `id`'s lane.
  void async_begin(TraceId id, const char* name, const char* category,
                   std::uint32_t pid,
                   std::initializer_list<std::pair<const char*, double>>
                       args = {});
  void async_step(TraceId id, const char* name, const char* category,
                  std::uint32_t pid,
                  std::initializer_list<std::pair<const char*, double>>
                      args = {});
  void async_end(TraceId id, const char* name, const char* category,
                 std::uint32_t pid,
                 std::initializer_list<std::pair<const char*, double>>
                     args = {});

  /// Standalone instant event (no journey).
  void instant(const char* name, const char* category, std::uint32_t pid,
               std::initializer_list<std::pair<const char*, double>>
                   args = {});

  /// Complete event spanning [now, now + dur_us] — pass spans, query
  /// spans.
  void complete(const char* name, const char* category, std::uint32_t pid,
                double dur_us,
                std::initializer_list<std::pair<const char*, double>>
                    args = {});

  /// Advance simulated time to at least `ts_us` (monotone; earlier values
  /// are ignored so a misconfigured clock cannot run time backwards).
  void advance_time(double ts_us);
  [[nodiscard]] double now_us() const;

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_; }
  [[nodiscard]] std::uint64_t minted_traces() const { return next_trace_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void push(char phase, TraceId id, const char* name, const char* category,
            std::uint32_t pid, double dur_us,
            std::initializer_list<std::pair<const char*, double>> args);

  Config config_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t next_trace_ = 0;
  std::uint64_t dropped_ = 0;
  double cursor_us_ = 0.0;
};

}  // namespace dprank::obs
