#pragma once

// Machine-readable exporters for the obs subsystem.
//
//   * write_chrome_trace: Chrome trace_event JSON (the "JSON Array
//     Format" with a traceEvents wrapper) — drag into Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing. Message journeys are
//     async events keyed by trace id; passes are 'X' spans.
//   * write_metrics_json / write_metrics_csv: flat dumps of a
//     MetricsSnapshot for plotting pipelines and the bench harness's
//     BENCH_*.json files.
//
// Output is deterministic for deterministic inputs (fixed field order,
// fixed float formatting) so seeded runs can be golden-file compared.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dprank::obs {

/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Fixed, locale-independent float formatting used by every exporter.
[[nodiscard]] std::string format_double(double v);

void write_chrome_trace(const Tracer& tracer, std::ostream& os);
void write_chrome_trace_file(const Tracer& tracer, const std::string& path);
[[nodiscard]] std::string chrome_trace_string(const Tracer& tracer);

void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os);
void write_metrics_json_file(const MetricsSnapshot& snap,
                             const std::string& path);

/// CSV with one row per scalar: kind,name,field,value. Histograms expand
/// to count/sum/min/max/p50/p90/p99 rows; series to indexed x/y rows.
void write_metrics_csv(const MetricsSnapshot& snap, std::ostream& os);

}  // namespace dprank::obs
