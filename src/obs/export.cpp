#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dprank::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  // %.12g is locale-independent for the values we emit (no grouping) and
  // round-trips every counter-sized integer exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

void write_args(std::ostream& os, const TraceEvent& ev) {
  os << "\"args\":{";
  for (std::uint8_t i = 0; i < ev.num_args; ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(ev.args[i].first)
       << "\":" << format_double(ev.args[i].second);
  }
  os << '}';
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : tracer.events()) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << format_double(ev.ts_us) << ",\"pid\":" << ev.pid
       << ",\"tid\":0";
    if (ev.phase == 'X') os << ",\"dur\":" << format_double(ev.dur_us);
    if (ev.id != kNoTrace) {
      // Hex string ids, the format the trace_event spec uses for async
      // event correlation.
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                    static_cast<unsigned long long>(ev.id));
      os << ",\"id\":\"" << idbuf << "\"";
    }
    os << ',';
    write_args(os, ev);
    os << '}';
  }
  os << "\n]}\n";
}

std::string chrome_trace_string(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(tracer, os);
  return os.str();
}

void write_chrome_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("chrome trace export: cannot open " + path);
  }
  write_chrome_trace(tracer, os);
}

void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << format_double(v);
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << format_double(h.sum)
       << ", \"min\": " << format_double(h.min)
       << ", \"max\": " << format_double(h.max)
       << ", \"p50\": " << format_double(h.p50)
       << ", \"p90\": " << format_double(h.p90)
       << ", \"p99\": " << format_double(h.p99) << "}";
    first = false;
  }
  os << "\n  },\n  \"series\": {";
  first = true;
  for (const auto& [name, points] : snap.series) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": [";
    bool p_first = true;
    for (const auto& [x, y] : points) {
      os << (p_first ? "" : ",") << "[" << format_double(x) << ","
         << format_double(y) << "]";
      p_first = false;
    }
    os << "]";
    first = false;
  }
  os << "\n  }\n}\n";
}

void write_metrics_json_file(const MetricsSnapshot& snap,
                             const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("metrics export: cannot open " + path);
  }
  write_metrics_json(snap, os);
}

void write_metrics_csv(const MetricsSnapshot& snap, std::ostream& os) {
  os << "kind,name,field,value\n";
  for (const auto& [name, v] : snap.counters) {
    os << "counter," << name << ",value," << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "gauge," << name << ",value," << format_double(v) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << name << ",count," << h.count << "\n"
       << "histogram," << name << ",sum," << format_double(h.sum) << "\n"
       << "histogram," << name << ",min," << format_double(h.min) << "\n"
       << "histogram," << name << ",max," << format_double(h.max) << "\n"
       << "histogram," << name << ",p50," << format_double(h.p50) << "\n"
       << "histogram," << name << ",p90," << format_double(h.p90) << "\n"
       << "histogram," << name << ",p99," << format_double(h.p99) << "\n";
  }
  for (const auto& [name, points] : snap.series) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      os << "series," << name << ",x" << i << ","
         << format_double(points[i].first) << "\n"
         << "series," << name << ",y" << i << ","
         << format_double(points[i].second) << "\n";
    }
  }
}

}  // namespace dprank::obs
