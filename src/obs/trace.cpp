#include "obs/trace.hpp"

#include <algorithm>

namespace dprank::obs {

namespace {
/// Spacing between successive events at the same simulated instant:
/// preserves emission order in viewers without pretending the simulator
/// has sub-pass timing.
constexpr double kTickUs = 0.001;
}  // namespace

TraceId Tracer::begin_trace() {
  const std::lock_guard lock(mu_);
  const std::uint64_t n = next_trace_++;
  const std::uint64_t k = std::max<std::uint64_t>(1, config_.sample_every);
  if (n % k != 0) return kNoTrace;
  return n + 1;  // ids are 1-based so kNoTrace stays unambiguous
}

void Tracer::push(
    char phase, TraceId id, const char* name, const char* category,
    std::uint32_t pid, double dur_us,
    std::initializer_list<std::pair<const char*, double>> args) {
  const std::lock_guard lock(mu_);
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  TraceEvent ev;
  ev.ts_us = cursor_us_;
  cursor_us_ += kTickUs;
  ev.dur_us = dur_us;
  ev.phase = phase;
  ev.pid = pid;
  ev.id = id;
  ev.name = name;
  ev.category = category;
  for (const auto& arg : args) {
    if (ev.num_args == TraceEvent::kMaxArgs) break;
    ev.args[ev.num_args++] = arg;
  }
  events_.push_back(ev);
}

void Tracer::async_begin(
    TraceId id, const char* name, const char* category, std::uint32_t pid,
    std::initializer_list<std::pair<const char*, double>> args) {
  if (id == kNoTrace) return;
  push('b', id, name, category, pid, 0.0, args);
}

void Tracer::async_step(
    TraceId id, const char* name, const char* category, std::uint32_t pid,
    std::initializer_list<std::pair<const char*, double>> args) {
  if (id == kNoTrace) return;
  push('n', id, name, category, pid, 0.0, args);
}

void Tracer::async_end(
    TraceId id, const char* name, const char* category, std::uint32_t pid,
    std::initializer_list<std::pair<const char*, double>> args) {
  if (id == kNoTrace) return;
  push('e', id, name, category, pid, 0.0, args);
}

void Tracer::instant(
    const char* name, const char* category, std::uint32_t pid,
    std::initializer_list<std::pair<const char*, double>> args) {
  push('i', kNoTrace, name, category, pid, 0.0, args);
}

void Tracer::complete(
    const char* name, const char* category, std::uint32_t pid, double dur_us,
    std::initializer_list<std::pair<const char*, double>> args) {
  push('X', kNoTrace, name, category, pid, dur_us, args);
}

void Tracer::advance_time(double ts_us) {
  const std::lock_guard lock(mu_);
  cursor_us_ = std::max(cursor_us_, ts_us);
}

double Tracer::now_us() const {
  const std::lock_guard lock(mu_);
  return cursor_us_;
}

}  // namespace dprank::obs
