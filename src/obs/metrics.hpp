#pragma once

// Unified metrics registry (observability subsystem, `dprank_obs`).
//
// Das Sarma et al. argue message/round complexity is *the* cost metric
// for distributed pagerank; D-Iteration treats residual mass as the
// natural convergence telemetry. Both need one place to live. This
// registry holds named counters, gauges, log-bucketed histograms and
// (x, y) series, designed for two very different callers:
//
//   * the async threaded runtime: every primitive is safe for concurrent
//     writers (relaxed atomics on the hot path, a mutex only at
//     registration and snapshot time);
//   * the pass simulator's per-message paths: an update is one relaxed
//     atomic add (Counter) or two plus a few integer ops (Histogram) —
//     cheap enough to leave on in benches (the bench suite records the
//     measured overhead in its BENCH_*.json output).
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<layer>.<object>.<measure>`, e.g. `net.messages`, `dht.chord.lookup_hops`,
// `pagerank.residual`, `search.query.fanout`, and the streaming-ingest
// family `stream.staleness` (series: mean |served - oracle| vs events
// offered), `stream.ingest_lag_events`, `stream.batch_apply_us`,
// `stream.mass_ratio`. Callers cache the returned reference; name lookup
// takes the registry mutex and belongs outside hot loops.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dprank::obs {

/// Monotone event count. Thread-safe; one relaxed fetch_add per add().
/// Copyable (value copy) so aggregates like TrafficMeter stay copyable;
/// a registered Counter must not be moved while a registry references it.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : v_(other.value()) {}
  Counter& operator=(const Counter& other) {
    v_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t n) noexcept {
    v_.store(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Point estimates a histogram snapshot can answer.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Log-bucketed histogram: power-of-two octaves split into 8 linear
/// sub-buckets, so any bucket's width is at most 1/8 of its lower bound.
/// Quantile estimates (bucket midpoint) are therefore within 6.25%
/// relative error of the exact nearest-rank value — kQuantileRelError
/// is the bound tests assert against. record() is wait-free: bucket
/// index arithmetic plus three relaxed atomic adds (bucket, count, sum);
/// min/max keep exact values via CAS loops.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;          // per octave
  static constexpr int kMinExponent = -32;       // values below ~2^-32 clamp
  static constexpr int kMaxExponent = 63;        // values above 2^64 clamp
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent + 1) * kSubBuckets + 1;  // +1: zero bucket
  static constexpr double kQuantileRelError = 1.0 / (2.0 * kSubBuckets);

  void record(double v) noexcept;
  void record_count(double v, std::uint64_t times) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Nearest-rank quantile estimate over the bucketed sample, q in
  /// (0, 1]. Returns 0 on an empty histogram. The estimate is clamped to
  /// the exact observed [min, max].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] HistogramSummary summarize() const;

  /// Non-empty buckets as (upper bound, count), ascending. For exporters.
  [[nodiscard]] std::vector<std::pair<double, std::uint64_t>> buckets() const;

 private:
  static int bucket_index(double v) noexcept;
  static double bucket_lower(int index) noexcept;
  static double bucket_upper(int index) noexcept;

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_value_{false};
};

/// Append-only (x, y) series — per-pass residual mass, convergence
/// timelines, crash marks. Mutex-protected: series points are recorded
/// once per pass/round, never per message.
class Series {
 public:
  void append(double x, double y);
  [[nodiscard]] std::vector<std::pair<double, double>> points() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

/// Immutable copy of a registry's state, safe to format/export after the
/// instrumented objects are gone.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
  std::map<std::string, std::vector<std::pair<double, double>>> series;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }
};

/// Named metric store. Creation/lookup takes a mutex and returns a
/// reference with a stable address for the registry's lifetime; updates
/// through that reference are lock-free. snapshot() may run concurrently
/// with updates (it reads relaxed atomics; counts lag by at most the
/// in-flight writes).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  [[nodiscard]] Series& series(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drop every metric (bench harness reuse between configs).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

/// Process-wide registry the bench harness snapshots into BENCH_*.json.
/// Engines attach to it by default via sim::StandardExperiment.
[[nodiscard]] MetricsRegistry& default_registry();

}  // namespace dprank::obs
