#include "obs/mem_probe.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define DPRANK_HAS_GETRUSAGE 1
#else
#define DPRANK_HAS_GETRUSAGE 0
#endif

namespace dprank::obs {

std::uint64_t peak_rss_bytes() {
#if DPRANK_HAS_GETRUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const auto maxrss = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
  return maxrss;  // already bytes
#else
  return maxrss * 1024;  // Linux: KiB
#endif
#else
  return 0;
#endif
}

}  // namespace dprank::obs
