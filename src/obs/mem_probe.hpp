#pragma once

// Process memory probe for the mem.* telemetry gauges and the scale
// bench (bench/bench_scale.cpp). Observability only: the reading never
// feeds the simulation, so determinism is untouched — it measures the
// harness, like pagerank.pass_wall_us.

#include <cstdint>

namespace dprank::obs {

/// Peak resident set size of the current process in bytes, as the OS
/// accounts it (Linux: getrusage ru_maxrss, reported in KiB and scaled
/// here; macOS reports bytes natively). 0 on platforms without the call.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace dprank::obs
