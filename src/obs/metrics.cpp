#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace dprank::obs {

namespace {

/// fetch_add for atomic<double> via CAS (portable; atomic<double>::fetch_add
/// is C++20 but not lock-free everywhere).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negative and NaN: the zero bucket
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [.5,1)
  exp -= 1;                                 // v in [2^exp, 2^(exp+1))
  if (exp < kMinExponent) return 1;
  if (exp > kMaxExponent) return kNumBuckets - 1;
  // frac in [0.5, 1): linear position within the octave.
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((frac - 0.5) * 2 * kSubBuckets));
  return 1 + (exp - kMinExponent) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) noexcept {
  if (index <= 0) return 0.0;
  const int li = index - 1;
  const int exp = kMinExponent + li / kSubBuckets;
  const int sub = li % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
}

double Histogram::bucket_upper(int index) noexcept {
  if (index <= 0) return 0.0;
  const int li = index - 1;
  const int exp = kMinExponent + li / kSubBuckets;
  const int sub = li % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
}

void Histogram::record(double v) noexcept { record_count(v, 1); }

void Histogram::record_count(double v, std::uint64_t times) noexcept {
  if (times == 0) return;
  const int idx = bucket_index(v);
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      times, std::memory_order_relaxed);
  count_.fetch_add(times, std::memory_order_relaxed);
  atomic_add(sum_, v * static_cast<double>(times));
  if (!has_value_.exchange(true, std::memory_order_relaxed)) {
    // First recorder seeds min/max; racing recorders fix it up below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * n).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    cum += c;
    if (cum >= rank) {
      const double mid =
          i == 0 ? 0.0 : 0.5 * (bucket_lower(i) + bucket_upper(i));
      return std::clamp(mid, min_.load(std::memory_order_relaxed),
                        max_.load(std::memory_order_relaxed));
    }
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSummary Histogram::summarize() const {
  HistogramSummary s;
  s.count = count();
  if (s.count == 0) return s;
  s.sum = sum();
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

std::vector<std::pair<double, std::uint64_t>> Histogram::buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(bucket_upper(i), c);
  }
  return out;
}

void Series::append(double x, double y) {
  const std::lock_guard lock(mu_);
  points_.emplace_back(x, y);
}

std::vector<std::pair<double, double>> Series::points() const {
  const std::lock_guard lock(mu_);
  return points_;
}

std::size_t Series::size() const {
  const std::lock_guard lock(mu_);
  return points_.size();
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  using Metric = typename Map::mapped_type::element_type;
  return *map.emplace(std::string(name), std::make_unique<Metric>())
              .first->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mu_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mu_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(mu_);
  return find_or_create(histograms_, name);
}

Series& MetricsRegistry::series(std::string_view name) {
  const std::lock_guard lock(mu_);
  return find_or_create(series_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->summarize();
  }
  for (const auto& [name, s] : series_) snap.series[name] = s->points();
  return snap;
}

void MetricsRegistry::clear() {
  const std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dprank::obs
