#include "p2p/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/guid.hpp"
#include "common/rng.hpp"

namespace dprank {

Placement Placement::random(std::uint64_t num_docs, PeerId num_peers,
                            std::uint64_t seed) {
  if (num_peers == 0) {
    throw std::invalid_argument("Placement::random: zero peers");
  }
  Rng rng(seed ^ 0x9142AC0FBA1E5ULL);
  std::vector<PeerId> owner(num_docs);
  for (auto& o : owner) {
    o = static_cast<PeerId>(rng.bounded(num_peers));
  }
  return Placement(std::move(owner), num_peers);
}

Placement Placement::by_dht(std::uint64_t num_docs, const ChordRing& ring) {
  if (ring.size() == 0) {
    throw std::invalid_argument("Placement::by_dht: empty ring");
  }
  std::vector<PeerId> owner(num_docs);
  PeerId max_peer = 0;
  for (std::uint64_t d = 0; d < num_docs; ++d) {
    owner[d] = ring.successor_of_key(document_guid(d));
    max_peer = std::max(max_peer, owner[d]);
  }
  return Placement(std::move(owner), max_peer + 1);
}

Placement Placement::by_link_clustering(const Digraph& g, PeerId num_peers,
                                        std::uint64_t seed) {
  if (num_peers == 0) {
    throw std::invalid_argument("Placement::by_link_clustering: zero peers");
  }
  const NodeId n = g.num_nodes();
  const auto capacity = static_cast<std::uint64_t>(
      (static_cast<std::uint64_t>(n) + num_peers - 1) / num_peers);
  std::vector<PeerId> owner(n, kInvalidPeer);
  Rng rng(seed ^ 0xC1A57E12ULL);

  // Random visiting order for seeds keeps the partition unbiased by
  // node numbering.
  std::vector<NodeId> seeds(n);
  for (NodeId v = 0; v < n; ++v) seeds[v] = v;
  rng.shuffle(seeds);
  std::size_t seed_cursor = 0;

  std::vector<NodeId> frontier;
  PeerId peer = 0;
  std::uint64_t filled = 0;
  std::uint64_t assigned_total = 0;
  while (assigned_total < n) {
    // Grow the current peer's region by BFS over the undirected link
    // structure; restart from a fresh seed when the frontier dies.
    if (frontier.empty()) {
      while (seed_cursor < seeds.size() &&
             owner[seeds[seed_cursor]] != kInvalidPeer) {
        ++seed_cursor;
      }
      const NodeId s = seeds[seed_cursor];
      owner[s] = peer;
      ++filled;
      ++assigned_total;
      frontier.push_back(s);
      if (filled >= capacity) {
        ++peer;
        filled = 0;
        frontier.clear();
        continue;
      }
    }
    const NodeId u = frontier.back();
    frontier.pop_back();
    auto try_assign = [&](NodeId v) {
      if (owner[v] != kInvalidPeer || filled >= capacity) return;
      owner[v] = peer;
      ++filled;
      ++assigned_total;
      frontier.push_back(v);
    };
    for (const NodeId v : g.out_neighbors(u)) try_assign(v);
    for (const NodeId v : g.in_neighbors(u)) try_assign(v);
    if (filled >= capacity) {
      ++peer;
      filled = 0;
      frontier.clear();
    }
  }
  // `peer` may not have reached num_peers - 1 (capacity rounding);
  // that simply leaves trailing peers empty, as with random placement
  // on small doc counts.
  return Placement(std::move(owner), num_peers);
}

Placement Placement::from_owners(std::vector<PeerId> owner, PeerId num_peers) {
  if (num_peers == 0) {
    throw std::invalid_argument("Placement::from_owners: zero peers");
  }
  for (const PeerId p : owner) {
    if (p >= num_peers) {
      throw std::invalid_argument(
          "Placement::from_owners: owner beyond peer capacity");
    }
  }
  return Placement(std::move(owner), num_peers);
}

double Placement::cross_peer_edge_fraction(const Digraph& g) const {
  if (g.num_edges() == 0) return 0.0;
  std::uint64_t cross = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const PeerId pu = owner_[u];
    for (const NodeId v : g.out_neighbors(u)) {
      if (owner_[v] != pu) ++cross;
    }
  }
  return static_cast<double>(cross) / static_cast<double>(g.num_edges());
}

std::vector<std::uint32_t> Placement::docs_per_peer() const {
  std::vector<std::uint32_t> counts(num_peers_, 0);
  for (const PeerId p : owner_) ++counts[p];
  return counts;
}

void Placement::add_document(NodeId doc, PeerId peer) {
  if (doc != owner_.size()) {
    throw std::invalid_argument("Placement::add_document: non-contiguous id");
  }
  if (peer >= num_peers_) {
    throw std::invalid_argument("Placement::add_document: bad peer");
  }
  owner_.push_back(peer);
}

void Placement::reassign(NodeId doc, PeerId new_owner) {
  if (doc >= owner_.size()) {
    throw std::invalid_argument("Placement::reassign: unknown document");
  }
  if (new_owner >= num_peers_) {
    throw std::invalid_argument("Placement::reassign: bad peer");
  }
  owner_[doc] = new_owner;
}

void Placement::grow_peers(PeerId num_peers) {
  num_peers_ = std::max(num_peers_, num_peers);
}

}  // namespace dprank
