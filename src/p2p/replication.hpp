#pragma once

// Document replication registry (§2.3).
//
// "A second issue is replication and document caching that some P2P
// systems use to reduce retrieval time. On such systems, for the
// distributed pagerank computation to work accurately, pointers need to
// be maintained at document sources to point to cached copies, so that
// all copies of the document can contain the correct computed pagerank."
//
// ReplicaRegistry tracks, per document, the peers holding extra copies
// beyond the primary. The pagerank engine consults it when sending
// updates: every replica must receive the same update message, so
// replication multiplies the cross-peer message bill — the overhead the
// replication ablation quantifies.

#include <cstdint>
#include <span>
#include <vector>

#include "dht/ring.hpp"
#include "graph/digraph.hpp"
#include "p2p/placement.hpp"

namespace dprank {

class ReplicaRegistry {
 public:
  /// No replicas for any document.
  explicit ReplicaRegistry(std::uint64_t num_docs);

  /// Uniform replication: every document gets `replicas_per_doc` extra
  /// copies on distinct peers other than its primary (requires
  /// replicas_per_doc < num_peers). Deterministic from the seed.
  static ReplicaRegistry uniform(const Placement& placement,
                                 std::uint32_t replicas_per_doc,
                                 std::uint64_t seed);

  /// Popularity-biased replication (how real P2P caches behave): the
  /// top `hot_fraction` of documents by `scores` get `hot_replicas`
  /// copies, everything else none.
  static ReplicaRegistry popularity(const Placement& placement,
                                    const std::vector<double>& scores,
                                    double hot_fraction,
                                    std::uint32_t hot_replicas,
                                    std::uint64_t seed);

  void add_replica(NodeId doc, PeerId peer);

  [[nodiscard]] std::span<const PeerId> replicas_of(NodeId doc) const {
    return {replica_peers_.data() + offsets_[doc],
            replica_peers_.data() + offsets_[doc + 1]};
  }
  [[nodiscard]] std::uint64_t total_replicas() const {
    return replica_peers_.size();
  }
  [[nodiscard]] std::uint64_t num_docs() const { return offsets_.size() - 1; }

  /// True if no document has replicas (engine fast path).
  [[nodiscard]] bool empty() const { return replica_peers_.empty(); }

 private:
  // CSR layout; add_replica is only valid before freeze_, i.e. during
  // construction via the factories (they build in bulk).
  std::vector<std::uint64_t> offsets_;
  std::vector<PeerId> replica_peers_;
  std::vector<std::vector<PeerId>> staging_;
  bool frozen_ = false;
  void freeze();
};

}  // namespace dprank
