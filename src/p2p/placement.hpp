#pragma once

// Document-to-peer placement (§4.2).
//
// "Each document in the graph is then randomly assigned to a peer" — the
// paper's experiments use uniform random placement over 500 peers. The
// DHT-native alternative (place each document at the successor of its
// GUID) is provided for the future-work question the paper raises about
// using structure-aware mapping; both are deterministic from the seed.

#include <cstdint>
#include <vector>

#include "dht/ring.hpp"
#include "graph/digraph.hpp"

namespace dprank {

class Placement {
 public:
  /// Uniform random assignment of `num_docs` documents onto
  /// `num_peers` peers (the paper's methodology).
  static Placement random(std::uint64_t num_docs, PeerId num_peers,
                          std::uint64_t seed);

  /// Consistent-hash assignment: document d lives on
  /// ring.successor_of_key(document_guid(d)).
  static Placement by_dht(std::uint64_t num_docs, const ChordRing& ring);

  /// Link-structure-aware assignment (the paper's §6 future-work
  /// question: "whether the link structure in documents can be used for
  /// mapping documents to peers, and whether this will alleviate
  /// network overheads"). Balanced BFS clustering: peers receive
  /// contiguous link-neighborhoods of ~num_nodes/num_peers documents,
  /// which converts many cross-peer updates into free local ones.
  static Placement by_link_clustering(const Digraph& g, PeerId num_peers,
                                      std::uint64_t seed);

  /// Adopt an explicit owner vector (dynamic-membership handoff: the
  /// membership layer recomputes ownership from the repaired ring).
  /// `num_peers` is the peer-id capacity — it may exceed the number of
  /// distinct owners so crashed/left ids keep their slots.
  static Placement from_owners(std::vector<PeerId> owner, PeerId num_peers);

  /// Fraction of graph edges whose endpoints live on different peers —
  /// the knob link-aware placement turns down.
  [[nodiscard]] double cross_peer_edge_fraction(const Digraph& g) const;

  [[nodiscard]] PeerId peer_of(NodeId doc) const { return owner_[doc]; }
  [[nodiscard]] std::uint64_t num_docs() const { return owner_.size(); }
  [[nodiscard]] PeerId num_peers() const { return num_peers_; }

  /// Documents hosted by each peer.
  [[nodiscard]] std::vector<std::uint32_t> docs_per_peer() const;

  /// Register a newly inserted document on `peer` (must be the next doc
  /// id, i.e. num_docs() before the call).
  void add_document(NodeId doc, PeerId peer);

  /// Move `doc` to `new_owner` (membership handoff). The engine that
  /// shares this placement must re-file its per-document message state
  /// in the same pass (DistributedPagerank::apply_membership does).
  void reassign(NodeId doc, PeerId new_owner);

  /// Raise the peer-id capacity so joining peers get fresh ids beyond
  /// the initial population. Never shrinks.
  void grow_peers(PeerId num_peers);

 private:
  Placement(std::vector<PeerId> owner, PeerId num_peers)
      : owner_(std::move(owner)), num_peers_(num_peers) {}

  std::vector<PeerId> owner_;
  PeerId num_peers_;
};

}  // namespace dprank
