#include "p2p/membership.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/guid.hpp"

namespace dprank {

namespace {

bool contains_peer(const std::vector<PeerId>& v, PeerId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

}  // namespace

MembershipCoordinator::MembershipCoordinator(
    Placement& placement, PeerId initial_peers,
    std::vector<MembershipEvent> schedule, MembershipConfig config)
    : placement_(placement),
      ring_(initial_peers),
      detector_(config.detector),
      config_(config),
      schedule_(std::move(schedule)) {
  if (initial_peers == 0) {
    throw std::invalid_argument("MembershipCoordinator: zero initial peers");
  }
  if (placement_.num_peers() < initial_peers) {
    throw std::invalid_argument(
        "MembershipCoordinator: placement capacity below initial peers");
  }
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.pass < b.pass;
                   });
  // Replay the schedule against a liveness model to reject impossible
  // histories up front (join of a live peer, removal of a dead one,
  // ids beyond placement capacity, emptying the ring).
  std::vector<bool> live(placement_.num_peers(), false);
  std::fill(live.begin(), live.begin() + initial_peers, true);
  std::uint64_t live_count = initial_peers;
  for (const MembershipEvent& ev : schedule_) {
    if (ev.peer >= placement_.num_peers()) {
      throw std::invalid_argument(
          "MembershipCoordinator: event peer beyond placement capacity");
    }
    switch (ev.kind) {
      case MembershipEvent::Kind::kJoin:
        if (live[ev.peer]) {
          throw std::invalid_argument(
              "MembershipCoordinator: join of a live peer");
        }
        live[ev.peer] = true;
        ++live_count;
        break;
      case MembershipEvent::Kind::kLeave:
      case MembershipEvent::Kind::kCrash:
        if (!live[ev.peer]) {
          throw std::invalid_argument(
              "MembershipCoordinator: departure of a non-live peer");
        }
        if (live_count == 1) {
          throw std::invalid_argument(
              "MembershipCoordinator: schedule empties the ring");
        }
        live[ev.peer] = false;
        --live_count;
        break;
    }
  }
  presence_.assign(placement_.num_peers(), false);
  for (PeerId p = 0; p < initial_peers; ++p) presence_[p] = true;
  live_count_ = initial_peers;
  for (PeerId p = 0; p < initial_peers; ++p) detector_.monitor(p, 0);
  // Normalize placement to ring ownership so the first pass starts from
  // a consistent-hash layout (the handoff deltas are computed against
  // this baseline).
  for (NodeId d = 0; d < placement_.num_docs(); ++d) {
    const PeerId owner = ring_.successor_of_key(document_guid(d));
    if (placement_.peer_of(d) != owner) placement_.reassign(d, owner);
  }
}

const MembershipCoordinator::PassPlan& MembershipCoordinator::begin_pass(
    std::uint64_t pass) {
  if (pass < next_pass_) {
    throw std::invalid_argument(
        "MembershipCoordinator::begin_pass: passes must increase");
  }
  next_pass_ = pass + 1;
  plan_ = PassPlan{};

  // 1. Scheduled events striking at (or before, if the caller skipped
  //    passes) this pass.
  while (cursor_ < schedule_.size() && schedule_[cursor_].pass <= pass) {
    const MembershipEvent& ev = schedule_[cursor_++];
    ++events_applied_;
    switch (ev.kind) {
      case MembershipEvent::Kind::kJoin: {
        ring_.join(ev.peer, peer_guid(ev.peer));
        presence_[ev.peer] = true;
        ++live_count_;
        detector_.heartbeat(ev.peer, pass);
        plan_.joins.push_back(ev.peer);
        break;
      }
      case MembershipEvent::Kind::kLeave: {
        const Guid id = ring_.id_of(ev.peer);
        ring_.leave(ev.peer);
        // The heir is the successor that absorbs the leaver's arc: the
        // owner of the leaver's own id once it is gone.
        const PeerId heir = ring_.successor_of_key(id);
        presence_[ev.peer] = false;
        --live_count_;
        detector_.mark_left(ev.peer);
        plan_.leaves.emplace_back(ev.peer, heir);
        break;
      }
      case MembershipEvent::Kind::kCrash: {
        ring_.crash(ev.peer);
        presence_[ev.peer] = false;
        --live_count_;
        undetected_crashes_.emplace(ev.peer, pass);
        plan_.crashes.push_back(ev.peer);
        break;
      }
    }
  }

  // 2. Heartbeats from the live population, then the detector sweep.
  //    Crashed peers fall silent here, which is what starts their
  //    suspicion clock.
  for (PeerId p = 0; p < presence_.size(); ++p) {
    if (presence_[p]) detector_.heartbeat(p, pass);
  }
  for (const PeerId dead : detector_.tick(pass)) {
    plan_.declared_dead.push_back(dead);
    const auto it = undetected_crashes_.find(dead);
    if (it != undetected_crashes_.end()) {
      detection_latencies_.push_back(pass - it->second);
      undetected_crashes_.erase(it);
    }
  }

  // 3. Ring maintenance: a burst after any event, plus a few background
  //    passes so round-robin finger repair keeps healing after the
  //    successor lists have converged.
  const bool event_pass = plan_.any_event();
  if (event_pass) heal_passes_left_ = config_.heal_passes_after_event;
  if (event_pass || heal_passes_left_ > 0) {
    if (!event_pass) --heal_passes_left_;
    stabilize_rounds_total_ += ring_.stabilize(config_.stabilize_max_rounds);
    if (config_.validate_ring && contracts::enabled()) {
      ring_.validate(config_.ring_route_samples);
    }
  }

  // 4. Ownership: re-derive owner arcs from the repaired ring.
  //    Documents of an undetected crash stay frozen on the dead owner —
  //    the declaration pass is when their range moves (kReconstruct).
  if (event_pass) recompute_ownership();
  handoffs_total_ += plan_.handoffs.size();
  return plan_;
}

void MembershipCoordinator::recompute_ownership() {
  for (NodeId d = 0; d < placement_.num_docs(); ++d) {
    const PeerId old_owner = placement_.peer_of(d);
    if (undetected_crashes_.contains(old_owner)) continue;
    const PeerId now = ring_.successor_of_key(document_guid(d));
    if (now == old_owner) continue;
    placement_.reassign(d, now);
    Handoff::Reason reason;
    if (detector_.is_dead(old_owner)) {
      reason = Handoff::Reason::kReconstruct;
    } else if (contains_peer(plan_.joins, now)) {
      reason = Handoff::Reason::kJoinPull;
    } else if (!presence_[old_owner]) {
      reason = Handoff::Reason::kLeavePush;
    } else {
      // A live-to-live move can only be a join splitting an arc whose
      // owner notified late; treat it as a pull by the new owner.
      reason = Handoff::Reason::kJoinPull;
    }
    plan_.handoffs.push_back(Handoff{d, old_owner, now, reason});
  }
}

void MembershipCoordinator::validate() const {
  if (!contracts::enabled()) return;
  PeerId live = 0;
  for (PeerId p = 0; p < presence_.size(); ++p) {
    if (presence_[p]) {
      ++live;
      DPRANK_INVARIANT(ring_.contains(p), "p2p",
                       "membership: present peer missing from ring");
      DPRANK_INVARIANT(detector_.considers_live(p) ||
                           undetected_crashes_.contains(p),
                       "p2p", "membership: present peer not considered live");
    } else {
      DPRANK_INVARIANT(!ring_.contains(p), "p2p",
                       "membership: absent peer still in ring");
    }
  }
  DPRANK_INVARIANT(live == live_count_, "p2p",
                   "membership: live count mismatch");
  DPRANK_INVARIANT(live_count_ == ring_.size(), "p2p",
                   "membership: ring size mismatch");
  for (const auto& [peer, pass] : undetected_crashes_) {
    DPRANK_INVARIANT(!presence_[peer], "p2p",
                     "membership: undetected crash marked present");
    DPRANK_INVARIANT(!detector_.is_dead(peer), "p2p",
                     "membership: undetected crash already declared");
    (void)pass;
  }
  for (NodeId d = 0; d < placement_.num_docs(); ++d) {
    const PeerId owner = placement_.peer_of(d);
    if (undetected_crashes_.contains(owner)) continue;
    DPRANK_INVARIANT(owner == ring_.successor_of_key(document_guid(d)), "p2p",
                     "membership: document not owned by its ring successor");
  }
  detector_.validate();
}

}  // namespace dprank
