#pragma once

// Peer churn schedules (§4.2, §4.3).
//
// "In between such passes, sets of peers randomly leave and join the
// network" and the dynamic-effects experiment keeps a fixed fraction of
// peers available at any given time (columns "75" and "50" of Table 1).
// ChurnSchedule produces, per pass, the set of available peers. Two
// models:
//   * kResample (the paper's): exactly floor(f * P) peers present,
//     re-chosen uniformly at random every pass;
//   * kSessions (extension): each peer follows a two-state Markov chain
//     with geometric online/offline session lengths and stationary
//     availability f — peers that leave stay away for whole sessions,
//     which stresses the outbox far harder than per-pass resampling.
// availability 1.0 -> all peers present every pass in either model.
// Deterministic from the seed.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dht/ring.hpp"

namespace dprank {

enum class ChurnModel : std::uint8_t {
  kResample,  // the paper's per-pass uniform re-draw
  kSessions,  // geometric on/off sessions (extension)
};

class ChurnSchedule {
 public:
  /// `mean_online_passes` only applies to kSessions: the expected length
  /// of an online session; offline sessions are scaled to make the
  /// stationary availability equal `availability`.
  ChurnSchedule(PeerId num_peers, double availability, std::uint64_t seed,
                ChurnModel model = ChurnModel::kResample,
                double mean_online_passes = 10.0);

  /// Presence mask for the given pass: mask[p] is true when peer p is
  /// online during that pass. Passes must be requested in nondecreasing
  /// order (the schedule streams its RNG).
  [[nodiscard]] const std::vector<bool>& presence_for_pass(
      std::uint64_t pass);

  [[nodiscard]] PeerId num_peers() const { return num_peers_; }
  [[nodiscard]] double availability() const { return availability_; }
  [[nodiscard]] ChurnModel model() const { return model_; }
  /// kResample: peers present each pass (exact). kSessions: the
  /// stationary expectation, floor(f * P).
  [[nodiscard]] PeerId present_per_pass() const { return present_count_; }

 private:
  void advance_to(std::uint64_t pass);
  void advance_sessions();

  PeerId num_peers_;
  double availability_;
  ChurnModel model_;
  PeerId present_count_;
  double leave_prob_ = 0.0;   // kSessions: online -> offline per pass
  double return_prob_ = 0.0;  // kSessions: offline -> online per pass
  Rng rng_;
  std::uint64_t current_pass_ = 0;
  std::vector<bool> mask_;
};

}  // namespace dprank
