#include "p2p/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dprank {

ChurnSchedule::ChurnSchedule(PeerId num_peers, double availability,
                             std::uint64_t seed, ChurnModel model,
                             double mean_online_passes)
    : num_peers_(num_peers),
      availability_(availability),
      model_(model),
      present_count_(static_cast<PeerId>(
          std::floor(availability * static_cast<double>(num_peers)))),
      rng_(seed ^ 0xC0FFEE12345ULL) {
  if (num_peers == 0) throw std::invalid_argument("ChurnSchedule: 0 peers");
  if (availability <= 0.0 || availability > 1.0) {
    throw std::invalid_argument("ChurnSchedule: availability out of (0,1]");
  }
  if (mean_online_passes < 1.0) {
    throw std::invalid_argument("ChurnSchedule: mean_online_passes < 1");
  }
  if (present_count_ == 0) present_count_ = 1;
  mask_.assign(num_peers_, true);
  if (availability_ >= 1.0) return;  // no churn in either model

  if (model_ == ChurnModel::kResample) {
    advance_to(0);
  } else {
    // Two-state Markov chain: leave with probability a per online pass,
    // return with probability b per offline pass. Stationary
    // availability b/(a+b) = f with mean online session 1/a.
    leave_prob_ = 1.0 / mean_online_passes;
    return_prob_ =
        leave_prob_ * availability_ / (1.0 - availability_);
    return_prob_ = std::min(return_prob_, 1.0);
    // Initialize each peer from the stationary distribution.
    for (PeerId p = 0; p < num_peers_; ++p) {
      mask_[p] = rng_.chance(availability_);
    }
    if (std::none_of(mask_.begin(), mask_.end(), [](bool b) { return b; })) {
      mask_[static_cast<std::size_t>(rng_.bounded(num_peers_))] = true;
    }
  }
}

const std::vector<bool>& ChurnSchedule::presence_for_pass(std::uint64_t pass) {
  if (pass < current_pass_) {
    throw std::logic_error("ChurnSchedule: passes must be nondecreasing");
  }
  if (availability_ >= 1.0) return mask_;  // no churn
  while (current_pass_ < pass) {
    ++current_pass_;
    if (model_ == ChurnModel::kResample) {
      advance_to(current_pass_);
    } else {
      advance_sessions();
    }
  }
  return mask_;
}

void ChurnSchedule::advance_to(std::uint64_t pass) {
  current_pass_ = pass;
  std::fill(mask_.begin(), mask_.end(), false);
  const auto chosen =
      rng_.sample_without_replacement(num_peers_, present_count_);
  for (const auto p : chosen) mask_[p] = true;
}

void ChurnSchedule::advance_sessions() {
  bool any_online = false;
  for (PeerId p = 0; p < num_peers_; ++p) {
    if (mask_[p]) {
      if (rng_.chance(leave_prob_)) mask_[p] = false;
    } else {
      if (rng_.chance(return_prob_)) mask_[p] = true;
    }
    any_online = any_online || mask_[p];
  }
  if (!any_online) {
    mask_[static_cast<std::size_t>(rng_.bounded(num_peers_))] = true;
  }
}

}  // namespace dprank
