#include "p2p/replication.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace dprank {

ReplicaRegistry::ReplicaRegistry(std::uint64_t num_docs)
    : staging_(num_docs) {
  offsets_.assign(num_docs + 1, 0);
}

void ReplicaRegistry::add_replica(NodeId doc, PeerId peer) {
  if (frozen_) {
    throw std::logic_error("ReplicaRegistry::add_replica after freeze");
  }
  if (doc >= staging_.size()) {
    throw std::out_of_range("ReplicaRegistry::add_replica: bad doc");
  }
  auto& peers = staging_[doc];
  if (std::find(peers.begin(), peers.end(), peer) == peers.end()) {
    peers.push_back(peer);
  }
}

void ReplicaRegistry::freeze() {
  offsets_.assign(staging_.size() + 1, 0);
  for (std::size_t d = 0; d < staging_.size(); ++d) {
    offsets_[d + 1] = offsets_[d] + staging_[d].size();
  }
  replica_peers_.clear();
  replica_peers_.reserve(offsets_.back());
  for (auto& peers : staging_) {
    std::sort(peers.begin(), peers.end());
    replica_peers_.insert(replica_peers_.end(), peers.begin(), peers.end());
  }
  staging_.clear();
  staging_.shrink_to_fit();
  frozen_ = true;
}

ReplicaRegistry ReplicaRegistry::uniform(const Placement& placement,
                                         std::uint32_t replicas_per_doc,
                                         std::uint64_t seed) {
  if (replicas_per_doc >= placement.num_peers()) {
    throw std::invalid_argument(
        "ReplicaRegistry::uniform: more replicas than peers");
  }
  ReplicaRegistry reg(placement.num_docs());
  Rng rng(seed ^ 0x2EB11CAULL);
  for (NodeId d = 0; d < placement.num_docs(); ++d) {
    const PeerId primary = placement.peer_of(d);
    std::uint32_t placed = 0;
    while (placed < replicas_per_doc) {
      const auto peer =
          static_cast<PeerId>(rng.bounded(placement.num_peers()));
      if (peer == primary) continue;
      const auto before = reg.staging_[d].size();
      reg.add_replica(d, peer);
      if (reg.staging_[d].size() > before) ++placed;
    }
  }
  reg.freeze();
  return reg;
}

ReplicaRegistry ReplicaRegistry::popularity(const Placement& placement,
                                            const std::vector<double>& scores,
                                            double hot_fraction,
                                            std::uint32_t hot_replicas,
                                            std::uint64_t seed) {
  if (scores.size() != placement.num_docs()) {
    throw std::invalid_argument("ReplicaRegistry::popularity: score size");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    throw std::invalid_argument("ReplicaRegistry::popularity: hot_fraction");
  }
  if (hot_replicas >= placement.num_peers()) {
    throw std::invalid_argument("ReplicaRegistry::popularity: replica count");
  }
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const auto hot = static_cast<std::size_t>(
      hot_fraction * static_cast<double>(scores.size()));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(hot),
                    order.end(), [&](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });

  ReplicaRegistry reg(placement.num_docs());
  Rng rng(seed ^ 0x90901ALL);
  for (std::size_t i = 0; i < hot; ++i) {
    const NodeId d = order[i];
    const PeerId primary = placement.peer_of(d);
    std::uint32_t placed = 0;
    while (placed < hot_replicas) {
      const auto peer =
          static_cast<PeerId>(rng.bounded(placement.num_peers()));
      if (peer == primary) continue;
      const auto before = reg.staging_[d].size();
      reg.add_replica(d, peer);
      if (reg.staging_[d].size() > before) ++placed;
    }
  }
  reg.freeze();
  return reg;
}

}  // namespace dprank
