#pragma once

// Dynamic membership coordination (extension; ROADMAP items 1 and 5).
//
// The paper's availability story (§3.1) is graceful churn over a fixed
// peer population: every departed peer returns, so ownership never moves
// and parked state always finds its addressee. MembershipCoordinator
// models the open-world alternative — peers join, leave for good, or
// fail-stop and never come back — and drives the three subsystems that
// have to agree on who is alive:
//
//   * a SelfHealingRing whose per-peer local tables diverge on each
//     event and re-converge through stabilization (dht/ring.hpp);
//   * a heartbeat FailureDetector that turns crash silence into a
//     one-shot "declared dead" verdict after a deterministic detection
//     latency (net/failure_detector.hpp);
//   * the shared Placement, re-derived from the repaired ring's key
//     arcs so documents follow consistent-hash ownership.
//
// The engine calls begin_pass() once per pass and receives a PassPlan:
// which peers joined / left / crashed / were declared dead this pass,
// plus the explicit list of document handoffs the ownership change
// implies. Three handoff kinds mirror the three ways a key range moves:
//
//   kJoinPull    — a joining peer pulls its arc (ranks + contribution
//                  cells) from the current live owner;
//   kLeavePush   — a graceful leaver pushes its arc to its successor on
//                  the way out (state survives, like §3.1 churn);
//   kReconstruct — a crashed peer's arc is reassigned only once the
//                  detector declares it dead; the new owner rebuilds
//                  ranks from replicas (or the initial rank) and
//                  re-requests contribution cells from live sources,
//                  with the mass audit re-injecting whatever is
//                  unrecoverable (pagerank/mass_audit.hpp).
//
// Ownership of a crashed-but-undeclared peer's documents is deliberately
// frozen: until the verdict lands, senders still address the dead owner
// (the engine counts these as stale-owner queries) exactly as a real
// overlay keeps routing to a silent node. Declaration is the atomic
// point where the outbox evicts (drop_dead), the channel abandons
// retransmission (give_up_on_dest) and the range is rebuilt.
//
// Determinism: the event schedule is explicit, the detector runs on pass
// time, and the ring stabilizes in ascending peer order — a fixed
// schedule replays an identical membership history, which the chaos
// campaign's bit-reproducibility test relies on.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dht/ring.hpp"
#include "graph/digraph.hpp"
#include "net/failure_detector.hpp"
#include "p2p/placement.hpp"

namespace dprank {

/// One scheduled membership event. Joins use fresh peer ids at or above
/// the initial population (placement capacity must cover them).
struct MembershipEvent {
  enum class Kind : std::uint8_t { kJoin = 0, kLeave = 1, kCrash = 2 };
  std::uint64_t pass = 0;
  Kind kind = Kind::kCrash;
  PeerId peer = 0;
};

struct MembershipConfig {
  FailureDetector::Config detector{};
  /// Per-pass budget for ring stabilization rounds.
  std::size_t stabilize_max_rounds = 8;
  /// Extra passes of background stabilization after an event, so the
  /// round-robin finger repair keeps healing once the successor lists
  /// have converged.
  std::uint64_t heal_passes_after_event = 4;
  /// Run SelfHealingRing::validate() after every stabilization burst
  /// (no-op when contracts are compiled out).
  bool validate_ring = true;
  std::size_t ring_route_samples = 32;
};

class MembershipCoordinator {
 public:
  /// One document changing owner as a consequence of a membership event.
  struct Handoff {
    enum class Reason : std::uint8_t {
      kJoinPull = 0,
      kLeavePush = 1,
      kReconstruct = 2,
    };
    NodeId doc = 0;
    PeerId from = kInvalidPeer;
    PeerId to = kInvalidPeer;
    Reason reason = Reason::kReconstruct;
  };

  /// Everything the engine must act on for one pass. Vectors are in
  /// deterministic (schedule, then ascending id / doc) order.
  struct PassPlan {
    std::vector<PeerId> joins;
    /// (leaver, heir): the heir is the ring successor that absorbs the
    /// leaver's arc — also the peer that inherits its in-flight sender
    /// state (ReliableChannel::reassign_sender).
    std::vector<std::pair<PeerId, PeerId>> leaves;
    std::vector<PeerId> crashes;        // fail-stop this pass (undetected)
    std::vector<PeerId> declared_dead;  // detector verdicts this pass
    std::vector<Handoff> handoffs;      // ownership moves applied this pass
    [[nodiscard]] bool any_event() const {
      return !joins.empty() || !leaves.empty() || !crashes.empty() ||
             !declared_dead.empty();
    }
  };

  /// `placement` is shared with the engine and mutated in place as
  /// ownership moves; its num_peers() is the peer-id capacity (initial
  /// population plus every join the schedule will use). Documents are
  /// normalized to ring ownership (successor of the document GUID) at
  /// construction. Throws std::invalid_argument on a malformed schedule
  /// (events out of capacity, joining a live peer, removing a dead one).
  MembershipCoordinator(Placement& placement, PeerId initial_peers,
                        std::vector<MembershipEvent> schedule,
                        MembershipConfig config = {});

  /// Advance membership to `pass`: apply scheduled events, heartbeat the
  /// live population, collect detector verdicts, stabilize the ring and
  /// recompute document ownership. Passes must be requested in
  /// increasing order, each at most once. The returned plan is valid
  /// until the next call.
  const PassPlan& begin_pass(std::uint64_t pass);

  /// Per-peer liveness mask, sized to placement capacity (the engine's
  /// presence vector for the pass).
  [[nodiscard]] const std::vector<bool>& presence() const {
    return presence_;
  }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const SelfHealingRing& ring() const { return ring_; }
  [[nodiscard]] const FailureDetector& detector() const { return detector_; }

  /// True while `peer` has crashed but the detector has not yet declared
  /// it — the window in which senders still address it (stale-owner
  /// queries).
  [[nodiscard]] bool undetected_crash(PeerId peer) const {
    return undetected_crashes_.contains(peer);
  }

  /// All scheduled events consumed and every crash declared: membership
  /// can no longer perturb the computation, so the engine may converge.
  [[nodiscard]] bool quiescent() const {
    return cursor_ == schedule_.size() && undetected_crashes_.empty();
  }

  [[nodiscard]] PeerId live_peers() const { return live_count_; }
  [[nodiscard]] std::uint64_t events_applied() const {
    return events_applied_;
  }
  [[nodiscard]] std::uint64_t handoffs_total() const {
    return handoffs_total_;
  }
  [[nodiscard]] std::uint64_t stabilize_rounds_total() const {
    return stabilize_rounds_total_;
  }
  /// Passes from each crash to its detector verdict (recovery begins at
  /// declaration, so this is also the recovery-trigger latency the
  /// chaos campaign histograms).
  [[nodiscard]] const std::vector<std::uint64_t>& detection_latencies()
      const {
    return detection_latencies_;
  }

  /// Structural invariant walk (contracts.hpp; subsystem "p2p"):
  ///  * presence mask matches ring membership exactly, and the live
  ///    count matches both;
  ///  * every document not frozen on an undetected crash is owned by
  ///    the ring successor of its GUID;
  ///  * detector agreement: declared-dead peers are absent from the
  ///    ring, live peers are considered live by the detector.
  /// Delegates to detector().validate(); the ring's own validate() runs
  /// after stabilization bursts when config.validate_ring is set.
  void validate() const;

 private:
  void recompute_ownership();

  Placement& placement_;
  SelfHealingRing ring_;
  FailureDetector detector_;
  MembershipConfig config_;
  std::vector<MembershipEvent> schedule_;  // stable-sorted by pass
  std::size_t cursor_ = 0;
  // Liveness per peer id; indexed to capacity. vector<bool> is fine
  // here: per-pass reads, never a hot loop.
  std::vector<bool> presence_;
  PeerId live_count_ = 0;
  std::map<PeerId, std::uint64_t> undetected_crashes_;  // peer -> crash pass
  std::vector<std::uint64_t> detection_latencies_;
  PassPlan plan_;
  std::uint64_t next_pass_ = 0;
  std::uint64_t heal_passes_left_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t handoffs_total_ = 0;
  std::uint64_t stabilize_rounds_total_ = 0;
};

}  // namespace dprank
