#include "graph/graph_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace dprank {

namespace {
constexpr std::uint64_t kMagic = 0x44505247'52415048ULL;  // "DPRGRAPH"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("graph_io: truncated file");
  return v;
}
}  // namespace

void save_graph(const Digraph& g, const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_graph: cannot open " + path.string());
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(g.num_nodes()));
  write_pod(os, g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) {
      write_pod(os, u);
      write_pod(os, v);
    }
  }
  if (!os) throw std::runtime_error("save_graph: write failed");
}

Digraph load_graph(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_graph: cannot open " + path.string());
  if (read_pod<std::uint64_t>(is) != kMagic) {
    throw std::runtime_error("load_graph: bad magic in " + path.string());
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("load_graph: unsupported version");
  }
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto src = read_pod<NodeId>(is);
    const auto dst = read_pod<NodeId>(is);
    edges.push_back({src, dst});
  }
  return Digraph::from_edges(static_cast<NodeId>(n), std::move(edges));
}

}  // namespace dprank
