#pragma once

// Binary graph serialization.
//
// The big generated graphs (500k and 5000k nodes) are expensive to
// regenerate for every bench binary; save/load lets the harness build them
// once. Format: magic, version, node count, edge count, then (src, dst)
// pairs of little-endian uint32.

#include <filesystem>

#include "graph/digraph.hpp"

namespace dprank {

void save_graph(const Digraph& g, const std::filesystem::path& path);

/// Throws std::runtime_error on missing file or format mismatch.
[[nodiscard]] Digraph load_graph(const std::filesystem::path& path);

/// Load `path` if it exists, else generate with `make`, save, and return.
template <typename MakeFn>
[[nodiscard]] Digraph load_or_build(const std::filesystem::path& path,
                                    MakeFn&& make) {
  if (std::filesystem::exists(path)) return load_graph(path);
  Digraph g = make();
  save_graph(g, path);
  return g;
}

}  // namespace dprank
