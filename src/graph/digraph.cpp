#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dprank {

Digraph Digraph::from_edges(NodeId num_nodes, std::vector<Edge> edges) {
  for (const auto& [src, dst] : edges) {
    if (src >= num_nodes || dst >= num_nodes) {
      throw std::out_of_range("Digraph::from_edges: endpoint out of range");
    }
  }
  // Drop self-loops, sort by (src, dst), and deduplicate.
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  const EdgeId m = edges.size();
  g.out_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& e : edges) ++g.out_offsets_[e.src + 1];
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  for (EdgeId i = 0; i < m; ++i) g.out_targets_[i] = edges[i].dst;

  // In-CSR with the cross index, via counting sort over destinations.
  g.in_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.in_sources_.resize(m);
  g.in_to_out_.resize(m);
  for (const auto& e : edges) ++g.in_offsets_[e.dst + 1];
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId v = edges[e].dst;
    const EdgeId pos = cursor[v]++;
    g.in_sources_[pos] = edges[e].src;
    g.in_to_out_[pos] = e;  // edges are already in out-CSR (edge id) order
  }
  return g;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Digraph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : out_neighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

}  // namespace dprank
