#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

Digraph Digraph::from_edges(NodeId num_nodes, std::vector<Edge> edges,
                            CrossIndexWidth width) {
  for (const auto& [src, dst] : edges) {
    if (src >= num_nodes || dst >= num_nodes) {
      throw std::out_of_range("Digraph::from_edges: endpoint out of range");
    }
  }
  // Drop self-loops, sort by (src, dst), and deduplicate.
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  const EdgeId m = edges.size();
  g.out_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& e : edges) ++g.out_offsets_[e.src + 1];
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  for (EdgeId i = 0; i < m; ++i) g.out_targets_[i] = edges[i].dst;
  g.build_from_out_csr(width);
  return g;
}

Digraph::Builder::Builder(NodeId num_nodes, EdgeId expected_edges,
                          CrossIndexWidth width)
    : num_nodes_(num_nodes), width_(width) {
  out_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  if (expected_edges != 0) out_targets_.reserve(expected_edges);
}

void Digraph::Builder::add_node(NodeId u, std::span<const NodeId> targets) {
  if (u >= num_nodes_ || u < next_node_) {
    throw std::out_of_range(
        "Digraph::Builder::add_node: nodes must arrive in ascending order");
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] >= num_nodes_ || targets[i] == u ||
        (i != 0 && targets[i - 1] >= targets[i])) {
      throw std::invalid_argument(
          "Digraph::Builder::add_node: targets must be strictly sorted, in "
          "range and self-loop free");
    }
  }
  // Close out the offsets of every node since the last append.
  for (NodeId v = next_node_; v <= u; ++v) {
    out_offsets_[v] = out_targets_.size();
  }
  out_targets_.insert(out_targets_.end(), targets.begin(), targets.end());
  next_node_ = u + 1;
}

Digraph Digraph::Builder::finalize() && {
  for (NodeId v = next_node_; v <= num_nodes_; ++v) {
    out_offsets_[v] = out_targets_.size();
  }
  Digraph g;
  g.out_offsets_ = std::move(out_offsets_);
  g.out_targets_ = std::move(out_targets_);
  g.build_from_out_csr(width_);
  return g;
}

void Digraph::build_from_out_csr(CrossIndexWidth width) {
  const NodeId n = num_nodes();
  const EdgeId m = num_edges();
  cross_index_narrow_ =
      width == CrossIndexWidth::kAuto && narrow_cross_index_allowed(m);

  // In-CSR with the cross index, via counting sort over destinations (the
  // out-CSR is already in (src, dst) order, so edge ids ascend here).
  in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  in_sources_.resize(m);
  in_to_out_.resize(m);
  for (const NodeId v : out_targets_) ++in_offsets_[v + 1];
  for (NodeId v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];
  if (cross_index_narrow_) {
    out_to_in32_.resize(m);
    out_to_in_.clear();
    out_to_in_.shrink_to_fit();
  } else {
    out_to_in_.resize(m);
    out_to_in32_.clear();
    out_to_in32_.shrink_to_fit();
  }
  std::vector<EdgeId> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId out_end = out_offsets_[u + 1];
    for (EdgeId e = out_offsets_[u]; e < out_end; ++e) {
      const NodeId v = out_targets_[e];
      const EdgeId pos = cursor[v]++;
      in_sources_[pos] = u;
      in_to_out_[pos] = e;
      if (cross_index_narrow_) {
        out_to_in32_[e] = static_cast<std::uint32_t>(pos);
      } else {
        out_to_in_[e] = pos;
      }
    }
  }

  inv_out_degree_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t deg = out_degree(u);
    inv_out_degree_[u] = deg == 0 ? 0.0f : 1.0f / static_cast<float>(deg);
  }
}

std::uint64_t Digraph::memory_bytes() const {
  const auto bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.capacity()) *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(out_offsets_) + bytes(out_targets_) + bytes(in_offsets_) +
         bytes(in_sources_) + bytes(in_to_out_) + bytes(out_to_in_) +
         bytes(out_to_in32_) + bytes(inv_out_degree_);
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Digraph::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "graph";
  const NodeId n = num_nodes();
  const EdgeId m = num_edges();
  DPRANK_INVARIANT(out_offsets_.size() == in_offsets_.size(), kSub,
                   "out/in offset arrays cover different node counts");
  DPRANK_INVARIANT(
      (n == 0 && out_offsets_.empty()) || out_offsets_.size() == n + 1, kSub,
      "offset array size does not match node count");
  // Compact cross-index contract: the narrow (32-bit) layout may only be
  // stored while every in-CSR position fits a 32-bit word, and exactly
  // the selected array carries the index.
  DPRANK_INVARIANT(!cross_index_narrow_ || narrow_cross_index_allowed(m),
                   kSub,
                   "32-bit cross index stored for a graph with m >= 2^32");
  DPRANK_INVARIANT(cross_index_narrow_
                       ? (out_to_in32_.size() == m && out_to_in_.empty())
                       : (out_to_in_.size() == m && out_to_in32_.empty()),
                   kSub,
                   "cross-index storage does not match the selected width");
  if (n == 0) {
    DPRANK_INVARIANT(m == 0 && in_sources_.empty() && in_to_out_.empty(),
                     kSub, "empty graph holds edges");
    return;
  }
  DPRANK_INVARIANT(inv_out_degree_.size() == n, kSub,
                   "inverse out-degree array does not cover the nodes");
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t deg = out_degree(u);
    const float expect = deg == 0 ? 0.0f : 1.0f / static_cast<float>(deg);
    DPRANK_INVARIANT(inv_out_degree_[u] == expect, kSub,
                     "inverse out-degree does not match the CSR degree at "
                     "node " + std::to_string(u));
  }
  DPRANK_INVARIANT(out_offsets_.front() == 0 && in_offsets_.front() == 0,
                   kSub, "offset arrays do not start at 0");
  DPRANK_INVARIANT(out_offsets_.back() == m && in_offsets_.back() == m &&
                       in_sources_.size() == m && in_to_out_.size() == m,
                   kSub, "degree sums do not match the edge count");
  for (NodeId u = 0; u < n; ++u) {
    DPRANK_INVARIANT(out_offsets_[u] <= out_offsets_[u + 1], kSub,
                     "out-CSR offsets not monotone at node " +
                         std::to_string(u));
    DPRANK_INVARIANT(in_offsets_[u] <= in_offsets_[u + 1], kSub,
                     "in-CSR offsets not monotone at node " +
                         std::to_string(u));
  }
  // Out-lists: in-range targets, strictly sorted (has_edge relies on it),
  // no self-loops.
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      DPRANK_INVARIANT(nbrs[i] < n, kSub,
                       "out-edge target out of range at node " +
                           std::to_string(u));
      DPRANK_INVARIANT(nbrs[i] != u, kSub,
                       "self-loop stored at node " + std::to_string(u));
      DPRANK_INVARIANT(i == 0 || nbrs[i - 1] < nbrs[i], kSub,
                       "out-list not strictly sorted at node " +
                           std::to_string(u));
    }
  }
  // In-CSR mirror: in_to_out_ is a permutation of [0, m); each mirrored
  // edge id must target the list's owner and originate at the recorded
  // source (the per-edge contribution cells depend on this cross index),
  // and out_to_in_edge must be its exact inverse in whichever width.
  std::vector<std::uint8_t> seen(m, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto srcs = in_neighbors(v);
    const auto slots = in_to_out_edge(v);
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      const EdgeId e = slots[i];
      DPRANK_INVARIANT(e < m, kSub,
                       "in_to_out edge id out of range at node " +
                           std::to_string(v));
      DPRANK_INVARIANT(out_to_in_edge(e) == in_offsets_[v] + i, kSub,
                       "out_to_in is not the inverse of in_to_out at edge " +
                           std::to_string(e));
      DPRANK_INVARIANT(!seen[e], kSub,
                       "edge id " + std::to_string(e) +
                           " mirrored twice in the in-CSR");
      seen[e] = 1;
      DPRANK_INVARIANT(out_targets_[e] == v, kSub,
                       "in-CSR mirror of edge " + std::to_string(e) +
                           " does not target its owner " +
                           std::to_string(v));
      const NodeId u = srcs[i];
      DPRANK_INVARIANT(u < n, kSub,
                       "in-edge source out of range at node " +
                           std::to_string(v));
      DPRANK_INVARIANT(
          out_offsets_[u] <= e && e < out_offsets_[u + 1], kSub,
          "in-CSR source " + std::to_string(u) + " does not own edge " +
              std::to_string(e));
    }
  }
}

std::vector<Edge> Digraph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : out_neighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

}  // namespace dprank
