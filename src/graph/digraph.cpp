#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"

namespace dprank {

Digraph Digraph::from_edges(NodeId num_nodes, std::vector<Edge> edges) {
  for (const auto& [src, dst] : edges) {
    if (src >= num_nodes || dst >= num_nodes) {
      throw std::out_of_range("Digraph::from_edges: endpoint out of range");
    }
  }
  // Drop self-loops, sort by (src, dst), and deduplicate.
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  const EdgeId m = edges.size();
  g.out_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& e : edges) ++g.out_offsets_[e.src + 1];
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  for (EdgeId i = 0; i < m; ++i) g.out_targets_[i] = edges[i].dst;

  // In-CSR with the cross index, via counting sort over destinations.
  g.in_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.in_sources_.resize(m);
  g.in_to_out_.resize(m);
  for (const auto& e : edges) ++g.in_offsets_[e.dst + 1];
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_to_in_.resize(m);
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId v = edges[e].dst;
    const EdgeId pos = cursor[v]++;
    g.in_sources_[pos] = edges[e].src;
    g.in_to_out_[pos] = e;  // edges are already in out-CSR (edge id) order
    g.out_to_in_[e] = pos;
  }
  return g;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Digraph::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "graph";
  const NodeId n = num_nodes();
  const EdgeId m = num_edges();
  DPRANK_INVARIANT(out_offsets_.size() == in_offsets_.size(), kSub,
                   "out/in offset arrays cover different node counts");
  DPRANK_INVARIANT(
      (n == 0 && out_offsets_.empty()) || out_offsets_.size() == n + 1, kSub,
      "offset array size does not match node count");
  if (n == 0) {
    DPRANK_INVARIANT(m == 0 && in_sources_.empty() && in_to_out_.empty(),
                     kSub, "empty graph holds edges");
    return;
  }
  DPRANK_INVARIANT(out_offsets_.front() == 0 && in_offsets_.front() == 0,
                   kSub, "offset arrays do not start at 0");
  DPRANK_INVARIANT(out_offsets_.back() == m && in_offsets_.back() == m &&
                       in_sources_.size() == m && in_to_out_.size() == m,
                   kSub, "degree sums do not match the edge count");
  for (NodeId u = 0; u < n; ++u) {
    DPRANK_INVARIANT(out_offsets_[u] <= out_offsets_[u + 1], kSub,
                     "out-CSR offsets not monotone at node " +
                         std::to_string(u));
    DPRANK_INVARIANT(in_offsets_[u] <= in_offsets_[u + 1], kSub,
                     "in-CSR offsets not monotone at node " +
                         std::to_string(u));
  }
  // Out-lists: in-range targets, strictly sorted (has_edge relies on it),
  // no self-loops.
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      DPRANK_INVARIANT(nbrs[i] < n, kSub,
                       "out-edge target out of range at node " +
                           std::to_string(u));
      DPRANK_INVARIANT(nbrs[i] != u, kSub,
                       "self-loop stored at node " + std::to_string(u));
      DPRANK_INVARIANT(i == 0 || nbrs[i - 1] < nbrs[i], kSub,
                       "out-list not strictly sorted at node " +
                           std::to_string(u));
    }
  }
  // In-CSR mirror: in_to_out_ is a permutation of [0, m); each mirrored
  // edge id must target the list's owner and originate at the recorded
  // source (the per-edge contribution cells depend on this cross index),
  // and out_to_in_ must be its exact inverse.
  DPRANK_INVARIANT(out_to_in_.size() == m, kSub,
                   "out_to_in inverse index does not cover the edges");
  std::vector<std::uint8_t> seen(m, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto srcs = in_neighbors(v);
    const auto slots = in_to_out_edge(v);
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      const EdgeId e = slots[i];
      DPRANK_INVARIANT(e < m, kSub,
                       "in_to_out edge id out of range at node " +
                           std::to_string(v));
      DPRANK_INVARIANT(out_to_in_[e] == in_offsets_[v] + i, kSub,
                       "out_to_in is not the inverse of in_to_out at edge " +
                           std::to_string(e));
      DPRANK_INVARIANT(!seen[e], kSub,
                       "edge id " + std::to_string(e) +
                           " mirrored twice in the in-CSR");
      seen[e] = 1;
      DPRANK_INVARIANT(out_targets_[e] == v, kSub,
                       "in-CSR mirror of edge " + std::to_string(e) +
                           " does not target its owner " +
                           std::to_string(v));
      const NodeId u = srcs[i];
      DPRANK_INVARIANT(u < n, kSub,
                       "in-edge source out of range at node " +
                           std::to_string(v));
      DPRANK_INVARIANT(
          out_offsets_[u] <= e && e < out_offsets_[u + 1], kSub,
          "in-CSR source " + std::to_string(u) + " does not own edge " +
              std::to_string(e));
    }
  }
}

std::vector<Edge> Digraph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : out_neighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

}  // namespace dprank
