#pragma once

// Adjacency-list digraph supporting document insertion and deletion.
//
// The incremental pagerank protocol (§3.1, §4.7) adds and removes
// documents from a live system: "adding a node is equivalent to adding an
// extra column and row to the A matrix", a delete removes them. CSR is
// the right layout for the large static sweeps, but mutation needs
// adjacency lists; MutableDigraph provides them and converts to/from
// Digraph so the two engines can share graphs.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dprank {

class MutableDigraph {
 public:
  MutableDigraph() = default;
  explicit MutableDigraph(const Digraph& g);
  explicit MutableDigraph(NodeId num_nodes);

  /// Append a new node with no edges; returns its id.
  NodeId add_node();

  /// Add a new node with the given out-links (a freshly inserted document
  /// "can only have outlinks. Since this is a new document, there cannot
  /// be inlinks already pointing to it", §4.7). Returns its id.
  NodeId add_document(const std::vector<NodeId>& out_links);

  /// Add edge u->v. Returns false (no-op) for self-loops and duplicates.
  bool add_edge(NodeId u, NodeId v);

  /// Remove edge u->v if present; returns whether it existed.
  bool remove_edge(NodeId u, NodeId v);

  /// Remove all edges incident to v (both directions), modelling a
  /// document deletion: "removing a document is equivalent to deleting
  /// its row and its corresponding column from the A matrix" (§4.7).
  /// The node id remains allocated but isolated (ids stay stable, as GUIDs
  /// do in a real DHT). Returns the number of edges removed.
  ///
  /// Rank-mass note: isolating a node is only the structural half of a
  /// document delete. The rank half — propagating the negated rank along
  /// the out-links and zeroing the document's own rank — must happen in
  /// the same step or the system is left holding dangling rank that no
  /// live document backs (and, transiently, in-links still feeding mass
  /// to a tombstone). Use IncrementalPagerank::propagate_full_delete (or
  /// the delete_document convenience) rather than calling this directly
  /// from ingest paths; the global rank sum intentionally drops by
  /// ~R(v) per delete (see pagerank/incremental.hpp).
  std::uint64_t isolate_node(NodeId v);

  [[nodiscard]] bool is_isolated(NodeId v) const {
    return out_[v].empty() && in_[v].empty();
  }

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] EdgeId num_edges() const { return num_edges_; }

  [[nodiscard]] const std::vector<NodeId>& out_neighbors(NodeId u) const {
    return out_[u];
  }
  [[nodiscard]] const std::vector<NodeId>& in_neighbors(NodeId v) const {
    return in_[v];
  }
  [[nodiscard]] std::uint32_t out_degree(NodeId u) const {
    return static_cast<std::uint32_t>(out_[u].size());
  }
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const {
    return static_cast<std::uint32_t>(in_[v].size());
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Snapshot to CSR.
  [[nodiscard]] Digraph freeze() const;

  /// Structural invariant walk (contracts.hpp; subsystem "graph"): the
  /// out- and in-adjacency lists are exact mirrors (u->v stored in
  /// out_[u] exactly once iff u stored in in_[v] exactly once), no
  /// self-loops or duplicate edges survive a mutation, every neighbor id
  /// is in range, and both degree sums equal num_edges(). O(E log E).
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out. The §4.7 incremental-update tests
  /// call this after every randomized insert/delete.
  void validate() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  EdgeId num_edges_ = 0;
};

}  // namespace dprank
