#include "graph/mutable_digraph.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace dprank {

MutableDigraph::MutableDigraph(const Digraph& g)
    : out_(g.num_nodes()), in_(g.num_nodes()), num_edges_(g.num_edges()) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    out_[u].assign(nbrs.begin(), nbrs.end());
    const auto srcs = g.in_neighbors(u);
    in_[u].assign(srcs.begin(), srcs.end());
  }
}

MutableDigraph::MutableDigraph(NodeId num_nodes)
    : out_(num_nodes), in_(num_nodes) {}

NodeId MutableDigraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

NodeId MutableDigraph::add_document(const std::vector<NodeId>& out_links) {
  const NodeId id = add_node();
  for (const NodeId v : out_links) add_edge(id, v);
  return id;
}

bool MutableDigraph::has_edge(NodeId u, NodeId v) const {
  const auto& nbrs = out_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

bool MutableDigraph::add_edge(NodeId u, NodeId v) {
  if (u == v || has_edge(u, v)) return false;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool MutableDigraph::remove_edge(NodeId u, NodeId v) {
  auto& nbrs = out_[u];
  const auto it = std::find(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end()) return false;
  nbrs.erase(it);
  auto& srcs = in_[v];
  srcs.erase(std::find(srcs.begin(), srcs.end(), u));
  --num_edges_;
  return true;
}

std::uint64_t MutableDigraph::isolate_node(NodeId v) {
  // Copy the lists: remove_edge mutates them while we iterate.
  const std::vector<NodeId> outs = out_[v];
  for (const NodeId w : outs) remove_edge(v, w);
  const std::vector<NodeId> ins = in_[v];
  for (const NodeId u : ins) remove_edge(u, v);
  return outs.size() + ins.size();
}

void MutableDigraph::validate() const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "graph";
  const NodeId n = num_nodes();
  DPRANK_INVARIANT(in_.size() == out_.size(), kSub,
                   "out/in adjacency cover different node counts");
  // Gather both directions as (u, v) edge lists; the mirrors must be the
  // same set, each side free of self-loops and duplicates.
  std::vector<std::pair<NodeId, NodeId>> fwd;
  std::vector<std::pair<NodeId, NodeId>> bwd;
  fwd.reserve(num_edges_);
  bwd.reserve(num_edges_);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : out_[u]) {
      DPRANK_INVARIANT(v < n, kSub,
                       "out-neighbor out of range at node " +
                           std::to_string(u));
      DPRANK_INVARIANT(v != u, kSub,
                       "self-loop stored at node " + std::to_string(u));
      fwd.emplace_back(u, v);
    }
    for (const NodeId w : in_[u]) {
      DPRANK_INVARIANT(w < n, kSub,
                       "in-neighbor out of range at node " +
                           std::to_string(u));
      bwd.emplace_back(w, u);
    }
  }
  DPRANK_INVARIANT(fwd.size() == num_edges_, kSub,
                   "out-degree sum does not match the edge count");
  DPRANK_INVARIANT(bwd.size() == num_edges_, kSub,
                   "in-degree sum does not match the edge count");
  std::sort(fwd.begin(), fwd.end());
  std::sort(bwd.begin(), bwd.end());
  DPRANK_INVARIANT(std::adjacent_find(fwd.begin(), fwd.end()) == fwd.end(),
                   kSub, "duplicate edge stored in the out-adjacency");
  DPRANK_INVARIANT(fwd == bwd, kSub,
                   "in-adjacency is not an exact mirror of the "
                   "out-adjacency");
}

Digraph MutableDigraph::freeze() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : out_[u]) edges.push_back({u, v});
  }
  return Digraph::from_edges(num_nodes(), std::move(edges));
}

}  // namespace dprank
