#pragma once

// Compressed sparse row (CSR) directed graph.
//
// Documents in the P2P system are nodes; hyperlink-style references are
// directed edges (§2.1). The pagerank engines need, per document:
//   * its out-links (to address update messages),
//   * its in-links (to recompute its rank from stored contributions),
//   * a mapping from each in-link back to the sender's out-edge slot,
//     so a "pagerank update message" for edge u->v is modelled as a write
//     to one contribution cell owned by the edge (see
//     pagerank/distributed_engine.hpp).
//
// Both adjacency directions are stored in CSR form; `in_to_out_edge()`
// provides the cross index. Node ids are 32-bit (the paper's largest graph
// is 5 million nodes), edge ids 64-bit.
//
// Compact layout (ROADMAP item 4): the inverse cross index `out_to_in_`
// is stored as 32-bit words whenever m < 2^32 — every graph this
// reproduction can actually build — halving the hottest per-edge load of
// the exchange phase; the 64-bit fallback is selected at build time when
// the edge count demands it (and can be forced for the layout-equivalence
// tests). Float inverse out-degrees ride along for consumers that only
// need approximate per-link weights (scale diagnostics, future inexact
// engines); the exact engine keeps its double divisions — they are part
// of the bit-reproducibility anchor.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dprank {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

struct Edge {
  NodeId src;
  NodeId dst;
  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

class Digraph {
 public:
  /// Storage width of the out_to_in_ cross index. kAuto picks 32-bit
  /// whenever the edge count allows (see narrow_cross_index_allowed);
  /// kForceWide keeps the legacy 64-bit layout — the layout-equivalence
  /// tests run both and assert bit-identical engine output.
  enum class CrossIndexWidth : std::uint8_t { kAuto = 0, kForceWide = 1 };

  Digraph() = default;

  /// Build from an edge list. Self-loops and duplicate edges are dropped
  /// (hyperlink multiplicity does not change the random-surfer model the
  /// paper uses). Edge endpoints must be < num_nodes.
  static Digraph from_edges(NodeId num_nodes, std::vector<Edge> edges,
                            CrossIndexWidth width = CrossIndexWidth::kAuto);

  /// Streaming CSR construction: callers append each node's out-links in
  /// ascending node order and finalize() derives the in-CSR and cross
  /// indexes in place. Peak memory is the finished CSR itself — no
  /// intermediate edge list (generate_web_graph's peak used to be the
  /// full std::vector<Edge> *plus* the CSR).
  class Builder {
   public:
    /// `expected_edges` is a reservation hint only (0 = none).
    explicit Builder(NodeId num_nodes, EdgeId expected_edges = 0,
                     CrossIndexWidth width = CrossIndexWidth::kAuto);

    /// Append node `u`'s out-links. Nodes must arrive in strictly
    /// ascending order (gaps are fine — skipped nodes have no
    /// out-links); `targets` must be strictly sorted, in range and
    /// self-loop free, exactly what from_edges' sort+dedup produces.
    void add_node(NodeId u, std::span<const NodeId> targets);

    /// Derive the in-CSR, cross indexes and inverse out-degrees.
    /// The builder is consumed.
    [[nodiscard]] Digraph finalize() &&;

   private:
    // Raw out-CSR under construction (a Digraph member would need the
    // enclosing class complete); finalize() moves these into the graph.
    std::vector<EdgeId> out_offsets_;
    std::vector<NodeId> out_targets_;
    NodeId num_nodes_ = 0;
    NodeId next_node_ = 0;
    CrossIndexWidth width_ = CrossIndexWidth::kAuto;
  };

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(out_offsets_.empty() ? 0
                                                    : out_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const { return out_targets_.size(); }

  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  [[nodiscard]] std::span<const NodeId> in_neighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId u) const {
    return static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Out-edge ids for node u occupy [out_edge_begin(u), out_edge_end(u));
  /// edge id e corresponds to target out_target(e).
  [[nodiscard]] EdgeId out_edge_begin(NodeId u) const {
    return out_offsets_[u];
  }
  [[nodiscard]] EdgeId out_edge_end(NodeId u) const {
    return out_offsets_[u + 1];
  }
  [[nodiscard]] NodeId out_target(EdgeId e) const { return out_targets_[e]; }

  /// For position p in [in_offsets_[v], in_offsets_[v+1]) of v's in-list,
  /// the out-edge id at the sender that feeds it. Aligned with
  /// in_neighbors(v): in_neighbors(v)[i] sent the contribution stored at
  /// out-edge in_to_out_edge(v)[i].
  [[nodiscard]] std::span<const EdgeId> in_to_out_edge(NodeId v) const {
    return {in_to_out_.data() + in_offsets_[v],
            in_to_out_.data() + in_offsets_[v + 1]};
  }

  /// In-CSR positions for node v occupy [in_edge_begin(v), in_edge_end(v));
  /// position in_edge_begin(v) + i belongs to in_neighbors(v)[i]. State
  /// stored per in-position (the engine's contribution cells) is
  /// contiguous per destination, so a recompute streams its cells instead
  /// of gathering them through the cross index.
  [[nodiscard]] EdgeId in_edge_begin(NodeId v) const { return in_offsets_[v]; }
  [[nodiscard]] EdgeId in_edge_end(NodeId v) const {
    return in_offsets_[v + 1];
  }

  /// Raw in-CSR offset array (num_nodes + 1 entries): offsets[v] ..
  /// offsets[v+1] bound v's cell range. The engine's fold kernel
  /// (common/simd.hpp) indexes this directly per lane.
  [[nodiscard]] const EdgeId* in_offsets_data() const {
    return in_offsets_.data();
  }

  /// Inverse of the in_to_out_edge cross index: the in-CSR position that
  /// mirrors out-edge id e. in_to_out_edge(v)[i] == e implies
  /// out_to_in_edge(e) == in_edge_begin(v) + i.
  [[nodiscard]] EdgeId out_to_in_edge(EdgeId e) const {
    return cross_index_narrow_ ? static_cast<EdgeId>(out_to_in32_[e])
                               : out_to_in_[e];
  }

  /// Selection rule for the compact cross index: 32-bit positions can
  /// address every in-CSR slot only while m fits in a 32-bit word. The
  /// contract in validate() rejects a narrow index stored for a graph
  /// this predicate refuses.
  [[nodiscard]] static constexpr bool narrow_cross_index_allowed(EdgeId m) {
    return m < (EdgeId{1} << 32);
  }

  /// The compact 32-bit cross index, or nullptr when this graph carries
  /// the wide layout. Hot kernels branch once per run, not per edge.
  [[nodiscard]] const std::uint32_t* out_to_in32_data() const {
    return cross_index_narrow_ ? out_to_in32_.data() : nullptr;
  }

  /// Precomputed 1/outdeg(u) as float (0.0f for dangling nodes) — the
  /// compact layout's approximate per-link weight. Exact engines must
  /// keep dividing doubles (rank emission values are digest-pinned).
  [[nodiscard]] float inv_out_degree(NodeId u) const {
    return inv_out_degree_[u];
  }
  [[nodiscard]] std::span<const float> inv_out_degrees() const {
    return {inv_out_degree_.data(), inv_out_degree_.size()};
  }

  /// Heap bytes held by the CSR arrays (capacity, not size — what the
  /// allocator actually handed over). Feeds mem.graph_bytes telemetry
  /// and the bytes-per-edge scale diagnostics.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// True if u has an edge to v (binary search over sorted out-list).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges, in out-CSR order (edge id order).
  [[nodiscard]] std::vector<Edge> edge_list() const;

  /// Structural invariant walk (contracts.hpp; subsystem "graph"): both
  /// CSR offset arrays are monotone and cover [0, num_edges]; every
  /// endpoint id is in range; out-lists are strictly sorted (has_edge
  /// binary-searches them); degree sums on both sides equal the edge
  /// count; and the in-CSR is an exact mirror of the out-CSR — the
  /// in_to_out_ cross index is a permutation of the edge ids with
  /// matching source and target on both sides. O(E log N). Throws
  /// contracts::ContractViolation on the first violation; no-op when
  /// contracts are compiled out.
  void validate() const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates

  /// Build everything derived from the finished out-CSR: in-CSR, both
  /// cross indexes (narrow or wide per `width`), inverse out-degrees.
  void build_from_out_csr(CrossIndexWidth width);

  // Out-CSR: out_offsets_[u]..out_offsets_[u+1] indexes out_targets_.
  std::vector<EdgeId> out_offsets_;
  std::vector<NodeId> out_targets_;
  // In-CSR: in_offsets_[v]..in_offsets_[v+1] indexes in_sources_ and
  // in_to_out_ in lockstep.
  std::vector<EdgeId> in_offsets_;
  std::vector<NodeId> in_sources_;
  std::vector<EdgeId> in_to_out_;
  // Inverse permutation of in_to_out_, indexed by out-edge id. Exactly
  // one of the two is populated (see cross_index_narrow_).
  std::vector<EdgeId> out_to_in_;
  std::vector<std::uint32_t> out_to_in32_;
  bool cross_index_narrow_ = true;  // empty graph: narrow trivially holds
  // 1/outdeg as float, 0.0f for dangling nodes.
  std::vector<float> inv_out_degree_;
};

}  // namespace dprank
