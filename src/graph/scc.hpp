#pragma once

// Strongly connected components and Broder bow-tie decomposition.
//
// The paper's graph model comes from Broder et al.'s web measurement,
// whose headline structural result is the bow-tie: a giant strongly
// connected CORE, an IN set that reaches it, an OUT set it reaches, and
// disconnected TENDRILS/OTHER. These diagnostics let tests confirm the
// synthesized graphs have web-like macro-structure, and they bound
// incremental-update reach (an insert's coverage cannot exceed the
// forward-reachable set).

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dprank {

struct SccResult {
  /// Component id per node; components are numbered in reverse
  /// topological order (an edge u->v implies comp[u] >= comp[v]).
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;

  [[nodiscard]] std::vector<std::uint64_t> component_sizes() const;
  [[nodiscard]] std::uint32_t largest_component() const;
};

/// Iterative Tarjan SCC (explicit stack; safe on web-scale graphs).
[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

enum class BowtieRegion : std::uint8_t {
  kCore,      // the largest SCC
  kIn,        // reaches the core, not in it
  kOut,       // reachable from the core, not in it
  kOther,     // everything else (tendrils, tubes, islands)
};

struct BowtieStats {
  std::vector<BowtieRegion> region;
  std::uint64_t core = 0;
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  std::uint64_t other = 0;
};

[[nodiscard]] BowtieStats bowtie_decomposition(const Digraph& g);

}  // namespace dprank
