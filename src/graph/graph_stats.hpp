#pragma once

// Degree-distribution and reachability diagnostics for generated graphs.
//
// Used by the generator's tests (does the synthetic graph actually follow
// the Broder power law?) and by Table 4's analysis (node coverage of an
// insert is bounded by forward reachability).

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "graph/digraph.hpp"

namespace dprank {

struct DegreeStats {
  Welford out_degree;
  Welford in_degree;
  std::uint64_t dangling_nodes = 0;   // out-degree 0
  std::uint64_t sourceless_nodes = 0; // in-degree 0
};

[[nodiscard]] DegreeStats compute_degree_stats(const Digraph& g);

/// Raw degree counts: counts[k] = number of nodes with degree k, for
/// k in [0, max_k]. 64-bit accumulators — a double-valued histogram
/// silently loses counts past 2^53 and invites per-element rounding;
/// the counts stay exact integers until a caller normalizes.
[[nodiscard]] std::vector<std::uint64_t> degree_counts(const Digraph& g,
                                                       bool out_direction,
                                                       std::uint32_t max_k);

/// Empirical P(degree = k) for k in [0, max_k], out- or in-degree
/// (degree_counts normalized by the node count).
[[nodiscard]] std::vector<double> degree_histogram(const Digraph& g,
                                                   bool out_direction,
                                                   std::uint32_t max_k);

/// Memory-layout summary of a built CSR: the per-edge and per-node cost
/// of the structure as allocated (Digraph::memory_bytes), the compact
/// layout's scale yardstick (bench_scale reports these per config).
struct LayoutStats {
  std::uint64_t heap_bytes = 0;
  double bytes_per_edge = 0.0;
  double bytes_per_node = 0.0;
};

[[nodiscard]] LayoutStats compute_layout_stats(const Digraph& g);

/// Least-squares slope of log(count) vs log(k) over k with nonzero count
/// in [k_lo, k_hi]; for a power law P(k) ∝ k^-alpha this estimates -alpha.
[[nodiscard]] double fit_power_law_slope(const std::vector<double>& histogram,
                                         std::uint32_t k_lo,
                                         std::uint32_t k_hi);

/// Number of nodes forward-reachable from `start` (including start),
/// truncated at `limit` nodes to bound work on big graphs (0 = no limit).
[[nodiscard]] std::uint64_t forward_reachable_count(const Digraph& g,
                                                    NodeId start,
                                                    std::uint64_t limit = 0);

}  // namespace dprank
