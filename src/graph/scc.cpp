#include "graph/scc.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dprank {

std::vector<std::uint64_t> SccResult::component_sizes() const {
  std::vector<std::uint64_t> sizes(num_components, 0);
  for (const auto c : component) ++sizes[c];
  return sizes;
}

std::uint32_t SccResult::largest_component() const {
  if (num_components == 0) {
    throw std::logic_error("SccResult::largest_component: empty graph");
  }
  const auto sizes = component_sizes();
  return static_cast<std::uint32_t>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
}

SccResult strongly_connected_components(const Digraph& g) {
  const NodeId n = g.num_nodes();
  SccResult result;
  result.component.assign(n, 0);

  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;

  // Explicit DFS frames: (node, next out-neighbor position).
  struct Frame {
    NodeId node;
    std::uint32_t child;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      auto& frame = dfs.back();
      const NodeId u = frame.node;
      const auto nbrs = g.out_neighbors(u);
      if (frame.child < nbrs.size()) {
        const NodeId v = nbrs[frame.child++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] =
              std::min(lowlink[dfs.back().node], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          // u is an SCC root; pop its component.
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            if (w == u) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

namespace {

/// Mark all nodes reachable from `seeds` following out-edges (forward)
/// or in-edges (backward).
void flood(const Digraph& g, const std::vector<NodeId>& seeds, bool forward,
           std::vector<bool>& reached) {
  std::deque<NodeId> frontier(seeds.begin(), seeds.end());
  for (const NodeId s : seeds) reached[s] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto nbrs = forward ? g.out_neighbors(u) : g.in_neighbors(u);
    for (const NodeId v : nbrs) {
      if (reached[v]) continue;
      reached[v] = true;
      frontier.push_back(v);
    }
  }
}

}  // namespace

BowtieStats bowtie_decomposition(const Digraph& g) {
  const NodeId n = g.num_nodes();
  BowtieStats stats;
  stats.region.assign(n, BowtieRegion::kOther);
  if (n == 0) return stats;

  const auto scc = strongly_connected_components(g);
  const auto core_id = scc.largest_component();
  std::vector<NodeId> core_nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (scc.component[v] == core_id) core_nodes.push_back(v);
  }

  std::vector<bool> fwd(n, false);
  std::vector<bool> bwd(n, false);
  flood(g, core_nodes, /*forward=*/true, fwd);
  flood(g, core_nodes, /*forward=*/false, bwd);

  for (NodeId v = 0; v < n; ++v) {
    if (scc.component[v] == core_id) {
      stats.region[v] = BowtieRegion::kCore;
      ++stats.core;
    } else if (bwd[v]) {
      stats.region[v] = BowtieRegion::kIn;
      ++stats.in;
    } else if (fwd[v]) {
      stats.region[v] = BowtieRegion::kOut;
      ++stats.out;
    } else {
      ++stats.other;
    }
  }
  return stats;
}

}  // namespace dprank
