#include "graph/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/zipf.hpp"

namespace dprank {

Digraph generate_web_graph(const WebGraphParams& params) {
  const std::uint64_t n = params.num_nodes;
  if (n < 2) throw std::invalid_argument("generate_web_graph: need >= 2 nodes");
  std::uint32_t cap = params.max_degree;
  if (cap == 0) {
    cap = static_cast<std::uint32_t>(std::min<std::uint64_t>(n - 1, 1000));
  }
  cap = static_cast<std::uint32_t>(std::min<std::uint64_t>(cap, n - 1));
  if (params.min_degree == 0 || params.min_degree > cap) {
    throw std::invalid_argument("generate_web_graph: bad degree bounds");
  }

  Rng rng(params.seed);
  const PowerLawSampler out_deg(params.out_exponent, params.min_degree, cap);
  const PowerLawSampler in_deg(params.in_exponent, params.min_degree, cap);

  // 1. Degrees.
  std::vector<std::uint32_t> dout(n);
  std::vector<std::uint32_t> din(n);
  std::uint64_t total_out = 0;
  std::uint64_t total_in = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    dout[i] = static_cast<std::uint32_t>(out_deg.sample(rng));
    if (params.dangling_fraction > 0.0 &&
        rng.chance(params.dangling_fraction)) {
      dout[i] = 0;
    }
    din[i] = static_cast<std::uint32_t>(in_deg.sample(rng));
    total_out += dout[i];
    total_in += din[i];
  }
  if (total_out == 0) {
    throw std::invalid_argument(
        "generate_web_graph: dangling_fraction left no out-links");
  }

  // 2. In-stub pool: node v appears din[v] times, shuffled.
  std::vector<NodeId> pool;
  pool.reserve(total_in);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint32_t k = 0; k < din[v]; ++k) {
      pool.push_back(static_cast<NodeId>(v));
    }
  }
  rng.shuffle(pool);

  // 3. Wire out-stubs to pool entries, skipping self-loops/duplicates,
  // streaming each finished node straight into the CSR builder. Sources
  // ascend and per-node targets are distinct, so sorting the per-node
  // scratch reproduces from_edges' (src, dst) order exactly — same graph
  // bytes, without ever materializing the full edge list (the old peak
  // was the complete std::vector<Edge> on top of the finished CSR).
  Digraph::Builder builder(static_cast<NodeId>(n), total_out);
  std::size_t cursor = 0;
  auto next_candidate = [&]() -> NodeId {
    if (cursor >= pool.size()) {
      rng.shuffle(pool);
      cursor = 0;
    }
    return pool[cursor++];
  };
  std::vector<NodeId> chosen;  // per-node scratch (out-degrees are small)
  for (std::uint64_t u = 0; u < n; ++u) {
    chosen.clear();
    // A node wanting k distinct targets retries a bounded number of times;
    // on a pathological pool (tiny graphs) it settles for fewer links.
    const std::uint32_t want = dout[u];
    std::uint32_t attempts = 0;
    const std::uint32_t max_attempts = want * 8 + 16;
    while (chosen.size() < want && attempts < max_attempts) {
      ++attempts;
      const NodeId v = next_candidate();
      if (v == static_cast<NodeId>(u)) continue;
      if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) continue;
      chosen.push_back(v);
    }
    std::sort(chosen.begin(), chosen.end());
    builder.add_node(static_cast<NodeId>(u), chosen);
  }

  return std::move(builder).finalize();
}

Digraph paper_graph(std::uint64_t num_nodes, std::uint64_t seed) {
  WebGraphParams params;
  params.num_nodes = num_nodes;
  params.seed = seed;
  return generate_web_graph(params);
}

Digraph figure2_graph() {
  // G=0, H=1, I=2, J=3, K=4, L=5. G links to H, I, J (so each update
  // carries 1/3 of G's rank); H links to K and L (forwarding 1/6).
  return Digraph::from_edges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}});
}

}  // namespace dprank
