#pragma once

// Synthetic web-like link graphs (§4.1).
//
// The paper follows Broder et al.'s measurement of the web graph: the
// number of nodes with degree i is proportional to 1/i^alpha, with
// alpha_in = 2.1 and alpha_out = 2.4. Graphs of 10k, 100k, 500k and 5M
// nodes are synthesized from this model, "each node representing a
// document"; only the link structure is used.
//
// Generation is a directed configuration model:
//  1. draw an out-degree for every node from PowerLaw(2.4) and an
//     in-degree weight from PowerLaw(2.1);
//  2. materialize an "in-stub" pool where node v appears once per unit of
//     in-degree weight, shuffled;
//  3. wire each out-stub to the next pool entry, skipping self-loops and
//     duplicate edges.
// The result has exact power-law out-degrees and multinomially-sampled
// power-law in-degrees, matching how the paper's own synthesis is
// described.

#include <cstdint>

#include "common/rng.hpp"
#include "graph/digraph.hpp"

namespace dprank {

struct WebGraphParams {
  std::uint64_t num_nodes = 10'000;
  double in_exponent = 2.1;   // Broder et al. in-degree power law
  double out_exponent = 2.4;  // Broder et al. out-degree power law
  std::uint32_t min_degree = 1;
  /// Degree cap; 0 means min(num_nodes - 1, 1000). A finite cap keeps the
  /// distribution's tail physical (a page with more links than pages
  /// cannot exist) and bounds generator memory.
  std::uint32_t max_degree = 0;
  std::uint64_t seed = 42;
  /// Fraction of nodes whose out-degree is forced to zero, modelling
  /// dangling documents (pages with no out-links). Broder et al. report a
  /// large "OUT" component; the paper does not model dangling pages
  /// explicitly, so the default is 0.
  double dangling_fraction = 0.0;
};

/// Generate a web-like graph. Deterministic for a given parameter set.
[[nodiscard]] Digraph generate_web_graph(const WebGraphParams& params);

/// Convenience: the paper's standard graph at `num_nodes` with seed.
[[nodiscard]] Digraph paper_graph(std::uint64_t num_nodes,
                                  std::uint64_t seed = 42);

/// The 6-node graph of Figure 2 (G,H,I,J,K,L with G->{H,I,J}, H->{K,L},
/// I->{}, J->{}, K->{}, L->{}); node 0 = G, 1 = H, 2 = I, 3 = J, 4 = K,
/// 5 = L. Used by tests and the incremental-update example.
[[nodiscard]] Digraph figure2_graph();

}  // namespace dprank
