#include "graph/graph_stats.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

namespace dprank {

DegreeStats compute_degree_stats(const Digraph& g) {
  DegreeStats s;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dout = g.out_degree(u);
    const auto din = g.in_degree(u);
    s.out_degree.add(dout);
    s.in_degree.add(din);
    if (dout == 0) ++s.dangling_nodes;
    if (din == 0) ++s.sourceless_nodes;
  }
  return s;
}

std::vector<std::uint64_t> degree_counts(const Digraph& g, bool out_direction,
                                         std::uint32_t max_k) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(max_k) + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint32_t k =
        out_direction ? g.out_degree(u) : g.in_degree(u);
    if (k <= max_k) ++counts[k];
  }
  return counts;
}

std::vector<double> degree_histogram(const Digraph& g, bool out_direction,
                                     std::uint32_t max_k) {
  const auto counts = degree_counts(g, out_direction, max_k);
  std::vector<double> hist(counts.size(), 0.0);
  const auto n = static_cast<double>(g.num_nodes());
  for (std::size_t k = 0; k < counts.size(); ++k) {
    hist[k] = static_cast<double>(counts[k]) / n;
  }
  return hist;
}

LayoutStats compute_layout_stats(const Digraph& g) {
  LayoutStats s;
  s.heap_bytes = g.memory_bytes();
  if (g.num_edges() > 0) {
    s.bytes_per_edge = static_cast<double>(s.heap_bytes) /
                       static_cast<double>(g.num_edges());
  }
  if (g.num_nodes() > 0) {
    s.bytes_per_node = static_cast<double>(s.heap_bytes) /
                       static_cast<double>(g.num_nodes());
  }
  return s;
}

double fit_power_law_slope(const std::vector<double>& histogram,
                           std::uint32_t k_lo, std::uint32_t k_hi) {
  if (k_lo == 0 || k_hi >= histogram.size() || k_lo >= k_hi) {
    throw std::invalid_argument("fit_power_law_slope: bad range");
  }
  // Simple OLS on (log k, log p_k) over nonzero bins.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::uint32_t k = k_lo; k <= k_hi; ++k) {
    if (histogram[k] <= 0.0) continue;
    const double x = std::log(static_cast<double>(k));
    const double y = std::log(histogram[k]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) throw std::invalid_argument("fit_power_law_slope: too few bins");
  const double dn = n;
  return (dn * sxy - sx * sy) / (dn * sxx - sx * sx);
}

std::uint64_t forward_reachable_count(const Digraph& g, NodeId start,
                                      std::uint64_t limit) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<NodeId> frontier{start};
  seen[start] = true;
  std::uint64_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : g.out_neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      ++count;
      if (limit != 0 && count >= limit) return count;
      frontier.push_back(v);
    }
  }
  return count;
}

}  // namespace dprank
