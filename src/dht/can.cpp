#include "dht/can.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace dprank {

namespace {

double axis_distance(double a, double b) {
  const double d = std::abs(a - b);
  return std::min(d, 1.0 - d);
}

/// Do [alo, ahi) and [blo, bhi) overlap on a torus axis with positive
/// length? Touching at a point does not count.
bool spans_overlap(double alo, double ahi, double blo, double bhi) {
  // All zone spans here are non-wrapping (splits never wrap), so plain
  // interval logic suffices.
  return alo < bhi && blo < ahi;
}

/// Do the spans touch (share an endpoint), including across the 0/1
/// seam of the torus?
bool spans_touch(double alo, double ahi, double blo, double bhi) {
  if (ahi == blo || bhi == alo) return true;
  // Torus seam: [x, 1) touches [0, y).
  if (ahi == 1.0 && blo == 0.0) return true;
  if (bhi == 1.0 && alo == 0.0) return true;
  return false;
}

}  // namespace

double torus_distance(const CanSpace::Point& a, const CanSpace::Point& b) {
  double sum = 0.0;
  for (int i = 0; i < CanSpace::kDims; ++i) {
    const double d = axis_distance(a[i], b[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool CanSpace::Zone::contains(const Point& p) const {
  for (int i = 0; i < kDims; ++i) {
    if (p[i] < lo[i] || p[i] >= hi[i]) return false;
  }
  return true;
}

CanSpace::Point CanSpace::Zone::center() const {
  Point c{};
  for (int i = 0; i < kDims; ++i) c[i] = (lo[i] + hi[i]) / 2.0;
  return c;
}

double CanSpace::Zone::volume() const {
  double v = 1.0;
  for (int i = 0; i < kDims; ++i) v *= hi[i] - lo[i];
  return v;
}

CanSpace::CanSpace(PeerId num_peers) {
  if (num_peers == 0) {
    throw std::invalid_argument("CanSpace: need at least one peer");
  }
  Zone whole;
  whole.lo = {0.0, 0.0};
  whole.hi = {1.0, 1.0};
  whole.owner = 0;
  zones_.push_back(whole);
  for (PeerId p = 1; p < num_peers; ++p) join(p);
}

CanSpace::Point CanSpace::key_to_point(Guid key) {
  // Scale each 64-bit half into [0, 1).
  return {static_cast<double>(key.hi) * 0x1.0p-64,
          static_cast<double>(key.lo) * 0x1.0p-64};
}

CanSpace::Point CanSpace::peer_join_point(PeerId peer) {
  return key_to_point(peer_guid(peer));
}

std::size_t CanSpace::zone_of_point(const Point& p) const {
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zones_[z].contains(p)) return z;
  }
  throw std::logic_error("CanSpace: point not covered (tiling broken)");
}

std::size_t CanSpace::first_zone_of_peer(PeerId peer) const {
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zones_[z].owner == peer) return z;
  }
  throw std::out_of_range("CanSpace: unknown peer");
}

bool CanSpace::contains(PeerId peer) const {
  return std::any_of(zones_.begin(), zones_.end(),
                     [&](const Zone& z) { return z.owner == peer; });
}

std::size_t CanSpace::num_peers() const {
  std::vector<PeerId> owners;
  owners.reserve(zones_.size());
  for (const Zone& z : zones_) owners.push_back(z.owner);
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners.size();
}

void CanSpace::join(PeerId peer) {
  if (contains(peer)) {
    throw std::invalid_argument("CanSpace::join: peer already present");
  }
  // CAN join: route to the zone holding the peer's random point and
  // split it in half along its longest side.
  const Point p = peer_join_point(peer);
  Zone& victim = zones_[zone_of_point(p)];
  int axis = 0;
  double longest = 0.0;
  for (int i = 0; i < kDims; ++i) {
    const double side = victim.hi[i] - victim.lo[i];
    if (side > longest) {
      longest = side;
      axis = i;
    }
  }
  const double mid = (victim.lo[axis] + victim.hi[axis]) / 2.0;
  Zone upper = victim;
  upper.lo[axis] = mid;
  victim.hi[axis] = mid;
  // The half containing the join point goes to the new peer (CAN's
  // convention: the joiner takes the half its point lands in).
  if (p[axis] >= mid) {
    upper.owner = peer;
  } else {
    upper.owner = victim.owner;
    victim.owner = peer;
  }
  zones_.push_back(upper);
}

void CanSpace::leave(PeerId peer) {
  if (!contains(peer)) return;
  if (num_peers() == 1) {
    throw std::logic_error("CanSpace::leave: cannot empty the space");
  }
  // Heir: among owners of zones adjacent to any departing zone, the one
  // holding the least total volume (CAN's takeover heuristic).
  std::vector<double> volume_of_owner;
  auto owner_volume = [&](PeerId q) {
    double v = 0.0;
    for (const Zone& z : zones_) {
      if (z.owner == q) v += z.volume();
    }
    return v;
  };
  PeerId heir = kInvalidPeer;
  double heir_volume = 2.0;
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zones_[z].owner != peer) continue;
    for (const std::size_t nb : neighbors_of_zone(z)) {
      const PeerId q = zones_[nb].owner;
      if (q == peer) continue;
      const double v = owner_volume(q);
      if (heir == kInvalidPeer || v < heir_volume ||
          (v == heir_volume && q < heir)) {
        heir = q;
        heir_volume = v;
      }
    }
  }
  if (heir == kInvalidPeer) {
    throw std::logic_error("CanSpace::leave: no adjacent heir (bug)");
  }
  for (Zone& z : zones_) {
    if (z.owner == peer) z.owner = heir;
  }
}

std::vector<std::size_t> CanSpace::neighbors_of_zone(std::size_t z) const {
  std::vector<std::size_t> out;
  const Zone& a = zones_[z];
  for (std::size_t o = 0; o < zones_.size(); ++o) {
    if (o == z) continue;
    const Zone& b = zones_[o];
    // Adjacent iff they touch on exactly one axis and overlap on the
    // other (for d = 2).
    for (int axis = 0; axis < kDims; ++axis) {
      const int other = 1 - axis;
      if (spans_touch(a.lo[axis], a.hi[axis], b.lo[axis], b.hi[axis]) &&
          spans_overlap(a.lo[other], a.hi[other], b.lo[other],
                        b.hi[other])) {
        out.push_back(o);
        break;
      }
    }
  }
  return out;
}

PeerId CanSpace::owner_of_point(const Point& p) const {
  return zones_[zone_of_point(p)].owner;
}

PeerId CanSpace::owner_of_key(Guid key) const {
  return owner_of_point(key_to_point(key));
}

CanSpace::Route CanSpace::route(PeerId from, Guid key) const {
  const Point target = key_to_point(key);
  const std::size_t target_zone = zone_of_point(target);
  Route r;
  r.destination = zones_[target_zone].owner;

  std::size_t current = first_zone_of_peer(from);
  // A peer owning several zones starts from whichever of its zones is
  // closest to the target.
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zones_[z].owner == from &&
        torus_distance(zones_[z].center(), target) <
            torus_distance(zones_[current].center(), target)) {
      current = z;
    }
  }

  // Greedy by zone-center torus distance; a visited set breaks the rare
  // local-minimum ping-pong skewed zones can cause (real CAN recovers
  // the same way, by expanding-ring search over already-seen zones).
  std::vector<bool> visited(zones_.size(), false);
  visited[current] = true;
  while (current != target_zone) {
    const auto nbs = neighbors_of_zone(current);
    std::size_t best = zones_.size();
    double best_dist = 0.0;
    for (const std::size_t nb : nbs) {
      if (visited[nb] && nb != target_zone) continue;
      const double d = torus_distance(zones_[nb].center(), target);
      if (best == zones_.size() || d < best_dist) {
        best_dist = d;
        best = nb;
      }
    }
    if (best == zones_.size()) {
      throw std::logic_error("CanSpace::route: routing failed to converge");
    }
    current = best;
    visited[current] = true;
    const PeerId owner = zones_[current].owner;
    if (owner != from && (r.hops.empty() || r.hops.back() != owner)) {
      r.hops.push_back(owner);
    }
  }
  if (r.destination != from &&
      (r.hops.empty() || r.hops.back() != r.destination)) {
    r.hops.push_back(r.destination);
  }
  return r;
}

double CanSpace::total_volume() const {
  double v = 0.0;
  for (const Zone& z : zones_) v += z.volume();
  return v;
}

}  // namespace dprank
