#include "dht/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace dprank {

ChordRing::ChordRing(PeerId num_peers) {
  for (PeerId p = 0; p < num_peers; ++p) join(p, peer_guid(p));
}

void ChordRing::join(PeerId peer, Guid id) {
  if (guid_of_peer_.contains(peer)) {
    throw std::invalid_argument("ChordRing::join: peer already present");
  }
  const auto [it, inserted] = by_id_.emplace(id, peer);
  if (!inserted) {
    throw std::invalid_argument("ChordRing::join: GUID collision");
  }
  guid_of_peer_.emplace(peer, id);
}

void ChordRing::leave(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
}

bool ChordRing::contains(PeerId peer) const {
  return guid_of_peer_.contains(peer);
}

Guid ChordRing::id_of(PeerId peer) const {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) {
    throw std::out_of_range("ChordRing::id_of: unknown peer");
  }
  return it->second;
}

PeerId ChordRing::successor_of_key(Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_of_key: empty ring");
  }
  const auto it = by_id_.lower_bound(key);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::successor_peer(Guid id) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_peer: empty ring");
  }
  auto it = by_id_.upper_bound(id);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::finger(PeerId peer, int k) const {
  if (k < 0 || k > 127) {
    throw std::out_of_range("ChordRing::finger: k outside [0,127]");
  }
  return successor_of_key(id_of(peer) + U128::pow2(k));
}

ChordRing::Route ChordRing::route(PeerId from, Guid key) const {
  const PeerId target = successor_of_key(key);
  Route r;
  r.destination = target;
  PeerId current = from;
  // Forward to the closest preceding finger of `key` until the key falls
  // in (current, successor(current)], then one final hop to the owner.
  while (current != target) {
    const Guid cur_id = id_of(current);
    const PeerId succ = successor_peer(cur_id);
    if (in_interval_oc(key, cur_id, id_of(succ))) {
      r.hops.push_back(succ);
      current = succ;
      break;
    }
    // Closest preceding finger: largest finger in (current, key).
    PeerId next = succ;  // fallback: always make progress via successor
    for (int k = 127; k >= 0; --k) {
      const PeerId f = finger(current, k);
      if (f == current) continue;
      if (in_interval_oo(id_of(f), cur_id, key)) {
        next = f;
        break;
      }
    }
    r.hops.push_back(next);
    current = next;
  }
  return r;
}

void ChordRing::validate(std::size_t route_samples) const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "dht";
  DPRANK_INVARIANT(by_id_.size() == guid_of_peer_.size(), kSub,
                   "ring and reverse index disagree on membership size");
  for (const auto& [id, peer] : by_id_) {
    const auto it = guid_of_peer_.find(peer);
    DPRANK_INVARIANT(it != guid_of_peer_.end(), kSub,
                     "peer " + std::to_string(peer) +
                         " on the ring is missing from the reverse index");
    DPRANK_INVARIANT(it->second == id, kSub,
                     "peer " + std::to_string(peer) +
                         " has mismatched GUIDs in ring vs reverse index");
  }
  if (by_id_.empty()) return;
  const std::size_t n = by_id_.size();

  // Independently sorted membership copy: the reference the finger table
  // and ownership checks compare against.
  std::vector<std::pair<Guid, PeerId>> sorted(guid_of_peer_.size());
  std::size_t w = 0;
  for (const auto& [peer, id] : guid_of_peer_) sorted[w++] = {id, peer};
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < n; ++i) {
    DPRANK_INVARIANT(sorted[i - 1].first < sorted[i].first, kSub,
                     "two peers share one GUID");
  }
  const auto independent_successor = [&](Guid key) -> PeerId {
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), key,
        [](const std::pair<Guid, PeerId>& e, Guid k) { return e.first < k; });
    return it == sorted.end() ? sorted.front().second : it->second;
  };

  // Ownership: every peer owns the arc ending at its own id.
  for (const auto& [id, peer] : by_id_) {
    DPRANK_INVARIANT(successor_of_key(id) == peer, kSub,
                     "peer " + std::to_string(peer) +
                         " is not the successor of its own id");
  }

  // Finger-table consistency (§2.4.2), sampled around the ring when the
  // membership is large: finger k is the successor of id + 2^k.
  const std::size_t peer_step = n <= 32 ? 1 : n / 32;
  for (std::size_t i = 0; i < n; i += peer_step) {
    const auto [id, peer] = sorted[i];
    for (int k = 0; k < 128; ++k) {
      DPRANK_INVARIANT(
          finger(peer, k) == independent_successor(id + U128::pow2(k)), kSub,
          "finger " + std::to_string(k) + " of peer " +
              std::to_string(peer) + " does not match the sorted ring");
    }
  }

  // Routability: greedy lookups resolve at the true owner within the
  // O(log N) hop budget. Probe keys mix peer-boundary ids (arc edges,
  // the off-by-one hot spots) with uniformly random keys.
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  const std::size_t hop_cap =
      std::max<std::size_t>(16, 2 * log2n + 8);
  Rng probe_rng(0x5EEDF1A6ULL);
  for (std::size_t s = 0; s < route_samples; ++s) {
    const PeerId from = sorted[probe_rng.bounded(n)].second;
    const Guid key = (s % 2 == 0)
                         ? Guid{probe_rng(), probe_rng()}
                         : sorted[probe_rng.bounded(n)].first + Guid{s};
    const Route r = route(from, key);
    DPRANK_INVARIANT(r.destination == independent_successor(key), kSub,
                     "lookup from peer " + std::to_string(from) +
                         " terminated at the wrong owner");
    DPRANK_INVARIANT(r.hops.empty() || r.hops.back() == r.destination, kSub,
                     "route does not end at its destination");
    DPRANK_INVARIANT(r.hop_count() <= hop_cap, kSub,
                     "lookup took " + std::to_string(r.hop_count()) +
                         " hops, over the O(log N) budget of " +
                         std::to_string(hop_cap));
  }
}

std::vector<PeerId> ChordRing::peers_in_ring_order() const {
  std::vector<PeerId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, peer] : by_id_) out.push_back(peer);
  return out;
}

}  // namespace dprank
