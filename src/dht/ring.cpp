#include "dht/ring.hpp"

#include <stdexcept>

namespace dprank {

ChordRing::ChordRing(PeerId num_peers) {
  for (PeerId p = 0; p < num_peers; ++p) join(p, peer_guid(p));
}

void ChordRing::join(PeerId peer, Guid id) {
  if (guid_of_peer_.contains(peer)) {
    throw std::invalid_argument("ChordRing::join: peer already present");
  }
  const auto [it, inserted] = by_id_.emplace(id, peer);
  if (!inserted) {
    throw std::invalid_argument("ChordRing::join: GUID collision");
  }
  guid_of_peer_.emplace(peer, id);
}

void ChordRing::leave(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
}

bool ChordRing::contains(PeerId peer) const {
  return guid_of_peer_.contains(peer);
}

Guid ChordRing::id_of(PeerId peer) const {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) {
    throw std::out_of_range("ChordRing::id_of: unknown peer");
  }
  return it->second;
}

PeerId ChordRing::successor_of_key(Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_of_key: empty ring");
  }
  const auto it = by_id_.lower_bound(key);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::successor_peer(Guid id) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_peer: empty ring");
  }
  auto it = by_id_.upper_bound(id);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::finger(PeerId peer, int k) const {
  if (k < 0 || k > 127) {
    throw std::out_of_range("ChordRing::finger: k outside [0,127]");
  }
  return successor_of_key(id_of(peer) + U128::pow2(k));
}

ChordRing::Route ChordRing::route(PeerId from, Guid key) const {
  const PeerId target = successor_of_key(key);
  Route r;
  r.destination = target;
  PeerId current = from;
  // Forward to the closest preceding finger of `key` until the key falls
  // in (current, successor(current)], then one final hop to the owner.
  while (current != target) {
    const Guid cur_id = id_of(current);
    const PeerId succ = successor_peer(cur_id);
    if (in_interval_oc(key, cur_id, id_of(succ))) {
      r.hops.push_back(succ);
      current = succ;
      break;
    }
    // Closest preceding finger: largest finger in (current, key).
    PeerId next = succ;  // fallback: always make progress via successor
    for (int k = 127; k >= 0; --k) {
      const PeerId f = finger(current, k);
      if (f == current) continue;
      if (in_interval_oo(id_of(f), cur_id, key)) {
        next = f;
        break;
      }
    }
    r.hops.push_back(next);
    current = next;
  }
  return r;
}

std::vector<PeerId> ChordRing::peers_in_ring_order() const {
  std::vector<PeerId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, peer] : by_id_) out.push_back(peer);
  return out;
}

}  // namespace dprank
