#include "dht/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace dprank {

ChordRing::ChordRing(PeerId num_peers) {
  for (PeerId p = 0; p < num_peers; ++p) join(p, peer_guid(p));
}

void ChordRing::join(PeerId peer, Guid id) {
  if (guid_of_peer_.contains(peer)) {
    throw std::invalid_argument("ChordRing::join: peer already present");
  }
  const auto [it, inserted] = by_id_.emplace(id, peer);
  if (!inserted) {
    throw std::invalid_argument("ChordRing::join: GUID collision");
  }
  guid_of_peer_.emplace(peer, id);
}

void ChordRing::leave(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
}

bool ChordRing::contains(PeerId peer) const {
  return guid_of_peer_.contains(peer);
}

Guid ChordRing::id_of(PeerId peer) const {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) {
    throw std::out_of_range("ChordRing::id_of: unknown peer");
  }
  return it->second;
}

PeerId ChordRing::successor_of_key(Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_of_key: empty ring");
  }
  const auto it = by_id_.lower_bound(key);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::successor_peer(Guid id) const {
  if (by_id_.empty()) {
    throw std::logic_error("ChordRing::successor_peer: empty ring");
  }
  auto it = by_id_.upper_bound(id);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId ChordRing::finger(PeerId peer, int k) const {
  if (k < 0 || k > 127) {
    throw std::out_of_range("ChordRing::finger: k outside [0,127]");
  }
  return successor_of_key(id_of(peer) + U128::pow2(k));
}

ChordRing::Route ChordRing::route(PeerId from, Guid key) const {
  const PeerId target = successor_of_key(key);
  Route r;
  r.destination = target;
  PeerId current = from;
  // Forward to the closest preceding finger of `key` until the key falls
  // in (current, successor(current)], then one final hop to the owner.
  while (current != target) {
    const Guid cur_id = id_of(current);
    const PeerId succ = successor_peer(cur_id);
    if (in_interval_oc(key, cur_id, id_of(succ))) {
      r.hops.push_back(succ);
      current = succ;
      break;
    }
    // Closest preceding finger: largest finger in (current, key).
    PeerId next = succ;  // fallback: always make progress via successor
    for (int k = 127; k >= 0; --k) {
      const PeerId f = finger(current, k);
      if (f == current) continue;
      if (in_interval_oo(id_of(f), cur_id, key)) {
        next = f;
        break;
      }
    }
    r.hops.push_back(next);
    current = next;
  }
  return r;
}

void ChordRing::validate(std::size_t route_samples) const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "dht";
  DPRANK_INVARIANT(by_id_.size() == guid_of_peer_.size(), kSub,
                   "ring and reverse index disagree on membership size");
  for (const auto& [id, peer] : by_id_) {
    const auto it = guid_of_peer_.find(peer);
    DPRANK_INVARIANT(it != guid_of_peer_.end(), kSub,
                     "peer " + std::to_string(peer) +
                         " on the ring is missing from the reverse index");
    DPRANK_INVARIANT(it->second == id, kSub,
                     "peer " + std::to_string(peer) +
                         " has mismatched GUIDs in ring vs reverse index");
  }
  if (by_id_.empty()) return;
  const std::size_t n = by_id_.size();

  // Independently sorted membership copy: the reference the finger table
  // and ownership checks compare against.
  std::vector<std::pair<Guid, PeerId>> sorted(guid_of_peer_.size());
  std::size_t w = 0;
  for (const auto& [peer, id] : guid_of_peer_) sorted[w++] = {id, peer};
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < n; ++i) {
    DPRANK_INVARIANT(sorted[i - 1].first < sorted[i].first, kSub,
                     "two peers share one GUID");
  }
  const auto independent_successor = [&](Guid key) -> PeerId {
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), key,
        [](const std::pair<Guid, PeerId>& e, Guid k) { return e.first < k; });
    return it == sorted.end() ? sorted.front().second : it->second;
  };

  // Ownership: every peer owns the arc ending at its own id.
  for (const auto& [id, peer] : by_id_) {
    DPRANK_INVARIANT(successor_of_key(id) == peer, kSub,
                     "peer " + std::to_string(peer) +
                         " is not the successor of its own id");
  }

  // Finger-table consistency (§2.4.2), sampled around the ring when the
  // membership is large: finger k is the successor of id + 2^k.
  const std::size_t peer_step = n <= 32 ? 1 : n / 32;
  for (std::size_t i = 0; i < n; i += peer_step) {
    const auto [id, peer] = sorted[i];
    for (int k = 0; k < 128; ++k) {
      DPRANK_INVARIANT(
          finger(peer, k) == independent_successor(id + U128::pow2(k)), kSub,
          "finger " + std::to_string(k) + " of peer " +
              std::to_string(peer) + " does not match the sorted ring");
    }
  }

  // Routability: greedy lookups resolve at the true owner within the
  // O(log N) hop budget. Probe keys mix peer-boundary ids (arc edges,
  // the off-by-one hot spots) with uniformly random keys.
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  const std::size_t hop_cap =
      std::max<std::size_t>(16, 2 * log2n + 8);
  Rng probe_rng(0x5EEDF1A6ULL);
  for (std::size_t s = 0; s < route_samples; ++s) {
    const PeerId from = sorted[probe_rng.bounded(n)].second;
    const Guid key = (s % 2 == 0)
                         ? Guid{probe_rng(), probe_rng()}
                         : sorted[probe_rng.bounded(n)].first + Guid{s};
    const Route r = route(from, key);
    DPRANK_INVARIANT(r.destination == independent_successor(key), kSub,
                     "lookup from peer " + std::to_string(from) +
                         " terminated at the wrong owner");
    DPRANK_INVARIANT(r.hops.empty() || r.hops.back() == r.destination, kSub,
                     "route does not end at its destination");
    DPRANK_INVARIANT(r.hop_count() <= hop_cap, kSub,
                     "lookup took " + std::to_string(r.hop_count()) +
                         " hops, over the O(log N) budget of " +
                         std::to_string(hop_cap));
  }
}

std::vector<PeerId> ChordRing::peers_in_ring_order() const {
  std::vector<PeerId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, peer] : by_id_) out.push_back(peer);
  return out;
}

// ---------------------------------------------------------------------------
// SelfHealingRing

SelfHealingRing::SelfHealingRing(PeerId num_peers, int fingers_per_round)
    : fingers_per_round_(std::max(1, fingers_per_round)) {
  for (PeerId p = 0; p < num_peers; ++p) {
    const auto [it, inserted] = by_id_.emplace(peer_guid(p), p);
    if (!inserted) {
      throw std::invalid_argument("SelfHealingRing: GUID collision");
    }
    guid_of_peer_.emplace(p, peer_guid(p));
  }
  // Start converged: every local table equals the oracle's view.
  for (const auto& [p, id] : guid_of_peer_) {
    Local& l = locals_[p];
    l.successors = oracle_successors(p);
    l.predecessor = oracle_predecessor(p);
    l.fingers.resize(128);
    for (int k = 0; k < 128; ++k) {
      l.fingers[static_cast<std::size_t>(k)] =
          successor_of_key(id + U128::pow2(k));
    }
  }
}

bool SelfHealingRing::contains(PeerId peer) const {
  return guid_of_peer_.contains(peer);
}

Guid SelfHealingRing::id_of(PeerId peer) const {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) {
    throw std::out_of_range("SelfHealingRing::id_of: unknown peer");
  }
  return it->second;
}

PeerId SelfHealingRing::successor_of_key(Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("SelfHealingRing::successor_of_key: empty ring");
  }
  const auto it = by_id_.lower_bound(key);
  return it == by_id_.end() ? by_id_.begin()->second : it->second;
}

PeerId SelfHealingRing::first_live_successor(const Local& local) const {
  for (const PeerId s : local.successors) {
    if (alive(s)) return s;
  }
  return kInvalidPeer;
}

std::vector<PeerId> SelfHealingRing::oracle_successors(PeerId peer) const {
  std::vector<PeerId> out;
  const std::size_t want = std::min(kSuccessors, by_id_.size());
  auto it = by_id_.find(id_of(peer));
  while (out.size() < want) {
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
    out.push_back(it->second);  // wraps to `peer` itself on tiny rings
  }
  return out;
}

PeerId SelfHealingRing::oracle_predecessor(PeerId peer) const {
  auto it = by_id_.find(id_of(peer));
  if (it == by_id_.begin()) it = by_id_.end();
  --it;
  return it->second;
}

std::size_t SelfHealingRing::hop_cap() const {
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < by_id_.size()) ++log2n;
  // ChordRing's O(log N) budget plus slack: fingers healing round-robin
  // cost extra successor hops, never correctness.
  return std::max<std::size_t>(24, 3 * log2n + 12);
}

void SelfHealingRing::join(PeerId peer, Guid id) {
  if (guid_of_peer_.contains(peer)) {
    throw std::invalid_argument("SelfHealingRing::join: peer already present");
  }
  if (by_id_.contains(id)) {
    throw std::invalid_argument("SelfHealingRing::join: GUID collision");
  }
  if (by_id_.empty()) {
    by_id_.emplace(id, peer);
    guid_of_peer_.emplace(peer, id);
    Local& l = locals_[peer];
    l.successors = {peer};
    l.predecessor = peer;
    l.fingers.assign(128, peer);
    return;
  }
  // Bootstrap: look up our own id from the lowest-id live peer over
  // LOCAL tables (what a real join does); the oracle is only the safety
  // net for a lookup that fails mid-disruption.
  const PeerId bootstrap = locals_.begin()->first;
  const Route found = route(bootstrap, id);
  const PeerId succ = found.ok ? found.destination : successor_of_key(id);

  by_id_.emplace(id, peer);
  guid_of_peer_.emplace(peer, id);
  Local& sl = locals_.at(succ);
  Local& l = locals_[peer];  // node-based map: sl stays valid
  l.successors.clear();
  l.successors.push_back(succ);
  for (const PeerId q : sl.successors) {
    if (l.successors.size() >= kSuccessors) break;
    if (q == peer) continue;
    if (std::find(l.successors.begin(), l.successors.end(), q) !=
        l.successors.end()) {
      continue;
    }
    l.successors.push_back(q);
  }
  // The successor's old predecessor is (very likely) ours; its finger
  // table is the best available hint until fix_fingers heals it.
  l.predecessor = sl.predecessor;
  l.fingers = sl.fingers;
  l.next_finger = 0;
  // notify(succ): we now sit in (old predecessor, succ).
  if (sl.predecessor == kInvalidPeer || !alive(sl.predecessor) ||
      in_interval_oo(id, id_of(sl.predecessor), id_of(succ))) {
    sl.predecessor = peer;
  }
}

void SelfHealingRing::leave(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  const Local departing = std::move(locals_.at(peer));
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
  locals_.erase(peer);
  if (by_id_.empty()) return;
  const PeerId succ = first_live_successor(departing);
  const PeerId pred =
      alive(departing.predecessor) ? departing.predecessor : kInvalidPeer;
  if (succ != kInvalidPeer) {
    Local& sl = locals_.at(succ);
    if (pred != kInvalidPeer &&
        (sl.predecessor == peer || !alive(sl.predecessor))) {
      sl.predecessor = pred;
    }
  }
  if (pred != kInvalidPeer) {
    Local& pl = locals_.at(pred);
    std::erase(pl.successors, peer);
    if (succ != kInvalidPeer && succ != pred &&
        std::find(pl.successors.begin(), pl.successors.end(), succ) ==
            pl.successors.end() &&
        pl.successors.size() < kSuccessors) {
      pl.successors.push_back(succ);
    }
    if (pl.successors.empty() && succ != kInvalidPeer) {
      pl.successors.push_back(succ);
    }
  }
}

void SelfHealingRing::crash(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  // Fail-stop: the peer's own state vanishes; everyone else's pointers
  // to it stay, stale, until stabilization prunes them.
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
  locals_.erase(peer);
}

SelfHealingRing::Route SelfHealingRing::route(PeerId from, Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("SelfHealingRing::route: empty ring");
  }
  Route r;
  const std::size_t cap = hop_cap();
  PeerId current = from;
  Guid cur_id = id_of(from);  // throws on a dead origin
  while (true) {
    const Local& l = locals_.at(current);
    PeerId succ = kInvalidPeer;
    for (const PeerId s : l.successors) {
      if (alive(s)) {
        succ = s;
        break;
      }
      ++r.dead_probes;
    }
    if (succ == kInvalidPeer) {
      // Every successor dead: this peer's arc of the ring is unroutable
      // until stabilization rebootstraps it.
      r.destination = current;
      r.ok = false;
      return r;
    }
    if (in_interval_oc(key, cur_id, id_of(succ))) {
      if (succ != current) r.hops.push_back(succ);
      r.destination = succ;
      r.ok = true;
      return r;
    }
    // Closest preceding live finger; the first live successor is the
    // guaranteed-progress fallback (key is beyond it, so it precedes
    // the key).
    PeerId next = succ;
    for (int k = 127; k >= 0; --k) {
      const PeerId f = l.fingers[static_cast<std::size_t>(k)];
      if (f == current || f == kInvalidPeer) continue;
      if (!alive(f)) {
        ++r.dead_probes;
        continue;
      }
      if (in_interval_oo(id_of(f), cur_id, key)) {
        next = f;
        break;
      }
    }
    r.hops.push_back(next);
    current = next;
    cur_id = id_of(current);
    if (r.hops.size() > cap) {
      r.destination = current;
      r.ok = false;
      return r;
    }
  }
}

std::size_t SelfHealingRing::stabilize_round() {
  std::size_t round_repairs = 0;
  for (auto& [p, l] : locals_) {
    const Guid pid = guid_of_peer_.at(p);
    // 1. Prune: drop dead successor entries and dead fingers (a dead
    //    finger can only cost probes, so clear it now and let
    //    fix_fingers refill).
    round_repairs += std::erase_if(
        l.successors, [&](PeerId s) { return !alive(s); });
    for (auto& f : l.fingers) {
      if (f != kInvalidPeer && !alive(f)) {
        f = kInvalidPeer;
        ++round_repairs;
      }
    }
    if (!alive(l.predecessor)) l.predecessor = kInvalidPeer;
    if (l.successors.empty()) {
      // All r successors died between rounds. Fall back to the nearest
      // live finger clockwise; only a peer with NO live pointer at all
      // asks the oracle (counted — this models a full re-bootstrap).
      PeerId best = kInvalidPeer;
      U128 best_dist = U128::max();
      for (const PeerId f : l.fingers) {
        if (f == kInvalidPeer || f == p || !alive(f)) continue;
        const U128 dist = ring_distance(pid, guid_of_peer_.at(f));
        if (best == kInvalidPeer || dist < best_dist) {
          best = f;
          best_dist = dist;
        }
      }
      if (best == kInvalidPeer) {
        best = by_id_.size() == 1 ? p : successor_of_key(pid + U128{0, 1});
        if (by_id_.size() > 1) ++emergency_rebootstraps_;
      }
      l.successors.push_back(best);
      ++round_repairs;
    }
    // 2. stabilize(): adopt the successor's predecessor when it sits
    //    between us and the successor (this is how a joiner becomes
    //    visible to its predecessor).
    PeerId succ = l.successors.front();
    {
      const PeerId x = locals_.at(succ).predecessor;
      if (x != kInvalidPeer && x != p && alive(x) &&
          in_interval_oo(guid_of_peer_.at(x), pid, guid_of_peer_.at(succ))) {
        l.successors.insert(l.successors.begin(), x);
        succ = x;
        ++round_repairs;
      }
    }
    // 3. Reconcile the successor list from the successor's own list.
    {
      std::vector<PeerId> rebuilt;
      rebuilt.push_back(succ);
      for (const PeerId q : locals_.at(succ).successors) {
        if (rebuilt.size() >= std::min(kSuccessors, by_id_.size())) break;
        if (!alive(q)) continue;
        if (std::find(rebuilt.begin(), rebuilt.end(), q) != rebuilt.end()) {
          continue;
        }
        rebuilt.push_back(q);
      }
      if (rebuilt != l.successors) {
        l.successors = std::move(rebuilt);
        ++round_repairs;
      }
    }
    // 4. notify(succ): we believe we are its predecessor.
    if (succ == p) {
      if (l.predecessor != p) {
        l.predecessor = p;
        ++round_repairs;
      }
    } else {
      Local& sl = locals_.at(succ);
      if (sl.predecessor != p &&
          (sl.predecessor == kInvalidPeer || !alive(sl.predecessor) ||
           in_interval_oo(pid, guid_of_peer_.at(sl.predecessor),
                          guid_of_peer_.at(succ)))) {
        sl.predecessor = p;
        ++round_repairs;
      }
    }
    // 5. fix_fingers: repair the next few fingers via local lookups.
    if (l.fingers.size() != 128) l.fingers.assign(128, kInvalidPeer);
    for (int i = 0; i < fingers_per_round_; ++i) {
      const int k = l.next_finger;
      l.next_finger = (l.next_finger + 1) % 128;
      const Route found = route(p, pid + U128::pow2(k));
      if (found.ok &&
          l.fingers[static_cast<std::size_t>(k)] != found.destination) {
        l.fingers[static_cast<std::size_t>(k)] = found.destination;
        ++round_repairs;
      }
    }
  }
  repairs_ += round_repairs;
  return round_repairs;
}

std::size_t SelfHealingRing::stabilize(std::size_t max_rounds) {
  std::size_t rounds = 0;
  // Always run at least one round: even a converged ring keeps healing
  // fingers (converged() does not cover them).
  while (rounds < std::max<std::size_t>(1, max_rounds)) {
    stabilize_round();
    ++rounds;
    if (converged()) break;
  }
  return rounds;
}

bool SelfHealingRing::converged() const {
  for (const auto& [p, l] : locals_) {
    if (l.successors != oracle_successors(p)) return false;
    if (l.predecessor != oracle_predecessor(p)) return false;
  }
  return true;
}

std::vector<PeerId> SelfHealingRing::successors_of(PeerId peer) const {
  const auto it = locals_.find(peer);
  if (it == locals_.end()) {
    throw std::out_of_range("SelfHealingRing::successors_of: unknown peer");
  }
  std::vector<PeerId> out;
  for (const PeerId s : it->second.successors) {
    if (alive(s)) out.push_back(s);
  }
  return out;
}

PeerId SelfHealingRing::predecessor_of(PeerId peer) const {
  const auto it = locals_.find(peer);
  if (it == locals_.end()) {
    throw std::out_of_range("SelfHealingRing::predecessor_of: unknown peer");
  }
  return alive(it->second.predecessor) ? it->second.predecessor
                                       : kInvalidPeer;
}

std::vector<PeerId> SelfHealingRing::peers_in_ring_order() const {
  std::vector<PeerId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, peer] : by_id_) out.push_back(peer);
  return out;
}

void SelfHealingRing::validate(std::size_t route_samples) const {
  if (!contracts::enabled()) return;
  [[maybe_unused]] const char* kSub = "dht";
  DPRANK_INVARIANT(by_id_.size() == guid_of_peer_.size(), kSub,
                   "ring and reverse index disagree on membership size");
  DPRANK_INVARIANT(locals_.size() == guid_of_peer_.size(), kSub,
                   "local routing state exists for " +
                       std::to_string(locals_.size()) + " peers but " +
                       std::to_string(guid_of_peer_.size()) + " are live");
  for (const auto& [id, peer] : by_id_) {
    const auto it = guid_of_peer_.find(peer);
    DPRANK_INVARIANT(it != guid_of_peer_.end() && it->second == id, kSub,
                     "peer " + std::to_string(peer) +
                         " has mismatched GUIDs in ring vs reverse index");
    DPRANK_INVARIANT(locals_.contains(peer), kSub,
                     "live peer " + std::to_string(peer) +
                         " is missing its local routing state");
  }
  if (by_id_.empty()) return;
  for (const auto& [p, l] : locals_) {
    DPRANK_INVARIANT(l.successors.size() <= kSuccessors, kSub,
                     "peer " + std::to_string(p) +
                         " holds an oversized successor list");
  }
  DPRANK_INVARIANT(converged(), kSub,
                   "validate() called on an unconverged ring — run "
                   "stabilize() first (successor lists or predecessors "
                   "disagree with the membership oracle)");

  // Routability over LOCAL tables: same probe scheme as ChordRing.
  const std::size_t n = by_id_.size();
  std::vector<std::pair<Guid, PeerId>> sorted;
  sorted.reserve(n);
  for (const auto& [id, peer] : by_id_) sorted.emplace_back(id, peer);
  const auto independent_successor = [&](Guid key) -> PeerId {
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), key,
        [](const std::pair<Guid, PeerId>& e, Guid k) { return e.first < k; });
    return it == sorted.end() ? sorted.front().second : it->second;
  };
  const std::size_t cap = hop_cap();
  Rng probe_rng(0x5EEDF1A6ULL);
  for (std::size_t s = 0; s < route_samples; ++s) {
    const PeerId from = sorted[probe_rng.bounded(n)].second;
    const Guid key = (s % 2 == 0)
                         ? Guid{probe_rng(), probe_rng()}
                         : sorted[probe_rng.bounded(n)].first + Guid{s};
    const Route r = route(from, key);
    DPRANK_INVARIANT(r.ok, kSub,
                     "repaired-ring lookup from peer " +
                         std::to_string(from) + " failed to complete");
    DPRANK_INVARIANT(r.destination == independent_successor(key), kSub,
                     "repaired-ring lookup from peer " +
                         std::to_string(from) +
                         " terminated at the wrong owner");
    DPRANK_INVARIANT(r.hop_count() <= cap, kSub,
                     "repaired-ring lookup took " +
                         std::to_string(r.hop_count()) +
                         " hops, over the budget of " + std::to_string(cap));
  }
}

}  // namespace dprank
