#pragma once

// Chord-style DHT overlay (§2.1, §2.4.2, §3.2).
//
// The paper targets DHT systems (CAN, Pastry, Chord) where GUIDs are
// pointers to documents and lookups resolve in O(log N) overlay hops.
// ChordRing implements the identifier-space machinery of Chord over
// 128-bit GUIDs:
//   * each peer owns the arc of keys in (predecessor, self];
//   * finger k of a peer is the successor of (peer_id + 2^k);
//   * greedy routing forwards to the closest preceding finger.
//
// The simulation holds global membership (as the paper's simulator did),
// so finger tables are derived from the sorted ring instead of gossiping —
// the *routing behaviour* (hop sequences, hop counts) matches a converged
// Chord network exactly, which is what the traffic accounting needs.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/guid.hpp"

namespace dprank {

using PeerId = std::uint32_t;
inline constexpr PeerId kInvalidPeer = ~PeerId{0};

class ChordRing {
 public:
  ChordRing() = default;

  /// Construct with peers 0..num_peers-1, ids from peer_guid().
  explicit ChordRing(PeerId num_peers);

  /// Add a peer with an explicit GUID. Throws std::invalid_argument on a
  /// GUID collision (128-bit collisions do not occur from peer_guid()).
  void join(PeerId peer, Guid id);

  /// Remove a peer; its arc is absorbed by its successor, exactly as keys
  /// fail over in Chord. No-op if absent.
  void leave(PeerId peer);

  [[nodiscard]] bool contains(PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] Guid id_of(PeerId peer) const;

  /// The peer whose arc contains `key`: the first peer id clockwise at or
  /// after key. Requires a non-empty ring.
  [[nodiscard]] PeerId successor_of_key(Guid key) const;

  /// The next live peer clockwise strictly after `id`.
  [[nodiscard]] PeerId successor_peer(Guid id) const;

  /// Finger k of `peer`: successor of (id_of(peer) + 2^k), k in [0,127].
  [[nodiscard]] PeerId finger(PeerId peer, int k) const;

  struct Route {
    PeerId destination = kInvalidPeer;
    std::vector<PeerId> hops;  // intermediate + final peer (excludes origin);
                               // empty when the key is local to the origin
    [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  };

  /// Greedy Chord lookup of `key` starting at `from`. The returned route
  /// ends at successor_of_key(key); zero hops when `from` already owns the
  /// key. Hop count is O(log N) w.h.p.
  [[nodiscard]] Route route(PeerId from, Guid key) const;

  /// All live peers, ascending id order around the ring.
  [[nodiscard]] std::vector<PeerId> peers_in_ring_order() const;

  /// Structural invariant walk (contracts.hpp; subsystem "dht"):
  ///  * by_id_ and guid_of_peer_ are inverse bijections (the successor
  ///    list IS the sorted map — consistency of the two indices is the
  ///    ring's membership invariant);
  ///  * ownership: every peer is the successor of its own id, so each
  ///    arc (predecessor, self] has exactly one owner;
  ///  * finger-table consistency: finger(p, k) equals the successor of
  ///    id(p) + 2^k recomputed against an independently sorted copy of
  ///    the membership (§2.4.2);
  ///  * routability: greedy lookups from sampled origins terminate at
  ///    the true owner of the key in at most max(16, 2·ceil(log2 N) + 8)
  ///    hops — the paper's O(log N) claim with deterministic slack.
  /// `route_samples` bounds the lookup probes (0 skips routing checks).
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  void validate(std::size_t route_samples = 64) const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  std::map<Guid, PeerId> by_id_;         // the ring, sorted by GUID
  std::map<PeerId, Guid> guid_of_peer_;  // reverse index
};

}  // namespace dprank
