#pragma once

// Chord-style DHT overlay (§2.1, §2.4.2, §3.2).
//
// The paper targets DHT systems (CAN, Pastry, Chord) where GUIDs are
// pointers to documents and lookups resolve in O(log N) overlay hops.
// ChordRing implements the identifier-space machinery of Chord over
// 128-bit GUIDs:
//   * each peer owns the arc of keys in (predecessor, self];
//   * finger k of a peer is the successor of (peer_id + 2^k);
//   * greedy routing forwards to the closest preceding finger.
//
// The simulation holds global membership (as the paper's simulator did),
// so finger tables are derived from the sorted ring instead of gossiping —
// the *routing behaviour* (hop sequences, hop counts) matches a converged
// Chord network exactly, which is what the traffic accounting needs.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/guid.hpp"

namespace dprank {

using PeerId = std::uint32_t;
inline constexpr PeerId kInvalidPeer = ~PeerId{0};

class ChordRing {
 public:
  ChordRing() = default;

  /// Construct with peers 0..num_peers-1, ids from peer_guid().
  explicit ChordRing(PeerId num_peers);

  /// Add a peer with an explicit GUID. Throws std::invalid_argument on a
  /// GUID collision (128-bit collisions do not occur from peer_guid()).
  void join(PeerId peer, Guid id);

  /// Remove a peer; its arc is absorbed by its successor, exactly as keys
  /// fail over in Chord. No-op if absent.
  void leave(PeerId peer);

  [[nodiscard]] bool contains(PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] Guid id_of(PeerId peer) const;

  /// The peer whose arc contains `key`: the first peer id clockwise at or
  /// after key. Requires a non-empty ring.
  [[nodiscard]] PeerId successor_of_key(Guid key) const;

  /// The next live peer clockwise strictly after `id`.
  [[nodiscard]] PeerId successor_peer(Guid id) const;

  /// Finger k of `peer`: successor of (id_of(peer) + 2^k), k in [0,127].
  [[nodiscard]] PeerId finger(PeerId peer, int k) const;

  struct Route {
    PeerId destination = kInvalidPeer;
    std::vector<PeerId> hops;  // intermediate + final peer (excludes origin);
                               // empty when the key is local to the origin
    [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  };

  /// Greedy Chord lookup of `key` starting at `from`. The returned route
  /// ends at successor_of_key(key); zero hops when `from` already owns the
  /// key. Hop count is O(log N) w.h.p.
  [[nodiscard]] Route route(PeerId from, Guid key) const;

  /// All live peers, ascending id order around the ring.
  [[nodiscard]] std::vector<PeerId> peers_in_ring_order() const;

  /// Structural invariant walk (contracts.hpp; subsystem "dht"):
  ///  * by_id_ and guid_of_peer_ are inverse bijections (the successor
  ///    list IS the sorted map — consistency of the two indices is the
  ///    ring's membership invariant);
  ///  * ownership: every peer is the successor of its own id, so each
  ///    arc (predecessor, self] has exactly one owner;
  ///  * finger-table consistency: finger(p, k) equals the successor of
  ///    id(p) + 2^k recomputed against an independently sorted copy of
  ///    the membership (§2.4.2);
  ///  * routability: greedy lookups from sampled origins terminate at
  ///    the true owner of the key in at most max(16, 2·ceil(log2 N) + 8)
  ///    hops — the paper's O(log N) claim with deterministic slack.
  /// `route_samples` bounds the lookup probes (0 skips routing checks).
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  void validate(std::size_t route_samples = 64) const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  std::map<Guid, PeerId> by_id_;         // the ring, sorted by GUID
  std::map<PeerId, Guid> guid_of_peer_;  // reverse index
};

// Self-healing Chord ring (extension; ROADMAP items 1 and 5).
//
// ChordRing derives finger tables from global membership — perfect for
// the paper's converged-network traffic accounting, useless for studying
// node loss, because a membership change repairs everything instantly.
// SelfHealingRing gives every peer its own *local* routing state, exactly
// the state a real Chord node maintains (Stoica et al. §E):
//
//   * a successor list of r = kSuccessors live peers (the ring survives
//     up to r consecutive simultaneous failures);
//   * a predecessor pointer;
//   * a 128-entry finger table, repaired round-robin a few fingers per
//     stabilization round (fix_fingers).
//
// Membership events diverge local state from the ground truth the class
// also tracks (the oracle — what an omniscient observer knows):
//   * join(p)   — p bootstraps its tables by routing to its own id from
//     the lowest-id live peer and notifies its successor; predecessors
//     and deeper successor lists catch up via stabilization;
//   * leave(p)  — graceful: p hands its neighbors correct pointers on
//     the way out (the paper's §3.1 "notify before departing");
//   * crash(p)  — fail-stop: p vanishes, every pointer at other peers
//     that names p goes stale until stabilization prunes it.
//
// stabilize_round() runs one synchronous round of Chord's maintenance at
// every live peer in ascending id order (deterministic): prune dead
// successors (falling back to live fingers, and as a last resort the
// oracle — counted in emergency_rebootstraps(), zero unless all r
// successors die at once), adopt the successor's predecessor when it sits
// between, reconcile the successor list from the successor's own list,
// notify, and repair the next fingers_per_round fingers via local routes.
// converged() holds when every peer's successor list and predecessor
// match the oracle; a single crash or join converges in one round,
// deeper successor-list entries within r rounds.
//
// route() walks ONLY local tables — dead pointers are skipped (counted
// per-route in Route::dead_probes) and stale-but-live fingers still make
// clockwise progress, so routing keeps working *during* disruption;
// landing on the true owner is guaranteed once converged() holds, which
// is what validate() asserts (call it after stabilization, as the chaos
// campaign does).

class SelfHealingRing {
 public:
  /// Successor-list length r: tolerates r consecutive simultaneous
  /// crashes between stabilization rounds.
  static constexpr std::size_t kSuccessors = 3;

  SelfHealingRing() = default;

  /// Construct converged with peers 0..num_peers-1, ids from peer_guid().
  /// `fingers_per_round` is the fix_fingers budget per peer per
  /// stabilization round.
  explicit SelfHealingRing(PeerId num_peers, int fingers_per_round = 32);

  /// A new peer joins: bootstraps its local tables by looking up its own
  /// id from the lowest-id live peer, adopts its successor's state and
  /// notifies it. Other peers learn through stabilization. Throws
  /// std::invalid_argument on duplicate peer or GUID collision.
  void join(PeerId peer, Guid id);

  /// Graceful departure: the peer repairs its immediate neighbors'
  /// pointers on the way out (the ring never routes through a notified
  /// gap); remaining references elsewhere are pruned on use. No-op if
  /// absent.
  void leave(PeerId peer);

  /// Fail-stop crash: the peer vanishes without notice; every pointer to
  /// it at other peers goes stale until stabilization prunes it. No-op
  /// if absent.
  void crash(PeerId peer);

  [[nodiscard]] bool contains(PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] Guid id_of(PeerId peer) const;

  /// Oracle owner of `key` (ground truth; what routing must find once
  /// converged). Requires a non-empty ring.
  [[nodiscard]] PeerId successor_of_key(Guid key) const;

  struct Route {
    PeerId destination = kInvalidPeer;  // where the greedy walk delivered
    std::vector<PeerId> hops;           // excludes origin; empty = local
    bool ok = false;            // false: no live next hop / hop cap blown
    std::size_t dead_probes = 0;  // stale pointers skipped along the way
    [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  };

  /// Greedy lookup of `key` from `from` over local tables only. Dead
  /// pointers are skipped; the walk fails (ok = false) only when a peer
  /// has no live successor at all or the hop cap is exhausted.
  [[nodiscard]] Route route(PeerId from, Guid key) const;

  /// One synchronous maintenance round at every live peer, ascending id
  /// order. Returns the number of pointer repairs performed (0 once the
  /// ring has converged and fingers are clean).
  std::size_t stabilize_round();

  /// Run stabilize_round() until converged() or `max_rounds` is spent.
  /// Returns rounds used. A single membership event needs 1 round for
  /// first-successor correctness and at most kSuccessors for the deeper
  /// list entries.
  std::size_t stabilize(std::size_t max_rounds = 8);

  /// True when every live peer's pruned successor list and predecessor
  /// equal the oracle's. Fingers are excluded: they are a lookup
  /// accelerator, not a correctness requirement (routing falls back to
  /// successor hops).
  [[nodiscard]] bool converged() const;

  /// Live successor-list / predecessor views (for tests and handoff).
  [[nodiscard]] std::vector<PeerId> successors_of(PeerId peer) const;
  [[nodiscard]] PeerId predecessor_of(PeerId peer) const;

  [[nodiscard]] std::vector<PeerId> peers_in_ring_order() const;

  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }
  [[nodiscard]] std::uint64_t emergency_rebootstraps() const {
    return emergency_rebootstraps_;
  }

  /// Structural invariant walk (contracts.hpp; subsystem "dht"). Call
  /// after stabilization — the routability clause is a *converged-ring*
  /// contract, extending ChordRing's invariant to the repaired ring:
  ///  * membership bijection (ring index vs reverse index), and exactly
  ///    the live peers hold local routing state;
  ///  * successor lists hold at most kSuccessors entries and the ring
  ///    has converged (lists + predecessors match the oracle);
  ///  * routability: greedy lookups over LOCAL tables from sampled
  ///    origins land on the true owner within max(24, 3·ceil(log2 N)+12)
  ///    hops — ChordRing's budget plus slack for fingers still healing
  ///    round-robin (stale fingers cost hops, never correctness).
  /// Throws contracts::ContractViolation on the first violation; no-op
  /// when contracts are compiled out.
  void validate(std::size_t route_samples = 64) const;

 private:
  friend struct TestCorruptor;  // negative invariant tests corrupt privates
  struct Local {
    std::vector<PeerId> successors;  // clockwise, possibly stale entries
    PeerId predecessor = kInvalidPeer;
    std::vector<PeerId> fingers;  // 128 entries, possibly stale
    int next_finger = 0;          // fix_fingers round-robin cursor
  };

  [[nodiscard]] bool alive(PeerId peer) const {
    return guid_of_peer_.contains(peer);
  }
  /// First live entry of `peer`'s successor list (kInvalidPeer if none).
  [[nodiscard]] PeerId first_live_successor(const Local& local) const;
  /// Oracle successor list: the next min(r, size) live peers clockwise.
  [[nodiscard]] std::vector<PeerId> oracle_successors(PeerId peer) const;
  [[nodiscard]] PeerId oracle_predecessor(PeerId peer) const;
  [[nodiscard]] std::size_t hop_cap() const;

  std::map<Guid, PeerId> by_id_;         // ground truth, sorted by GUID
  std::map<PeerId, Guid> guid_of_peer_;  // reverse index
  std::map<PeerId, Local> locals_;       // per-peer local routing state
  int fingers_per_round_ = 32;
  std::uint64_t repairs_ = 0;
  std::uint64_t emergency_rebootstraps_ = 0;
};

}  // namespace dprank
