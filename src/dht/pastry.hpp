#pragma once

// Pastry-style DHT overlay (§2.1 names Pastry alongside CAN and Chord
// as the class of systems the scheme targets).
//
// Pastry routes by identifier prefix: ids are strings of base-2^b
// digits (b = 4 here, so 32 hex digits over the 128-bit space); each
// hop forwards to a node sharing a strictly longer prefix with the key,
// falling back to the leaf set (numerically closest nodes) when the
// routing table has no such entry. A key is owned by the *numerically
// closest* node — a different ownership rule from Chord's successor,
// which is why the reproduction carries both: the pagerank layer is
// overlay-agnostic, and the routing ablation can compare hop bills.
//
// As with ChordRing, the simulation derives routing state from global
// membership; the hop sequences match a converged Pastry network with
// fully populated routing tables.

#include <cstdint>
#include <map>
#include <vector>

#include "common/guid.hpp"
#include "dht/ring.hpp"  // PeerId, kInvalidPeer

namespace dprank {

class PastryRing {
 public:
  static constexpr int kDigitBits = 4;                   // b = 4
  static constexpr int kNumDigits = 128 / kDigitBits;    // 32 hex digits

  PastryRing() = default;
  explicit PastryRing(PeerId num_peers);

  void join(PeerId peer, Guid id);
  void leave(PeerId peer);
  [[nodiscard]] bool contains(PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] Guid id_of(PeerId peer) const;

  /// The numerically closest live node to `key` (ties broken toward the
  /// clockwise side, matching Pastry's deterministic tie rule).
  [[nodiscard]] PeerId owner_of_key(Guid key) const;

  /// Length of the common base-16 digit prefix of two ids, in digits.
  [[nodiscard]] static int shared_prefix_digits(Guid a, Guid b);

  /// Digit `i` (0 = most significant) of an id.
  [[nodiscard]] static int digit(Guid id, int i);

  struct Route {
    PeerId destination = kInvalidPeer;
    std::vector<PeerId> hops;  // excludes origin; empty if key is local
    [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  };

  /// Prefix routing with leaf-set fallback. Each hop either increases
  /// the shared prefix length or (fallback) strictly decreases numeric
  /// distance to the key, so termination is guaranteed.
  [[nodiscard]] Route route(PeerId from, Guid key) const;

  [[nodiscard]] std::vector<PeerId> peers() const;

 private:
  /// Among peers whose id shares a prefix of >= `len+1` digits with
  /// `key`, the numerically closest to key; kInvalidPeer if none.
  [[nodiscard]] PeerId best_with_longer_prefix(Guid key, int len) const;

  std::map<Guid, PeerId> by_id_;
  std::map<PeerId, Guid> guid_of_peer_;
};

/// Minimum circular distance between two 128-bit ids (the metric Pastry
/// ownership uses).
[[nodiscard]] U128 circular_distance(Guid a, Guid b);

}  // namespace dprank
