#pragma once

// CAN-style DHT overlay (§2.1 lists CAN first among the DHT systems the
// scheme targets).
//
// CAN (Ratnasamy et al.) maps keys into a d-dimensional unit torus
// partitioned into axis-aligned zones, one owner per zone:
//   * a joining node picks a random point, routes to the zone holding
//     it, and splits that zone in half along its longest side;
//   * a leaving node's zones are taken over by the neighbor owning the
//     least volume (CAN's defragmentation is deferred, so an owner may
//     temporarily hold several zones — modelled here explicitly);
//   * routing is greedy: each hop crosses to the adjacent zone whose
//     center is torus-closest to the key's point, giving O(d * n^(1/d))
//     hops.
//
// As with the Chord and Pastry substrates, membership is global (the
// simulation plays an already-converged overlay); the *geometry* —
// zones, adjacency, hop counts — is the real CAN algorithm.

#include <array>
#include <cstdint>
#include <vector>

#include "common/guid.hpp"
#include "dht/ring.hpp"  // PeerId, kInvalidPeer

namespace dprank {

class CanSpace {
 public:
  static constexpr int kDims = 2;  // the CAN paper's default evaluation
  using Point = std::array<double, kDims>;

  struct Zone {
    Point lo{};  // inclusive
    Point hi{};  // exclusive
    PeerId owner = kInvalidPeer;

    [[nodiscard]] bool contains(const Point& p) const;
    [[nodiscard]] Point center() const;
    [[nodiscard]] double volume() const;
  };

  /// Bootstrap: peer 0 owns the whole torus, peers 1..n-1 join in order
  /// (each splitting the zone that holds its hashed join point).
  explicit CanSpace(PeerId num_peers);
  CanSpace() : CanSpace(1) {}

  /// Join: split the zone containing the peer's hashed point.
  void join(PeerId peer);

  /// Leave: the departing peer's zones are absorbed by the neighbor
  /// owning the least total volume (multi-zone takeover).
  void leave(PeerId peer);

  [[nodiscard]] bool contains(PeerId peer) const;
  [[nodiscard]] std::size_t num_zones() const { return zones_.size(); }
  [[nodiscard]] std::size_t num_peers() const;

  /// Deterministic key -> point mapping.
  [[nodiscard]] static Point key_to_point(Guid key);
  [[nodiscard]] static Point peer_join_point(PeerId peer);

  [[nodiscard]] PeerId owner_of_key(Guid key) const;
  [[nodiscard]] PeerId owner_of_point(const Point& p) const;

  struct Route {
    PeerId destination = kInvalidPeer;
    std::vector<PeerId> hops;  // per-zone-crossing owner sequence,
                               // consecutive duplicates collapsed;
                               // excludes origin; empty if local
    [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  };

  /// Greedy geographic routing from `from`'s first zone to the key.
  [[nodiscard]] Route route(PeerId from, Guid key) const;

  /// Total volume must always be 1 and zones must tile the torus; used
  /// by tests and asserted cheaply after each membership change.
  [[nodiscard]] double total_volume() const;

  /// Zones adjacent to zone `z` (sharing a (d-1)-dimensional face,
  /// torus-aware).
  [[nodiscard]] std::vector<std::size_t> neighbors_of_zone(
      std::size_t z) const;

  [[nodiscard]] const std::vector<Zone>& zones() const { return zones_; }

 private:
  [[nodiscard]] std::size_t zone_of_point(const Point& p) const;
  [[nodiscard]] std::size_t first_zone_of_peer(PeerId peer) const;

  std::vector<Zone> zones_;
};

/// Torus distance between two points in [0,1)^d.
[[nodiscard]] double torus_distance(const CanSpace::Point& a,
                                    const CanSpace::Point& b);

}  // namespace dprank
