#include "dht/pastry.hpp"

#include <stdexcept>

namespace dprank {

U128 circular_distance(Guid a, Guid b) {
  const U128 d1 = a - b;
  const U128 d2 = b - a;
  return d1 < d2 ? d1 : d2;
}

PastryRing::PastryRing(PeerId num_peers) {
  for (PeerId p = 0; p < num_peers; ++p) join(p, peer_guid(p));
}

void PastryRing::join(PeerId peer, Guid id) {
  if (guid_of_peer_.contains(peer)) {
    throw std::invalid_argument("PastryRing::join: peer already present");
  }
  const auto [it, inserted] = by_id_.emplace(id, peer);
  if (!inserted) {
    throw std::invalid_argument("PastryRing::join: GUID collision");
  }
  guid_of_peer_.emplace(peer, id);
}

void PastryRing::leave(PeerId peer) {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) return;
  by_id_.erase(it->second);
  guid_of_peer_.erase(it);
}

bool PastryRing::contains(PeerId peer) const {
  return guid_of_peer_.contains(peer);
}

Guid PastryRing::id_of(PeerId peer) const {
  const auto it = guid_of_peer_.find(peer);
  if (it == guid_of_peer_.end()) {
    throw std::out_of_range("PastryRing::id_of: unknown peer");
  }
  return it->second;
}

PeerId PastryRing::owner_of_key(Guid key) const {
  if (by_id_.empty()) {
    throw std::logic_error("PastryRing::owner_of_key: empty ring");
  }
  // Candidates: the map neighbors of key (plus ring wraparound).
  auto ge = by_id_.lower_bound(key);
  const auto first = by_id_.begin();
  const auto last = std::prev(by_id_.end());
  const auto candidate_a = ge == by_id_.end() ? first : ge;
  const auto candidate_b = ge == by_id_.begin() ? last : std::prev(ge);

  const U128 da = circular_distance(candidate_a->first, key);
  const U128 db = circular_distance(candidate_b->first, key);
  if (da < db) return candidate_a->second;
  if (db < da) return candidate_b->second;
  // Tie: prefer the clockwise (>= key) side.
  return candidate_a->second;
}

int PastryRing::digit(Guid id, int i) {
  // Digit 0 is the most significant nibble of `hi`.
  const int shift = 124 - i * kDigitBits;
  const U128 shifted = id >> shift;
  return static_cast<int>(shifted.lo & 0xF);
}

int PastryRing::shared_prefix_digits(Guid a, Guid b) {
  for (int i = 0; i < kNumDigits; ++i) {
    if (digit(a, i) != digit(b, i)) return i;
  }
  return kNumDigits;
}

PeerId PastryRing::best_with_longer_prefix(Guid key, int len) const {
  // All ids sharing >= len+1 digits with key form a contiguous id range
  // [prefix(key, len+1) || 0..., prefix(key, len+1) || f...].
  const int keep_bits = (len + 1) * kDigitBits;
  if (keep_bits > 128) return kInvalidPeer;
  const U128 mask_low =
      keep_bits == 128 ? U128{0, 0} : (U128::max() >> keep_bits);
  const U128 lo = key & (U128::max() ^ mask_low);
  const U128 hi = lo | mask_low;

  const auto begin = by_id_.lower_bound(lo);
  if (begin == by_id_.end() || begin->first > hi) return kInvalidPeer;
  // A real routing table holds ONE (arbitrary) entry per cell, not the
  // best-possible node; model that with the lowest id in the prefix
  // range. Each such hop still extends the shared prefix by >= 1 digit,
  // preserving Pastry's O(log_16 N) bound without overstating it.
  return begin->second;
}

PastryRing::Route PastryRing::route(PeerId from, Guid key) const {
  const PeerId target = owner_of_key(key);
  Route r;
  r.destination = target;
  PeerId current = from;
  while (current != target) {
    const Guid cur_id = id_of(current);
    const int len = shared_prefix_digits(cur_id, key);
    PeerId next = best_with_longer_prefix(key, len);
    if (next == kInvalidPeer || next == current) {
      // Leaf-set fallback: the owner is numerically closest to the key,
      // so jumping straight to it both terminates and mirrors what a
      // real leaf set (which always contains the owner's neighborhood)
      // does on the final hop.
      next = target;
    }
    r.hops.push_back(next);
    current = next;
  }
  return r;
}

std::vector<PeerId> PastryRing::peers() const {
  std::vector<PeerId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, peer] : by_id_) out.push_back(peer);
  return out;
}

}  // namespace dprank
