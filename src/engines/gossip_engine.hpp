#pragma once

// Randomized-gossip pagerank engine (Ishii & Tempo, arXiv:1203.6599,
// adapted to the paper's unnormalized chaotic iteration).
//
// Where the distributed engine recomputes every dirty document each
// pass, the gossip engine randomizes the update schedule: each round
// every present peer selects a seeded-random subset of its dirty
// documents (each with probability gossip_fraction) and recomputes only
// those. Documents passed over stay dirty and accumulate defer age; at
// gossip_max_defer consecutive skips the recompute is forced, so the
// randomized schedule stays fair and the iteration provably drains.
//
// Semantics shared with the distributed engine (pagerank/
// distributed_engine.hpp): per-out-edge contribution cells, the rank
// recursion R(v) = (1-d) + d * sum of stored in-contributions, the
// ε relative-change emission gate (against the value the out-links
// actually hold, so deferred recomputes never silently drop mass),
// same-peer updates free, cross-peer updates one 24-byte message,
// updates to absent peers parked newest-wins and billed at delivery,
// updates sent in round t visible in round t+1 (Jacobi-style buffered
// apply — results do not depend on sweep order). Convergence: no dirty
// document anywhere and no parked update.
//
// Selection randomness is a stateless hash of (seed, round, doc):
// same-seed reruns are bit-identical, with or without churn. The audit
// is the emission ledger: at quiescence every edge's effective value
// (delivered cell, or parked newest value) equals its last emitted
// value exactly; run() reports the ratio as mass_ratio.
//
// The engine is sequential (PagerankOptions::threads and ::schedule are
// ignored — the randomized selection *is* the schedule).

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "net/traffic_meter.hpp"
#include "obs/metrics.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/engine.hpp"

namespace dprank {

class GossipEngine : public PagerankEngineInterface {
 public:
  /// The placement must cover exactly g.num_nodes() documents. The
  /// engine keeps references: graph and placement must outlive it.
  GossipEngine(const Digraph& g, const Placement& placement,
               const EngineOptions& options);
  GossipEngine(Digraph&&, const Placement&, EngineOptions) = delete;
  GossipEngine(const Digraph&, Placement&&, EngineOptions) = delete;
  GossipEngine(Digraph&&, Placement&&, EngineOptions) = delete;

  DistributedRunResult run(ChurnSchedule* churn = nullptr,
                           const PassObserver& observer = nullptr) override;

  [[nodiscard]] const std::vector<double>& ranks() const override {
    return ranks_;
  }
  [[nodiscard]] const TrafficMeter& traffic() const override {
    return meter_;
  }
  [[nodiscard]] const std::vector<PassStats>& pass_history() const override {
    return history_;
  }
  void attach_metrics(obs::MetricsRegistry& registry) override;
  void enable_mass_audit(double tolerance = 1e-9) override;

  /// Exact: converges to the same ε-fixed point as fifo, only the
  /// schedule is randomized. The bound is the fifo-equivalent mean
  /// relative error vs the oracle at ε = 1e-3, with slack.
  [[nodiscard]] EngineTraits traits() const override {
    EngineTraits t;
    t.name = "gossip";
    t.supports_churn = true;
    t.exact = true;
    t.supports_tracer = false;
    t.quality_bound = 0.01;
    return t;
  }

 private:
  struct Emission {
    EdgeId edge = 0;
    PeerId src = 0;
    double value = 0.0;
  };

  /// Selection draw for (round, doc): stateless hash from the seed.
  [[nodiscard]] bool selected(std::uint64_t round, NodeId v) const;
  void deliver_parked(const std::vector<bool>& presence, PassStats& stats);
  void apply_emissions(const std::vector<bool>& presence, PassStats& stats);
  void mark_dirty(NodeId v);
  [[nodiscard]] double audit_ratio() const;
  void flush_metrics(const DistributedRunResult& result);

  const Digraph& graph_;
  const Placement& placement_;
  EngineOptions options_;

  std::vector<double> ranks_;
  /// Value the document's out-links hold (the emission-gate reference).
  std::vector<double> last_sent_;
  /// Delivered contribution cells, indexed by out-edge id.
  std::vector<double> contrib_;
  std::vector<double> pending_value_;  // per out-edge, parked value
  std::vector<std::uint8_t> pending_;
  std::vector<std::vector<EdgeId>> deferred_by_peer_;
  std::uint64_t total_pending_ = 0;

  std::vector<std::uint8_t> in_dirty_;
  std::vector<NodeId> dirty_;
  std::vector<NodeId> keep_dirty_;   // round scratch
  std::vector<Emission> emissions_;  // round scratch
  std::vector<std::uint32_t> defer_age_;

  std::vector<std::uint64_t> peer_msgs_this_pass_;

  bool audit_enabled_ = false;
  double audit_tolerance_ = 1e-9;
  std::vector<double> emitted_value_;  // last emitted, per out-edge
  std::vector<std::uint8_t> emitted_seen_;

  TrafficMeter meter_;
  std::vector<PassStats> history_;
  bool ran_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dprank
