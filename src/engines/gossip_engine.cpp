#include "engines/gossip_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "net/message.hpp"

namespace dprank {

namespace {
constexpr std::uint64_t kDocSalt = 0x9E3779B97F4A7C15ULL;
}  // namespace

GossipEngine::GossipEngine(const Digraph& g, const Placement& placement,
                           const EngineOptions& options)
    : graph_(g), placement_(placement), options_(options) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "GossipEngine: placement does not cover the graph");
  }
  if (options_.gossip_fraction <= 0.0 || options_.gossip_fraction > 1.0) {
    throw std::invalid_argument(
        "GossipEngine: gossip_fraction out of (0,1]");
  }
  const NodeId n = g.num_nodes();
  ranks_.assign(n, options_.pagerank.initial_rank);
  last_sent_.assign(n, options_.pagerank.initial_rank);
  // Pass-0 cells match the distributed engine: contribution of edge
  // u->v starts at initial_rank / outdeg(u).
  contrib_.resize(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const double c = options_.pagerank.initial_rank /
                     static_cast<double>(std::max<std::uint32_t>(
                         1, g.out_degree(u)));
    for (EdgeId e = g.out_edge_begin(u); e < g.out_edge_end(u); ++e) {
      contrib_[e] = c;
    }
  }
  pending_value_.assign(g.num_edges(), 0.0);
  pending_.assign(g.num_edges(), 0);
  deferred_by_peer_.resize(placement.num_peers());
  in_dirty_.assign(n, 1);
  dirty_.resize(n);
  for (NodeId v = 0; v < n; ++v) dirty_[v] = v;  // first round: everyone
  defer_age_.assign(n, 0);
  peer_msgs_this_pass_.assign(placement.num_peers(), 0);
}

bool GossipEngine::selected(std::uint64_t round, NodeId v) const {
  const std::uint64_t h =
      mix64(mix64(options_.seed + round) ^
            (static_cast<std::uint64_t>(v) * kDocSalt));
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         options_.gossip_fraction;
}

void GossipEngine::enable_mass_audit(double tolerance) {
  if (ran_) throw std::logic_error("enable_mass_audit after run");
  if (tolerance < 0.0) {
    throw std::invalid_argument("enable_mass_audit: negative tolerance");
  }
  audit_enabled_ = true;
  audit_tolerance_ = tolerance;
  emitted_value_.assign(graph_.num_edges(), 0.0);
  emitted_seen_.assign(graph_.num_edges(), 0);
}

void GossipEngine::attach_metrics(obs::MetricsRegistry& registry) {
  if (ran_) throw std::logic_error("attach_metrics after run");
  metrics_ = &registry;
}

void GossipEngine::mark_dirty(NodeId v) {
  // Called from apply_emissions, after the round's dirty_/keep_dirty_
  // swap: dirty_ is already the next round's list.
  if (in_dirty_[v] != 0) return;
  in_dirty_[v] = 1;
  dirty_.push_back(v);
}

void GossipEngine::deliver_parked(const std::vector<bool>& presence,
                                  PassStats& stats) {
  if (total_pending_ == 0) return;
  for (PeerId p = 0; p < placement_.num_peers(); ++p) {
    if (!presence[p] || deferred_by_peer_[p].empty()) continue;
    for (const EdgeId e : deferred_by_peer_[p]) {
      contrib_[e] = pending_value_[e];
      pending_[e] = 0;
      --total_pending_;
      meter_.record_message(PagerankUpdate::kWireBytes, 1);
      ++stats.messages_delivered_late;
      const NodeId target = graph_.out_target(e);
      // The freshly delivered value joins this round's lottery.
      if (in_dirty_[target] == 0) {
        in_dirty_[target] = 1;
        dirty_.push_back(target);
      }
    }
    deferred_by_peer_[p].clear();
  }
}

void GossipEngine::apply_emissions(const std::vector<bool>& presence,
                                   PassStats& stats) {
  for (const Emission& em : emissions_) {
    const EdgeId e = em.edge;
    const NodeId target = graph_.out_target(e);
    const PeerId dst = placement_.peer_of(target);
    if (audit_enabled_) {
      emitted_value_[e] = em.value;
      emitted_seen_[e] = 1;
    }
    if (dst == em.src) {
      contrib_[e] = em.value;
      meter_.record_local_update();
      ++stats.local_updates;
      mark_dirty(target);
    } else if (presence[dst]) {
      contrib_[e] = em.value;
      meter_.record_message(PagerankUpdate::kWireBytes, 1);
      ++stats.messages_sent;
      ++peer_msgs_this_pass_[em.src];
      mark_dirty(target);
    } else {
      // Park, newest value wins; billed at delivery.
      if (pending_[e] == 0) {
        pending_[e] = 1;
        ++total_pending_;
        deferred_by_peer_[dst].push_back(e);
      }
      pending_value_[e] = em.value;
      ++stats.messages_deferred;
    }
  }
  emissions_.clear();
}

DistributedRunResult GossipEngine::run(ChurnSchedule* churn,
                                       const PassObserver& observer) {
  if (ran_) throw std::logic_error("run: engine instance already ran");
  ran_ = true;
  if (churn != nullptr && churn->num_peers() != placement_.num_peers()) {
    throw std::invalid_argument("run: churn schedule peer count mismatch");
  }
  const std::vector<bool> all_present(placement_.num_peers(), true);
  const double d = options_.pagerank.damping;
  const double eps = options_.pagerank.epsilon;
  DistributedRunResult result;
  for (std::uint64_t round = 0; round < options_.pagerank.max_passes;
       ++round) {
    const std::vector<bool>& presence =
        churn != nullptr ? churn->presence_for_pass(round) : all_present;
    PassStats stats;
    stats.pass = round;
    std::fill(peer_msgs_this_pass_.begin(), peer_msgs_this_pass_.end(), 0);

    deliver_parked(presence, stats);

    keep_dirty_.clear();
    for (const NodeId v : dirty_) {
      const PeerId owner = placement_.peer_of(v);
      if (!presence[owner]) {
        // Offline owner: the document neither computes nor ages.
        keep_dirty_.push_back(v);
        continue;
      }
      if (defer_age_[v] < options_.gossip_max_defer &&
          !selected(round, v)) {
        ++defer_age_[v];
        ++stats.docs_deferred;
        keep_dirty_.push_back(v);
        continue;
      }
      defer_age_[v] = 0;
      in_dirty_[v] = 0;
      ++stats.docs_recomputed;
      double sum = 0.0;
      for (const EdgeId e : graph_.in_to_out_edge(v)) sum += contrib_[e];
      const double new_rank = (1.0 - d) + d * sum;
      stats.max_rel_change =
          std::max(stats.max_rel_change, relative_change(ranks_[v], new_rank));
      ranks_[v] = new_rank;
      // Gate against what the out-links actually hold, so a recompute
      // chain of sub-ε steps cannot silently strand accumulated change.
      if (relative_change(last_sent_[v], new_rank) > eps &&
          graph_.out_degree(v) != 0) {
        last_sent_[v] = new_rank;
        const double c =
            new_rank / static_cast<double>(graph_.out_degree(v));
        for (EdgeId e = graph_.out_edge_begin(v); e < graph_.out_edge_end(v);
             ++e) {
          emissions_.push_back(Emission{e, owner, c});
        }
      }
    }
    dirty_.swap(keep_dirty_);

    // Round-t emissions become visible in round t+1 (Jacobi apply).
    apply_emissions(presence, stats);

    stats.max_peer_messages = peer_msgs_this_pass_.empty()
                                  ? 0
                                  : *std::max_element(
                                        peer_msgs_this_pass_.begin(),
                                        peer_msgs_this_pass_.end());
    history_.push_back(stats);
    result.passes = round + 1;
    if (observer) observer(round, ranks_);
    if (dirty_.empty() && total_pending_ == 0) {
      result.converged = true;
      break;
    }
  }
  if (audit_enabled_) {
    result.mass_ratio = audit_ratio();
    if (result.mass_ratio < 1.0 - audit_tolerance_ ||
        result.mass_ratio > 1.0 + audit_tolerance_) {
      result.converged = false;
    }
  }
  if (metrics_ != nullptr) flush_metrics(result);
  return result;
}

double GossipEngine::audit_ratio() const {
  // Emission ledger: per edge, the effective value (delivered cell, or
  // the parked newest value) must equal the last emitted value — parks
  // are newest-wins and deliveries overwrite, so nothing can leak.
  double emitted = 0.0;
  double effective = 0.0;
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (emitted_seen_[e] == 0) continue;
    emitted += emitted_value_[e];
    effective += pending_[e] != 0 ? pending_value_[e] : contrib_[e];
  }
  if (emitted == 0.0) return 1.0;
  return effective / emitted;
}

void GossipEngine::flush_metrics(const DistributedRunResult& result) {
  obs::MetricsRegistry& reg = *metrics_;
  meter_.flush_to(reg);
  reg.counter("pagerank.runs").add(1);
  reg.counter("pagerank.passes").add(result.passes);
  if (result.converged) reg.counter("pagerank.converged_runs").add(1);
  reg.gauge("pagerank.mass_ratio").set(result.mass_ratio);
  obs::Series& residual = reg.series("pagerank.residual");
  obs::Series& recomputed = reg.series("pagerank.docs_recomputed");
  obs::Series& sent = reg.series("pagerank.messages_sent");
  obs::Series& deferred = reg.series("pagerank.deferred");
  obs::Histogram& pass_msgs = reg.histogram("pagerank.pass.messages");
  std::uint64_t total_deferred = 0;
  for (const PassStats& p : history_) {
    const double x = static_cast<double>(p.pass);
    residual.append(x, p.max_rel_change);
    recomputed.append(x, static_cast<double>(p.docs_recomputed));
    sent.append(x, static_cast<double>(p.messages_sent));
    deferred.append(x, static_cast<double>(p.docs_deferred));
    total_deferred += p.docs_deferred;
    pass_msgs.record(static_cast<double>(p.messages_sent));
  }
  reg.counter("pagerank.docs_deferred").add(total_deferred);
}

}  // namespace dprank
