#include "engines/registry.hpp"

#include <stdexcept>

#include "engines/gossip_engine.hpp"
#include "engines/walk_engine.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {

const std::vector<std::string>& registered_engines() {
  static const std::vector<std::string> kNames = {"distributed", "walk",
                                                  "gossip"};
  return kNames;
}

bool is_registered_engine(const std::string& name) {
  for (const std::string& n : registered_engines()) {
    if (n == name) return true;
  }
  return false;
}

EngineTraits engine_traits(const std::string& name) {
  // Traits are constants per engine class; a throwaway 1-node instance
  // would also work, but a static table keeps this allocation-free.
  if (name == "distributed") {
    EngineTraits t;
    t.name = "distributed";
    t.supports_churn = true;
    t.exact = true;
    t.supports_tracer = true;
    t.quality_bound = 0.01;
    return t;
  }
  if (name == "walk") {
    EngineTraits t;
    t.name = "walk";
    t.supports_churn = true;
    t.exact = false;
    t.supports_tracer = false;
    t.quality_bound = 0.10;
    return t;
  }
  if (name == "gossip") {
    EngineTraits t;
    t.name = "gossip";
    t.supports_churn = true;
    t.exact = true;
    t.supports_tracer = false;
    t.quality_bound = 0.01;
    return t;
  }
  throw std::invalid_argument("engine_traits: unknown engine '" + name +
                              "'");
}

std::unique_ptr<PagerankEngineInterface> make_engine(
    const std::string& name, const Digraph& g, const Placement& placement,
    const EngineOptions& options) {
  if (name == "distributed") {
    return std::make_unique<DistributedPagerank>(g, placement,
                                                 options.pagerank);
  }
  if (name == "walk") {
    return std::make_unique<RandomWalkEngine>(g, placement, options);
  }
  if (name == "gossip") {
    return std::make_unique<GossipEngine>(g, placement, options);
  }
  throw std::invalid_argument("make_engine: unknown engine '" + name + "'");
}

}  // namespace dprank
