#pragma once

// Random-walk pagerank engine (Das Sarma et al., arXiv:1208.3071,
// adapted to the paper's unnormalized Google form).
//
// Semantics:
//  * Every document mints `walks_per_node` walk tokens at pass 0. A
//    token visits its current document, then with probability d moves
//    to a uniformly-random out-neighbor and with probability 1-d
//    terminates; a token at a dangling document terminates.
//  * Unrolling R(v) = (1-d) + d * sum R(u)/outdeg(u) gives
//    R(v) = (1-d) * sum_t d^t [(P^T)^t 1](v) with P(u,.) uniform over
//    u's out-links, which is exactly (1-d) times the expected visit
//    count of such a walk started at every document. The estimator is
//    R̂(v) = (1-d) * visits(v) / walks_per_node — unbiased, with
//    relative error shrinking as 1/sqrt(walks_per_node).
//  * A pass: every live token hosted on a present peer advances one
//    step. A move whose target document lives on the same peer is a
//    free local update (Fig. 1 step b analogy); a move to a present
//    remote peer is one 24-byte token message (the same GUID+state wire
//    size as a pagerank update, §4.6.1); a move to an absent peer parks
//    the token in the sender's outbox and is delivered — and billed —
//    on the first pass the destination returns (the churn convention of
//    the distributed engine). Tokens hosted on absent peers freeze.
//  * Per-step randomness is a stateless hash of (seed, token id, step),
//    so trajectories are independent of processing order and identical
//    across same-seed reruns, with or without churn.
//  * Convergence: every token has terminated and none is parked.
//    PassStats::max_rel_change reports the live-token fraction (the
//    engine's natural residual); docs_recomputed counts token steps.
//  * Mass audit = token conservation: minted tokens always equal
//    terminated + live + parked. run() reports the ledger ratio as
//    mass_ratio.
//
// The engine is sequential (PagerankOptions::threads is ignored): one
// pass is a single ordered sweep over the token array.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "net/traffic_meter.hpp"
#include "obs/metrics.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/engine.hpp"

namespace dprank {

class RandomWalkEngine : public PagerankEngineInterface {
 public:
  /// The placement must cover exactly g.num_nodes() documents. The
  /// engine keeps references: graph and placement must outlive it.
  RandomWalkEngine(const Digraph& g, const Placement& placement,
                   const EngineOptions& options);
  RandomWalkEngine(Digraph&&, const Placement&, EngineOptions) = delete;
  RandomWalkEngine(const Digraph&, Placement&&, EngineOptions) = delete;
  RandomWalkEngine(Digraph&&, Placement&&, EngineOptions) = delete;

  DistributedRunResult run(ChurnSchedule* churn = nullptr,
                           const PassObserver& observer = nullptr) override;

  [[nodiscard]] const std::vector<double>& ranks() const override {
    return ranks_;
  }
  [[nodiscard]] const TrafficMeter& traffic() const override {
    return meter_;
  }
  [[nodiscard]] const std::vector<PassStats>& pass_history() const override {
    return history_;
  }
  void attach_metrics(obs::MetricsRegistry& registry) override;
  void enable_mass_audit(double tolerance = 1e-9) override;

  /// Statistical estimator: quality_bound is the declared mean
  /// relative-error ceiling vs the centralized oracle at the default
  /// walks_per_node on the conformance graph (measured ≈ half of it).
  [[nodiscard]] EngineTraits traits() const override {
    EngineTraits t;
    t.name = "walk";
    t.supports_churn = true;
    t.exact = false;
    t.supports_tracer = false;
    t.quality_bound = 0.10;
    return t;
  }

  /// Token-conservation ledger counters (valid after run()).
  [[nodiscard]] std::uint64_t tokens_minted() const { return minted_; }
  [[nodiscard]] std::uint64_t tokens_terminated() const {
    return terminated_;
  }

 private:
  /// One step of one token: the (terminate?, neighbor-index) draws for
  /// (token, step), hashed statelessly from the seed.
  [[nodiscard]] std::uint64_t step_hash(std::uint64_t token,
                                        std::uint32_t step) const;
  void deliver_parked(const std::vector<bool>& presence, PassStats& stats);
  void finalize_ranks();
  void flush_metrics(const DistributedRunResult& result);

  const Digraph& graph_;
  const Placement& placement_;
  EngineOptions options_;

  // Token state, indexed by token id (doc * walks_per_node + k). A
  // parked token keeps its destination in doc_ but is absent from the
  // live sweep until the destination peer returns.
  std::vector<NodeId> doc_;          // current document
  std::vector<std::uint32_t> step_;  // steps taken so far
  enum class TokenState : std::uint8_t { kLive, kParked, kDone };
  std::vector<TokenState> state_;
  std::vector<std::vector<std::uint64_t>> parked_by_peer_;

  std::vector<std::uint64_t> visits_;
  std::vector<double> ranks_;
  std::vector<std::uint64_t> peer_msgs_this_pass_;

  std::uint64_t minted_ = 0;
  std::uint64_t terminated_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t parked_ = 0;

  bool audit_enabled_ = false;
  double audit_tolerance_ = 1e-9;

  TrafficMeter meter_;
  std::vector<PassStats> history_;
  bool ran_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dprank
