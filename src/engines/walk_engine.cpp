#include "engines/walk_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "net/message.hpp"

namespace dprank {

namespace {

/// Second draw of a step: decorrelates the neighbor choice from the
/// termination draw taken from the same step hash.
constexpr std::uint64_t kNeighborSalt = 0xD1B54A32D192ED03ULL;

/// Uniform double in [0, 1) from a hash (the Rng::uniform construction).
double hash_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Unbiased-enough bounded draw from a hash (Lemire multiply-shift; the
/// rejection loop of Rng::bounded needs a stream, a single mapping is
/// fine at out-degree scale: bias < deg / 2^64).
std::uint64_t hash_bounded(std::uint64_t h, std::uint64_t bound) noexcept {
  const __uint128_t m = static_cast<__uint128_t>(h) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace

RandomWalkEngine::RandomWalkEngine(const Digraph& g,
                                   const Placement& placement,
                                   const EngineOptions& options)
    : graph_(g), placement_(placement), options_(options) {
  if (placement.num_docs() != g.num_nodes()) {
    throw std::invalid_argument(
        "RandomWalkEngine: placement does not cover the graph");
  }
  if (options_.walks_per_node == 0) {
    throw std::invalid_argument("RandomWalkEngine: walks_per_node == 0");
  }
  if (options_.walk_step_cap == 0) {
    throw std::invalid_argument("RandomWalkEngine: walk_step_cap == 0");
  }
  const double d = options_.pagerank.damping;
  if (d <= 0.0 || d >= 1.0) {
    throw std::invalid_argument("RandomWalkEngine: damping out of (0,1)");
  }
  const NodeId n = g.num_nodes();
  const std::uint64_t k = options_.walks_per_node;
  minted_ = static_cast<std::uint64_t>(n) * k;
  live_ = minted_;
  doc_.resize(minted_);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t j = 0; j < k; ++j) doc_[v * k + j] = v;
  }
  step_.assign(minted_, 0);
  state_.assign(minted_, TokenState::kLive);
  // Every token visits its start document.
  visits_.assign(n, k);
  ranks_.assign(n, options_.pagerank.initial_rank);
  parked_by_peer_.resize(placement.num_peers());
  peer_msgs_this_pass_.assign(placement.num_peers(), 0);
}

std::uint64_t RandomWalkEngine::step_hash(std::uint64_t token,
                                          std::uint32_t step) const {
  return mix64(mix64(options_.seed ^ token) + step);
}

void RandomWalkEngine::enable_mass_audit(double tolerance) {
  if (ran_) throw std::logic_error("enable_mass_audit after run");
  if (tolerance < 0.0) {
    throw std::invalid_argument("enable_mass_audit: negative tolerance");
  }
  audit_enabled_ = true;
  audit_tolerance_ = tolerance;
}

void RandomWalkEngine::attach_metrics(obs::MetricsRegistry& registry) {
  if (ran_) throw std::logic_error("attach_metrics after run");
  metrics_ = &registry;
}

void RandomWalkEngine::deliver_parked(const std::vector<bool>& presence,
                                      PassStats& stats) {
  if (parked_ == 0) return;
  for (PeerId p = 0; p < placement_.num_peers(); ++p) {
    if (!presence[p] || parked_by_peer_[p].empty()) continue;
    for (const std::uint64_t t : parked_by_peer_[p]) {
      // Billed once, at delivery (the distributed engine's outbox
      // convention); the token then rejoins this pass's sweep.
      meter_.record_message(PagerankUpdate::kWireBytes, 1);
      ++stats.messages_delivered_late;
      ++visits_[doc_[t]];
      state_[t] = TokenState::kLive;
      --parked_;
      ++live_;
    }
    parked_by_peer_[p].clear();
  }
}

DistributedRunResult RandomWalkEngine::run(ChurnSchedule* churn,
                                           const PassObserver& observer) {
  if (ran_) throw std::logic_error("run: engine instance already ran");
  ran_ = true;
  if (churn != nullptr && churn->num_peers() != placement_.num_peers()) {
    throw std::invalid_argument("run: churn schedule peer count mismatch");
  }
  const std::vector<bool> all_present(placement_.num_peers(), true);
  const double d = options_.pagerank.damping;
  DistributedRunResult result;
  for (std::uint64_t pass = 0; pass < options_.pagerank.max_passes; ++pass) {
    const std::vector<bool>& presence =
        churn != nullptr ? churn->presence_for_pass(pass) : all_present;
    PassStats stats;
    stats.pass = pass;
    std::fill(peer_msgs_this_pass_.begin(), peer_msgs_this_pass_.end(), 0);

    deliver_parked(presence, stats);

    for (std::uint64_t t = 0; t < minted_; ++t) {
      if (state_[t] != TokenState::kLive) continue;
      const NodeId u = doc_[t];
      const PeerId host = placement_.peer_of(u);
      if (!presence[host]) continue;  // hosting peer offline: frozen
      ++stats.docs_recomputed;
      const std::uint32_t s = step_[t];
      const std::uint32_t deg = graph_.out_degree(u);
      std::uint64_t h = 0;
      bool terminate = s >= options_.walk_step_cap || deg == 0;
      if (!terminate) {
        h = step_hash(t, s);
        terminate = hash_unit(h) >= d;
      }
      if (terminate) {
        state_[t] = TokenState::kDone;
        --live_;
        ++terminated_;
        continue;
      }
      const auto idx = static_cast<std::size_t>(
          hash_bounded(mix64(h ^ kNeighborSalt), deg));
      const NodeId v = graph_.out_neighbors(u)[idx];
      step_[t] = s + 1;
      doc_[t] = v;
      const PeerId dst = placement_.peer_of(v);
      if (dst == host) {
        meter_.record_local_update();
        ++stats.local_updates;
        ++visits_[v];
      } else if (presence[dst]) {
        meter_.record_message(PagerankUpdate::kWireBytes, 1);
        ++stats.messages_sent;
        ++peer_msgs_this_pass_[host];
        ++visits_[v];
      } else {
        state_[t] = TokenState::kParked;
        --live_;
        ++parked_;
        parked_by_peer_[dst].push_back(t);
        ++stats.messages_deferred;
      }
    }

    stats.max_peer_messages = peer_msgs_this_pass_.empty()
                                  ? 0
                                  : *std::max_element(
                                        peer_msgs_this_pass_.begin(),
                                        peer_msgs_this_pass_.end());
    // The engine's residual: the fraction of tokens still in flight.
    stats.max_rel_change =
        static_cast<double>(live_ + parked_) / static_cast<double>(minted_);
    history_.push_back(stats);
    result.passes = pass + 1;
    if (observer) {
      finalize_ranks();
      observer(pass, ranks_);
    }
    if (live_ == 0 && parked_ == 0) {
      result.converged = true;
      break;
    }
  }
  finalize_ranks();
  if (audit_enabled_) {
    // Token conservation: every minted token is terminated, live or
    // parked — a ledger mismatch means a token was lost or duplicated.
    const double ratio =
        static_cast<double>(terminated_ + live_ + parked_) /
        static_cast<double>(minted_);
    result.mass_ratio = ratio;
    if (ratio < 1.0 - audit_tolerance_ || ratio > 1.0 + audit_tolerance_) {
      result.converged = false;
    }
  }
  if (metrics_ != nullptr) flush_metrics(result);
  return result;
}

void RandomWalkEngine::finalize_ranks() {
  const double scale = (1.0 - options_.pagerank.damping) /
                       static_cast<double>(options_.walks_per_node);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    ranks_[v] = scale * static_cast<double>(visits_[v]);
  }
}

void RandomWalkEngine::flush_metrics(const DistributedRunResult& result) {
  obs::MetricsRegistry& reg = *metrics_;
  meter_.flush_to(reg);
  reg.counter("pagerank.runs").add(1);
  reg.counter("pagerank.passes").add(result.passes);
  if (result.converged) reg.counter("pagerank.converged_runs").add(1);
  reg.gauge("pagerank.mass_ratio").set(result.mass_ratio);
  reg.counter("walk.tokens_minted").add(minted_);
  reg.counter("walk.tokens_terminated").add(terminated_);
  obs::Series& residual = reg.series("pagerank.residual");
  obs::Series& recomputed = reg.series("pagerank.docs_recomputed");
  obs::Series& sent = reg.series("pagerank.messages_sent");
  obs::Histogram& pass_msgs = reg.histogram("pagerank.pass.messages");
  for (const PassStats& p : history_) {
    const double x = static_cast<double>(p.pass);
    residual.append(x, p.max_rel_change);
    recomputed.append(x, static_cast<double>(p.docs_recomputed));
    sent.append(x, static_cast<double>(p.messages_sent));
    pass_msgs.record(static_cast<double>(p.messages_sent));
  }
}

}  // namespace dprank
