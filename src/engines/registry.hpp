#pragma once

// Engine-zoo registry: name -> engine factory over the shared
// PagerankEngineInterface (pagerank/engine.hpp). The conformance suite
// (tests/test_engine_interface.cpp), the cross-engine bench matrix
// (bench/bench_engine_matrix.cpp) and `dprank_cli rank --engine` all
// construct engines exclusively through make_engine, so a new engine
// registered here is automatically tested, benched and reachable from
// the CLI.

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "p2p/placement.hpp"
#include "pagerank/engine.hpp"

namespace dprank {

/// Registered engine names, in canonical order ("distributed" first —
/// it is the default everywhere).
[[nodiscard]] const std::vector<std::string>& registered_engines();

/// True when `name` is a registered engine name.
[[nodiscard]] bool is_registered_engine(const std::string& name);

/// Static traits for a registered engine, without constructing one.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] EngineTraits engine_traits(const std::string& name);

/// Build a registered engine over (g, placement). The graph and
/// placement must outlive the returned engine. "distributed" consumes
/// options.pagerank only; "walk" and "gossip" additionally consume
/// options.seed and their own knobs. Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<PagerankEngineInterface> make_engine(
    const std::string& name, const Digraph& g, const Placement& placement,
    const EngineOptions& options);

}  // namespace dprank
