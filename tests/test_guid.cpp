#include "common/guid.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

namespace dprank {
namespace {

TEST(Guid, BytesHashDeterministic) {
  EXPECT_EQ(guid_from_bytes("hello"), guid_from_bytes("hello"));
  EXPECT_NE(guid_from_bytes("hello"), guid_from_bytes("hellp"));
  EXPECT_NE(guid_from_bytes("hello"), guid_from_bytes("hello "));
}

TEST(Guid, SeedChangesHash) {
  EXPECT_NE(guid_from_bytes("x", 1), guid_from_bytes("x", 2));
}

TEST(Guid, EmptyStringHasStableGuid) {
  EXPECT_EQ(guid_from_bytes(""), guid_from_bytes(""));
  EXPECT_NE(guid_from_bytes(""), guid_from_bytes("a"));
}

TEST(Guid, LengthExtensionDiffers) {
  // Same prefix blocks, different lengths must hash differently.
  const std::string a(8, 'q');
  const std::string b(16, 'q');
  EXPECT_NE(guid_from_bytes(a), guid_from_bytes(b));
}

TEST(Guid, DocumentAndPeerStreamsDisjoint) {
  std::unordered_set<Guid> guids;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(guids.insert(document_guid(i)).second) << i;
  }
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(guids.insert(peer_guid(i)).second)
        << "peer guid collided with a document guid at " << i;
  }
}

TEST(Guid, SameIndexDifferentKind) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_NE(document_guid(i), peer_guid(i));
  }
}

TEST(Guid, TermGuidsDistinct) {
  std::unordered_set<Guid> guids;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(guids.insert(term_guid("term:" + std::to_string(i))).second);
  }
}

TEST(Guid, RingDistributionRoughlyUniform) {
  // Bucket the top 4 bits of 64k document GUIDs; each of 16 buckets
  // should hold about 1/16th.
  std::vector<int> buckets(16, 0);
  constexpr int kN = 65'536;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ++buckets[document_guid(i).hi >> 60];
  }
  const double expected = kN / 16.0;
  for (const int b : buckets) {
    EXPECT_GT(b, expected * 0.9);
    EXPECT_LT(b, expected * 1.1);
  }
}

}  // namespace
}  // namespace dprank
