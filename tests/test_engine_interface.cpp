// Engine-zoo conformance suite (pagerank/engine.hpp + engines/).
//
// Every engine in the registry is driven exclusively through the shared
// PagerankEngineInterface and must satisfy the same contracts:
//  (a) deterministic — a same-seed rerun is bit-identical (ranks,
//      passes, traffic), clean and under churn;
//  (b) correct — the converged ranks sit within the engine's declared
//      quality bound (traits().quality_bound, mean relative error) of
//      the centralized oracle on the conformance graph;
//  (c) audited — the engine's conservation audit reports exactly 1.0 on
//      a clean converged run;
//  (d) honest about capabilities — traits() matches the registry table
//      and unsupported attachment points reject instead of ignoring.
// And the refactored default engine must reproduce the pre-refactor
// fifo golden digests of test_scheduler.cpp exactly when constructed
// and run through the interface.

#include "engines/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/generator.hpp"
#include "net/traffic_meter.hpp"
#include "obs/trace.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

// The conformance config: the Table 1 small graph scaled to test size —
// the same 2000-doc / 40-peer / ε=1e-3 setup the fifo goldens pin.
constexpr NodeId kDocs = 2'000;
constexpr PeerId kPeers = 40;

EngineOptions conformance_options() {
  EngineOptions o;
  o.pagerank.epsilon = 1e-3;
  o.seed = 42;
  return o;
}

struct RunFingerprint {
  std::uint64_t rank_digest = 0;
  std::uint64_t passes = 0;
  bool converged = false;
  std::uint64_t messages = 0;
  std::uint64_t local_updates = 0;
  std::uint64_t bytes = 0;
  std::size_t history_size = 0;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

RunFingerprint run_once(const std::string& name, const Digraph& g,
                        const Placement& placement, ChurnSchedule* churn,
                        bool audit = false, double* mass_ratio = nullptr) {
  const std::unique_ptr<PagerankEngineInterface> engine =
      make_engine(name, g, placement, conformance_options());
  if (audit) engine->enable_mass_audit(1e-9);
  const DistributedRunResult run = engine->run(churn);
  if (mass_ratio != nullptr) *mass_ratio = run.mass_ratio;
  RunFingerprint fp;
  fp.rank_digest = fnv1a_rank_digest(engine->ranks());
  fp.passes = run.passes;
  fp.converged = run.converged;
  fp.messages = engine->traffic().messages();
  fp.local_updates = engine->traffic().local_updates();
  fp.bytes = engine->traffic().bytes();
  fp.history_size = engine->pass_history().size();
  return fp;
}

TEST(EngineZoo, RegistryListsAtLeastThreeEnginesDefaultFirst) {
  const auto& names = registered_engines();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names.front(), "distributed");
  for (const std::string& name : names) {
    EXPECT_TRUE(is_registered_engine(name));
  }
  EXPECT_FALSE(is_registered_engine("no-such-engine"));
}

TEST(EngineZoo, TraitsMatchBetweenRegistryAndInstance) {
  const Digraph g = paper_graph(200, 1);
  const auto placement = Placement::random(200, 8, 1);
  for (const std::string& name : registered_engines()) {
    const EngineTraits table = engine_traits(name);
    const auto engine = make_engine(name, g, placement, EngineOptions{});
    const EngineTraits inst = engine->traits();
    EXPECT_STREQ(table.name, inst.name) << name;
    EXPECT_EQ(std::string(inst.name), name);
    EXPECT_EQ(table.supports_churn, inst.supports_churn) << name;
    EXPECT_EQ(table.exact, inst.exact) << name;
    EXPECT_EQ(table.supports_tracer, inst.supports_tracer) << name;
    EXPECT_DOUBLE_EQ(table.quality_bound, inst.quality_bound) << name;
  }
}

TEST(EngineZoo, UnknownEngineNameThrows) {
  const Digraph g = paper_graph(100, 1);
  const auto placement = Placement::random(100, 4, 1);
  EXPECT_THROW(make_engine("no-such-engine", g, placement, EngineOptions{}),
               std::invalid_argument);
  EXPECT_THROW(engine_traits("no-such-engine"), std::invalid_argument);
}

TEST(EngineZoo, DeterministicAcrossSameSeedReruns) {
  const Digraph g = paper_graph(kDocs, 42);
  const auto placement = Placement::random(kDocs, kPeers, 42);
  for (const std::string& name : registered_engines()) {
    const RunFingerprint first = run_once(name, g, placement, nullptr);
    const RunFingerprint second = run_once(name, g, placement, nullptr);
    EXPECT_TRUE(first == second) << name;
    EXPECT_TRUE(first.converged) << name;
  }
}

TEST(EngineZoo, DeterministicUnderChurn) {
  const Digraph g = paper_graph(kDocs, 42);
  const auto placement = Placement::random(kDocs, kPeers, 42);
  for (const std::string& name : registered_engines()) {
    if (!engine_traits(name).supports_churn) continue;
    ChurnSchedule churn_a(kPeers, 0.85, 7);
    const RunFingerprint first = run_once(name, g, placement, &churn_a);
    ChurnSchedule churn_b(kPeers, 0.85, 7);
    const RunFingerprint second = run_once(name, g, placement, &churn_b);
    EXPECT_TRUE(first == second) << name;
    EXPECT_TRUE(first.converged) << name;
  }
}

TEST(EngineZoo, ConvergesWithinDeclaredQualityBound) {
  const Digraph g = paper_graph(kDocs, 42);
  const auto placement = Placement::random(kDocs, kPeers, 42);
  const CentralizedResult oracle = centralized_pagerank(g);
  ASSERT_TRUE(oracle.converged);
  for (const std::string& name : registered_engines()) {
    const auto engine =
        make_engine(name, g, placement, conformance_options());
    const DistributedRunResult run = engine->run();
    EXPECT_TRUE(run.converged) << name;
    const QualityReport q = summarize_quality(engine->ranks(), oracle.ranks);
    EXPECT_LE(q.avg, engine->traits().quality_bound) << name;
    // An exact engine lands at ε-level error; a statistical one must
    // still preserve the head of the ranking usefully.
    EXPECT_GT(top_k_overlap(engine->ranks(), oracle.ranks, 100), 0.8)
        << name;
  }
}

TEST(EngineZoo, MassAuditReportsExactlyOneOnCleanRun) {
  const Digraph g = paper_graph(kDocs, 42);
  const auto placement = Placement::random(kDocs, kPeers, 42);
  for (const std::string& name : registered_engines()) {
    double mass = 0.0;
    const RunFingerprint fp =
        run_once(name, g, placement, nullptr, /*audit=*/true, &mass);
    EXPECT_TRUE(fp.converged) << name;
    EXPECT_DOUBLE_EQ(mass, 1.0) << name;
  }
}

TEST(EngineZoo, TracerRejectedWhenUnsupported) {
  const Digraph g = paper_graph(100, 1);
  const auto placement = Placement::random(100, 4, 1);
  for (const std::string& name : registered_engines()) {
    const auto engine = make_engine(name, g, placement, EngineOptions{});
    obs::Tracer tracer;
    if (engine->traits().supports_tracer) {
      EXPECT_NO_THROW(engine->attach_tracer(tracer)) << name;
    } else {
      EXPECT_THROW(engine->attach_tracer(tracer), std::logic_error) << name;
    }
  }
}

// ---- default-engine golden compatibility through the interface -------

/// FNV-1a over every observable the compatibility promise covers
/// (mirrors test_scheduler.cpp exactly).
class Fnv {
 public:
  void mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  template <typename T>
  void mix_value(const T& v) {
    mix(&v, sizeof(v));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

std::uint64_t digest_run_via_interface(std::uint64_t seed,
                                       std::uint32_t threads,
                                       double availability) {
  const Digraph g = paper_graph(kDocs, seed);
  const auto placement = Placement::random(kDocs, kPeers, seed);
  EngineOptions o;
  o.pagerank.epsilon = 1e-3;
  o.pagerank.threads = threads;
  const std::unique_ptr<PagerankEngineInterface> engine =
      make_engine("distributed", g, placement, o);
  DistributedRunResult run;
  if (availability < 1.0) {
    ChurnSchedule churn(kPeers, availability, seed);
    run = engine->run(&churn);
  } else {
    run = engine->run();
  }
  Fnv f;
  f.mix_value(run.passes);
  f.mix_value(run.converged);
  f.mix(engine->ranks().data(), engine->ranks().size() * sizeof(double));
  for (const PassStats& s : engine->pass_history()) {
    f.mix_value(s.pass);
    f.mix_value(s.docs_recomputed);
    f.mix_value(s.messages_sent);
    f.mix_value(s.messages_deferred);
    f.mix_value(s.messages_delivered_late);
    f.mix_value(s.local_updates);
    f.mix_value(s.max_peer_messages);
    f.mix_value(s.max_rel_change);
  }
  const TrafficMeter& t = engine->traffic();
  f.mix_value(t.messages());
  f.mix_value(t.local_updates());
  f.mix_value(t.bytes());
  f.mix_value(t.resends());
  f.mix_value(t.hop_transmissions());
  // outbox_peak is DistributedPagerank-specific observability, not part
  // of the interface; the golden covers it, so downcast for it.
  const auto* dist = dynamic_cast<const DistributedPagerank*>(engine.get());
  f.mix_value(dist->outbox_peak());
  return f.value();
}

struct GoldenEntry {
  std::uint64_t seed;
  double availability;
  std::uint32_t threads;
  std::uint64_t digest;
};

// The pre-refactor fifo goldens from test_scheduler.cpp (recorded on
// commit ad810a0): the engine-interface extraction must leave the
// default engine bit-identical when driven through the interface.
constexpr GoldenEntry kGolden[] = {
    {7ULL, 1.00, 1, 0xe1f5136668ea4ddcULL},
    {7ULL, 1.00, 4, 0xe1f5136668ea4ddcULL},
    {7ULL, 0.85, 1, 0xb9b4652c2261524aULL},
    {7ULL, 0.85, 4, 0xb9b4652c2261524aULL},
    {21ULL, 1.00, 1, 0xb46e1c638e860edaULL},
    {21ULL, 1.00, 4, 0xb46e1c638e860edaULL},
    {21ULL, 0.85, 1, 0x130df7e04f634d08ULL},
    {21ULL, 0.85, 4, 0x130df7e04f634d08ULL},
    {42ULL, 1.00, 1, 0xae197f138e3ac718ULL},
    {42ULL, 1.00, 4, 0xae197f138e3ac718ULL},
    {42ULL, 0.85, 1, 0xf3aede7be2c2410eULL},
    {42ULL, 0.85, 4, 0xf3aede7be2c2410eULL},
};

TEST(EngineZoo, DefaultEngineReproducesPreRefactorGoldensViaInterface) {
  for (const GoldenEntry& entry : kGolden) {
    EXPECT_EQ(
        digest_run_via_interface(entry.seed, entry.threads,
                                 entry.availability),
        entry.digest)
        << "seed=" << entry.seed << " threads=" << entry.threads
        << " availability=" << entry.availability;
  }
}

}  // namespace
}  // namespace dprank
