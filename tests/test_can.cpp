#include "dht/can.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(TorusDistance, WrapsAroundSeam) {
  EXPECT_NEAR(torus_distance({0.05, 0.5}, {0.95, 0.5}), 0.1, 1e-12);
  EXPECT_NEAR(torus_distance({0.0, 0.0}, {0.5, 0.5}),
              std::sqrt(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(torus_distance({0.3, 0.7}, {0.3, 0.7}), 0.0);
}

TEST(CanSpace, SinglePeerOwnsEverything) {
  const CanSpace can(1);
  EXPECT_EQ(can.num_zones(), 1u);
  EXPECT_EQ(can.num_peers(), 1u);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(can.owner_of_key(Guid{rng(), rng()}), 0u);
  }
}

TEST(CanSpace, ZonesAlwaysTileTheTorus) {
  for (const PeerId n : {2u, 5u, 16u, 64u, 200u}) {
    const CanSpace can(n);
    EXPECT_NEAR(can.total_volume(), 1.0, 1e-9) << n << " peers";
    EXPECT_EQ(can.num_peers(), n);
    EXPECT_EQ(can.num_zones(), n);  // joins only split: one zone each
  }
}

TEST(CanSpace, EveryPointHasExactlyOneZone) {
  const CanSpace can(64);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const CanSpace::Point p{rng.uniform(), rng.uniform()};
    int covering = 0;
    for (const auto& z : can.zones()) {
      if (z.contains(p)) ++covering;
    }
    ASSERT_EQ(covering, 1);
  }
}

TEST(CanSpace, JoinRejectsDuplicate) {
  CanSpace can(4);
  EXPECT_THROW(can.join(2), std::invalid_argument);
}

TEST(CanSpace, LeaveHandsZonesToNeighbor) {
  CanSpace can(16);
  const auto volume_before = can.total_volume();
  can.leave(7);
  EXPECT_FALSE(can.contains(7));
  EXPECT_EQ(can.num_peers(), 15u);
  EXPECT_NEAR(can.total_volume(), volume_before, 1e-12);
  // Zones persist (takeover, not merge): still 16 zones, 15 owners.
  EXPECT_EQ(can.num_zones(), 16u);
}

TEST(CanSpace, LeaveIsIdempotentAndGuarded) {
  CanSpace can(2);
  can.leave(1);
  can.leave(1);  // no-op
  EXPECT_EQ(can.num_peers(), 1u);
  EXPECT_THROW(can.leave(0), std::logic_error);  // cannot empty the space
}

TEST(CanSpace, OwnerMatchesZoneLookup) {
  const CanSpace can(100);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const Guid key{rng(), rng()};
    const auto p = CanSpace::key_to_point(key);
    EXPECT_EQ(can.owner_of_key(key), can.owner_of_point(p));
  }
}

TEST(CanSpace, RouteReachesOwner) {
  const CanSpace can(64);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(64));
    const Guid key{rng(), rng()};
    const auto route = can.route(from, key);
    EXPECT_EQ(route.destination, can.owner_of_key(key));
    if (route.destination == from) {
      // Key owned by the origin: either zero hops, or (rare, multi-zone
      // owners aside) none at all since joins keep one zone per peer.
      EXPECT_EQ(route.hop_count(), 0u);
    } else {
      ASSERT_FALSE(route.hops.empty());
      EXPECT_EQ(route.hops.back(), route.destination);
    }
  }
}

TEST(CanSpace, HopsScaleAsSquareRoot) {
  // d = 2: average route length grows ~ (1/2) * sqrt(n) for CAN.
  Rng rng(11);
  double avg64 = 0;
  double avg256 = 0;
  const CanSpace can64(64);
  const CanSpace can256(256);
  constexpr int kLookups = 300;
  for (int i = 0; i < kLookups; ++i) {
    avg64 += static_cast<double>(
        can64.route(static_cast<PeerId>(rng.bounded(64)), Guid{rng(), rng()})
            .hop_count());
    avg256 += static_cast<double>(
        can256
            .route(static_cast<PeerId>(rng.bounded(256)), Guid{rng(), rng()})
            .hop_count());
  }
  avg64 /= kLookups;
  avg256 /= kLookups;
  EXPECT_LT(avg64, 2.0 * std::sqrt(64.0));
  EXPECT_LT(avg256, 2.0 * std::sqrt(256.0));
  // Quadrupling n should roughly double the hop count (sqrt scaling),
  // certainly not leave it flat or quadruple it.
  EXPECT_GT(avg256, avg64 * 1.3);
  EXPECT_LT(avg256, avg64 * 3.5);
}

TEST(CanSpace, RoutingSurvivesChurn) {
  CanSpace can(64);
  Rng rng(13);
  for (PeerId p = 1; p < 64; p += 4) can.leave(p);
  EXPECT_NEAR(can.total_volume(), 1.0, 1e-9);
  for (int i = 0; i < 150; ++i) {
    // Route from a live peer.
    PeerId from = static_cast<PeerId>(rng.bounded(64));
    while (!can.contains(from)) from = static_cast<PeerId>(rng.bounded(64));
    const Guid key{rng(), rng()};
    const auto route = can.route(from, key);
    EXPECT_EQ(route.destination, can.owner_of_key(key));
  }
}

TEST(CanSpace, NeighborsAreSymmetric) {
  const CanSpace can(32);
  for (std::size_t z = 0; z < can.num_zones(); ++z) {
    for (const std::size_t nb : can.neighbors_of_zone(z)) {
      const auto back = can.neighbors_of_zone(nb);
      EXPECT_TRUE(std::find(back.begin(), back.end(), z) != back.end())
          << "zones " << z << " and " << nb;
    }
  }
}

TEST(CanSpace, ThreeOverlaysAgreeOnOwnershipSemantics) {
  // The pagerank layer is overlay-agnostic: all three DHTs resolve every
  // key to exactly one live peer. (The owners differ — each overlay has
  // its own ownership rule — but resolution must be total and unique.)
  const CanSpace can(32);
  const ChordRing chord(32);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Guid key{rng(), rng()};
    EXPECT_LT(can.owner_of_key(key), 32u);
    EXPECT_LT(chord.successor_of_key(key), 32u);
  }
}

}  // namespace
}  // namespace dprank
