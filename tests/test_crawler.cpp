#include "pagerank/crawler.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {
namespace {

TEST(Crawler, TrafficScalesWithCorpus) {
  const Digraph g = paper_graph(1000, 3);
  const auto t = centralized_crawler_traffic(g);
  EXPECT_EQ(t.naive_fetch_bytes, 1000ull * 9 * 1024);
  EXPECT_EQ(t.link_upload_bytes, g.num_edges() * 32);
  EXPECT_EQ(t.rank_redistribution_bytes, 1000ull * 24);
  EXPECT_EQ(t.link_scheme_total(),
            t.link_upload_bytes + t.rank_redistribution_bytes);
}

TEST(Crawler, NaiveFetchDwarfsLinkScheme) {
  // §5: fetching all files is "undesirable"; shipping link structure is
  // orders of magnitude cheaper.
  const Digraph g = paper_graph(5000, 4);
  const auto t = centralized_crawler_traffic(g);
  EXPECT_GT(t.naive_fetch_bytes, 50 * t.link_scheme_total());
}

TEST(Crawler, CustomModelParams) {
  const Digraph g = figure2_graph();
  CrawlerModelParams params;
  params.avg_document_bytes = 100;
  params.bytes_per_link_record = 10;
  params.bytes_per_rank_record = 5;
  const auto t = centralized_crawler_traffic(g, params);
  EXPECT_EQ(t.naive_fetch_bytes, 600u);
  EXPECT_EQ(t.link_upload_bytes, 50u);
  EXPECT_EQ(t.rank_redistribution_bytes, 30u);
}

TEST(Crawler, DistributedBeatsNaiveCrawlerOnBytes) {
  // The distributed scheme's pagerank messages cost far less than
  // shipping every document to a server.
  const Digraph g = paper_graph(3000, 5);
  const auto placement = Placement::random(3000, 100, 5);
  PagerankOptions o;
  o.epsilon = 1e-3;
  DistributedPagerank engine(g, placement, o);
  ASSERT_TRUE(engine.run().converged);
  const auto crawler = centralized_crawler_traffic(g);
  EXPECT_LT(engine.traffic().bytes(), crawler.naive_fetch_bytes);
}

}  // namespace
}  // namespace dprank
