#include "net/failure_detector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dprank {
namespace {

using State = FailureDetector::State;

TEST(FailureDetector, UnmonitoredUntilFirstHeartbeat) {
  FailureDetector fd;
  EXPECT_EQ(fd.state(3), State::kUnmonitored);
  EXPECT_FALSE(fd.considers_live(3));
  EXPECT_TRUE(fd.tick(0).empty());
  fd.monitor(3, 0);
  EXPECT_EQ(fd.state(3), State::kAlive);
  EXPECT_TRUE(fd.considers_live(3));
  fd.validate();
}

TEST(FailureDetector, DefaultVerdictLandsThreePassesAfterLastHeartbeat) {
  // Defaults: suspected after 2 silent passes, confirmed on the 2nd
  // suspicion — the verdict lands last_heartbeat + 3.
  FailureDetector fd;
  for (std::uint64_t pass = 0; pass <= 4; ++pass) {
    fd.heartbeat(7, pass);
    EXPECT_TRUE(fd.tick(pass).empty());
  }
  // Silence from pass 5 on; last heartbeat was pass 4.
  EXPECT_TRUE(fd.tick(5).empty());
  EXPECT_TRUE(fd.tick(6).empty());  // first suspicion
  EXPECT_EQ(fd.state(7), State::kSuspected);
  const auto dead = fd.tick(7);  // second suspicion confirms
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 7u);
  EXPECT_TRUE(fd.is_dead(7));
  EXPECT_EQ(fd.declared_dead(), 1u);
  // Reported exactly once.
  EXPECT_TRUE(fd.tick(8).empty());
  fd.validate();
}

TEST(FailureDetector, HeartbeatExoneratesSuspicion) {
  FailureDetector fd;
  fd.heartbeat(2, 0);
  EXPECT_TRUE(fd.tick(1).empty());
  EXPECT_TRUE(fd.tick(2).empty());  // suspected
  EXPECT_EQ(fd.state(2), State::kSuspected);
  fd.heartbeat(2, 3);  // came back: near-miss, not a death
  EXPECT_EQ(fd.state(2), State::kAlive);
  EXPECT_EQ(fd.false_suspicions(), 1u);
  EXPECT_TRUE(fd.tick(3).empty());
  EXPECT_EQ(fd.declared_dead(), 0u);
  fd.validate();
}

TEST(FailureDetector, DeadVerdictIsPermanent) {
  FailureDetector fd;
  fd.heartbeat(1, 0);
  std::uint64_t pass = 1;
  while (!fd.is_dead(1)) {
    ASSERT_LT(pass, 10u);
    (void)fd.tick(pass++);
  }
  fd.heartbeat(1, pass);  // ignored: the verdict never reverts
  EXPECT_TRUE(fd.is_dead(1));
  EXPECT_FALSE(fd.considers_live(1));
  fd.validate();
}

TEST(FailureDetector, LeftPeersAreNeverSuspectedOrReported) {
  FailureDetector fd;
  fd.heartbeat(4, 0);
  fd.mark_left(4);
  EXPECT_EQ(fd.state(4), State::kLeft);
  for (std::uint64_t pass = 1; pass < 10; ++pass) {
    EXPECT_TRUE(fd.tick(pass).empty());
  }
  EXPECT_EQ(fd.declared_dead(), 0u);
  EXPECT_EQ(fd.suspicions_raised(), 0u);
  fd.heartbeat(4, 11);  // permanent, like kDead
  EXPECT_EQ(fd.state(4), State::kLeft);
  fd.validate();
}

TEST(FailureDetector, SimultaneousDeathsReportedInAscendingOrder) {
  FailureDetector fd;
  for (const PeerId p : {9u, 2u, 5u}) fd.heartbeat(p, 0);
  fd.heartbeat(1, 0);
  std::vector<PeerId> dead;
  for (std::uint64_t pass = 1; pass < 10 && dead.empty(); ++pass) {
    fd.heartbeat(1, pass);  // 1 stays alive throughout
    dead = fd.tick(pass);
  }
  EXPECT_EQ(dead, (std::vector<PeerId>{2, 5, 9}));
  EXPECT_TRUE(fd.considers_live(1));
  EXPECT_EQ(fd.declared_dead(), 3u);
  fd.validate();
}

TEST(FailureDetector, ConfigurableTimeoutsStretchTheLatency) {
  FailureDetector fd(FailureDetector::Config{.suspect_after_passes = 3,
                                             .confirm_after_suspicions = 4});
  fd.heartbeat(0, 0);
  // Suspected at pass 3, confirmed on the 4th suspicion: pass 6.
  for (std::uint64_t pass = 1; pass <= 5; ++pass) {
    EXPECT_TRUE(fd.tick(pass).empty()) << "pass " << pass;
  }
  const auto dead = fd.tick(6);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 0u);
  fd.validate();
}

}  // namespace
}  // namespace dprank
