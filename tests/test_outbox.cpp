#include "net/outbox.hpp"

#include <gtest/gtest.h>

#include "net/traffic_meter.hpp"

namespace dprank {
namespace {

PagerankUpdate update(double v) { return {document_guid(1), v}; }

TEST(Outbox, StoreAndDrain) {
  Outbox box;
  box.store(3, /*slot=*/10, update(0.5));
  box.store(3, /*slot=*/11, update(0.7));
  EXPECT_TRUE(box.has_pending(3));
  EXPECT_EQ(box.pending_count(), 2u);

  const auto msgs = box.drain(3);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].first, 10u);
  EXPECT_EQ(msgs[1].first, 11u);
  EXPECT_FALSE(box.has_pending(3));
  EXPECT_EQ(box.pending_count(), 0u);
}

TEST(Outbox, NewestValueWins) {
  // "Update messages are stored at the sender and periodically resent
  // until delivered" — only the freshest value per link matters.
  Outbox box;
  box.store(1, 5, update(0.1));
  box.store(1, 5, update(0.2));
  box.store(1, 5, update(0.3));
  EXPECT_EQ(box.pending_count(), 1u);
  const auto msgs = box.drain(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(msgs[0].second).value, 0.3);
}

TEST(Outbox, DrainEmptyPeer) {
  Outbox box;
  EXPECT_TRUE(box.drain(7).empty());
  EXPECT_FALSE(box.has_pending(7));
}

TEST(Outbox, SeparatePeersSeparateQueues) {
  Outbox box;
  box.store(1, 0, update(1.0));
  box.store(2, 0, update(2.0));
  EXPECT_EQ(box.pending_count(), 2u);
  const auto one = box.drain(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(one[0].second).value, 1.0);
  EXPECT_TRUE(box.has_pending(2));
}

TEST(Outbox, DrainReturnsSlotOrder) {
  Outbox box;
  box.store(4, 30, update(0.3));
  box.store(4, 10, update(0.1));
  box.store(4, 20, update(0.2));
  const auto msgs = box.drain(4);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].first, 10u);
  EXPECT_EQ(msgs[1].first, 20u);
  EXPECT_EQ(msgs[2].first, 30u);
}

TEST(Outbox, PeakTracksHighWaterMark) {
  Outbox box;
  for (std::uint64_t s = 0; s < 50; ++s) box.store(0, s, update(1.0));
  (void)box.drain(0);
  for (std::uint64_t s = 0; s < 10; ++s) box.store(0, s, update(1.0));
  EXPECT_EQ(box.pending_count(), 10u);
  EXPECT_EQ(box.peak_pending(), 50u);
}

TEST(TrafficMeter, CountsMessagesAndBytes) {
  TrafficMeter m;
  m.record_message(24);
  m.record_message(24, /*hops=*/4);  // DHT-routed: 4 transmissions
  EXPECT_EQ(m.messages(), 2u);
  EXPECT_EQ(m.hop_transmissions(), 5u);
  EXPECT_EQ(m.bytes(), 24u + 4 * 24u);
}

TEST(TrafficMeter, LocalUpdatesAndResendsSeparate) {
  TrafficMeter m;
  m.record_local_update();
  m.record_resend(24);
  EXPECT_EQ(m.messages(), 0u);
  EXPECT_EQ(m.local_updates(), 1u);
  EXPECT_EQ(m.resends(), 1u);
  EXPECT_EQ(m.bytes(), 24u);
}

TEST(TrafficMeter, MergeAndReset) {
  TrafficMeter a;
  TrafficMeter b;
  a.record_message(10);
  b.record_message(20, 2);
  b.record_local_update();
  a.merge(b);
  EXPECT_EQ(a.messages(), 2u);
  EXPECT_EQ(a.bytes(), 10u + 40u);
  EXPECT_EQ(a.local_updates(), 1u);
  a.reset();
  EXPECT_EQ(a.messages(), 0u);
  EXPECT_EQ(a.bytes(), 0u);
}

TEST(Message, WireBytesMatchPaper) {
  // §4.6.1: "A message size of 24 bytes per message is used (128 bits for
  // GUID, 64 bits for pagerank value)."
  EXPECT_EQ(wire_bytes(Message{PagerankUpdate{document_guid(0), 1.0}}), 24u);
  EXPECT_EQ(wire_bytes(Message{IndexRankUpdate{document_guid(0), 1.0}}), 24u);
  HitsForward hits;
  hits.hits = {document_guid(1), document_guid(2)};
  EXPECT_EQ(wire_bytes(Message{hits}), 2 * 16u + 8u);
}

}  // namespace
}  // namespace dprank
