#include "net/outbox.hpp"

#include <gtest/gtest.h>

#include "net/reliable_channel.hpp"
#include "net/traffic_meter.hpp"

#include <vector>

namespace dprank {
namespace {

PagerankUpdate update(double v) { return {document_guid(1), v}; }

TEST(Outbox, StoreAndDrain) {
  Outbox box;
  box.store(3, /*slot=*/10, update(0.5));
  box.store(3, /*slot=*/11, update(0.7));
  EXPECT_TRUE(box.has_pending(3));
  EXPECT_EQ(box.pending_count(), 2u);

  const auto msgs = box.drain(3);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].first, 10u);
  EXPECT_EQ(msgs[1].first, 11u);
  EXPECT_FALSE(box.has_pending(3));
  EXPECT_EQ(box.pending_count(), 0u);
}

TEST(Outbox, NewestValueWins) {
  // "Update messages are stored at the sender and periodically resent
  // until delivered" — only the freshest value per link matters.
  Outbox box;
  box.store(1, 5, update(0.1));
  box.store(1, 5, update(0.2));
  box.store(1, 5, update(0.3));
  EXPECT_EQ(box.pending_count(), 1u);
  const auto msgs = box.drain(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(msgs[0].second).value, 0.3);
}

TEST(Outbox, DrainEmptyPeer) {
  Outbox box;
  EXPECT_TRUE(box.drain(7).empty());
  EXPECT_FALSE(box.has_pending(7));
}

TEST(Outbox, SeparatePeersSeparateQueues) {
  Outbox box;
  box.store(1, 0, update(1.0));
  box.store(2, 0, update(2.0));
  EXPECT_EQ(box.pending_count(), 2u);
  const auto one = box.drain(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(one[0].second).value, 1.0);
  EXPECT_TRUE(box.has_pending(2));
}

TEST(Outbox, DrainReturnsSlotOrder) {
  Outbox box;
  box.store(4, 30, update(0.3));
  box.store(4, 10, update(0.1));
  box.store(4, 20, update(0.2));
  const auto msgs = box.drain(4);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].first, 10u);
  EXPECT_EQ(msgs[1].first, 20u);
  EXPECT_EQ(msgs[2].first, 30u);
}

TEST(Outbox, PeakTracksHighWaterMark) {
  Outbox box;
  for (std::uint64_t s = 0; s < 50; ++s) box.store(0, s, update(1.0));
  (void)box.drain(0);
  for (std::uint64_t s = 0; s < 10; ++s) box.store(0, s, update(1.0));
  EXPECT_EQ(box.pending_count(), 10u);
  EXPECT_EQ(box.peak_pending(), 50u);
}

TEST(Outbox, PerDestinationCapEvictsOldest) {
  Outbox box(/*per_dest_cap=*/3);
  EXPECT_EQ(box.per_dest_cap(), 3u);
  box.store(0, 1, update(0.1));
  box.store(0, 2, update(0.2));
  box.store(0, 3, update(0.3));
  EXPECT_EQ(box.evicted_count(), 0u);
  box.store(0, 4, update(0.4));  // cap hit: slot 1 (oldest) evicted
  EXPECT_EQ(box.evicted_count(), 1u);
  EXPECT_EQ(box.pending_for(0), 3u);
  const auto msgs = box.drain(0);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].first, 2u);
  EXPECT_EQ(msgs[1].first, 3u);
  EXPECT_EQ(msgs[2].first, 4u);
}

TEST(Outbox, OverwriteRefreshesEvictionAge) {
  // Re-storing a slot makes it the newest: the eviction victim is the
  // least-recently-*stored* slot, not the first-ever-stored one.
  Outbox box(/*per_dest_cap=*/2);
  box.store(0, 1, update(0.1));
  box.store(0, 2, update(0.2));
  box.store(0, 1, update(0.9));  // refresh slot 1: slot 2 is now oldest
  box.store(0, 3, update(0.3));  // evicts slot 2
  EXPECT_EQ(box.evicted_count(), 1u);
  const auto msgs = box.drain(0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].first, 1u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(msgs[0].second).value, 0.9);
  EXPECT_EQ(msgs[1].first, 3u);
}

TEST(Outbox, CapAppliesPerDestination) {
  Outbox box(/*per_dest_cap=*/2);
  for (std::uint64_t s = 0; s < 2; ++s) {
    box.store(0, s, update(1.0));
    box.store(1, s, update(1.0));
  }
  EXPECT_EQ(box.pending_count(), 4u);  // two per destination, no eviction
  EXPECT_EQ(box.evicted_count(), 0u);
}

TEST(Outbox, DefaultIsUnbounded) {
  Outbox box;
  EXPECT_EQ(box.per_dest_cap(), 0u);
  for (std::uint64_t s = 0; s < 10'000; ++s) box.store(0, s, update(1.0));
  EXPECT_EQ(box.pending_count(), 10'000u);
  EXPECT_EQ(box.evicted_count(), 0u);
}

TEST(Outbox, RetryScheduleBacksOffAndResetsOnDrain) {
  Outbox box(/*per_dest_cap=*/0, /*retry_interval_passes=*/1,
             /*retry_backoff_cap_passes=*/4);
  box.store(7, 0, update(1.0));
  EXPECT_EQ(box.due_destinations(0), (std::vector<std::uint32_t>{7}));
  box.schedule_retry(7, /*now_pass=*/0);  // attempt 0: due again at 1
  EXPECT_TRUE(box.due_destinations(0).empty());
  EXPECT_EQ(box.due_destinations(1), (std::vector<std::uint32_t>{7}));
  box.schedule_retry(7, 1);  // attempt 1: interval 2 -> due at 3
  EXPECT_TRUE(box.due_destinations(2).empty());
  EXPECT_EQ(box.due_destinations(3), (std::vector<std::uint32_t>{7}));
  box.schedule_retry(7, 3);  // attempt 2: interval 4 -> due at 7
  EXPECT_TRUE(box.due_destinations(6).empty());
  box.schedule_retry(7, 7);  // attempt 3: capped at 4 -> due at 11
  EXPECT_TRUE(box.due_destinations(10).empty());
  EXPECT_EQ(box.due_destinations(11), (std::vector<std::uint32_t>{7}));
  // Drain clears the queue; a fresh store starts over immediately due.
  (void)box.drain(7);
  box.store(7, 1, update(2.0));
  EXPECT_EQ(box.due_destinations(11), (std::vector<std::uint32_t>{7}));
}

TEST(Outbox, DropDeadEvictsWholeQueueIntoTheLedger) {
  Outbox box;
  box.store(3, 10, update(0.1));
  box.store(3, 20, update(0.2));
  box.store(3, 10, update(0.3));  // supersedes slot 10
  box.store(4, 10, update(0.4));  // other destination, untouched

  const auto dropped = box.drop_dead(3);
  ASSERT_EQ(dropped.size(), 2u);  // slot order, freshest value per slot
  EXPECT_EQ(dropped[0].first, 10u);
  EXPECT_DOUBLE_EQ(std::get<PagerankUpdate>(dropped[0].second).value, 0.3);
  EXPECT_EQ(dropped[1].first, 20u);
  EXPECT_FALSE(box.has_pending(3));
  EXPECT_TRUE(box.has_pending(4));
  EXPECT_EQ(box.dropped_dead_count(), 2u);
  // Conservation: stored == drained + superseded + evicted +
  // dropped_dead + pending.
  EXPECT_EQ(box.stored_count(), 4u);
  EXPECT_EQ(box.superseded_count(), 1u);
  EXPECT_EQ(box.pending_count(), 1u);
  box.validate();
  // Idempotent: a second declaration finds nothing.
  EXPECT_TRUE(box.drop_dead(3).empty());
  EXPECT_EQ(box.dropped_dead_count(), 2u);
  // A dead destination's timer no longer fires.
  EXPECT_EQ(box.due_destinations(100), (std::vector<std::uint32_t>{4}));
  box.validate();
}

TEST(ReliableChannel, GiveUpOnDestIsTerminalAndDrainsOnce) {
  ReliableChannel ch;
  for (const std::uint64_t slot : {1, 2, 3}) (void)ch.next_seq(slot);
  ch.track({.slot = 1, .dest = 9, .src = 0, .value = 0.1, .seq = 1}, 0);
  ch.track({.slot = 2, .dest = 9, .src = 3, .value = 0.2, .seq = 1}, 0);
  ch.track({.slot = 3, .dest = 5, .src = 0, .value = 0.3, .seq = 1}, 0);

  const auto abandoned = ch.give_up_on_dest(9);
  ASSERT_EQ(abandoned.size(), 2u);  // slot order
  EXPECT_EQ(abandoned[0].slot, 1u);
  EXPECT_EQ(abandoned[1].slot, 2u);
  EXPECT_EQ(ch.in_flight(), 1u);  // the live destination keeps its record
  EXPECT_EQ(ch.gave_up(), 2u);

  // The same records queue for the auditor exactly once.
  const auto drained = ch.take_gave_up();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].slot, 1u);
  EXPECT_EQ(drained[1].slot, 2u);
  EXPECT_TRUE(ch.take_gave_up().empty());
  EXPECT_TRUE(ch.give_up_on_dest(9).empty());  // idempotent
  ch.validate();
}

TEST(ReliableChannel, ExhaustedRetryBudgetGivesUp) {
  ReliableChannel ch(ReliableChannel::Config{.ack_timeout_passes = 1,
                                             .retry_backoff_cap = 2,
                                             .max_attempts = 2});
  (void)ch.next_seq(7);
  ch.track({.slot = 7, .dest = 1, .src = 0, .value = 0.5, .seq = 1}, 0);
  std::uint64_t pass = 0;
  // Drive the retry loop as the engine does: take due, re-track with
  // attempt + 1, until the budget bites.
  while (ch.in_flight() > 0) {
    ASSERT_LT(pass, 20u);
    ++pass;
    for (auto& p : ch.take_due(pass)) {
      ++p.attempt;
      ch.track(p, pass);
    }
  }
  EXPECT_EQ(ch.gave_up(), 1u);
  const auto lost = ch.take_gave_up();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].slot, 7u);
  EXPECT_EQ(lost[0].attempt, 2u);
  ch.validate();
}

TEST(ReliableChannel, ReassignSenderHandsRecordsToHeir) {
  ReliableChannel ch;
  for (const std::uint64_t slot : {1, 2, 3}) (void)ch.next_seq(slot);
  ch.track({.slot = 1, .dest = 5, .src = 3, .value = 0.1, .seq = 1}, 0);
  ch.track({.slot = 2, .dest = 6, .src = 3, .value = 0.2, .seq = 1}, 0);
  ch.track({.slot = 3, .dest = 5, .src = 8, .value = 0.3, .seq = 1}, 0);
  EXPECT_EQ(ch.reassign_sender(3, 4), 2u);
  EXPECT_EQ(ch.in_flight(), 3u);  // nothing lost, only re-labelled
  // The heir now owns the retransmissions; forgetting the leaver is a
  // no-op and forgetting the heir yields the moved records.
  EXPECT_TRUE(ch.forget_sender(3).empty());
  const auto heirs = ch.forget_sender(4);
  ASSERT_EQ(heirs.size(), 2u);
  EXPECT_EQ(heirs[0].slot, 1u);
  EXPECT_EQ(heirs[0].src, 4u);
  EXPECT_EQ(heirs[1].slot, 2u);
  ch.validate();
}

TEST(ReliableChannel, LedgerBalancesAcrossEveryExit) {
  ReliableChannel ch(ReliableChannel::Config{.ack_timeout_passes = 1,
                                             .retry_backoff_cap = 2,
                                             .max_attempts = 1});
  for (const std::uint64_t slot : {1, 2, 3, 4}) (void)ch.next_seq(slot);
  ch.track({.slot = 1, .dest = 1, .src = 0, .value = 0.1, .seq = 1}, 0);
  ch.ack(1, 1);  // exit: acked
  ch.track({.slot = 2, .dest = 2, .src = 6, .value = 0.2, .seq = 1}, 0);
  (void)ch.forget_sender(6);  // exit: forgotten
  ch.track({.slot = 3, .dest = 3, .src = 0, .value = 0.3, .seq = 1}, 0);
  (void)ch.give_up_on_dest(3);  // exit: gave up
  ch.track({.slot = 4, .dest = 4, .src = 0, .value = 0.4, .seq = 1}, 0);
  auto due = ch.take_due(2);  // exit: taken
  ASSERT_EQ(due.size(), 1u);
  due[0].attempt = 1;
  ch.track(due[0], 2);  // budget (1) exhausted: gave up instead of re-arm
  EXPECT_EQ(ch.gave_up(), 2u);
  EXPECT_TRUE(ch.idle());
  (void)ch.take_gave_up();
  ch.validate();  // tracked == acked + forgotten + taken + gave_up
}

TEST(ReliableChannel, SequenceNumbersRejectStaleAndDuplicates) {
  ReliableChannel ch;
  EXPECT_EQ(ch.next_seq(5), 1u);
  EXPECT_EQ(ch.next_seq(5), 2u);
  EXPECT_EQ(ch.next_seq(9), 1u);  // independent per slot
  EXPECT_TRUE(ch.accept(5, 2));
  EXPECT_FALSE(ch.accept(5, 2));  // duplicate
  EXPECT_FALSE(ch.accept(5, 1));  // stale reordered value
  EXPECT_EQ(ch.duplicates_suppressed(), 1u);
  EXPECT_EQ(ch.stale_rejected(), 1u);
  EXPECT_TRUE(ch.accept(9, 1));
}

TEST(ReliableChannel, TracksAndRetriesWithBackoff) {
  ReliableChannel ch(ReliableChannel::Config{.ack_timeout_passes = 1,
                                             .retry_backoff_cap = 4});
  ch.track({.slot = 3, .dest = 1, .src = 0, .value = 0.5, .seq = 1}, 0);
  EXPECT_EQ(ch.in_flight(), 1u);
  EXPECT_TRUE(ch.take_due(0).empty());  // not due yet
  auto due = ch.take_due(1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(ch.idle());  // taken out; caller decides re-track or ack
  due[0].attempt = 1;
  ch.track(due[0], 1);  // interval 2: due at pass 3
  EXPECT_TRUE(ch.take_due(2).empty());
  ASSERT_EQ(ch.take_due(3).size(), 1u);
  EXPECT_EQ(ch.retransmissions(), 2u);
}

TEST(ReliableChannel, NewerEmissionSupersedesInFlight) {
  ReliableChannel ch;
  ch.track({.slot = 3, .dest = 1, .src = 0, .value = 0.5, .seq = 1}, 0);
  ch.track({.slot = 3, .dest = 1, .src = 0, .value = 0.8, .seq = 2}, 0);
  EXPECT_EQ(ch.in_flight(), 1u);  // one record per slot: newest wins
  const auto due = ch.take_due(1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].seq, 2u);
  EXPECT_DOUBLE_EQ(due[0].value, 0.8);
}

TEST(ReliableChannel, AckClearsUnlessNewerPending) {
  ReliableChannel ch;
  ch.track({.slot = 3, .dest = 1, .src = 0, .value = 0.5, .seq = 2}, 0);
  ch.ack(3, 1);  // stale ack: the seq-2 send is still unconfirmed
  EXPECT_EQ(ch.in_flight(), 1u);
  ch.ack(3, 2);
  EXPECT_TRUE(ch.idle());
}

TEST(ReliableChannel, ForgetSenderDropsOnlyTheirRecords) {
  ReliableChannel ch;
  ch.track({.slot = 1, .dest = 5, .src = 0, .value = 0.1, .seq = 1}, 0);
  ch.track({.slot = 2, .dest = 5, .src = 7, .value = 0.2, .seq = 1}, 0);
  ch.track({.slot = 3, .dest = 6, .src = 7, .value = 0.3, .seq = 1}, 0);
  const auto lost = ch.forget_sender(7);
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost[0].slot, 2u);
  EXPECT_EQ(lost[1].slot, 3u);
  EXPECT_EQ(ch.in_flight(), 1u);
}

TEST(TrafficMeter, CountsMessagesAndBytes) {
  TrafficMeter m;
  m.record_message(24);
  m.record_message(24, /*hops=*/4);  // DHT-routed: 4 transmissions
  EXPECT_EQ(m.messages(), 2u);
  EXPECT_EQ(m.hop_transmissions(), 5u);
  EXPECT_EQ(m.bytes(), 24u + 4 * 24u);
}

TEST(TrafficMeter, LocalUpdatesAndResendsSeparate) {
  TrafficMeter m;
  m.record_local_update();
  m.record_resend(24);
  EXPECT_EQ(m.messages(), 0u);
  EXPECT_EQ(m.local_updates(), 1u);
  EXPECT_EQ(m.resends(), 1u);
  EXPECT_EQ(m.bytes(), 24u);
}

TEST(TrafficMeter, MergeAndReset) {
  TrafficMeter a;
  TrafficMeter b;
  a.record_message(10);
  b.record_message(20, 2);
  b.record_local_update();
  a.merge(b);
  EXPECT_EQ(a.messages(), 2u);
  EXPECT_EQ(a.bytes(), 10u + 40u);
  EXPECT_EQ(a.local_updates(), 1u);
  a.reset();
  EXPECT_EQ(a.messages(), 0u);
  EXPECT_EQ(a.bytes(), 0u);
}

TEST(Message, WireBytesMatchPaper) {
  // §4.6.1: "A message size of 24 bytes per message is used (128 bits for
  // GUID, 64 bits for pagerank value)."
  EXPECT_EQ(wire_bytes(Message{PagerankUpdate{document_guid(0), 1.0}}), 24u);
  EXPECT_EQ(wire_bytes(Message{IndexRankUpdate{document_guid(0), 1.0}}), 24u);
  HitsForward hits;
  hits.hits = {document_guid(1), document_guid(2)};
  EXPECT_EQ(wire_bytes(Message{hits}), 2 * 16u + 8u);
}

}  // namespace
}  // namespace dprank
