#include "sim/time_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dprank {
namespace {

std::vector<PassStats> synthetic_history(std::uint64_t passes,
                                         std::uint64_t msgs_per_pass,
                                         std::uint64_t docs_per_pass,
                                         std::uint64_t max_peer_msgs) {
  std::vector<PassStats> h(passes);
  for (std::uint64_t p = 0; p < passes; ++p) {
    h[p].pass = p;
    h[p].messages_sent = msgs_per_pass;
    h[p].docs_recomputed = docs_per_pass;
    h[p].max_peer_messages = max_peer_msgs;
  }
  return h;
}

TEST(TimeModel, PresetBandwidths) {
  EXPECT_DOUBLE_EQ(modem_network().bandwidth_bytes_per_sec, 32.0 * 1024);
  EXPECT_DOUBLE_EQ(broadband_network().bandwidth_bytes_per_sec, 200.0 * 1024);
  EXPECT_DOUBLE_EQ(t3_network().bandwidth_bytes_per_sec, 5.6e6);
}

TEST(TimeModel, SerializedCommDominatedByBytes) {
  // 1M messages x 24 B at 32 KB/s = 732.4 s of pure transfer.
  const auto h = synthetic_history(10, 100'000, 0, 0);
  const auto t = estimate_serialized(h, modem_network());
  EXPECT_NEAR(t.comm_seconds, 1e6 * 24 / (32.0 * 1024), 1e-6);
  EXPECT_DOUBLE_EQ(t.compute_seconds, 0.0);
}

TEST(TimeModel, SerializedComputeScalesWithRecomputes) {
  const auto h = synthetic_history(5, 0, 1000, 0);
  const auto t = estimate_serialized(h, modem_network());
  EXPECT_NEAR(t.compute_seconds, 5 * 1000 * 12e-6, 1e-12);
}

TEST(TimeModel, ReproducesPaperTable3Hours) {
  // The paper's 5000k row at epsilon = 1e-5: 533.2M messages -> 106 h at
  // 32 KB/s and 17.0 h at 200 KB/s. The serialized model must land in
  // the same range (it is how those columns were computed).
  const std::uint64_t total_msgs = 533'200'000;
  const auto h = synthetic_history(1, total_msgs, 0, 0);
  const auto slow = estimate_serialized(h, modem_network());
  EXPECT_NEAR(slow.total_hours(), 106.0, 5.0);
  const auto fast = estimate_serialized(h, broadband_network());
  EXPECT_NEAR(fast.total_hours(), 17.0, 1.0);
}

TEST(TimeModel, ParallelModelIsFasterThanSerialized) {
  const auto h = synthetic_history(20, 50'000, 10'000, 500);
  const auto placement = Placement::random(10'000, 100, 1);
  const auto par = estimate_parallel(h, placement, modem_network());
  const auto ser = estimate_serialized(h, modem_network());
  EXPECT_LT(par.total_seconds(), ser.total_seconds());
  EXPECT_GT(par.total_seconds(), 0.0);
}

TEST(TimeModel, ParallelSkipsQuietPasses) {
  auto h = synthetic_history(3, 0, 0, 0);
  const auto placement = Placement::random(100, 10, 1);
  const auto t = estimate_parallel(h, placement, modem_network());
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(TimeModel, InternetScaleMatchesPaperOrder) {
  // §4.6.2: 3B documents on T3-connected web servers; the paper reports
  // ~14 days at epsilon 1e-3 (~80 msgs/node) and ~35 days at 1e-5. The
  // comm-dominated estimate must land in the same order of magnitude.
  const auto t = extrapolate_internet_scale(
      /*avg_messages_per_node=*/80.0, /*avg_passes=*/120, 3e9,
      t3_network());
  EXPECT_GT(t.total_days(), 5.0);
  EXPECT_LT(t.total_days(), 60.0);
}

TEST(TimeModel, InternetScaleComputeSharedAcrossServers) {
  const auto few = extrapolate_internet_scale(80, 120, 3e9, t3_network(),
                                              /*num_servers=*/1000);
  const auto many = extrapolate_internet_scale(80, 120, 3e9, t3_network(),
                                               /*num_servers=*/1'000'000);
  EXPECT_GT(few.compute_seconds, many.compute_seconds);
  EXPECT_DOUBLE_EQ(few.comm_seconds, many.comm_seconds);
}

TEST(TimeModel, UnitsConsistent) {
  TimeEstimate t;
  t.comm_seconds = 3600.0;
  t.compute_seconds = 3600.0;
  EXPECT_DOUBLE_EQ(t.total_seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(t.total_hours(), 2.0);
  EXPECT_NEAR(t.total_days(), 2.0 / 24.0, 1e-12);
}

}  // namespace
}  // namespace dprank
