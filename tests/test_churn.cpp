#include "p2p/churn.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {
namespace {

std::uint32_t count_present(const std::vector<bool>& mask) {
  return static_cast<std::uint32_t>(
      std::count(mask.begin(), mask.end(), true));
}

TEST(Churn, FullAvailabilityKeepsEveryoneOnline) {
  ChurnSchedule churn(500, 1.0, 42);
  for (std::uint64_t pass = 0; pass < 5; ++pass) {
    const auto& mask = churn.presence_for_pass(pass);
    EXPECT_EQ(count_present(mask), 500u);
  }
}

TEST(Churn, ExactFractionPresent) {
  // Table 1's 75% and 50% columns: exactly floor(f*P) present per pass.
  for (const double f : {0.75, 0.5, 0.25}) {
    ChurnSchedule churn(500, f, 7);
    for (std::uint64_t pass = 0; pass < 10; ++pass) {
      const auto& mask = churn.presence_for_pass(pass);
      EXPECT_EQ(count_present(mask),
                static_cast<std::uint32_t>(500 * f));
    }
  }
}

TEST(Churn, PeersRotateBetweenPasses) {
  ChurnSchedule churn(100, 0.5, 9);
  const auto first = churn.presence_for_pass(0);
  const auto second = churn.presence_for_pass(1);
  EXPECT_NE(first, second);  // random resample each pass
}

TEST(Churn, EveryPeerEventuallyPresent) {
  // With per-pass uniform resampling at 50%, every peer must show up
  // within a few dozen passes (miss probability 0.5^40 ~ 1e-12).
  ChurnSchedule churn(50, 0.5, 11);
  std::vector<bool> ever(50, false);
  for (std::uint64_t pass = 0; pass < 40; ++pass) {
    const auto& mask = churn.presence_for_pass(pass);
    for (std::size_t p = 0; p < 50; ++p) {
      if (mask[p]) ever[p] = true;
    }
  }
  EXPECT_EQ(count_present(ever), 50u);
}

TEST(Churn, DeterministicFromSeed) {
  ChurnSchedule a(64, 0.75, 123);
  ChurnSchedule b(64, 0.75, 123);
  for (std::uint64_t pass = 0; pass < 20; ++pass) {
    EXPECT_EQ(a.presence_for_pass(pass), b.presence_for_pass(pass));
  }
}

TEST(Churn, PassesMustBeNondecreasing) {
  ChurnSchedule churn(10, 0.5, 1);
  (void)churn.presence_for_pass(5);
  EXPECT_THROW(churn.presence_for_pass(4), std::logic_error);
  // Re-requesting the current pass is allowed.
  EXPECT_NO_THROW(churn.presence_for_pass(5));
}

TEST(Churn, ValidatesParameters) {
  EXPECT_THROW(ChurnSchedule(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(10, 1.5, 1), std::invalid_argument);
}

TEST(Churn, TinyFractionKeepsAtLeastOnePeer) {
  ChurnSchedule churn(10, 0.01, 3);
  EXPECT_EQ(churn.present_per_pass(), 1u);
  const auto& mask = churn.presence_for_pass(0);
  EXPECT_EQ(count_present(mask), 1u);
}

TEST(SessionChurn, StationaryAvailabilityNearTarget) {
  ChurnSchedule churn(200, 0.6, 7, ChurnModel::kSessions, 10.0);
  double total = 0;
  constexpr int kPasses = 500;
  for (std::uint64_t pass = 0; pass < kPasses; ++pass) {
    total += count_present(churn.presence_for_pass(pass));
  }
  const double avg_avail = total / (kPasses * 200.0);
  EXPECT_NEAR(avg_avail, 0.6, 0.05);
}

TEST(SessionChurn, SessionsPersistAcrossPasses) {
  // Unlike per-pass resampling, a session model keeps most peers in
  // their current state between consecutive passes: the symmetric
  // difference of consecutive masks must be far below the resample
  // model's expectation.
  ChurnSchedule sessions(100, 0.5, 9, ChurnModel::kSessions, 20.0);
  ChurnSchedule resample(100, 0.5, 9, ChurnModel::kResample);
  auto flips = [](const std::vector<bool>& a, const std::vector<bool>& b) {
    int f = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) ++f;
    }
    return f;
  };
  int session_flips = 0;
  int resample_flips = 0;
  std::vector<bool> prev_s = sessions.presence_for_pass(0);
  std::vector<bool> prev_r = resample.presence_for_pass(0);
  for (std::uint64_t pass = 1; pass <= 50; ++pass) {
    const std::vector<bool> cur_s = sessions.presence_for_pass(pass);
    const std::vector<bool> cur_r = resample.presence_for_pass(pass);
    session_flips += flips(prev_s, cur_s);
    resample_flips += flips(prev_r, cur_r);
    prev_s = cur_s;
    prev_r = cur_r;
  }
  EXPECT_LT(session_flips * 3, resample_flips);
}

TEST(SessionChurn, MeanOnlineSessionLengthRoughlyHonored) {
  ChurnSchedule churn(300, 0.5, 11, ChurnModel::kSessions, 8.0);
  // Track session lengths for peers over many passes.
  std::vector<int> run_length(300, 0);
  double total_len = 0;
  int sessions_ended = 0;
  std::vector<bool> prev = churn.presence_for_pass(0);
  for (std::uint64_t pass = 1; pass < 600; ++pass) {
    const std::vector<bool> cur = churn.presence_for_pass(pass);
    for (std::size_t p = 0; p < 300; ++p) {
      if (prev[p]) ++run_length[p];
      if (prev[p] && !cur[p]) {
        total_len += run_length[p];
        ++sessions_ended;
        run_length[p] = 0;
      }
      if (!prev[p]) run_length[p] = 0;
    }
    prev = cur;
  }
  ASSERT_GT(sessions_ended, 100);
  EXPECT_NEAR(total_len / sessions_ended, 8.0, 2.0);
}

TEST(SessionChurn, EngineStillConvergesUnderSessionChurn) {
  // The outbox must survive multi-pass absences, not just one-pass
  // blips.
  const Digraph g = paper_graph(2000, 21);
  const auto p = Placement::random(2000, 50, 21);
  PagerankOptions opts;
  opts.epsilon = 1e-4;
  ChurnSchedule churn(50, 0.5, 33, ChurnModel::kSessions, 15.0);
  DistributedPagerank engine(g, p, opts);
  const auto run = engine.run(&churn);
  EXPECT_TRUE(run.converged);
  EXPECT_GT(engine.outbox_peak(), 0u);
}

TEST(SessionChurn, ValidatesMeanSessionLength)
{
  EXPECT_THROW(ChurnSchedule(10, 0.5, 1, ChurnModel::kSessions, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dprank
