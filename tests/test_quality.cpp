#include "pagerank/quality.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(Quality, RelativeErrorsBasic) {
  const auto errs = relative_errors({1.1, 2.0, 0.9}, {1.0, 2.0, 1.0});
  ASSERT_EQ(errs.size(), 3u);
  EXPECT_NEAR(errs[0], 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(errs[1], 0.0);
  EXPECT_NEAR(errs[2], 0.1, 1e-12);
}

TEST(Quality, ZeroReferenceFallsBackToAbsolute) {
  const auto errs = relative_errors({0.25}, {0.0});
  EXPECT_DOUBLE_EQ(errs[0], 0.25);
}

TEST(Quality, NegativeReferenceUsesMagnitude) {
  const auto errs = relative_errors({-1.1}, {-1.0});
  EXPECT_NEAR(errs[0], 0.1, 1e-12);
}

TEST(Quality, SizeMismatchThrows) {
  EXPECT_THROW(relative_errors({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Quality, SummaryPercentiles) {
  // 1000 docs: 990 exact, 10 with 5% error.
  std::vector<double> ref(1000, 1.0);
  std::vector<double> dist(1000, 1.0);
  for (int i = 0; i < 10; ++i) dist[i] = 1.05;
  const auto q = summarize_quality(dist, ref);
  EXPECT_DOUBLE_EQ(q.p50, 0.0);
  EXPECT_DOUBLE_EQ(q.p99, 0.0);
  EXPECT_NEAR(q.p99_9, 0.05, 1e-12);
  EXPECT_NEAR(q.max, 0.05, 1e-12);
  EXPECT_NEAR(q.avg, 0.0005, 1e-12);
  EXPECT_DOUBLE_EQ(q.fraction_within_1pct, 0.99);
}

TEST(Quality, PerfectMatch) {
  const std::vector<double> r{1.0, 2.0, 3.0};
  const auto q = summarize_quality(r, r);
  EXPECT_DOUBLE_EQ(q.max, 0.0);
  EXPECT_DOUBLE_EQ(q.avg, 0.0);
  EXPECT_DOUBLE_EQ(q.fraction_within_1pct, 1.0);
}

TEST(Quality, L1RankErrorNormalizesByReferenceMass) {
  const std::vector<double> ref{1.0, 2.0, 4.0};
  const std::vector<double> dist{1.0, 2.0, 3.0};
  EXPECT_NEAR(l1_rank_error(dist, ref), 1.0 / 7.0, 1e-15);
  EXPECT_DOUBLE_EQ(l1_rank_error(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(l1_rank_error({}, {}), 0.0);
  EXPECT_THROW(l1_rank_error({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Quality, EmptyInputYieldsZeroReport) {
  // Regression: Summary::percentile throws on an empty sample, and
  // summarize_quality used to construct the Summary before its empty
  // guard — so comparing two empty rank vectors crashed instead of
  // returning the vacuous all-zero / all-within report.
  const std::vector<double> empty;
  const auto q = summarize_quality(empty, empty);
  EXPECT_DOUBLE_EQ(q.p50, 0.0);
  EXPECT_DOUBLE_EQ(q.p75, 0.0);
  EXPECT_DOUBLE_EQ(q.p90, 0.0);
  EXPECT_DOUBLE_EQ(q.p99, 0.0);
  EXPECT_DOUBLE_EQ(q.p99_9, 0.0);
  EXPECT_DOUBLE_EQ(q.max, 0.0);
  EXPECT_DOUBLE_EQ(q.avg, 0.0);
  EXPECT_DOUBLE_EQ(q.fraction_within_1pct, 1.0);
}

TEST(Ordering, TopKOverlapIdentical) {
  const std::vector<double> r{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(top_k_overlap(r, r, 3), 1.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(r, r, 100), 1.0);  // clamps
  EXPECT_DOUBLE_EQ(top_k_overlap(r, r, 0), 1.0);
}

TEST(Ordering, TopKOverlapDisjoint) {
  const std::vector<double> a{9, 8, 1, 1, 1, 1};
  const std::vector<double> b{1, 1, 1, 1, 8, 9};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.0);
}

TEST(Ordering, TopKOverlapPartial) {
  const std::vector<double> a{10, 9, 8, 1, 1};
  const std::vector<double> b{10, 1, 8, 9, 1};
  // top-3 of a = {0,1,2}; top-3 of b = {0,3,2}; overlap 2/3.
  EXPECT_NEAR(top_k_overlap(a, b, 3), 2.0 / 3.0, 1e-12);
}

TEST(Ordering, TopKOverlapValidates) {
  EXPECT_THROW(top_k_overlap({1.0}, {1.0, 2.0}, 1), std::invalid_argument);
}

TEST(Ordering, KendallTauExtremes) {
  std::vector<double> asc(200);
  std::vector<double> desc(200);
  for (int i = 0; i < 200; ++i) {
    asc[static_cast<std::size_t>(i)] = i;
    desc[static_cast<std::size_t>(i)] = 200 - i;
  }
  EXPECT_NEAR(kendall_tau_sampled(asc, asc, 50'000), 1.0, 1e-12);
  EXPECT_NEAR(kendall_tau_sampled(asc, desc, 50'000), -1.0, 1e-12);
}

TEST(Ordering, KendallTauNearZeroForIndependentOrders) {
  // Pseudo-random ranks vs index order: tau should be near 0.
  std::vector<double> index_order(1000);
  std::vector<double> scrambled(1000);
  std::uint64_t s = 99;
  for (int i = 0; i < 1000; ++i) {
    index_order[static_cast<std::size_t>(i)] = i;
    scrambled[static_cast<std::size_t>(i)] =
        static_cast<double>(splitmix64(s));
  }
  EXPECT_NEAR(kendall_tau_sampled(index_order, scrambled, 200'000), 0.0,
              0.05);
}

TEST(Ordering, KendallTauTinyInputs) {
  EXPECT_DOUBLE_EQ(kendall_tau_sampled({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau_sampled({1.0}, {2.0}), 1.0);
  // All ties -> no informative pairs -> 1.0 by convention.
  EXPECT_DOUBLE_EQ(kendall_tau_sampled({1.0, 1.0}, {2.0, 2.0}, 100), 1.0);
}

}  // namespace
}  // namespace dprank
