// End-to-end integration tests: the full pipeline the paper describes,
// from graph synthesis through distributed pagerank to index publication
// and incremental search, plus the StandardExperiment harness the bench
// binaries drive.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/incremental.hpp"
#include "pagerank/quality.hpp"
#include "search/incremental_search.hpp"
#include "search/query_gen.hpp"
#include "sim/experiment.hpp"
#include "sim/time_model.hpp"

namespace dprank {
namespace {

TEST(Experiment, StandardSetupMatchesConfig) {
  ExperimentConfig cfg;
  cfg.num_docs = 2000;
  cfg.num_peers = 40;
  cfg.epsilon = 1e-3;
  const StandardExperiment exp(cfg);
  EXPECT_EQ(exp.graph().num_nodes(), 2000u);
  EXPECT_EQ(exp.placement().num_docs(), 2000u);
  EXPECT_EQ(exp.placement().num_peers(), 40u);
  EXPECT_DOUBLE_EQ(exp.pagerank_options().epsilon, 1e-3);
}

TEST(Experiment, GraphCacheSharesInstances) {
  const auto a = cached_paper_graph(1500, 3);
  const auto b = cached_paper_graph(1500, 3);
  EXPECT_EQ(a.get(), b.get());  // same shared instance
  const auto c = cached_paper_graph(1500, 4);
  EXPECT_NE(a.get(), c.get());
}

TEST(Experiment, RunDistributedProducesQualityRanks) {
  ExperimentConfig cfg;
  cfg.num_docs = 3000;
  cfg.num_peers = 100;
  cfg.epsilon = 1e-4;
  const StandardExperiment exp(cfg);
  const auto outcome = exp.run_distributed();
  ASSERT_TRUE(outcome.run.converged);
  const auto q = summarize_quality(outcome.ranks, exp.reference_ranks());
  EXPECT_LT(q.avg, 1e-2);
  EXPECT_GT(outcome.messages, 0u);
  EXPECT_EQ(outcome.history.size(), outcome.run.passes);
}

TEST(Experiment, ChurnConfigSlowsConvergence) {
  ExperimentConfig cfg;
  cfg.num_docs = 2000;
  cfg.num_peers = 50;
  cfg.epsilon = 1e-3;
  const StandardExperiment full(cfg);
  cfg.availability = 0.5;
  const StandardExperiment half(cfg);
  const auto run_full = full.run_distributed();
  const auto run_half = half.run_distributed();
  ASSERT_TRUE(run_full.run.converged);
  ASSERT_TRUE(run_half.run.converged);
  EXPECT_GT(run_half.run.passes, run_full.run.passes);
}

TEST(Integration, TrajectoryMatchesPaperSection43) {
  // "More than 99% of the nodes converged to within 1% of R_c in less
  // than 10 passes" — check the qualitative claim on a 10k graph (the
  // paper's smallest size) with the standard 500 peers.
  ExperimentConfig cfg;
  cfg.num_docs = 10'000;
  cfg.num_peers = 500;
  cfg.epsilon = 1e-3;
  const StandardExperiment exp(cfg);
  const auto& ref = exp.reference_ranks();

  double frac_within_at_pass10 = 0.0;
  double frac_within_at_pass30 = 0.0;
  const auto outcome = exp.run_distributed(
      [&](std::uint64_t pass, const std::vector<double>& ranks) {
        if (pass == 9) {
          frac_within_at_pass10 =
              summarize_quality(ranks, ref).fraction_within_1pct;
        }
        if (pass == 29) {
          frac_within_at_pass30 =
              summarize_quality(ranks, ref).fraction_within_1pct;
        }
      });
  ASSERT_TRUE(outcome.run.converged);
  ASSERT_GE(outcome.run.passes, 30u);
  // Paper: "more than 99% of the nodes converged to within 1% of R_c in
  // less than 10 passes". On our synthetic graphs we measure ~89% at
  // pass 10 and >99% by pass 30 — same shape, corpus-dependent constant
  // (see EXPERIMENTS.md).
  EXPECT_GT(frac_within_at_pass10, 0.80);
  EXPECT_GT(frac_within_at_pass30, 0.99);
}

TEST(Integration, PagerankFeedsSearchEndToEnd) {
  // Full pipeline at reduced scale: synthesize documents over the link
  // graph, compute distributed pageranks, publish to the index, and
  // verify incremental search returns highly ranked results cheaply.
  constexpr std::uint32_t kDocs = 3000;
  ExperimentConfig cfg;
  cfg.num_docs = kDocs;
  cfg.num_peers = 50;
  cfg.epsilon = 1e-4;
  const StandardExperiment exp(cfg);
  const auto outcome = exp.run_distributed();
  ASSERT_TRUE(outcome.run.converged);

  CorpusParams cp;
  cp.num_docs = kDocs;
  cp.vocabulary = 400;
  cp.mean_terms = 50;
  cp.min_terms = 5;
  cp.max_terms = 200;
  const Corpus corpus = Corpus::synthesize(cp);

  ChordRing ring(cfg.num_peers);
  DistributedIndex index(corpus, ring);
  std::vector<PeerId> owner(kDocs);
  for (NodeId d = 0; d < kDocs; ++d) owner[d] = exp.placement().peer_of(d);
  TrafficMeter index_meter;
  index.publish_ranks(outcome.ranks, owner, &index_meter);
  EXPECT_EQ(index_meter.messages() + index_meter.local_updates(),
            index.total_postings());

  SearchEngine engine(index);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  std::uint64_t base_traffic = 0;
  std::uint64_t inc_traffic = 0;
  for (const auto& q : generate_queries(
           corpus,
           {.term_pool = 50, .num_queries = 20, .terms_per_query = 2})) {
    const auto base = engine.run_query(q, kForwardEverything);
    const auto inc = engine.run_query(q, top10);
    base_traffic += base.ids_transferred;
    inc_traffic += inc.ids_transferred;
    // Incremental hits must be the top-ranked subset of baseline hits.
    const std::set<NodeId> base_set(base.hits.begin(), base.hits.end());
    for (const NodeId d : inc.hits) ASSERT_TRUE(base_set.contains(d));
  }
  EXPECT_LT(inc_traffic * 2, base_traffic);
}

TEST(Integration, IncrementalUpdateKeepsIndexFresh) {
  // Insert a document into a converged system; its propagated rank is
  // published to the index and shows up in queries (§3.1 + §2.4.2).
  const Digraph base = paper_graph(1000, 44);
  MutableDigraph g(base);
  std::vector<double> ranks = centralized_pagerank(base, 0.85, 1e-12).ranks;

  CorpusParams cp;
  cp.num_docs = 1000;
  cp.vocabulary = 100;
  cp.mean_terms = 20;
  cp.min_terms = 5;
  cp.max_terms = 50;
  const Corpus corpus = Corpus::synthesize(cp);
  ChordRing ring(10);
  DistributedIndex index(corpus, ring);
  const std::vector<PeerId> owner(1001, 0);
  index.publish_ranks(ranks, {owner.begin(), owner.end() - 1});

  PagerankOptions opts;
  opts.epsilon = 1e-6;
  NodeId id = 0;
  (void)insert_document(g, ranks, {1, 2, 3}, opts, &id);
  index.publish_one(id, {0, 7}, ranks[id], 0);

  SearchEngine engine(index);
  const auto outcome = engine.run_query({0, 7}, kForwardEverything);
  EXPECT_TRUE(std::find(outcome.hits.begin(), outcome.hits.end(), id) !=
              outcome.hits.end());
}

TEST(Integration, TimeModelOnRealHistory) {
  ExperimentConfig cfg;
  cfg.num_docs = 3000;
  cfg.num_peers = 100;
  cfg.epsilon = 1e-3;
  const StandardExperiment exp(cfg);
  const auto outcome = exp.run_distributed();
  ASSERT_TRUE(outcome.run.converged);
  const auto serialized =
      estimate_serialized(outcome.history, modem_network());
  const auto parallel =
      estimate_parallel(outcome.history, exp.placement(), modem_network());
  EXPECT_GT(serialized.total_seconds(), 0.0);
  EXPECT_LE(parallel.comm_seconds, serialized.comm_seconds);
  // Faster network, faster finish.
  const auto fast = estimate_serialized(outcome.history, t3_network());
  EXPECT_LT(fast.total_seconds(), serialized.total_seconds());
}

}  // namespace
}  // namespace dprank
