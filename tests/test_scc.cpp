#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generator.hpp"

namespace dprank {
namespace {

TEST(Scc, EmptyGraph) {
  const Digraph g = Digraph::from_edges(0, {});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 0u);
  EXPECT_THROW(scc.largest_component(), std::logic_error);
}

TEST(Scc, IsolatedNodesAreSingletons) {
  const Digraph g = Digraph::from_edges(4, {});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4u);
  const std::set<std::uint32_t> distinct(scc.component.begin(),
                                         scc.component.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Scc, CycleIsOneComponent) {
  const Digraph g = Digraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
}

TEST(Scc, ChainIsAllSingletons) {
  const Digraph g = Digraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(Scc, EdgeRespectsReverseTopologicalNumbering) {
  // Components are numbered so an edge u->v implies comp[u] >= comp[v].
  const Digraph g = Digraph::from_edges(
      6, {{0, 1}, {1, 0},          // component A
          {2, 3}, {3, 2},          // component B
          {1, 2},                  // A -> B
          {4, 5}, {5, 4}, {3, 4}}  // B -> C
  );
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) {
      EXPECT_GE(scc.component[u], scc.component[v]);
    }
  }
}

TEST(Scc, TwoCyclesJoinedByBridge) {
  const Digraph g = Digraph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  const auto sizes = scc.component_sizes();
  EXPECT_EQ(sizes[0] + sizes[1], 6u);
  EXPECT_EQ(sizes[0], 3u);
}

TEST(Scc, SelfContainedOnDeepChain) {
  // A 50k-node chain would blow a recursive Tarjan's stack; the
  // iterative version must handle it.
  std::vector<Edge> edges;
  const NodeId n = 50'000;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  const Digraph g = Digraph::from_edges(n, std::move(edges));
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, n);
}

TEST(Bowtie, HandComposedRegions) {
  // in: 0 -> core {1,2} -> out: 3; island: 4.
  const Digraph g = Digraph::from_edges(
      5, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  const auto bt = bowtie_decomposition(g);
  EXPECT_EQ(bt.core, 2u);
  EXPECT_EQ(bt.in, 1u);
  EXPECT_EQ(bt.out, 1u);
  EXPECT_EQ(bt.other, 1u);
  EXPECT_EQ(bt.region[0], BowtieRegion::kIn);
  EXPECT_EQ(bt.region[1], BowtieRegion::kCore);
  EXPECT_EQ(bt.region[2], BowtieRegion::kCore);
  EXPECT_EQ(bt.region[3], BowtieRegion::kOut);
  EXPECT_EQ(bt.region[4], BowtieRegion::kOther);
}

TEST(Bowtie, RegionsPartitionTheGraph) {
  const Digraph g = paper_graph(20'000, 3);
  const auto bt = bowtie_decomposition(g);
  EXPECT_EQ(bt.core + bt.in + bt.out + bt.other,
            static_cast<std::uint64_t>(g.num_nodes()));
  // Web-like macro-structure: a non-trivial core exists.
  EXPECT_GT(bt.core, 100u);
}

TEST(Bowtie, EmptyGraph) {
  const Digraph g = Digraph::from_edges(0, {});
  const auto bt = bowtie_decomposition(g);
  EXPECT_EQ(bt.core + bt.in + bt.out + bt.other, 0u);
}

}  // namespace
}  // namespace dprank
